#include "util/serialize.h"

#include <algorithm>

namespace setcover {

void StateEncoder::PutU32Vector(const std::vector<uint32_t>& values) {
  words_.push_back(values.size());
  uint64_t pending = 0;
  bool half = false;
  for (uint32_t v : values) {
    if (!half) {
      pending = v;
      half = true;
    } else {
      words_.push_back(pending | (uint64_t{v} << 32));
      half = false;
    }
  }
  if (half) words_.push_back(pending);
}

void StateEncoder::PutBoolVector(const std::vector<bool>& values) {
  words_.push_back(values.size());
  uint64_t word = 0;
  int bit = 0;
  for (bool v : values) {
    word |= uint64_t{v ? 1u : 0u} << bit;
    if (++bit == 64) {
      words_.push_back(word);
      word = 0;
      bit = 0;
    }
  }
  if (bit > 0) words_.push_back(word);
}

void StateEncoder::PutBitset(const DynamicBitset& bits) {
  words_.push_back(bits.size());
  const size_t word_count = bits.WordCount();
  const uint64_t* words = bits.WordsData();
  words_.insert(words_.end(), words, words + word_count);
}

void StateEncoder::PutSet(const std::unordered_set<uint32_t>& values) {
  std::vector<uint32_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  PutU32Vector(sorted);
}

void StateEncoder::PutMap(
    const std::unordered_map<uint32_t, uint32_t>& values) {
  std::vector<std::pair<uint32_t, uint32_t>> sorted(values.begin(),
                                                    values.end());
  std::sort(sorted.begin(), sorted.end());
  PutSortedPairs(sorted);
}

void StateEncoder::PutSortedIds(const std::vector<uint32_t>& sorted_ids) {
  PutU32Vector(sorted_ids);
}

void StateEncoder::PutSortedPairs(
    const std::vector<std::pair<uint32_t, uint32_t>>& sorted_pairs) {
  words_.push_back(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    words_.push_back(uint64_t{k} | (uint64_t{v} << 32));
  }
}

uint64_t StateDecoder::GetWord() {
  if (position_ >= words_.size()) {
    failed_ = true;
    return 0;
  }
  return words_[position_++];
}

std::vector<uint32_t> StateDecoder::GetU32Vector() {
  uint64_t count = GetWord();
  std::vector<uint32_t> values;
  if (failed_ || count > (words_.size() - position_) * 2) {
    failed_ = true;
    return values;
  }
  values.reserve(count);
  for (uint64_t i = 0; i < count; i += 2) {
    uint64_t word = GetWord();
    values.push_back(static_cast<uint32_t>(word));
    if (i + 1 < count) values.push_back(static_cast<uint32_t>(word >> 32));
  }
  return values;
}

std::vector<bool> StateDecoder::GetBoolVector() {
  uint64_t count = GetWord();
  std::vector<bool> values;
  if (failed_ || count > (words_.size() - position_) * 64) {
    failed_ = true;
    return values;
  }
  values.reserve(count);
  uint64_t word = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (i % 64 == 0) word = GetWord();
    values.push_back((word >> (i % 64)) & 1);
  }
  return values;
}

bool StateDecoder::GetBitset(DynamicBitset* out) {
  uint64_t count = GetWord();
  if (failed_ || count > (words_.size() - position_) * 64) {
    failed_ = true;
    return false;
  }
  const size_t word_count = (count + 63) / 64;
  out->AssignWords(count,
                   std::span(words_.data() + position_, word_count));
  position_ += word_count;
  return true;
}

std::unordered_set<uint32_t> StateDecoder::GetSet() {
  std::vector<uint32_t> values = GetU32Vector();
  return {values.begin(), values.end()};
}

std::unordered_map<uint32_t, uint32_t> StateDecoder::GetMap() {
  uint64_t count = GetWord();
  std::unordered_map<uint32_t, uint32_t> values;
  if (failed_ || count > words_.size() - position_) {
    failed_ = true;
    return values;
  }
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t word = GetWord();
    values.emplace(static_cast<uint32_t>(word),
                   static_cast<uint32_t>(word >> 32));
  }
  return values;
}

}  // namespace setcover
