#include "util/memory_meter.h"

#include <cstdio>

namespace setcover {

MemoryMeter::ComponentId MemoryMeter::Register(std::string name) {
  names_.push_back(std::move(name));
  sizes_.push_back(0);
  peaks_.push_back(0);
  return names_.size() - 1;
}

void MemoryMeter::Set(ComponentId id, size_t words) {
  current_total_ = current_total_ - sizes_[id] + words;
  sizes_[id] = words;
  if (words > peaks_[id]) peaks_[id] = words;
  if (current_total_ > peak_total_) peak_total_ = current_total_;
}

void MemoryMeter::Add(ComponentId id, size_t delta) {
  Set(id, sizes_[id] + delta);
}

void MemoryMeter::Sub(ComponentId id, size_t delta) {
  Set(id, sizes_[id] - delta);
}

std::string MemoryMeter::BreakdownString() const {
  std::string out;
  char buf[160];
  for (size_t i = 0; i < names_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%s=%zu", i == 0 ? "" : " ",
                  names_[i].c_str(), peaks_[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%speak_total=%zu",
                names_.empty() ? "" : " ", peak_total_);
  out += buf;
  return out;
}

void MemoryMeter::Reset() {
  for (size_t i = 0; i < sizes_.size(); ++i) {
    sizes_[i] = 0;
    peaks_[i] = 0;
  }
  current_total_ = 0;
  peak_total_ = 0;
}

}  // namespace setcover
