#include "util/rng.h"

#include <algorithm>

namespace setcover {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& w : state_) w = SplitMix64(s);
  // Avoid the all-zero state (xoshiro's single fixed point).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next64() {
  // xoshiro256** by Blackman & Vigna.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

void Rng::FillUniformDoubles(std::span<double> out) {
  for (double& d : out) d = UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<uint32_t> Rng::RandomSubset(uint32_t universe, uint32_t k) {
  std::vector<uint32_t> result;
  result.reserve(k);
  if (k == 0) return result;
  if (2 * static_cast<uint64_t>(k) >= universe) {
    // Dense case: reservoir-free selection sampling.
    result.reserve(k);
    uint32_t remaining = k;
    for (uint32_t v = 0; v < universe && remaining > 0; ++v) {
      if (UniformInt(universe - v) < remaining) {
        result.push_back(v);
        --remaining;
      }
    }
    return result;
  }
  // Sparse case: Floyd's algorithm, then sort.
  std::vector<uint32_t> chosen;
  chosen.reserve(k);
  for (uint32_t j = universe - k; j < universe; ++j) {
    uint32_t v = static_cast<uint32_t>(UniformInt(j + 1));
    if (std::find(chosen.begin(), chosen.end(), v) != chosen.end()) v = j;
    chosen.push_back(v);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Rng Rng::Fork() { return Rng(Next64() ^ 0xa5a5a5a5deadbeefULL); }

std::array<uint64_t, 4> Rng::GetState() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Rng::SetState(const std::array<uint64_t, 4>& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state[i];
}

}  // namespace setcover
