#include "util/math.h"

#include <cmath>

namespace setcover {

int FloorLog2(uint64_t x) { return 63 - __builtin_clzll(x); }

int CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return FloorLog2(x - 1) + 1;
}

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

uint64_t ISqrt(uint64_t x) {
  if (x == 0) return 0;
  uint64_t r = static_cast<uint64_t>(std::sqrt(static_cast<double>(x)));
  // std::sqrt may be off by one ULP for large inputs; correct it using
  // 128-bit squares so (r+1)² cannot overflow.
  while (r > 0 && static_cast<unsigned __int128>(r) * r > x) --r;
  while (static_cast<unsigned __int128>(r + 1) * (r + 1) <= x) ++r;
  return r;
}

double LnAtLeast(double x, double floor_at) {
  double v = x > 1.0 ? std::log(x) : 0.0;
  return v < floor_at ? floor_at : v;
}

double Log2AtLeast(double x, double floor_at) {
  double v = x > 1.0 ? std::log2(x) : 0.0;
  return v < floor_at ? floor_at : v;
}

}  // namespace setcover
