#include "util/shm_ring.h"

#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>

namespace setcover {

/// Lives at offset 0 of the shared mapping. head/tail are monotone
/// byte cursors (never wrapped); the data offset of a cursor is
/// `cursor & mask`. Cacheline padding keeps the producer's tail and
/// the consumer's head off each other's lines.
struct ShmRing::Header {
  uint32_t magic;
  uint32_t capacity;
  alignas(64) std::atomic<uint64_t> tail;  // producer-owned
  alignas(64) std::atomic<uint64_t> head;  // consumer-owned
  alignas(64) std::atomic<uint32_t> closed;
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "shared-memory cursors must be lock-free across processes");
static_assert(sizeof(ShmRing::Header) % 64 == 0);

namespace {

constexpr size_t kDataOffset = sizeof(ShmRing::Header);

size_t RoundUpPow2(size_t v) {
  size_t p = ShmRing::kMinCapacity;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShmRing::ShmRing(int fd, void* mapping, size_t mapped_bytes)
    : fd_(fd),
      mapping_(mapping),
      mapped_bytes_(mapped_bytes),
      header_(static_cast<Header*>(mapping)),
      data_(static_cast<uint8_t*>(mapping) + kDataOffset),
      mask_(header_->capacity - 1) {}

ShmRing::~ShmRing() {
  Close();
  if (mapping_ != nullptr) ::munmap(mapping_, mapped_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<ShmRing> ShmRing::Create(size_t capacity_bytes,
                                         std::string* error) {
  if (capacity_bytes > kMaxCapacity) {
    if (error != nullptr) *error = "shm ring capacity too large";
    return nullptr;
  }
  const size_t capacity = RoundUpPow2(capacity_bytes);
  const size_t total = kDataOffset + capacity;

  const int fd = ::memfd_create("setcover-shm-ring", MFD_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr)
      *error = std::string("memfd_create: ") + std::strerror(errno);
    return nullptr;
  }
  if (::ftruncate(fd, off_t(total)) != 0) {
    if (error != nullptr)
      *error = std::string("ftruncate: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  void* mapping =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mapping == MAP_FAILED) {
    if (error != nullptr)
      *error = std::string("mmap: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  Header* header = new (mapping) Header();
  header->magic = kMagic;
  header->capacity = uint32_t(capacity);
  header->tail.store(0, std::memory_order_relaxed);
  header->head.store(0, std::memory_order_relaxed);
  header->closed.store(0, std::memory_order_release);
  return std::unique_ptr<ShmRing>(new ShmRing(fd, mapping, total));
}

std::unique_ptr<ShmRing> ShmRing::Map(int fd, std::string* error) {
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr)
      *error = std::string("fstat: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const size_t total = size_t(st.st_size);
  if (total < kDataOffset + kMinCapacity) {
    if (error != nullptr) *error = "shm ring region too small";
    ::close(fd);
    return nullptr;
  }
  void* mapping =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mapping == MAP_FAILED) {
    if (error != nullptr)
      *error = std::string("mmap: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  Header* header = static_cast<Header*>(mapping);
  const uint32_t capacity = header->capacity;
  if (header->magic != kMagic || capacity < kMinCapacity ||
      capacity > kMaxCapacity || (capacity & (capacity - 1)) != 0 ||
      total != kDataOffset + capacity) {
    if (error != nullptr) *error = "shm ring header is not a ring";
    ::munmap(mapping, total);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<ShmRing>(new ShmRing(fd, mapping, total));
}

size_t ShmRing::Capacity() const { return header_->capacity; }

bool ShmRing::Closed() const {
  return header_->closed.load(std::memory_order_acquire) != 0;
}

void ShmRing::Close() {
  if (header_ != nullptr)
    header_->closed.store(1, std::memory_order_release);
}

template <typename Ready>
bool ShmRing::WaitFor(Ready ready) {
  // Phase 1: spin — the common case is a peer a few memcpys away.
  // On a single-core host the peer cannot make progress while we
  // spin, so spinning only burns the timeslice it needs: skip
  // straight to yielding there.
  static const int kSpins =
      std::thread::hardware_concurrency() > 1 ? 1024 : 1;
  for (int spin = 0; spin < kSpins; ++spin) {
    if (ready()) return true;
    if (Closed()) return ready();  // drain what was published pre-close
  }
  // Phase 2: yield, then sleep in slices that escalate to 1ms so an
  // idle connection costs microamps, not a core. The watcher runs once
  // per slice (the transport polls its bootstrap socket there).
  uint64_t slice_us = 10;
  for (;;) {
    for (int y = 0; y < 64; ++y) {
      std::this_thread::yield();
      if (ready()) return true;
      if (Closed()) return ready();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(slice_us));
    if (slice_us < 1000) slice_us *= 2;
    if (ready()) return true;
    if (Closed()) return ready();
    if (watcher_ && !watcher_()) {
      Close();
      return ready();
    }
  }
}

void ShmRing::CopyIn(uint64_t at, const uint8_t* from, size_t size) {
  const uint64_t offset = at & mask_;
  const size_t first = std::min(size, size_t(header_->capacity - offset));
  std::memcpy(data_ + offset, from, first);
  if (first < size) std::memcpy(data_, from + first, size - first);
}

void ShmRing::CopyOut(uint64_t at, uint8_t* to, size_t size) const {
  const uint64_t offset = at & mask_;
  const size_t first = std::min(size, size_t(header_->capacity - offset));
  std::memcpy(to, data_ + offset, first);
  if (first < size) std::memcpy(to + first, data_, size - first);
}

bool ShmRing::PushFrame(const uint8_t* data, size_t size) {
  const uint64_t need = 4 + uint64_t(size);
  if (need > header_->capacity) return false;  // can never fit
  const uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  // Wait for space: the consumer's head advancing is what frees bytes.
  const bool have_room = WaitFor([&] {
    const uint64_t head = header_->head.load(std::memory_order_acquire);
    return header_->capacity - (tail - head) >= need;
  });
  if (!have_room || Closed()) return false;

  uint8_t prefix[4];
  const uint32_t length = uint32_t(size);
  for (int i = 0; i < 4; ++i) prefix[i] = uint8_t(length >> (8 * i));
  CopyIn(tail, prefix, 4);
  if (size > 0) CopyIn(tail + 4, data, size);
  // Publish: the frame bytes land before the cursor that exposes them.
  header_->tail.store(tail + need, std::memory_order_release);
  return true;
}

bool ShmRing::PopFrame(std::vector<uint8_t>* payload) {
  const uint64_t head = header_->head.load(std::memory_order_relaxed);
  if (!WaitFor([&] {
        return header_->tail.load(std::memory_order_acquire) - head >= 4;
      })) {
    return false;  // closed and drained
  }
  uint8_t prefix[4];
  CopyOut(head, prefix, 4);
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) length |= uint32_t(prefix[i]) << (8 * i);
  if (4 + uint64_t(length) > header_->capacity) {
    // A length that can never arrive is corruption; framing cannot
    // resynchronize past it, so the ring dies here.
    Close();
    return false;
  }
  if (!WaitFor([&] {
        return header_->tail.load(std::memory_order_acquire) - head >=
               4 + uint64_t(length);
      })) {
    return false;  // closed mid-frame
  }
  payload->resize(length);
  if (length > 0) CopyOut(head + 4, payload->data(), length);
  // Publish the consumption only after the copy-out finished, so the
  // producer never overwrites bytes still being read.
  header_->head.store(head + 4 + length, std::memory_order_release);
  return true;
}

}  // namespace setcover
