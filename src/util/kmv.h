#ifndef SETCOVER_UTIL_KMV_H_
#define SETCOVER_UTIL_KMV_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

namespace setcover {

/// KMV ("k minimum values") distinct-count sketch: tracks the k
/// smallest hash values seen; the number of distinct keys is estimated
/// as (k − 1) / max_kth_fraction with relative error O(1/√k).
///
/// The library uses it to cross-check stream statistics cheaply (e.g.
/// distinct elements touched during an epoch) in tests and benches
/// without Õ(n) tallies.
class KmvSketch {
 public:
  explicit KmvSketch(size_t k, uint64_t seed);

  /// Observes `key` (duplicates are fine — distinct hashes are kept).
  void Add(uint64_t key);

  /// Estimated number of distinct keys observed.
  double EstimateDistinct() const;

  /// Exact count while fewer than k distinct keys have been seen
  /// (the estimate is exact in that regime).
  size_t HeapSize() const { return heap_.size(); }

  size_t k() const { return k_; }

  /// Storage footprint in 64-bit words (~2k for heap + dedup set).
  size_t WordsUsed() const { return heap_.size() + seen_.size(); }

 private:
  size_t k_;
  uint64_t seed_;
  std::priority_queue<uint64_t> heap_;   // k smallest hashes (max-heap)
  std::unordered_set<uint64_t> seen_;    // hashes currently in heap_
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_KMV_H_
