#ifndef SETCOVER_UTIL_BITSET_H_
#define SETCOVER_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace setcover {

/// Fixed-size dense bitset used for per-element flags (marked / covered).
///
/// A bitset over the universe costs n bits = n/64 words, which is within
/// the Õ(n) budget every algorithm in the paper is allowed for element
/// bookkeeping (Algorithm 1 lines 3-4 explicitly reserve O(n) space for
/// marked elements).
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  /// Sets bit `i`. Returns true if the bit was previously clear.
  bool Set(size_t i) {
    uint64_t& w = words_[i >> 6];
    uint64_t mask = uint64_t{1} << (i & 63);
    bool was_clear = (w & mask) == 0;
    w |= mask;
    count_ += was_clear ? 1 : 0;
    return was_clear;
  }

  /// Clears bit `i`.
  void Reset(size_t i) {
    uint64_t& w = words_[i >> 6];
    uint64_t mask = uint64_t{1} << (i & 63);
    count_ -= (w & mask) != 0 ? 1 : 0;
    w &= ~mask;
  }

  /// Tests bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits (maintained incrementally, O(1)).
  size_t Count() const { return count_; }

  /// True iff every bit is set.
  bool All() const { return count_ == size_; }

  /// True iff no bit is set.
  bool None() const { return count_ == 0; }

  /// Clears all bits.
  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// Storage footprint in 64-bit words, for memory metering.
  size_t WordsUsed() const { return words_.size(); }

 private:
  size_t size_ = 0;
  size_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_BITSET_H_
