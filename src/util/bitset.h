#ifndef SETCOVER_UTIL_BITSET_H_
#define SETCOVER_UTIL_BITSET_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace setcover {

/// Fixed-size dense bitset used for per-element flags (marked / covered).
///
/// A bitset over the universe costs n bits = n/64 words, which is within
/// the Õ(n) budget every algorithm in the paper is allowed for element
/// bookkeeping (Algorithm 1 lines 3-4 explicitly reserve O(n) space for
/// marked elements).
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  /// Sets bit `i`. Returns true if the bit was previously clear.
  bool Set(size_t i) {
    uint64_t& w = words_[i >> 6];
    uint64_t mask = uint64_t{1} << (i & 63);
    bool was_clear = (w & mask) == 0;
    w |= mask;
    count_ += was_clear ? 1 : 0;
    return was_clear;
  }

  /// Clears bit `i`.
  void Reset(size_t i) {
    uint64_t& w = words_[i >> 6];
    uint64_t mask = uint64_t{1} << (i & 63);
    count_ -= (w & mask) != 0 ? 1 : 0;
    w &= ~mask;
  }

  /// Tests bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits (maintained incrementally, O(1)).
  size_t Count() const { return count_; }

  /// True iff every bit is set.
  bool All() const { return count_ == size_; }

  /// True iff no bit is set.
  bool None() const { return count_ == 0; }

  /// Clears all bits.
  void Clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// Re-initializes to `size` bits, all clear, reusing the existing
  /// word capacity (no reallocation when shrinking or same-size). Scratch
  /// workspaces (offline/greedy.h) reset with this between runs.
  void Assign(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
    count_ = 0;
  }

  /// Storage footprint in 64-bit words, for memory metering.
  size_t WordsUsed() const { return words_.size(); }

  // --- Word-granular access for the popcount kernels -------------------
  //
  // The offline greedy and the validator recount coverage word-parallel:
  // they gather a set's sorted elements into per-word masks and resolve
  // the whole word with one AND + popcount instead of one Test() per
  // element. These accessors expose exactly the word surface that needs.

  /// Number of backing words (== WordsUsed(); bits i live in word i/64).
  size_t WordCount() const { return words_.size(); }

  /// The w-th backing word. Bit i of the set maps to bit (i & 63) of
  /// word i >> 6.
  uint64_t Word(size_t w) const { return words_[w]; }

  /// Read-only view of the backing words, for batched gather kernels
  /// (util/simd.h) and word-granular serialization. Bit i lives at bit
  /// (i & 63) of word i >> 6; bits beyond size() are zero by invariant.
  const uint64_t* WordsData() const { return words_.data(); }

  /// Rebuilds the bitset as `size` bits taken word-for-word from
  /// `words` (at most (size + 63) / 64 of them are used; missing words
  /// read as zero). Bits of the last word beyond `size` are masked off,
  /// so untrusted trailing junk cannot corrupt size()/Count() — the
  /// word-granular decode path (StateDecoder::GetBitset) accepts
  /// exactly the messages the bit-by-bit path did.
  void AssignWords(size_t size, std::span<const uint64_t> words) {
    size_ = size;
    const size_t want = (size + 63) / 64;
    const size_t have = std::min(want, words.size());
    words_.assign(words.begin(), words.begin() + have);
    words_.resize(want, 0);
    if ((size & 63) != 0 && want > 0) {
      words_.back() &= ~uint64_t{0} >> (64 - (size & 63));
    }
    count_ = 0;
    for (uint64_t w : words_) count_ += size_t(std::popcount(w));
  }

  /// ORs `mask` into word `w` and returns the mask bits that were
  /// previously clear (the newly set bits). Count() stays exact.
  /// Mask bits beyond size() must be zero — they would corrupt Count().
  uint64_t FetchOrWord(size_t w, uint64_t mask) {
    uint64_t& word = words_[w];
    uint64_t newly = mask & ~word;
    word |= mask;
    count_ += size_t(std::popcount(newly));
    return newly;
  }

  /// Number of set bits in the half-open bit range [first, last),
  /// clamped to size(). One popcount per touched word.
  size_t CountRange(size_t first, size_t last) const {
    last = std::min(last, size_);
    if (first >= last) return 0;
    const size_t first_word = first >> 6;
    const size_t last_word = (last - 1) >> 6;
    const uint64_t head_mask = ~uint64_t{0} << (first & 63);
    // (last & 63) == 0 means the range ends exactly on a word boundary,
    // so the final word is used in full.
    const uint64_t tail_mask =
        (last & 63) == 0 ? ~uint64_t{0} : (~uint64_t{0} >> (64 - (last & 63)));
    if (first_word == last_word) {
      return size_t(std::popcount(words_[first_word] & head_mask & tail_mask));
    }
    size_t total = size_t(std::popcount(words_[first_word] & head_mask));
    for (size_t w = first_word + 1; w < last_word; ++w) {
      total += size_t(std::popcount(words_[w]));
    }
    total += size_t(std::popcount(words_[last_word] & tail_mask));
    return total;
  }

 private:
  size_t size_ = 0;
  size_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_BITSET_H_
