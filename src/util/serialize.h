#ifndef SETCOVER_UTIL_SERIALIZE_H_
#define SETCOVER_UTIL_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/bitset.h"

namespace setcover {

/// Helpers for encoding streaming-algorithm state into flat word
/// vectors — the literal messages forwarded between parties in the
/// communication experiments (comm/reduction). Encoders write plain
/// 64-bit words: a length prefix followed by payload; bit vectors are
/// packed 64 per word.
///
/// The encodings are *canonical* (hash containers are sorted first), so
/// equal states produce equal messages — the tests rely on this.
class StateEncoder {
 public:
  void PutWord(uint64_t word) { words_.push_back(word); }

  /// Length-prefixed raw u32 vector (two values per word).
  void PutU32Vector(const std::vector<uint32_t>& values);

  /// Length-prefixed bool vector packed as bits.
  void PutBoolVector(const std::vector<bool>& values);

  /// Byte-identical to PutBoolVector over the same bits, but word-granular:
  /// DynamicBitset packs bit i at bit (i & 63) of word i >> 6 — exactly
  /// the wire layout — so the words are dumped directly instead of being
  /// re-packed one bit at a time (the EncodeState hot path for the
  /// covered/marked/in-sample indicators).
  void PutBitset(const DynamicBitset& bits);

  /// Length-prefixed sorted dump of a hash set.
  void PutSet(const std::unordered_set<uint32_t>& values);

  /// Length-prefixed sorted dump of a hash map (key, value pairs).
  void PutMap(const std::unordered_map<uint32_t, uint32_t>& values);

  /// Wire-identical to PutSet, for callers (the dense epoch containers)
  /// that already hold their ids in ascending order.
  void PutSortedIds(const std::vector<uint32_t>& sorted_ids);

  /// Wire-identical to PutMap, for callers that already hold their
  /// (key, value) pairs in ascending key order.
  void PutSortedPairs(
      const std::vector<std::pair<uint32_t, uint32_t>>& sorted_pairs);

  const std::vector<uint64_t>& Words() const { return words_; }
  size_t SizeWords() const { return words_.size(); }

 private:
  std::vector<uint64_t> words_;
};

/// Encoded sizes of the StateEncoder fields, in words, as pure
/// arithmetic on element counts. Algorithms use these to implement an
/// O(1) StateWords() override that stays exactly equal to the size a
/// full EncodeState() would produce (serialize_test verifies the
/// equality for every registered algorithm) without paying for the
/// encode — StateWords() is called per boundary in the communication
/// experiments, where a real encode per call dominated the runtime.
constexpr size_t EncodedU32VectorWords(size_t count) {
  return 1 + (count + 1) / 2;
}
constexpr size_t EncodedBoolVectorWords(size_t count) {
  return 1 + (count + 63) / 64;
}
constexpr size_t EncodedSetWords(size_t count) {
  return EncodedU32VectorWords(count);
}
constexpr size_t EncodedMapWords(size_t count) { return 1 + count; }

/// Mirror of StateEncoder: reads the fields back in the same order.
/// Out-of-bounds reads set the failure flag and return empty values
/// instead of crashing (malformed messages are data, not trusted).
class StateDecoder {
 public:
  explicit StateDecoder(const std::vector<uint64_t>& words)
      : words_(words) {}

  uint64_t GetWord();
  std::vector<uint32_t> GetU32Vector();
  std::vector<bool> GetBoolVector();
  std::unordered_set<uint32_t> GetSet();
  std::unordered_map<uint32_t, uint32_t> GetMap();

  /// Word-granular mirror of GetBoolVector: consumes exactly the same
  /// words and accepts exactly the same messages (junk bits beyond the
  /// declared size in the final word are ignored, as the bit-by-bit
  /// reader ignored them), but lands directly in a DynamicBitset. On
  /// failure `out` is left untouched and failed() is set.
  bool GetBitset(DynamicBitset* out);

  /// True once any read ran past the end of the message.
  bool failed() const { return failed_; }

  /// True when the whole message was consumed without failure.
  bool Done() const { return !failed_ && position_ == words_.size(); }

 private:
  const std::vector<uint64_t>& words_;
  size_t position_ = 0;
  bool failed_ = false;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_SERIALIZE_H_
