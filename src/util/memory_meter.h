#ifndef SETCOVER_UTIL_MEMORY_METER_H_
#define SETCOVER_UTIL_MEMORY_METER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace setcover {

/// Accounts for the working-set size of a streaming algorithm in machine
/// words (one word = 64 bits), the unit the paper's space bounds are
/// stated in (up to constant factors).
///
/// Algorithms register named components once (e.g. "levels", "solution",
/// "tracking") and update each component's current word count as their
/// data structures grow and shrink. The meter maintains the running total
/// and its peak over the whole stream, which is what the benchmarks
/// report as "space".
///
/// This explicit accounting — rather than a malloc hook — measures the
/// *information-theoretic* state the algorithm carries, which is the
/// quantity lower bounds such as Theorem 2 speak about; container
/// overheads (capacity slack, hash-table load factors) are deliberately
/// excluded, and each algorithm documents the word cost it charges per
/// stored item.
class MemoryMeter {
 public:
  using ComponentId = size_t;

  MemoryMeter() = default;

  /// Registers a component and returns its handle. Names are for
  /// reporting only and need not be unique (but should be).
  ComponentId Register(std::string name);

  /// Sets the current size of `id` to `words` and updates the peak.
  void Set(ComponentId id, size_t words);

  /// Adds `delta` words to `id` (may not underflow).
  void Add(ComponentId id, size_t delta);

  /// Removes `delta` words from `id`. Requires the component to hold at
  /// least `delta` words.
  void Sub(ComponentId id, size_t delta);

  /// Current total across all components, in words.
  size_t CurrentWords() const { return current_total_; }

  /// Largest value `CurrentWords()` ever reached.
  size_t PeakWords() const { return peak_total_; }

  /// Current size of one component.
  size_t ComponentWords(ComponentId id) const { return sizes_[id]; }

  /// Peak size of one component (independent of when the total peaked).
  size_t ComponentPeakWords(ComponentId id) const { return peaks_[id]; }

  /// Human-readable per-component breakdown of peaks, for bench output.
  std::string BreakdownString() const;

  /// Resets all counts (components stay registered).
  void Reset();

 private:
  std::vector<std::string> names_;
  std::vector<size_t> sizes_;
  std::vector<size_t> peaks_;
  size_t current_total_ = 0;
  size_t peak_total_ = 0;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_MEMORY_METER_H_
