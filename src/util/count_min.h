#ifndef SETCOVER_UTIL_COUNT_MIN_H_
#define SETCOVER_UTIL_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/serialize.h"

namespace setcover {

/// Count-Min sketch (Cormode & Muthukrishnan): approximate frequency
/// counting in sublinear space, with one-sided error — estimates never
/// undercount and overcount by at most ε·(total insertions) with
/// probability 1 − δ for width ≥ e/ε, depth ≥ ln(1/δ).
///
/// Used as the space-frugal alternative to Algorithm 1's epoch-0
/// per-element degree counters (RandomOrderParams::use_sketch_epoch0):
/// heavy-element detection only needs counts far above a threshold, so
/// a sketch of Õ(N·√n/m) cells replaces the n-word exact array. The
/// one-sided error direction is harmless there — overcounts can only
/// cause extra optimistic marking, which patching repairs.
class CountMinSketch {
 public:
  /// Explicit geometry: `width` counters per row, `depth` rows.
  CountMinSketch(size_t width, size_t depth, uint64_t seed);

  /// Geometry from accuracy targets: error ≤ epsilon·total with
  /// probability ≥ 1 − delta.
  static CountMinSketch WithGuarantees(double epsilon, double delta,
                                       uint64_t seed);

  /// Adds `count` occurrences of `key`.
  void Add(uint64_t key, uint64_t count = 1);

  /// Upper-biased point estimate of key's count (min over rows).
  uint64_t Estimate(uint64_t key) const;

  /// Total insertions so far (the ε-error reference).
  uint64_t TotalCount() const { return total_; }

  size_t Width() const { return width_; }
  size_t Depth() const { return depth_; }

  /// Storage footprint in 64-bit words.
  size_t WordsUsed() const { return cells_.size() + depth_; }

  /// Words EncodeTo() appends: geometry + total + the counter cells.
  size_t EncodedWords() const { return 3 + cells_.size(); }

  /// Zeroes all counters.
  void Clear();

  /// Appends the sketch contents (geometry, total, counters) to the
  /// encoder, so an algorithm mid-epoch can forward or checkpoint its
  /// sketch. Row seeds are derived from the construction seed and are
  /// not serialized; DecodeFrom therefore requires a sketch built with
  /// the same seed and geometry.
  void EncodeTo(StateEncoder* encoder) const;

  /// Restores counters from a message written by EncodeTo into this
  /// sketch. Fails (returns false, sketch unchanged) on geometry
  /// mismatch or a malformed message.
  bool DecodeFrom(StateDecoder* decoder);

 private:
  size_t CellIndex(size_t row, uint64_t key) const;

  size_t width_;
  size_t depth_;
  uint64_t total_ = 0;
  std::vector<uint64_t> row_seeds_;
  std::vector<uint64_t> cells_;  // depth_ rows of width_ counters
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_COUNT_MIN_H_
