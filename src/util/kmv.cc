#include "util/kmv.h"

#include <algorithm>

namespace setcover {
namespace {

uint64_t MixHash(uint64_t key, uint64_t seed) {
  uint64_t x = key + 0x9e3779b97f4a7c15ULL * (seed | 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

KmvSketch::KmvSketch(size_t k, uint64_t seed)
    : k_(std::max<size_t>(1, k)), seed_(seed) {}

void KmvSketch::Add(uint64_t key) {
  uint64_t h = MixHash(key, seed_);
  if (seen_.count(h) != 0) return;
  if (heap_.size() < k_) {
    heap_.push(h);
    seen_.insert(h);
    return;
  }
  if (h < heap_.top()) {
    seen_.erase(heap_.top());
    heap_.pop();
    heap_.push(h);
    seen_.insert(h);
  }
}

double KmvSketch::EstimateDistinct() const {
  if (heap_.size() < k_) return double(heap_.size());
  // kth smallest hash as a fraction of the hash space.
  double fraction = double(heap_.top()) / double(~uint64_t{0});
  if (fraction <= 0.0) return double(k_);
  return double(k_ - 1) / fraction;
}

}  // namespace setcover
