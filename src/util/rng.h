#ifndef SETCOVER_UTIL_RNG_H_
#define SETCOVER_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace setcover {

/// Deterministic pseudo-random number generator.
///
/// The generator is xoshiro256** seeded through SplitMix64, which gives
/// high-quality streams from arbitrary 64-bit seeds. All randomized
/// algorithms in this library draw exclusively from `Rng`, so a fixed seed
/// reproduces a run bit-for-bit (a property the tests rely on).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds yield equal
  /// streams; distinct seeds yield (for all practical purposes)
  /// independent streams.
  explicit Rng(uint64_t seed);

  /// Returns the next 64 uniformly random bits.
  uint64_t Next64();

  /// Returns a uniformly random integer in `[0, bound)`. `bound` must be
  /// positive. Uses rejection sampling, so the result is exactly uniform.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniformly random integer in `[lo, hi]` (inclusive).
  /// Requires `lo <= hi`.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Returns a uniformly random double in `[0, 1)` with 53 random bits.
  double UniformDouble();

  /// Fills `out` with exactly the values the next out.size() calls to
  /// UniformDouble() would return, advancing the state identically —
  /// the block-sampling primitive behind the vectorized Bernoulli scans
  /// (util/sampling.h).
  void FillUniformDoubles(std::span<double> out);

  /// Returns true with probability `p` (clamped to `[0, 1]`). This is the
  /// `Coin(p)` primitive used throughout the paper's algorithm listings.
  bool Bernoulli(double p);

  /// Returns a uniformly random `k`-subset of `{0, ..., universe - 1}`,
  /// in sorted order. Requires `k <= universe`. Runs in O(k) expected
  /// time for small k (Floyd's algorithm) plus a sort.
  std::vector<uint32_t> RandomSubset(uint32_t universe, uint32_t k);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives a new generator whose stream is independent of this one for
  /// any practical purpose. Used to hand child components their own
  /// deterministic randomness.
  Rng Fork();

  /// Raw generator state, for algorithm-state serialization (the
  /// communication experiments forward the RNG along with the rest of
  /// the state so a successor party continues the exact coin sequence).
  std::array<uint64_t, 4> GetState() const;
  void SetState(const std::array<uint64_t, 4>& state);

 private:
  uint64_t state_[4];
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_RNG_H_
