#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace setcover {

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;
  // The caller participates in RunIndexed, so `threads`-way parallelism
  // needs threads - 1 workers.
  workers_.reserve(threads - 1);
  for (size_t t = 0; t + 1 < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainJob(std::unique_lock<std::mutex>& lock) {
  while (job_.next < job_.count) {
    const size_t index = job_.next++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*job_.fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error) job_.errors[index] = error;
    if (--job_.remaining == 0) {
      has_job_ = false;
      job_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Wait for *claimable* work — a job whose indices are all claimed
    // but not yet finished must not wake us, or we would spin.
    work_ready_.wait(lock, [this] {
      return (has_job_ && job_.next < job_.count) || shutdown_;
    });
    if (has_job_) {
      DrainJob(lock);
    } else if (shutdown_) {
      return;
    }
  }
}

void ThreadPool::RunIndexed(size_t count,
                            const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_.fn = &fn;
  job_.count = count;
  job_.next = 0;
  job_.remaining = count;
  job_.errors.assign(count, nullptr);
  has_job_ = true;
  work_ready_.notify_all();
  // The calling thread helps drain, then waits for stragglers.
  DrainJob(lock);
  job_done_.wait(lock, [this] { return !has_job_; });
  for (std::exception_ptr& error : job_.errors) {
    if (error) {
      std::exception_ptr first = error;
      job_.errors.clear();
      lock.unlock();
      std::rethrow_exception(first);
    }
  }
  return;
}

TaskQueue::TaskQueue(size_t threads, size_t max_pending)
    : max_pending_(std::max<size_t>(1, max_pending)) {
  const size_t count = std::max<size_t>(1, threads);
  workers_.reserve(count);
  for (size_t t = 0; t < count; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskQueue::~TaskQueue() {
  Stop();
  for (std::thread& worker : workers_) worker.join();
}

bool TaskQueue::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return false;
    if (queue_.size() >= max_pending_) {
      ++rejected_;
      return false;
    }
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

void TaskQueue::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void TaskQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  task_ready_.notify_all();
}

size_t TaskQueue::Pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t TaskQueue::Rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

void TaskQueue::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task_ready_.wait(lock, [this] { return !queue_.empty() || stopped_; });
    if (queue_.empty()) return;  // stopped and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_.notify_all();
  }
}

}  // namespace setcover
