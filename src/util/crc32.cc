#include "util/crc32.h"

#include <array>

#include "util/simd.h"

namespace setcover {
namespace {

std::array<uint32_t, 256> BuildTable(uint32_t polynomial) {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (polynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

uint32_t TableCrc(const std::array<uint32_t, 256>& table, const void* data,
                  size_t bytes, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

uint32_t Crc32(const void* data, size_t bytes, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable(0xEDB88320u);
  return TableCrc(kTable, data, bytes, seed);
}

uint32_t Crc32cPortable(const void* data, size_t bytes, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable(0x82F63B78u);
  return TableCrc(kTable, data, bytes, seed);
}

uint32_t Crc32c(const void* data, size_t bytes, uint32_t seed) {
  // The SSE4.2 crc32-instruction implementation lives in util/simd.cc
  // (the single home for intrinsics); the kernel table picks it exactly
  // when the CPU supports it, so values are identical on every tier.
  return simd::Active().crc32c(data, bytes, seed);
}

}  // namespace setcover
