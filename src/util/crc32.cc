#include "util/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <nmmintrin.h>
#define SETCOVER_CRC32C_HW 1
#endif

namespace setcover {
namespace {

std::array<uint32_t, 256> BuildTable(uint32_t polynomial) {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (polynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

uint32_t TableCrc(const std::array<uint32_t, 256>& table, const void* data,
                  size_t bytes, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

#ifdef SETCOVER_CRC32C_HW
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t bytes,
                                                          uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t crc = seed ^ 0xFFFFFFFFu;
  while (bytes >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = _mm_crc32_u64(crc, word);
    p += 8;
    bytes -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (bytes-- > 0) crc32 = _mm_crc32_u8(crc32, *p++);
  return crc32 ^ 0xFFFFFFFFu;
}
#endif

}  // namespace

uint32_t Crc32(const void* data, size_t bytes, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable(0xEDB88320u);
  return TableCrc(kTable, data, bytes, seed);
}

uint32_t Crc32cPortable(const void* data, size_t bytes, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable(0x82F63B78u);
  return TableCrc(kTable, data, bytes, seed);
}

uint32_t Crc32c(const void* data, size_t bytes, uint32_t seed) {
#ifdef SETCOVER_CRC32C_HW
  static const bool kHaveSse42 = __builtin_cpu_supports("sse4.2");
  if (kHaveSse42) return Crc32cHardware(data, bytes, seed);
#endif
  return Crc32cPortable(data, bytes, seed);
}

}  // namespace setcover
