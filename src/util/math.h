#ifndef SETCOVER_UTIL_MATH_H_
#define SETCOVER_UTIL_MATH_H_

#include <cstdint>

namespace setcover {

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

/// ceil(log2(x)) for x >= 1 (CeilLog2(1) == 0).
int CeilLog2(uint64_t x);

/// ceil(a / b) for b > 0.
uint64_t CeilDiv(uint64_t a, uint64_t b);

/// floor(sqrt(x)), exact for all uint64 inputs.
uint64_t ISqrt(uint64_t x);

/// Natural log of x, with Ln(x <= 1) clamped to return at least `floor_at`
/// (used where the paper divides by log factors that would vanish on tiny
/// instances).
double LnAtLeast(double x, double floor_at);

/// log2(x) as a double, with the same clamping convention.
double Log2AtLeast(double x, double floor_at);

}  // namespace setcover

#endif  // SETCOVER_UTIL_MATH_H_
