#include "util/bitset.h"

// DynamicBitset is header-only; this translation unit exists so the
// header is compiled standalone at least once (self-containedness check).
