#ifndef SETCOVER_UTIL_SAMPLING_H_
#define SETCOVER_UTIL_SAMPLING_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "util/rng.h"
#include "util/simd.h"

namespace setcover {

/// Branch-free Bernoulli scan: invokes `fn(i)` for exactly the indices
/// i in [0, count) for which `rng.Bernoulli(p)` would have returned
/// true in a plain loop, drawing the identical coin sequence.
///
/// Bit-identity with the scalar loop rests on two contracts:
///  * Rng::Bernoulli draws one UniformDouble() if and only if
///    0 < p < 1 (p <= 0 is false and p >= 1 is true without touching
///    the generator) — mirrored here by the early-outs;
///  * UniformDouble() values are exact binary64 ((x >> 11) · 2⁻⁵³), so
///    the kernel's `coin < p` compare agrees with the scalar compare on
///    every tier.
///
/// The coins are drawn in blocks and scanned with the active SIMD
/// threshold kernel, which turns the per-set sampling loops (KK D_0,
/// random-order epoch 0 / tracking samples) from one branch per set
/// into one compare per lane.
template <typename Fn>
void ForEachBernoulliHit(Rng& rng, uint32_t count, double p, Fn&& fn) {
  if (count == 0 || p <= 0.0) return;
  if (p >= 1.0) {
    for (uint32_t i = 0; i < count; ++i) fn(i);
    return;
  }
  constexpr size_t kBlock = 512;
  double coins[kBlock];
  uint32_t hits[kBlock];
  const simd::Kernels& kernels = simd::Active();
  for (uint64_t base = 0; base < count; base += kBlock) {
    const size_t chunk = std::min<size_t>(kBlock, count - base);
    rng.FillUniformDoubles(std::span(coins, chunk));
    const size_t hit_count =
        kernels.less_than_indices_f64(coins, chunk, p, hits);
    for (size_t j = 0; j < hit_count; ++j) {
      fn(static_cast<uint32_t>(base + hits[j]));
    }
  }
}

}  // namespace setcover

#endif  // SETCOVER_UTIL_SAMPLING_H_
