#ifndef SETCOVER_UTIL_THREAD_POOL_H_
#define SETCOVER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace setcover {

/// Fixed-size worker pool for the parallel multi-run drivers
/// (core/multi_run.h). The design goal is *determinism*, not generic
/// task scheduling: RunIndexed executes fn(0..count-1) with each index
/// run exactly once, and because every sub-run owns its seeded Rng the
/// results are bit-identical to sequential execution regardless of how
/// indices land on threads.
///
/// Exceptions thrown by tasks are captured per index and the one with
/// the smallest index is rethrown after all tasks finish — again
/// independent of scheduling, so a failing parallel run fails the same
/// way at any thread count.
class ThreadPool {
 public:
  /// Builds a pool delivering `threads`-way parallelism including the
  /// calling thread (threads - 1 workers are spawned). 0 and 1 both
  /// mean "no workers": tasks run inline on the calling thread.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, count). The calling thread
  /// participates in draining the indices (capped by count). Blocks
  /// until every index completed, then rethrows the lowest-index
  /// captured exception, if any.
  void RunIndexed(size_t count, const std::function<void(size_t)>& fn);

  /// Worker threads owned by the pool (0 means inline execution).
  size_t ThreadCount() const { return workers_.size(); }

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t next = 0;       // next index to claim
    size_t remaining = 0;  // indices not yet completed
    std::vector<std::exception_ptr> errors;
  };

  void WorkerLoop();
  /// Claims and runs indices of the current job until none remain.
  /// Caller must hold `mutex_`; the lock is released around fn calls.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  Job job_;
  bool has_job_ = false;
  bool shutdown_ = false;
};

/// Bounded task scheduler — the admission-control sibling of
/// ThreadPool, built for the long-lived session server
/// (src/server/server.h). Where ThreadPool runs one finite indexed job
/// to completion, TaskQueue accepts a rolling stream of independent
/// tasks into a *bounded* queue: TrySubmit refuses (returns false)
/// instead of queueing unboundedly when `max_pending` tasks are already
/// waiting, which is what lets the server shed load with a RetryAfter
/// reply instead of accumulating latency until it falls over.
///
/// Tasks must not throw — an escaping exception would tear down the
/// worker thread. The server's tasks reply with an error frame instead.
class TaskQueue {
 public:
  /// Spawns `threads` dedicated workers (min 1) draining a queue that
  /// holds at most `max_pending` (min 1) not-yet-started tasks.
  TaskQueue(size_t threads, size_t max_pending);

  /// Stops accepting, runs what was already accepted, joins.
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Accepts `task` for asynchronous execution, unless the queue is at
  /// capacity or the queue is stopped — then returns false and the task
  /// is dropped (the caller owns the overload response).
  bool TrySubmit(std::function<void()> task);

  /// Blocks until every accepted task has finished (queue empty and no
  /// task running). New submissions during a drain keep it waiting.
  void Drain();

  /// Stops accepting new tasks; accepted tasks still run. Idempotent.
  void Stop();

  /// Not-yet-started tasks currently queued.
  size_t Pending() const;

  /// Submissions refused because the queue was full (not stopped) —
  /// the server exports this as its sheds counter.
  uint64_t Rejected() const;

  size_t MaxPending() const { return max_pending_; }
  size_t ThreadCount() const { return workers_.size(); }

 private:
  void WorkerLoop();

  const size_t max_pending_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t running_ = 0;
  uint64_t rejected_ = 0;
  bool stopped_ = false;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_THREAD_POOL_H_
