#ifndef SETCOVER_UTIL_THREAD_POOL_H_
#define SETCOVER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace setcover {

/// Fixed-size worker pool for the parallel multi-run drivers
/// (core/multi_run.h). The design goal is *determinism*, not generic
/// task scheduling: RunIndexed executes fn(0..count-1) with each index
/// run exactly once, and because every sub-run owns its seeded Rng the
/// results are bit-identical to sequential execution regardless of how
/// indices land on threads.
///
/// Exceptions thrown by tasks are captured per index and the one with
/// the smallest index is rethrown after all tasks finish — again
/// independent of scheduling, so a failing parallel run fails the same
/// way at any thread count.
class ThreadPool {
 public:
  /// Builds a pool delivering `threads`-way parallelism including the
  /// calling thread (threads - 1 workers are spawned). 0 and 1 both
  /// mean "no workers": tasks run inline on the calling thread.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, count). The calling thread
  /// participates in draining the indices (capped by count). Blocks
  /// until every index completed, then rethrows the lowest-index
  /// captured exception, if any.
  void RunIndexed(size_t count, const std::function<void(size_t)>& fn);

  /// Worker threads owned by the pool (0 means inline execution).
  size_t ThreadCount() const { return workers_.size(); }

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t next = 0;       // next index to claim
    size_t remaining = 0;  // indices not yet completed
    std::vector<std::exception_ptr> errors;
  };

  void WorkerLoop();
  /// Claims and runs indices of the current job until none remain.
  /// Caller must hold `mutex_`; the lock is released around fn calls.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  Job job_;
  bool has_job_ = false;
  bool shutdown_ = false;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_THREAD_POOL_H_
