#include "util/flags.h"

#include <cstdlib>

namespace setcover {

FlagSet FlagSet::Parse(int argc, char** argv) {
  FlagSet flags;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is another flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool FlagSet::Has(const std::string& key) const {
  touched_[key] = true;
  return values_.count(key) != 0;
}

std::string FlagSet::GetString(const std::string& key,
                               const std::string& fallback) const {
  touched_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t FlagSet::GetInt(const std::string& key, int64_t fallback) const {
  touched_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& key, double fallback) const {
  touched_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& key, bool fallback) const {
  touched_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> FlagSet::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (touched_.find(key) == touched_.end()) unused.push_back(key);
  }
  return unused;
}

}  // namespace setcover
