#ifndef SETCOVER_UTIL_EPOCH_ARRAY_H_
#define SETCOVER_UTIL_EPOCH_ARRAY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace setcover {

/// Dense map over ids in `[0, size)` with O(1) bulk clear, built for
/// per-edge hot paths that previously probed an `unordered_map`.
///
/// Every slot carries the epoch in which it was last written; a slot
/// whose stamp differs from the current epoch reads as absent. Lookup
/// is therefore a single indexed load (no hashing, no probing), and the
/// per-epoch reset Algorithm 1 performs on its tracking tables becomes
/// a counter bump instead of an O(occupancy) rehash.
///
/// The meter cost of the *information* stored here is unchanged from
/// the hash containers it replaces (entries are still charged per item
/// by the owning algorithm); the dense stamps are container overhead in
/// the sense of util/memory_meter.h and are excluded from word
/// accounting, exactly as hash-table buckets were.
template <typename V>
class EpochArray {
 public:
  EpochArray() = default;

  /// Resizes to cover ids `[0, size)` and clears all entries.
  void Assign(size_t size) {
    values_.assign(size, V{});
    stamps_.assign(size, 0);
    epoch_ = 1;
    live_ = 0;
  }

  /// Removes every entry in O(1) (epoch bump).
  void ClearAll() {
    if (++epoch_ == 0) {
      // Stamp wraparound: re-zero so stale slots cannot alias the new
      // epoch. Happens once per 2^32 clears.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
    live_ = 0;
  }

  bool Contains(uint32_t id) const { return stamps_[id] == epoch_; }

  /// Pointer to the entry for `id`, or nullptr when absent.
  const V* Find(uint32_t id) const {
    return stamps_[id] == epoch_ ? &values_[id] : nullptr;
  }

  /// Reference to the entry for `id`, inserting a default-constructed
  /// value first when absent. Returns (ref, inserted) like try_emplace.
  std::pair<V&, bool> Slot(uint32_t id) {
    bool inserted = stamps_[id] != epoch_;
    if (inserted) {
      stamps_[id] = epoch_;
      values_[id] = V{};
      ++live_;
    }
    return {values_[id], inserted};
  }

  /// Number of live entries.
  size_t Size() const { return live_; }

  /// Universe size (capacity in ids).
  size_t UniverseSize() const { return stamps_.size(); }

  /// Live (id, value) pairs in ascending id order — the canonical
  /// ordering StateEncoder::PutMap produces, so dense state encodes
  /// bit-identically to the hash map it replaced.
  std::vector<std::pair<uint32_t, uint32_t>> SortedEntries() const {
    std::vector<std::pair<uint32_t, uint32_t>> entries;
    entries.reserve(live_);
    for (uint32_t id = 0; id < stamps_.size(); ++id) {
      if (stamps_[id] == epoch_) {
        entries.emplace_back(id, static_cast<uint32_t>(values_[id]));
      }
    }
    return entries;
  }

  /// Calls fn(id, value&) for every live entry in ascending id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t id = 0; id < stamps_.size(); ++id) {
      if (stamps_[id] == epoch_) fn(id, values_[id]);
    }
  }

  friend void swap(EpochArray& a, EpochArray& b) {
    std::swap(a.values_, b.values_);
    std::swap(a.stamps_, b.stamps_);
    std::swap(a.epoch_, b.epoch_);
    std::swap(a.live_, b.live_);
  }

 private:
  std::vector<V> values_;
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 1;
  size_t live_ = 0;
};

/// Dense set over ids in `[0, size)` with O(1) bulk clear — the
/// membership-only sibling of EpochArray (stamps without values), used
/// where an `unordered_set` sat on the hot path.
class EpochSet {
 public:
  EpochSet() = default;

  void Assign(size_t size) {
    stamps_.assign(size, 0);
    epoch_ = 1;
    live_ = 0;
  }

  void ClearAll() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
    live_ = 0;
  }

  bool Contains(uint32_t id) const { return stamps_[id] == epoch_; }

  /// Inserts `id`; returns true when it was absent.
  bool Insert(uint32_t id) {
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    ++live_;
    return true;
  }

  size_t Size() const { return live_; }
  size_t UniverseSize() const { return stamps_.size(); }

  /// Live ids ascending — matches StateEncoder::PutSet's canonical
  /// sorted dump.
  std::vector<uint32_t> SortedIds() const {
    std::vector<uint32_t> ids;
    ids.reserve(live_);
    for (uint32_t id = 0; id < stamps_.size(); ++id) {
      if (stamps_[id] == epoch_) ids.push_back(id);
    }
    return ids;
  }

  friend void swap(EpochSet& a, EpochSet& b) {
    std::swap(a.stamps_, b.stamps_);
    std::swap(a.epoch_, b.epoch_);
    std::swap(a.live_, b.live_);
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 1;
  size_t live_ = 0;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_EPOCH_ARRAY_H_
