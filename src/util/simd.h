#ifndef SETCOVER_UTIL_SIMD_H_
#define SETCOVER_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace setcover {
namespace simd {

/// Dispatch tiers, ordered by capability. Higher tiers are only ever
/// selected when the CPU supports them, so calling through the active
/// kernel table is always safe.
enum class Level : int {
  kScalar = 0,  // portable C++, the reference semantics
  kSse42 = 1,   // SSE4.2: hardware CRC-32C + POPCNT
  kAvx2 = 2,    // AVX2: gathers, 256-bit compares, vectorized scans
};

/// Human-readable tier name ("scalar", "sse4.2", "avx2").
const char* LevelName(Level level);

/// Parses a tier name as accepted by the SETCOVER_SIMD_LEVEL environment
/// variable: "scalar", "sse4.2" (or "sse42"), "avx2". Returns false on
/// anything else. Exposed for tests.
bool ParseLevel(const char* name, Level* out);

/// Highest tier this CPU can execute.
Level MaxSupportedLevel();

/// The tier in effect: MaxSupportedLevel() clamped down by the
/// SETCOVER_SIMD_LEVEL environment variable (read once, at first use).
/// Requesting a tier above what the CPU supports silently clamps to the
/// supported maximum, so a forced-tier test matrix can list every tier
/// and still run everywhere.
Level ActiveLevel();

/// The batch kernels every tier must implement. All kernels are *pure*
/// — identical outputs for identical inputs at every tier — which is
/// what lets the vectorized batch paths stay bit-identical to the
/// scalar reference (tests/simd_kernel_test.cc proves it per kernel,
/// tests/simd_dispatch_test.cc end-to-end).
///
/// Mask convention: `out_mask` packs result bit i at bit (i % 64) of
/// word i / 64 — the same layout as DynamicBitset — with every bit
/// beyond `count` in the last word zero. Callers size out_mask to
/// (count + 63) / 64 words.
struct Kernels {
  /// out_mask bit i = words[ids[i] / 64] >> (ids[i] % 64) & 1 — a
  /// batched DynamicBitset::Test over gathered indices.
  void (*gather_bits)(const uint64_t* words, const uint32_t* ids,
                      size_t count, uint64_t* out_mask);

  /// out_mask bit i = (values[ids[i]] == needle) — the batched
  /// first_set[u] == kNoSet screen.
  void (*gather_equal_u32)(const uint32_t* values, const uint32_t* ids,
                           size_t count, uint32_t needle,
                           uint64_t* out_mask);

  /// Total popcount of words[0, count).
  uint64_t (*popcount_words)(const uint64_t* words, size_t count);

  /// Σ popcount(a[i] & ~b[i]) — the greedy recount primitive (bits of
  /// `a` not yet covered by `b`).
  uint64_t (*popcount_andnot_words)(const uint64_t* a, const uint64_t* b,
                                    size_t count);

  /// Branch-free threshold scan: writes the indices i with
  /// values[i] < threshold to out_indices (ascending) and returns how
  /// many — the Bernoulli block-sampling primitive (coin < p).
  size_t (*less_than_indices_f64)(const double* values, size_t count,
                                  double threshold, uint32_t* out_indices);

  /// CRC-32C (Castagnoli) with the Crc32c seed contract; the scalar
  /// tier is the table-driven portable implementation, SSE4.2+ the
  /// crc32 instruction. util/crc32.cc routes through this.
  uint32_t (*crc32c)(const void* data, size_t bytes, uint32_t seed);
};

/// The kernel table for the active tier.
const Kernels& Active();

/// The kernel table for a specific tier, clamped to MaxSupportedLevel()
/// (so the returned table is always executable on this CPU). The
/// differential tests drive every tier through this.
const Kernels& ForLevel(Level level);

/// Overrides the active tier in-process (clamped to the supported
/// maximum) and returns the previous tier, so tests can run the same
/// code under every tier without re-execing. Not thread-safe: call only
/// from single-threaded test setup.
Level ForceLevelForTest(Level level);

}  // namespace simd
}  // namespace setcover

#endif  // SETCOVER_UTIL_SIMD_H_
