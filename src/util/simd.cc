#include "util/simd.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "util/crc32.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SETCOVER_SIMD_X86 1
#endif

namespace setcover {
namespace simd {
namespace {

// ---------------------------------------------------------------------
// Reference bodies. Marked always_inline so each tier's wrapper embeds
// them under its own target attribute: the SSE4.2 tier gets POPCNT
// codegen for the exact same source, which keeps the semantics of the
// non-intrinsic kernels identical by construction.

__attribute__((always_inline)) inline void GatherBitsBody(
    const uint64_t* words, const uint32_t* ids, size_t count,
    uint64_t* out_mask) {
  uint64_t cur = 0;
  size_t i = 0;
  for (; i < count; ++i) {
    const uint32_t id = ids[i];
    cur |= ((words[id >> 6] >> (id & 63)) & uint64_t{1}) << (i & 63);
    if ((i & 63) == 63) {
      out_mask[i >> 6] = cur;
      cur = 0;
    }
  }
  if (count & 63) out_mask[count >> 6] = cur;
}

__attribute__((always_inline)) inline void GatherEqualU32Body(
    const uint32_t* values, const uint32_t* ids, size_t count,
    uint32_t needle, uint64_t* out_mask) {
  uint64_t cur = 0;
  size_t i = 0;
  for (; i < count; ++i) {
    cur |= uint64_t{values[ids[i]] == needle ? 1u : 0u} << (i & 63);
    if ((i & 63) == 63) {
      out_mask[i >> 6] = cur;
      cur = 0;
    }
  }
  if (count & 63) out_mask[count >> 6] = cur;
}

__attribute__((always_inline)) inline uint64_t PopcountWordsBody(
    const uint64_t* words, size_t count) {
  uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    t0 += uint64_t(std::popcount(words[i]));
    t1 += uint64_t(std::popcount(words[i + 1]));
    t2 += uint64_t(std::popcount(words[i + 2]));
    t3 += uint64_t(std::popcount(words[i + 3]));
  }
  for (; i < count; ++i) t0 += uint64_t(std::popcount(words[i]));
  return t0 + t1 + t2 + t3;
}

__attribute__((always_inline)) inline uint64_t PopcountAndnotBody(
    const uint64_t* a, const uint64_t* b, size_t count) {
  uint64_t t0 = 0, t1 = 0;
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    t0 += uint64_t(std::popcount(a[i] & ~b[i]));
    t1 += uint64_t(std::popcount(a[i + 1] & ~b[i + 1]));
  }
  for (; i < count; ++i) t0 += uint64_t(std::popcount(a[i] & ~b[i]));
  return t0 + t1;
}

__attribute__((always_inline)) inline size_t LessThanIndicesBody(
    const double* values, size_t count, double threshold,
    uint32_t* out_indices) {
  size_t found = 0;
  for (size_t i = 0; i < count; ++i) {
    out_indices[found] = uint32_t(i);  // branch-free emit
    found += values[i] < threshold ? 1 : 0;
  }
  return found;
}

// ---------------------------------------------------------------------
// Scalar tier.

void GatherBitsScalar(const uint64_t* words, const uint32_t* ids,
                      size_t count, uint64_t* out_mask) {
  GatherBitsBody(words, ids, count, out_mask);
}

void GatherEqualU32Scalar(const uint32_t* values, const uint32_t* ids,
                          size_t count, uint32_t needle, uint64_t* out_mask) {
  GatherEqualU32Body(values, ids, count, needle, out_mask);
}

uint64_t PopcountWordsScalar(const uint64_t* words, size_t count) {
  return PopcountWordsBody(words, count);
}

uint64_t PopcountAndnotScalar(const uint64_t* a, const uint64_t* b,
                              size_t count) {
  return PopcountAndnotBody(a, b, count);
}

size_t LessThanIndicesScalar(const double* values, size_t count,
                             double threshold, uint32_t* out_indices) {
  return LessThanIndicesBody(values, count, threshold, out_indices);
}

constexpr Kernels kScalarKernels = {
    GatherBitsScalar,    GatherEqualU32Scalar,  PopcountWordsScalar,
    PopcountAndnotScalar, LessThanIndicesScalar, Crc32cPortable,
};

#ifdef SETCOVER_SIMD_X86

// ---------------------------------------------------------------------
// SSE4.2 tier: the hardware CRC-32C instruction (moved here from
// util/crc32.cc, which now routes through the kernel table) plus POPCNT
// codegen for the word kernels. No 256-bit gathers exist at this tier,
// so the gather/scan kernels are the reference bodies compiled with the
// tier's ISA enabled.

__attribute__((target("sse4.2"))) uint32_t Crc32cSse42(const void* data,
                                                       size_t bytes,
                                                       uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t crc = seed ^ 0xFFFFFFFFu;
  while (bytes >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = _mm_crc32_u64(crc, word);
    p += 8;
    bytes -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (bytes-- > 0) crc32 = _mm_crc32_u8(crc32, *p++);
  return crc32 ^ 0xFFFFFFFFu;
}

__attribute__((target("sse4.2,popcnt"))) void GatherBitsSse42(
    const uint64_t* words, const uint32_t* ids, size_t count,
    uint64_t* out_mask) {
  GatherBitsBody(words, ids, count, out_mask);
}

__attribute__((target("sse4.2,popcnt"))) void GatherEqualU32Sse42(
    const uint32_t* values, const uint32_t* ids, size_t count,
    uint32_t needle, uint64_t* out_mask) {
  GatherEqualU32Body(values, ids, count, needle, out_mask);
}

__attribute__((target("sse4.2,popcnt"))) uint64_t PopcountWordsSse42(
    const uint64_t* words, size_t count) {
  return PopcountWordsBody(words, count);
}

__attribute__((target("sse4.2,popcnt"))) uint64_t PopcountAndnotSse42(
    const uint64_t* a, const uint64_t* b, size_t count) {
  return PopcountAndnotBody(a, b, count);
}

__attribute__((target("sse4.2,popcnt"))) size_t LessThanIndicesSse42(
    const double* values, size_t count, double threshold,
    uint32_t* out_indices) {
  return LessThanIndicesBody(values, count, threshold, out_indices);
}

constexpr Kernels kSse42Kernels = {
    GatherBitsSse42,    GatherEqualU32Sse42,  PopcountWordsSse42,
    PopcountAndnotSse42, LessThanIndicesSse42, Crc32cSse42,
};

// ---------------------------------------------------------------------
// AVX2 tier: real gathers and vectorized compares. Every kernel keeps
// the scalar mask/ordering contract exactly; the tails reuse the scalar
// logic so partial words behave identically.

__attribute__((target("avx2"))) void GatherBitsAvx2(const uint64_t* words,
                                                    const uint32_t* ids,
                                                    size_t count,
                                                    uint64_t* out_mask) {
  const __m256i kSixtyThree = _mm256_set1_epi64x(63);
  const __m256i kOne = _mm256_set1_epi64x(1);
  uint64_t cur = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i ids4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    const __m256i idx = _mm256_cvtepu32_epi64(ids4);
    const __m256i word_idx = _mm256_srli_epi64(idx, 6);
    const __m256i shift = _mm256_and_si256(idx, kSixtyThree);
    const __m256i gathered = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(words), word_idx, 8);
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi64(gathered, shift), kOne);
    const unsigned mask4 = unsigned(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(bit, kOne))));
    cur |= uint64_t{mask4} << (i & 63);
    if ((i & 63) == 60) {
      out_mask[i >> 6] = cur;
      cur = 0;
    }
  }
  for (; i < count; ++i) {
    const uint32_t id = ids[i];
    cur |= ((words[id >> 6] >> (id & 63)) & uint64_t{1}) << (i & 63);
    if ((i & 63) == 63) {
      out_mask[i >> 6] = cur;
      cur = 0;
    }
  }
  if (count & 63) out_mask[count >> 6] = cur;
}

__attribute__((target("avx2"))) void GatherEqualU32Avx2(
    const uint32_t* values, const uint32_t* ids, size_t count,
    uint32_t needle, uint64_t* out_mask) {
  const __m256i kNeedle = _mm256_set1_epi32(int(needle));
  uint64_t cur = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m256i gathered =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(values), idx, 4);
    const unsigned mask8 = unsigned(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(gathered, kNeedle))));
    cur |= uint64_t{mask8} << (i & 63);
    if ((i & 63) == 56) {
      out_mask[i >> 6] = cur;
      cur = 0;
    }
  }
  for (; i < count; ++i) {
    cur |= uint64_t{values[ids[i]] == needle ? 1u : 0u} << (i & 63);
    if ((i & 63) == 63) {
      out_mask[i >> 6] = cur;
      cur = 0;
    }
  }
  if (count & 63) out_mask[count >> 6] = cur;
}

__attribute__((target("avx2,popcnt"))) uint64_t PopcountWordsAvx2(
    const uint64_t* words, size_t count) {
  return PopcountWordsBody(words, count);
}

__attribute__((target("avx2,popcnt"))) uint64_t PopcountAndnotAvx2(
    const uint64_t* a, const uint64_t* b, size_t count) {
  return PopcountAndnotBody(a, b, count);
}

__attribute__((target("avx2"))) size_t LessThanIndicesAvx2(
    const double* values, size_t count, double threshold,
    uint32_t* out_indices) {
  const __m256d kThreshold = _mm256_set1_pd(threshold);
  size_t found = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    unsigned hits = unsigned(
        _mm256_movemask_pd(_mm256_cmp_pd(v, kThreshold, _CMP_LT_OQ)));
    while (hits) {
      out_indices[found++] = uint32_t(i + unsigned(std::countr_zero(hits)));
      hits &= hits - 1;
    }
  }
  for (; i < count; ++i) {
    out_indices[found] = uint32_t(i);
    found += values[i] < threshold ? 1 : 0;
  }
  return found;
}

constexpr Kernels kAvx2Kernels = {
    GatherBitsAvx2,    GatherEqualU32Avx2,  PopcountWordsAvx2,
    PopcountAndnotAvx2, LessThanIndicesAvx2, Crc32cSse42,
};

#endif  // SETCOVER_SIMD_X86

const Kernels& TableFor(Level level) {
  switch (level) {
#ifdef SETCOVER_SIMD_X86
    case Level::kAvx2:
      return kAvx2Kernels;
    case Level::kSse42:
      return kSse42Kernels;
#endif
    default:
      return kScalarKernels;
  }
}

Level ClampToSupported(Level level) {
  const Level max = MaxSupportedLevel();
  return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

struct ActiveState {
  Level level;
  const Kernels* kernels;
};

ActiveState Resolve() {
  Level level = MaxSupportedLevel();
  if (const char* env = std::getenv("SETCOVER_SIMD_LEVEL")) {
    Level requested;
    if (ParseLevel(env, &requested)) level = ClampToSupported(requested);
  }
  return {level, &TableFor(level)};
}

ActiveState& MutableActive() {
  static ActiveState state = Resolve();
  return state;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kSse42:
      return "sse4.2";
    default:
      return "scalar";
  }
}

bool ParseLevel(const char* name, Level* out) {
  if (name == nullptr || out == nullptr) return false;
  const std::string_view v(name);
  if (v == "scalar") {
    *out = Level::kScalar;
  } else if (v == "sse4.2" || v == "sse42") {
    *out = Level::kSse42;
  } else if (v == "avx2") {
    *out = Level::kAvx2;
  } else {
    return false;
  }
  return true;
}

Level MaxSupportedLevel() {
#ifdef SETCOVER_SIMD_X86
  static const Level kMax = [] {
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
    return Level::kScalar;
  }();
  return kMax;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() { return MutableActive().level; }

const Kernels& Active() { return *MutableActive().kernels; }

const Kernels& ForLevel(Level level) {
  return TableFor(ClampToSupported(level));
}

Level ForceLevelForTest(Level level) {
  ActiveState& state = MutableActive();
  const Level previous = state.level;
  state.level = ClampToSupported(level);
  state.kernels = &TableFor(state.level);
  return previous;
}

}  // namespace simd
}  // namespace setcover
