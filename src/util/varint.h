#ifndef SETCOVER_UTIL_VARINT_H_
#define SETCOVER_UTIL_VARINT_H_

#include <cstdint>
#include <vector>

namespace setcover {

/// LEB128 variable-length integers and zig-zag signed mapping — the
/// building blocks of the stream-file v3 chunk payload encoding
/// (stream/stream_file.h). Header-only so the per-edge decode loop
/// inlines into the chunk decoder.

/// Maps signed to unsigned so that small-magnitude values of either
/// sign get short varints: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

/// Appends `value` as an LEB128 varint (7 bits per byte, high bit =
/// continuation); at most 10 bytes for a full uint64.
inline void AppendVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Decodes one varint from [*cursor, end), advancing *cursor past it.
/// Returns false (cursor position unspecified) on a truncated or
/// over-long (> 64-bit) encoding — corrupt input, never valid output
/// of AppendVarint.
inline bool GetVarint(const uint8_t** cursor, const uint8_t* end,
                      uint64_t* value) {
  const uint8_t* p = *cursor;
  if (p < end && *p < 0x80) {  // hot path: one-byte varint
    *value = *p;
    *cursor = p + 1;
    return true;
  }
  uint64_t result = 0;
  for (unsigned shift = 0; shift < 64 && p < end; shift += 7) {
    const uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      *cursor = p;
      return true;
    }
  }
  return false;
}

}  // namespace setcover

#endif  // SETCOVER_UTIL_VARINT_H_
