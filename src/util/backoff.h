#ifndef SETCOVER_UTIL_BACKOFF_H_
#define SETCOVER_UTIL_BACKOFF_H_

#include <cstdint>

namespace setcover {

/// Bounded exponential backoff parameters, used by the run supervisor
/// when a stream source reports a transient fault. All delays are pure
/// arithmetic here — whoever consumes the schedule decides whether (and
/// how) to actually sleep, which keeps the policy deterministic and
/// testable.
struct BackoffPolicy {
  /// Retries allowed per faulting operation before giving up.
  uint32_t max_retries = 8;

  /// Delay before the first retry, in microseconds.
  uint64_t initial_delay_us = 100;

  /// Multiplier applied after every retry (>= 1).
  double multiplier = 2.0;

  /// Ceiling on any single delay, in microseconds.
  uint64_t max_delay_us = 100000;

  /// Fraction of each delay that is randomized away (clamped to
  /// [0, 1]): an emitted delay is uniform in
  /// (base * (1 - jitter), base]. 0 keeps the historical fully
  /// deterministic schedule. Jitter decorrelates the retry storms of
  /// many clients hammering one recovering server.
  double jitter = 0.0;

  /// Seed of the jitter stream. The whole schedule is a pure function
  /// of (policy, seed): equal seeds emit equal delay sequences, which
  /// is what makes jittered backoff unit-testable (backoff_test.cc
  /// pins the bounds and the determinism).
  uint64_t jitter_seed = 1;
};

/// Iterator over one faulting operation's retry schedule:
///
///   ExponentialBackoff backoff(policy);
///   uint64_t delay_us;
///   while (backoff.NextDelay(&delay_us)) { sleep(delay_us); retry(); }
///   // retries exhausted
///
/// Reset() rearms the schedule after a success so the object can be
/// reused for the next fault.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(BackoffPolicy policy = {});

  /// Produces the next delay. Returns false (and leaves *delay_us
  /// untouched) once `max_retries` delays have been handed out.
  bool NextDelay(uint64_t* delay_us);

  /// Rearms the schedule for a fresh operation.
  void Reset();

  /// Delays handed out since the last Reset().
  uint32_t Attempts() const { return attempts_; }

 private:
  BackoffPolicy policy_;
  uint32_t attempts_ = 0;
  uint64_t next_delay_us_ = 0;
  // SplitMix64 state of the jitter stream. Deliberately not rearmed by
  // Reset(): successive operations keep drawing fresh (but seeded, so
  // reproducible) jitter instead of replaying the first operation's.
  uint64_t jitter_state_ = 0;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_BACKOFF_H_
