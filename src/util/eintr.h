#ifndef SETCOVER_UTIL_EINTR_H_
#define SETCOVER_UTIL_EINTR_H_

#include <cerrno>

namespace setcover {

// Retries a syscall expression while it fails with EINTR.
//
// The server's transport loops run in processes that field signals: the
// forked execution backend delivers SIGCHLD to the parent whenever a
// worker exits, and operators send SIGTERM for graceful drain. Any
// blocking read/write/accept in flight when a signal lands returns -1
// with errno == EINTR; without a retry wrapper that surfaces as a
// spurious transport error and tears down a healthy connection.
//
// Usage:
//   ssize_t n = RetryEintr([&] { return ::read(fd, buf, len); });
//
// The callable is invoked at least once and re-invoked while it returns
// a negative value with errno == EINTR. Any other result (success,
// zero/EOF, or a real error) is returned unchanged, with errno intact.
template <typename Call>
auto RetryEintr(Call&& call) -> decltype(call()) {
  for (;;) {
    const auto result = call();
    if (result >= 0 || errno != EINTR) return result;
  }
}

}  // namespace setcover

#endif  // SETCOVER_UTIL_EINTR_H_
