#include "util/count_min.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace setcover {
namespace {

uint64_t MixHash(uint64_t key, uint64_t seed) {
  uint64_t x = key ^ seed;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(std::max<size_t>(1, width)),
      depth_(std::max<size_t>(1, depth)),
      cells_(std::max<size_t>(1, width) * std::max<size_t>(1, depth), 0) {
  Rng rng(seed);
  row_seeds_.reserve(depth_);
  for (size_t r = 0; r < depth_; ++r) row_seeds_.push_back(rng.Next64());
}

CountMinSketch CountMinSketch::WithGuarantees(double epsilon, double delta,
                                              uint64_t seed) {
  size_t width = static_cast<size_t>(
      std::ceil(std::exp(1.0) / std::max(1e-9, epsilon)));
  size_t depth = static_cast<size_t>(
      std::ceil(std::log(1.0 / std::clamp(delta, 1e-12, 0.5))));
  return CountMinSketch(width, depth, seed);
}

size_t CountMinSketch::CellIndex(size_t row, uint64_t key) const {
  return row * width_ + MixHash(key, row_seeds_[row]) % width_;
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  for (size_t r = 0; r < depth_; ++r) cells_[CellIndex(r, key)] += count;
  total_ += count;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = ~uint64_t{0};
  for (size_t r = 0; r < depth_; ++r) {
    best = std::min(best, cells_[CellIndex(r, key)]);
  }
  return best;
}

void CountMinSketch::Clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
  total_ = 0;
}

void CountMinSketch::EncodeTo(StateEncoder* encoder) const {
  encoder->PutWord(width_);
  encoder->PutWord(depth_);
  encoder->PutWord(total_);
  for (uint64_t cell : cells_) encoder->PutWord(cell);
}

bool CountMinSketch::DecodeFrom(StateDecoder* decoder) {
  uint64_t width = decoder->GetWord();
  uint64_t depth = decoder->GetWord();
  uint64_t total = decoder->GetWord();
  if (decoder->failed() || width != width_ || depth != depth_) {
    return false;
  }
  std::vector<uint64_t> cells(cells_.size());
  for (uint64_t& cell : cells) cell = decoder->GetWord();
  if (decoder->failed()) return false;
  cells_ = std::move(cells);
  total_ = total;
  return true;
}

}  // namespace setcover
