#include "util/backoff.h"

#include <algorithm>
#include <cmath>

namespace setcover {
namespace {

// SplitMix64 step — the same tiny deterministic generator the fault
// injector uses for its position hashes.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ExponentialBackoff::ExponentialBackoff(BackoffPolicy policy)
    : policy_(policy) {
  policy_.multiplier = std::max(1.0, policy_.multiplier);
  policy_.max_delay_us =
      std::max(policy_.max_delay_us, policy_.initial_delay_us);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  jitter_state_ = policy_.jitter_seed;
  Reset();
}

bool ExponentialBackoff::NextDelay(uint64_t* delay_us) {
  if (attempts_ >= policy_.max_retries) return false;
  ++attempts_;
  uint64_t emitted = next_delay_us_;
  if (policy_.jitter > 0.0 && emitted > 0) {
    // Uniform in (base * (1 - jitter), base]: subtract a seeded-random
    // slice of the jitter window, never the whole window, so an emitted
    // delay stays positive and below the cap.
    const double u = double(SplitMix64(&jitter_state_) >> 11) * 0x1.0p-53;
    emitted -= uint64_t(double(emitted) * policy_.jitter * u);
  }
  *delay_us = emitted;
  double grown = double(next_delay_us_) * policy_.multiplier;
  next_delay_us_ = grown >= double(policy_.max_delay_us)
                       ? policy_.max_delay_us
                       : static_cast<uint64_t>(grown);
  return true;
}

void ExponentialBackoff::Reset() {
  attempts_ = 0;
  next_delay_us_ = std::min(policy_.initial_delay_us, policy_.max_delay_us);
}

}  // namespace setcover
