#include "util/backoff.h"

#include <algorithm>
#include <cmath>

namespace setcover {

ExponentialBackoff::ExponentialBackoff(BackoffPolicy policy)
    : policy_(policy) {
  policy_.multiplier = std::max(1.0, policy_.multiplier);
  policy_.max_delay_us =
      std::max(policy_.max_delay_us, policy_.initial_delay_us);
  Reset();
}

bool ExponentialBackoff::NextDelay(uint64_t* delay_us) {
  if (attempts_ >= policy_.max_retries) return false;
  ++attempts_;
  *delay_us = next_delay_us_;
  double grown = double(next_delay_us_) * policy_.multiplier;
  next_delay_us_ = grown >= double(policy_.max_delay_us)
                       ? policy_.max_delay_us
                       : static_cast<uint64_t>(grown);
  return true;
}

void ExponentialBackoff::Reset() {
  attempts_ = 0;
  next_delay_us_ = std::min(policy_.initial_delay_us, policy_.max_delay_us);
}

}  // namespace setcover
