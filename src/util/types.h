#ifndef SETCOVER_UTIL_TYPES_H_
#define SETCOVER_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace setcover {

/// Index of a set in the family S = {S_0, ..., S_{m-1}}.
using SetId = uint32_t;

/// Index of an element in the universe U = {0, ..., n-1}.
using ElementId = uint32_t;

/// Sentinel "no set" value, used for unassigned cover certificates and
/// for the R(u) = ⊥ initialization in the paper's algorithm listings.
inline constexpr SetId kNoSet = std::numeric_limits<SetId>::max();

}  // namespace setcover

#endif  // SETCOVER_UTIL_TYPES_H_
