#ifndef SETCOVER_UTIL_FLAGS_H_
#define SETCOVER_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace setcover {

/// Minimal command-line flag parser for the CLI tools: accepts
/// `--key=value` and `--key value` pairs plus bare positional
/// arguments; typed getters fall back to defaults.
class FlagSet {
 public:
  /// Parses argv (excluding argv[0]). A `--key` with no following value
  /// (or followed by another flag) is treated as boolean "true".
  static FlagSet Parse(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Arguments that were not `--flags`, in order.
  const std::vector<std::string>& Positional() const {
    return positional_;
  }

  /// Keys the program never looked up — typo detection for the CLI.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_FLAGS_H_
