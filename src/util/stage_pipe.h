#ifndef SETCOVER_UTIL_STAGE_PIPE_H_
#define SETCOVER_UTIL_STAGE_PIPE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace setcover {

/// Two-slot SPSC stage boundary: the generalized form of the prefetch
/// decoder's double buffering, reusable at any producer/consumer seam
/// (decode-ahead, frame serialization ahead of a ring push, ...).
///
/// One producer thread fills slots, one consumer thread drains them, in
/// strict alternation; a slot's payload is touched only by its current
/// owner, so the full-flag handoff under the mutex is the only
/// synchronization the payloads need. Two slots are enough to overlap
/// the stages; batching work per payload amortizes the handoff.
///
/// Producer protocol:
///   while (Payload* p = pipe.BeginFill()) { fill *p; pipe.FinishFill(); }
///   pipe.FinishProducing();   // on end-of-stream
/// Consumer protocol:
///   while (Payload* p = pipe.BeginDrain()) { use *p; pipe.FinishDrain(); }
///
/// Stop() unblocks both sides (Begin* return nullptr); Reset() returns
/// the pipe to its initial state once no thread is inside it. PayloadAt
/// gives direct slot access for capacity pre-sizing before threads run.
template <typename Payload>
class StagePipe {
 public:
  StagePipe() = default;
  StagePipe(const StagePipe&) = delete;
  StagePipe& operator=(const StagePipe&) = delete;

  /// Producer: blocks until the next slot is free. Null after Stop().
  Payload* BeginFill() {
    std::unique_lock<std::mutex> lock(mu_);
    Slot* slot = &slots_[fill_];
    cv_.wait(lock, [&] { return stop_ || !slot->full; });
    if (stop_) return nullptr;
    return &slot->payload;
  }

  /// Producer: publishes the slot returned by the last BeginFill.
  void FinishFill() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_[fill_].full = true;
      fill_ ^= 1;
    }
    cv_.notify_all();
  }

  /// Producer: signals end-of-stream. Already-published slots stay
  /// drainable; afterwards BeginDrain returns nullptr.
  void FinishProducing() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Consumer: blocks until the next slot is published. Null when the
  /// producer finished and nothing is pending, or after Stop().
  Payload* BeginDrain() {
    std::unique_lock<std::mutex> lock(mu_);
    Slot* slot = &slots_[drain_];
    cv_.wait(lock, [&] { return stop_ || done_ || slot->full; });
    if (stop_ || !slot->full) return nullptr;
    return &slot->payload;
  }

  /// Consumer: hands the slot returned by the last BeginDrain back to
  /// the producer.
  void FinishDrain() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_[drain_].full = false;
      drain_ ^= 1;
    }
    cv_.notify_all();
  }

  /// Unblocks both sides; subsequent Begin* calls return nullptr.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
  }

  /// Back to the initial empty state. Caller must guarantee no thread
  /// is blocked inside the pipe (join the producer first).
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
    done_ = false;
    fill_ = 0;
    drain_ = 0;
    for (Slot& slot : slots_) slot.full = false;
  }

  /// Direct slot access for pre-sizing payload capacity before the
  /// producer/consumer threads start.
  static constexpr size_t kSlots = 2;
  Payload& PayloadAt(size_t index) { return slots_[index].payload; }

 private:
  struct Slot {
    Payload payload;
    /// Ownership bit: true = consumer's to drain, false = producer's to
    /// refill. Always read/written under mu_.
    bool full = false;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  Slot slots_[kSlots];
  bool stop_ = false;
  bool done_ = false;
  size_t fill_ = 0;   // slot the producer fills next
  size_t drain_ = 0;  // slot the consumer drains next
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_STAGE_PIPE_H_
