#ifndef SETCOVER_UTIL_SHM_RING_H_
#define SETCOVER_UTIL_SHM_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace setcover {

/// A single-producer single-consumer byte ring in a shared-memory
/// region, the same-host zero-copy transport under the session server
/// (src/server/transport.cc wires two of these — one per direction —
/// into a Connection).
///
/// The region is an anonymous memfd, so it can be handed to the peer
/// over a unix socket with SCM_RIGHTS and mapped on both sides; no
/// filesystem name, no cleanup on crash (the kernel frees the pages
/// when the last mapping goes away). Layout:
///
///   Header   { magic, capacity, tail, head, closed }   (cacheline-
///              padded; head/tail are monotonically increasing byte
///              cursors — never wrapped — so `tail - head` is the
///              number of unread bytes)
///   data[capacity]   capacity is a power of two; a cursor's byte
///                    offset is `cursor & (capacity - 1)`
///
/// Frames are `u32 length (little-endian) + payload`, written byte-wise
/// with wrap-around (a frame may straddle the end of the data array in
/// up to two memcpys). The payload bytes are the CRC-carrying protocol
/// frames of server/protocol.h, so end-to-end integrity is still
/// checked by DecodeMessage — the ring only has to be *torn-proof*,
/// which SPSC + release/acquire cursor publication gives: the producer
/// publishes `tail` only after the frame bytes are fully written, the
/// consumer publishes `head` only after it copied the frame out.
///
/// Blocking: Push waits for space, Pop waits for bytes, both by
/// spinning briefly and then sleeping in escalating slices. An optional
/// idle watcher runs on each sleep slice so a transport can poll its
/// bootstrap socket for peer death (a crashed peer can never flip
/// `closed` itself).
///
/// Thread safety: ONE producer thread (Push) and ONE consumer thread
/// (Pop) per ring; Close may be called from any thread, repeatedly.
class ShmRing {
 public:
  static constexpr uint32_t kMagic = 0x42524353;  // "SCRB"
  static constexpr size_t kMinCapacity = 1u << 12;
  static constexpr size_t kMaxCapacity = 1u << 30;

  /// Creates a ring with at least `capacity_bytes` of frame space
  /// (rounded up to a power of two) in a fresh memfd. nullptr with
  /// *error on failure.
  static std::unique_ptr<ShmRing> Create(size_t capacity_bytes,
                                         std::string* error);

  /// Maps a ring created by a peer from a memfd received over
  /// SCM_RIGHTS. Takes ownership of `fd` (closed on failure too).
  /// Validates magic, capacity, and file size before trusting anything.
  static std::unique_ptr<ShmRing> Map(int fd, std::string* error);

  ~ShmRing();

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  /// The memfd backing the mapping, for SCM_RIGHTS passing. Owned by
  /// the ring; do not close.
  int Fd() const { return fd_; }

  size_t Capacity() const;

  /// Appends one frame (u32 length + `size` payload bytes). Blocks
  /// while the ring lacks space; false once the ring is closed, the
  /// idle watcher aborts the wait, or the frame can never fit.
  bool PushFrame(const uint8_t* data, size_t size);
  bool PushFrame(const std::vector<uint8_t>& payload) {
    return PushFrame(payload.data(), payload.size());
  }

  /// Pops the next frame into *payload. Blocks while the ring is
  /// empty; false once the ring is closed AND drained, the idle
  /// watcher aborts, or the stored length is corrupt (then the ring is
  /// closed — framing never resynchronizes after a torn length).
  bool PopFrame(std::vector<uint8_t>* payload);

  /// Marks the ring closed and wakes both sides. Idempotent, any
  /// thread.
  void Close();

  bool Closed() const;

  /// Runs once per sleep slice of a blocked Push/Pop; return false to
  /// abort the wait (e.g. the transport noticed the peer died). Set
  /// before handing the ring to its worker threads.
  using IdleWatcher = std::function<bool()>;
  void SetIdleWatcher(IdleWatcher watcher) { watcher_ = std::move(watcher); }

  /// Shared-region layout (defined in the .cc; public only so the
  /// implementation can size it at namespace scope — not API).
  struct Header;

 private:
  ShmRing(int fd, void* mapping, size_t mapped_bytes);

  /// Blocks until `ready()` holds; false if closed_hint() cut the wait
  /// short (closed ring / aborted watcher).
  template <typename Ready>
  bool WaitFor(Ready ready);

  void CopyIn(uint64_t at, const uint8_t* from, size_t size);
  void CopyOut(uint64_t at, uint8_t* to, size_t size) const;

  int fd_ = -1;
  void* mapping_ = nullptr;
  size_t mapped_bytes_ = 0;
  Header* header_ = nullptr;
  uint8_t* data_ = nullptr;
  uint64_t mask_ = 0;
  IdleWatcher watcher_;
};

}  // namespace setcover

#endif  // SETCOVER_UTIL_SHM_RING_H_
