#ifndef SETCOVER_UTIL_CRC32_H_
#define SETCOVER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace setcover {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the checksum
/// guarding the on-disk robustness formats: stream-file v2 chunks and
/// run-supervisor checkpoints. Table-driven, one byte per step.
///
/// Incremental use: feed the previous return value back as `seed` to
/// extend a checksum over multiple buffers; the default seed starts a
/// fresh computation. `Crc32(data, n)` equals the value produced by
/// zlib's crc32() over the same bytes.
uint32_t Crc32(const void* data, size_t bytes, uint32_t seed = 0);

}  // namespace setcover

#endif  // SETCOVER_UTIL_CRC32_H_
