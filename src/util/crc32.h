#ifndef SETCOVER_UTIL_CRC32_H_
#define SETCOVER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace setcover {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the checksum
/// guarding the on-disk robustness formats: stream-file headers, v2
/// chunks and run-supervisor checkpoints. Table-driven, one byte per
/// step.
///
/// Incremental use: feed the previous return value back as `seed` to
/// extend a checksum over multiple buffers; the default seed starts a
/// fresh computation. `Crc32(data, n)` equals the value produced by
/// zlib's crc32() over the same bytes.
uint32_t Crc32(const void* data, size_t bytes, uint32_t seed = 0);

/// CRC-32C (Castagnoli, polynomial 0x82F63B78, reflected) — the
/// checksum of the stream-file v3 chunk payloads and offset index.
/// Chosen for the v3 hot decode path because x86 CPUs compute it in
/// hardware (SSE4.2 crc32 instruction, dispatched at runtime); the
/// portable table fallback produces identical values, so files are
/// byte-identical across hosts. Same seed/incremental contract as
/// Crc32. `Crc32c("123456789", 9)` == 0xE3069283.
uint32_t Crc32c(const void* data, size_t bytes, uint32_t seed = 0);

/// The table-driven CRC-32C implementation, always taken on non-x86
/// hosts. Exposed so tests can pin the hardware path against it.
uint32_t Crc32cPortable(const void* data, size_t bytes, uint32_t seed = 0);

}  // namespace setcover

#endif  // SETCOVER_UTIL_CRC32_H_
