#include "run/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace setcover {
namespace {

constexpr uint32_t kMagic = 0x504B4353u;  // "SCKP" little-endian
// v2 added session_sequence (the session server's exactly-once cursor);
// v1 files load with session_sequence = 0.
constexpr uint32_t kVersion = 2;

constexpr uint32_t kShardedMagic = 0x48534353u;  // "SCSH" little-endian
constexpr uint32_t kShardedVersion = 1;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

/// Bounds-checked little-endian cursor over the loaded file bytes.
struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint32_t U32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  uint64_t U64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  bool String(std::string* out) {
    const uint32_t len = U32();
    if (!ok || pos + len > size) {
      ok = false;
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return true;
  }
};

/// The checkpoint body — everything between the header and the CRC of
/// the single-run format. The sharded aggregate embeds one body per
/// present slot, byte-identical to the single-run layout.
void AppendCheckpointBody(std::vector<uint8_t>* bytes,
                          const Checkpoint& checkpoint) {
  AppendU32(bytes, uint32_t(checkpoint.algorithm_name.size()));
  for (char c : checkpoint.algorithm_name) bytes->push_back(uint8_t(c));
  AppendU32(bytes, checkpoint.meta.num_sets);
  AppendU32(bytes, checkpoint.meta.num_elements);
  AppendU64(bytes, checkpoint.meta.stream_length);
  AppendU64(bytes, checkpoint.stream_position);
  AppendU64(bytes, checkpoint.edges_delivered);
  AppendU64(bytes, checkpoint.transient_retries);
  AppendU64(bytes, checkpoint.corrupt_skipped);
  AppendU64(bytes, checkpoint.faults_survived);
  AppendU64(bytes, checkpoint.session_sequence);
  AppendU64(bytes, checkpoint.state_words.size());
  for (uint64_t w : checkpoint.state_words) AppendU64(bytes, w);
}

bool ParseCheckpointBody(ByteReader* in, uint32_t version,
                         Checkpoint* checkpoint) {
  if (!in->String(&checkpoint->algorithm_name)) return false;
  checkpoint->meta.num_sets = in->U32();
  checkpoint->meta.num_elements = in->U32();
  checkpoint->meta.stream_length = in->U64();
  checkpoint->stream_position = in->U64();
  checkpoint->edges_delivered = in->U64();
  checkpoint->transient_retries = in->U64();
  checkpoint->corrupt_skipped = in->U64();
  checkpoint->faults_survived = in->U64();
  checkpoint->session_sequence = version >= 2 ? in->U64() : 0;
  const uint64_t state_len = in->U64();
  if (!in->ok || state_len > (in->size - in->pos) / 8) return false;
  checkpoint->state_words.clear();
  checkpoint->state_words.reserve(state_len);
  for (uint64_t i = 0; i < state_len; ++i)
    checkpoint->state_words.push_back(in->U64());
  return in->ok;
}

/// Appends the CRC and writes `bytes` to `path` via tmp + atomic rename.
bool WriteAtomically(std::vector<uint8_t>* bytes, const std::string& path,
                     std::string* error) {
  AppendU32(bytes, Crc32(bytes->data() + 4, bytes->size() - 4));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  const bool wrote =
      std::fwrite(bytes->data(), 1, bytes->size(), f) == bytes->size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "failed writing checkpoint " + path;
    return false;
  }
  return true;
}

/// Loads `path`, verifies header magic/version bounds and the trailing
/// CRC, and leaves a ByteReader positioned after the version field.
bool LoadVerified(const std::string& path, uint32_t magic,
                  uint32_t max_version, std::vector<uint8_t>* bytes,
                  uint32_t* version, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open checkpoint " + path;
    return false;
  }
  uint8_t buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0)
    bytes->insert(bytes->end(), buffer, buffer + got);
  std::fclose(f);

  ByteReader in{bytes->data(), bytes->size()};
  const uint32_t file_magic = in.U32();
  *version = in.U32();
  if (file_magic != magic || *version < 1 || *version > max_version) {
    if (error != nullptr) *error = path + ": not a checkpoint file";
    return false;
  }
  // The trailing CRC covers everything between the magic and itself.
  if (bytes->size() < 12) {
    if (error != nullptr) *error = path + ": truncated checkpoint";
    return false;
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes->data() + bytes->size() - 4, 4);
  if (Crc32(bytes->data() + 4, bytes->size() - 8) != stored_crc) {
    if (error != nullptr) *error = path + ": checkpoint checksum mismatch";
    return false;
  }
  return true;
}

}  // namespace

bool SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path,
                    std::string* error) {
  std::vector<uint8_t> bytes;
  AppendU32(&bytes, kMagic);
  AppendU32(&bytes, kVersion);
  AppendCheckpointBody(&bytes, checkpoint);
  return WriteAtomically(&bytes, path, error);
}

std::optional<Checkpoint> LoadCheckpoint(const std::string& path,
                                         std::string* error) {
  std::vector<uint8_t> bytes;
  uint32_t version = 0;
  if (!LoadVerified(path, kMagic, kVersion, &bytes, &version, error)) {
    return std::nullopt;
  }
  ByteReader in{bytes.data(), bytes.size(), /*pos=*/8};
  Checkpoint checkpoint;
  if (!ParseCheckpointBody(&in, version, &checkpoint) ||
      in.pos + 4 != bytes.size()) {
    if (error != nullptr) *error = path + ": malformed checkpoint";
    return std::nullopt;
  }
  return checkpoint;
}

bool SaveShardedCheckpoint(const ShardedCheckpoint& checkpoint,
                           const std::string& path, std::string* error) {
  if (checkpoint.shard_states.size() != checkpoint.shards) {
    if (error != nullptr)
      *error = "sharded checkpoint has " +
               std::to_string(checkpoint.shard_states.size()) +
               " slots for " + std::to_string(checkpoint.shards) + " shards";
    return false;
  }
  std::vector<uint8_t> bytes;
  AppendU32(&bytes, kShardedMagic);
  AppendU32(&bytes, kShardedVersion);
  AppendU32(&bytes, checkpoint.shards);
  AppendU32(&bytes, uint32_t(checkpoint.partitioner.size()));
  for (char c : checkpoint.partitioner) bytes.push_back(uint8_t(c));
  for (const std::optional<Checkpoint>& slot : checkpoint.shard_states) {
    AppendU32(&bytes, slot.has_value() ? 1 : 0);
    if (slot.has_value()) AppendCheckpointBody(&bytes, *slot);
  }
  return WriteAtomically(&bytes, path, error);
}

std::optional<ShardedCheckpoint> LoadShardedCheckpoint(
    const std::string& path, std::string* error) {
  std::vector<uint8_t> bytes;
  uint32_t version = 0;
  if (!LoadVerified(path, kShardedMagic, kShardedVersion, &bytes, &version,
                    error)) {
    return std::nullopt;
  }
  ByteReader in{bytes.data(), bytes.size(), /*pos=*/8};
  ShardedCheckpoint checkpoint;
  checkpoint.shards = in.U32();
  // Oversized shard counts would try to reserve garbage; anything that
  // cannot fit present-flags in the remaining bytes is malformed.
  if (!in.ok || !in.String(&checkpoint.partitioner) ||
      checkpoint.shards > (in.size - in.pos) / 4) {
    if (error != nullptr) *error = path + ": malformed checkpoint";
    return std::nullopt;
  }
  checkpoint.shard_states.resize(checkpoint.shards);
  for (uint32_t w = 0; w < checkpoint.shards; ++w) {
    const uint32_t present = in.U32();
    if (!in.ok || present > 1) {
      if (error != nullptr) *error = path + ": malformed checkpoint";
      return std::nullopt;
    }
    if (present == 0) continue;
    Checkpoint slot;
    // Slot bodies always use the current single-run layout.
    if (!ParseCheckpointBody(&in, kVersion, &slot)) {
      if (error != nullptr) *error = path + ": malformed checkpoint";
      return std::nullopt;
    }
    checkpoint.shard_states[w] = std::move(slot);
  }
  if (!in.ok || in.pos + 4 != bytes.size()) {
    if (error != nullptr) *error = path + ": malformed checkpoint";
    return std::nullopt;
  }
  return checkpoint;
}

void EncodeCheckpointBody(const Checkpoint& checkpoint,
                          std::vector<uint8_t>* out) {
  AppendCheckpointBody(out, checkpoint);
}

bool DecodeCheckpointBody(const uint8_t* data, size_t size, Checkpoint* out,
                          std::string* error) {
  ByteReader in{data, size};
  if (!ParseCheckpointBody(&in, kVersion, out) || in.pos != size) {
    if (error != nullptr) *error = "malformed checkpoint body";
    return false;
  }
  return true;
}

}  // namespace setcover
