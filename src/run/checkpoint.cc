#include "run/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace setcover {
namespace {

constexpr uint32_t kMagic = 0x504B4353u;  // "SCKP" little-endian
// v2 added session_sequence (the session server's exactly-once cursor);
// v1 files load with session_sequence = 0.
constexpr uint32_t kVersion = 2;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

/// Bounds-checked little-endian cursor over the loaded file bytes.
struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint32_t U32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  uint64_t U64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
};

}  // namespace

bool SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path,
                    std::string* error) {
  std::vector<uint8_t> bytes;
  AppendU32(&bytes, kMagic);
  AppendU32(&bytes, kVersion);
  AppendU32(&bytes, uint32_t(checkpoint.algorithm_name.size()));
  for (char c : checkpoint.algorithm_name) bytes.push_back(uint8_t(c));
  AppendU32(&bytes, checkpoint.meta.num_sets);
  AppendU32(&bytes, checkpoint.meta.num_elements);
  AppendU64(&bytes, checkpoint.meta.stream_length);
  AppendU64(&bytes, checkpoint.stream_position);
  AppendU64(&bytes, checkpoint.edges_delivered);
  AppendU64(&bytes, checkpoint.transient_retries);
  AppendU64(&bytes, checkpoint.corrupt_skipped);
  AppendU64(&bytes, checkpoint.faults_survived);
  AppendU64(&bytes, checkpoint.session_sequence);
  AppendU64(&bytes, checkpoint.state_words.size());
  for (uint64_t w : checkpoint.state_words) AppendU64(&bytes, w);
  AppendU32(&bytes, Crc32(bytes.data() + 4, bytes.size() - 4));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "failed writing checkpoint " + path;
    return false;
  }
  return true;
}

std::optional<Checkpoint> LoadCheckpoint(const std::string& path,
                                         std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open checkpoint " + path;
    return std::nullopt;
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0)
    bytes.insert(bytes.end(), buffer, buffer + got);
  std::fclose(f);

  ByteReader in{bytes.data(), bytes.size()};
  const uint32_t magic = in.U32();
  const uint32_t version = in.U32();
  if (magic != kMagic || version < 1 || version > kVersion) {
    if (error != nullptr) *error = path + ": not a checkpoint file";
    return std::nullopt;
  }
  // The trailing CRC covers everything between the magic and itself.
  if (bytes.size() < 12) {
    if (error != nullptr) *error = path + ": truncated checkpoint";
    return std::nullopt;
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.data() + 4, bytes.size() - 8) != stored_crc) {
    if (error != nullptr) *error = path + ": checkpoint checksum mismatch";
    return std::nullopt;
  }

  Checkpoint checkpoint;
  const uint32_t name_len = in.U32();
  if (!in.ok || in.pos + name_len > bytes.size()) {
    if (error != nullptr) *error = path + ": malformed checkpoint";
    return std::nullopt;
  }
  checkpoint.algorithm_name.assign(
      reinterpret_cast<const char*>(bytes.data() + in.pos), name_len);
  in.pos += name_len;
  checkpoint.meta.num_sets = in.U32();
  checkpoint.meta.num_elements = in.U32();
  checkpoint.meta.stream_length = in.U64();
  checkpoint.stream_position = in.U64();
  checkpoint.edges_delivered = in.U64();
  checkpoint.transient_retries = in.U64();
  checkpoint.corrupt_skipped = in.U64();
  checkpoint.faults_survived = in.U64();
  checkpoint.session_sequence = version >= 2 ? in.U64() : 0;
  const uint64_t state_len = in.U64();
  if (!in.ok || state_len > (bytes.size() - in.pos) / 8) {
    if (error != nullptr) *error = path + ": malformed checkpoint";
    return std::nullopt;
  }
  checkpoint.state_words.reserve(state_len);
  for (uint64_t i = 0; i < state_len; ++i)
    checkpoint.state_words.push_back(in.U64());
  if (!in.ok || in.pos + 4 != bytes.size()) {
    if (error != nullptr) *error = path + ": malformed checkpoint";
    return std::nullopt;
  }
  return checkpoint;
}

}  // namespace setcover
