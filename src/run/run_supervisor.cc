#include "run/run_supervisor.h"

#include <utility>

#include "run/checkpoint.h"
#include "stream/edge.h"

namespace setcover {
namespace {

uint64_t CountUncovered(const CoverSolution& solution) {
  uint64_t uncovered = 0;
  for (SetId s : solution.certificate)
    if (s == kNoSet) ++uncovered;
  return uncovered;
}

}  // namespace

RunReport RunSupervisor::Run(StreamingSetCoverAlgorithm& algorithm,
                             EdgeSource& source) {
  RunReport report;
  const StreamMetadata& meta = source.Meta();

  if (options_.resume) {
    std::string error;
    std::optional<Checkpoint> checkpoint =
        LoadCheckpoint(options_.checkpoint_path, &error);
    if (!checkpoint) {
      report.error = error;
      return report;
    }
    if (checkpoint->algorithm_name != algorithm.Name()) {
      report.error = "checkpoint was written by algorithm '" +
                     checkpoint->algorithm_name + "', not '" +
                     algorithm.Name() + "'";
      return report;
    }
    if (checkpoint->meta.num_sets != meta.num_sets ||
        checkpoint->meta.num_elements != meta.num_elements ||
        checkpoint->meta.stream_length != meta.stream_length) {
      report.error = "checkpoint stream shape does not match the source";
      return report;
    }
    if (!algorithm.DecodeState(meta, checkpoint->state_words)) {
      report.error = "algorithm '" + algorithm.Name() +
                     "' could not decode the checkpointed state";
      return report;
    }
    if (!source.SeekTo(checkpoint->stream_position)) {
      report.error = "source cannot seek to checkpointed position";
      return report;
    }
    report.resumed = true;
    report.resumed_at = checkpoint->stream_position;
    report.edges_delivered = checkpoint->edges_delivered;
    report.transient_retries = checkpoint->transient_retries;
    report.corrupt_records_skipped = checkpoint->corrupt_skipped;
    report.faults_survived = checkpoint->faults_survived;
  } else {
    algorithm.Begin(meta);
  }

  const bool checkpointing =
      !options_.checkpoint_path.empty() && options_.checkpoint_every > 0;
  uint64_t delivered_this_run = 0;
  ExponentialBackoff retry(options_.backoff);

  // Batched ingestion: edges accumulate with the same per-edge fault
  // handling as before, and flush through ProcessEdgeBatch. Batches are
  // capped so that every observable boundary of the per-edge loop —
  // checkpoint positions (edges_delivered % checkpoint_every == 0),
  // the stop_after kill point, and end-of-stream — falls exactly on a
  // flush, so checkpoints, reports and the algorithm's state are
  // bit-identical to the per-edge supervisor.
  Edge edge;
  std::vector<Edge> batch;
  batch.reserve(kIngestBatchEdges);
  auto flush = [&] {
    if (batch.empty()) return;
    algorithm.ProcessEdgeBatch(std::span<const Edge>(batch));
    report.edges_delivered += batch.size();
    delivered_this_run += batch.size();
    batch.clear();
  };
  for (;;) {
    if (options_.stop_after != 0 &&
        delivered_this_run + batch.size() >= options_.stop_after) {
      // Simulated kill: walk away mid-stream. The last checkpoint on
      // disk is exactly what a real crash would leave behind.
      flush();
      report.uncovered_elements = 0;
      return report;
    }
    const ReadStatus status = source.Next(&edge);
    if (status == ReadStatus::kTransient) {
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        report.degraded = true;  // retry budget exhausted mid-stream
        break;
      }
      ++report.transient_retries;
      ++report.faults_survived;
      if (options_.sleeper) options_.sleeper(delay_us);
      continue;
    }
    retry.Reset();
    if (status == ReadStatus::kEnd) break;
    if (status == ReadStatus::kCorrupt) {
      ++report.corrupt_records_skipped;
      ++report.faults_survived;
      continue;
    }

    batch.push_back(edge);
    const uint64_t logical_delivered = report.edges_delivered + batch.size();

    if (checkpointing &&
        logical_delivered % options_.checkpoint_every == 0) {
      flush();
      if (!source.HasPendingReplay()) {
        StateEncoder encoder;
        algorithm.EncodeState(&encoder);
        Checkpoint checkpoint;
        checkpoint.algorithm_name = algorithm.Name();
        checkpoint.meta = meta;
        checkpoint.stream_position = source.Position();
        checkpoint.edges_delivered = report.edges_delivered;
        checkpoint.transient_retries = report.transient_retries;
        checkpoint.corrupt_skipped = report.corrupt_records_skipped;
        checkpoint.faults_survived = report.faults_survived;
        checkpoint.state_words = encoder.Words();
        std::string error;
        if (!SaveCheckpoint(checkpoint, options_.checkpoint_path, &error)) {
          report.error = error;
          return report;
        }
        ++report.checkpoints_written;
      }
    } else if (batch.size() >= kIngestBatchEdges) {
      flush();
    }
  }
  flush();

  if (source.Truncated()) report.degraded = true;
  report.solution = algorithm.Finalize();
  report.uncovered_elements = CountUncovered(report.solution);
  report.completed = true;
  return report;
}

}  // namespace setcover
