#ifndef SETCOVER_RUN_RUN_SUPERVISOR_H_
#define SETCOVER_RUN_RUN_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/streaming_algorithm.h"
#include "stream/edge_source.h"
#include "util/backoff.h"

namespace setcover {

/// Knobs for one supervised run.
struct SupervisorOptions {
  /// Sidecar checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;

  /// Write a checkpoint every this many delivered edges (at record
  /// boundaries only — never while the source holds pending replay
  /// state). 0 disables periodic checkpoints even with a path set.
  uint64_t checkpoint_every = 0;

  /// Resume from `checkpoint_path` instead of starting fresh. The
  /// checkpoint must load, CRC-verify, match the algorithm and stream
  /// shape, and decode — anything less is an error, not a silent
  /// restart.
  bool resume = false;

  /// Retry budget for transient read faults.
  BackoffPolicy backoff;

  /// Called with each backoff delay in microseconds. Defaults to not
  /// sleeping, which keeps tests and simulations instant; the CLI
  /// installs a real sleep.
  std::function<void(uint64_t)> sleeper;

  /// Simulated kill switch: stop (without finalizing) once this many
  /// edges have been delivered this run. 0 disables. Used by the
  /// kill-and-resume tests and reproducible from the CLI.
  uint64_t stop_after = 0;
};

/// Everything a caller learns from a supervised run.
struct RunReport {
  /// Valid only when `completed`.
  CoverSolution solution;

  /// The run reached Finalize(). False after a simulated kill
  /// (stop_after) or a fatal error (see `error`).
  bool completed = false;

  /// This run restored state from a checkpoint, at this position.
  bool resumed = false;
  uint64_t resumed_at = 0;

  /// Totals across the whole logical run (carried over a resume).
  uint64_t edges_delivered = 0;
  uint64_t checkpoints_written = 0;
  uint64_t transient_retries = 0;
  uint64_t corrupt_records_skipped = 0;
  uint64_t faults_survived = 0;

  /// The run could not consume the full stream (retry budget exhausted
  /// or truncated input) and the cover may be partial; the certificate
  /// still certifies exactly which elements are covered.
  bool degraded = false;
  uint64_t uncovered_elements = 0;

  /// Non-empty on fatal failure (unreadable/corrupt/mismatched
  /// checkpoint, undecodable state, checkpoint write failure).
  std::string error;
};

/// Drives `algorithm` over `source` to completion: periodic CRC'd
/// checkpoints, crash resume with bit-identical continuation, bounded
/// retries on transient faults, skip-and-count on corrupt records, and
/// graceful degradation to a certified partial cover when the stream
/// cannot be fully consumed.
class RunSupervisor {
 public:
  explicit RunSupervisor(SupervisorOptions options)
      : options_(std::move(options)) {}

  RunReport Run(StreamingSetCoverAlgorithm& algorithm, EdgeSource& source);

 private:
  SupervisorOptions options_;
};

}  // namespace setcover

#endif  // SETCOVER_RUN_RUN_SUPERVISOR_H_
