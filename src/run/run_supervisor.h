#ifndef SETCOVER_RUN_RUN_SUPERVISOR_H_
#define SETCOVER_RUN_RUN_SUPERVISOR_H_

#include <utility>

#include "engine/engine.h"

namespace setcover {

/// Compatibility shim: the supervised drive loop now lives in
/// src/engine/ (see engine::Drive). These aliases keep the original
/// supervised-run API — same names, same fields, same semantics — so
/// existing clients compile unchanged while every run flows through the
/// one engine pipeline.
using SupervisorOptions = engine::DriveOptions;
using RunReport = engine::RunReport;

/// Drives `algorithm` over `source` to completion: periodic CRC'd
/// checkpoints, crash resume with bit-identical continuation, bounded
/// retries on transient faults, skip-and-count on corrupt records, and
/// graceful degradation to a certified partial cover when the stream
/// cannot be fully consumed. Thin wrapper over engine::Drive.
class RunSupervisor {
 public:
  explicit RunSupervisor(SupervisorOptions options)
      : options_(std::move(options)) {}

  RunReport Run(StreamingSetCoverAlgorithm& algorithm, EdgeSource& source) {
    return engine::Drive(options_, algorithm, source);
  }

 private:
  SupervisorOptions options_;
};

}  // namespace setcover

#endif  // SETCOVER_RUN_RUN_SUPERVISOR_H_
