#ifndef SETCOVER_RUN_CHECKPOINT_H_
#define SETCOVER_RUN_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stream/stream.h"

namespace setcover {

/// One recoverable snapshot of a supervised run: everything needed to
/// continue a one-pass execution after a crash — which algorithm was
/// running, over which stream shape, how far the source had been
/// consumed, the algorithm's serialized state (StateEncoder words, RNG
/// included by each algorithm's EncodeState), and the supervisor's own
/// fault counters so a resumed run reports totals as if uninterrupted.
///
/// On-disk layout (little-endian), file magic "SCKP", version 2:
///   magic, version u32
///   name_len u32, name bytes
///   m u32, n u32, N u64
///   stream_position u64, edges_delivered u64
///   transient_retries u64, corrupt_skipped u64, faults_survived u64
///   session_sequence u64                          (v2; v1 reads as 0)
///   state_len u64, state words (u64 each)
///   crc u32 — CRC-32 of every byte after the magic
///
/// Version 1 files (no session_sequence field) still load; the writer
/// always emits version 2.
///
/// SaveCheckpoint stages into `path + ".tmp"` and atomically renames, so
/// the previous valid checkpoint survives a crash mid-save; Load
/// verifies the CRC and rejects damaged or torn files instead of
/// resuming from garbage.
struct Checkpoint {
  std::string algorithm_name;
  StreamMetadata meta;

  /// Underlying source position (EdgeSource::Position()) to SeekTo.
  uint64_t stream_position = 0;

  /// Edges actually delivered to the algorithm (>= positions consumed
  /// minus drops, plus duplicates).
  uint64_t edges_delivered = 0;

  /// Supervisor counters carried across the restart.
  uint64_t transient_retries = 0;
  uint64_t corrupt_skipped = 0;
  uint64_t faults_survived = 0;

  /// Last ingest-batch sequence number applied before this checkpoint
  /// was taken — the exactly-once cursor of the session server
  /// (src/server/): after a crash the server tells the client this
  /// value and the client re-sends from session_sequence + 1, so a
  /// retried batch is applied exactly once. 0 for single-shot engine
  /// runs (and for v1 files).
  uint64_t session_sequence = 0;

  /// The algorithm's EncodeState words.
  std::vector<uint64_t> state_words;
};

/// Writes atomically; false (with *error) on I/O failure.
bool SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path,
                    std::string* error);

/// Reads and CRC-verifies; nullopt (with *error) on a missing file,
/// malformed layout, or checksum mismatch.
std::optional<Checkpoint> LoadCheckpoint(const std::string& path,
                                         std::string* error);

/// One recoverable snapshot of a *sharded* run (engine/sharded.h): the
/// W per-shard cursors + algorithm states aggregated into a single
/// file, so kill-and-resume of a W-way run needs exactly one sidecar —
/// same contract as the single-run Checkpoint, W slots wide.
///
/// Slots are independent: a shard that never reached its checkpoint
/// cadence before the crash has no entry (`shard_states[w] ==
/// nullopt`) and restarts its slice from the beginning; every other
/// shard resumes from its own cursor. Because each shard's execution
/// is a pure function of its slice suffix + decoded state, any
/// combination of persisted slots resumes bit-identical to the unkilled
/// run.
///
/// On-disk layout (little-endian), file magic "SCSH", version 1:
///   magic, version u32
///   shards u32
///   partitioner_len u32, partitioner name bytes
///   per shard: present u32 (0/1); when present, the slot's Checkpoint
///     in exactly the byte layout of the single-run format's body
///     (name through state words)
///   crc u32 — CRC-32 of every byte after the magic
///
/// SaveShardedCheckpoint stages into `path + ".tmp"` and atomically
/// renames; LoadShardedCheckpoint CRC-verifies and rejects damage.
struct ShardedCheckpoint {
  uint32_t shards = 0;
  /// ShardPartitioner::name the run was partitioned with; resuming
  /// under a different partitioner is refused (the cursors would replay
  /// the wrong slices).
  std::string partitioner;
  std::vector<std::optional<Checkpoint>> shard_states;  // size == shards
};

bool SaveShardedCheckpoint(const ShardedCheckpoint& checkpoint,
                           const std::string& path, std::string* error);

std::optional<ShardedCheckpoint> LoadShardedCheckpoint(
    const std::string& path, std::string* error);

/// Serializes just the checkpoint *body* (the byte layout between the
/// single-run header and CRC — name through state words) without file
/// framing. This is the unit SCSH slots embed and the forked execution
/// backend ships over its result ring: a worker process encodes its
/// snapshot once and the parent folds the identical bytes into the
/// aggregate sidecar.
void EncodeCheckpointBody(const Checkpoint& checkpoint,
                          std::vector<uint8_t>* out);

/// Parses a body produced by EncodeCheckpointBody. The body must span
/// exactly [data, data + size); trailing bytes are rejected.
bool DecodeCheckpointBody(const uint8_t* data, size_t size, Checkpoint* out,
                          std::string* error);

}  // namespace setcover

#endif  // SETCOVER_RUN_CHECKPOINT_H_
