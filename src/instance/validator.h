#ifndef SETCOVER_INSTANCE_VALIDATOR_H_
#define SETCOVER_INSTANCE_VALIDATOR_H_

#include <string>

#include "instance/instance.h"

namespace setcover {

/// Outcome of validating a solution against an instance. `ok` is true iff
/// the solution is a legal cover with a legal certificate; otherwise
/// `error` describes the first violation found.
struct ValidationResult {
  bool ok = false;
  std::string error;
};

/// Checks that `solution` is a valid answer for `instance`:
///   1. every set id in the cover is in range and appears once;
///   2. the certificate has one entry per element;
///   3. every certificate entry names a set that (a) is in the cover and
///      (b) actually contains the element;
///   4. consequently every element is covered.
ValidationResult ValidateSolution(const SetCoverInstance& instance,
                                  const CoverSolution& solution);

/// Approximation ratio of `solution` against a reference cover size
/// (planted cover, greedy, or exact OPT). Returns +inf if
/// reference_size == 0.
double ApproxRatio(const CoverSolution& solution, size_t reference_size);

}  // namespace setcover

#endif  // SETCOVER_INSTANCE_VALIDATOR_H_
