#include "instance/instance.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace setcover {

SetCoverInstance SetCoverInstance::FromSets(
    uint32_t num_elements, std::vector<std::vector<ElementId>> sets) {
  SetCoverInstance inst;
  inst.num_elements_ = num_elements;
  inst.sets_ = std::move(sets);
  for (auto& set : inst.sets_) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    if (!set.empty() && set.back() >= num_elements) {
      std::fprintf(stderr,
                   "SetCoverInstance: element id %u out of range (n=%u)\n",
                   set.back(), num_elements);
      std::abort();
    }
    inst.num_edges_ += set.size();
  }
  return inst;
}

bool SetCoverInstance::Contains(SetId s, ElementId u) const {
  const auto& set = sets_[s];
  return std::binary_search(set.begin(), set.end(), u);
}

std::vector<uint32_t> SetCoverInstance::ElementDegrees() const {
  std::vector<uint32_t> deg(num_elements_, 0);
  for (const auto& set : sets_) {
    for (ElementId u : set) ++deg[u];
  }
  return deg;
}

bool SetCoverInstance::IsFeasible() const {
  std::vector<uint32_t> deg = ElementDegrees();
  return std::all_of(deg.begin(), deg.end(),
                     [](uint32_t d) { return d > 0; });
}

void SetCoverInstance::SetPlantedCover(std::vector<SetId> cover) {
  planted_cover_ = std::move(cover);
}

}  // namespace setcover
