#include "instance/instance.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace setcover {
namespace {

[[noreturn]] void AbortOutOfRange(const char* what, uint32_t id,
                                  const char* bound_name, uint32_t bound) {
  std::fprintf(stderr, "SetCoverInstance: %s id %u out of range (%s=%u)\n",
               what, id, bound_name, bound);
  std::abort();
}

}  // namespace

SetCoverInstance SetCoverInstance::FromSets(
    uint32_t num_elements, std::vector<std::vector<ElementId>> sets) {
  SetCoverInstance inst;
  inst.num_elements_ = num_elements;
  const uint32_t m = static_cast<uint32_t>(sets.size());

  // Counting pass: per-element raw degrees (duplicates included), with
  // range validation before any id is used as an index.
  std::vector<uint64_t> eoff(size_t{num_elements} + 1, 0);
  size_t raw_edges = 0;
  for (const auto& set : sets) {
    for (ElementId u : set) {
      if (u >= num_elements) AbortOutOfRange("element", u, "n", num_elements);
      ++eoff[size_t{u} + 1];
    }
    raw_edges += set.size();
  }
  for (size_t u = 0; u < num_elements; ++u) eoff[u + 1] += eoff[u];

  // Scatter into element-major buckets. Iterating sets ascending makes
  // every bucket ascending in set id — the invariant the CSR build (and
  // the sortedness of ElementSets) relies on.
  std::vector<SetId> esets(raw_edges);
  std::vector<uint64_t> cursor(eoff.begin(), eoff.end() - 1);
  for (SetId s = 0; s < m; ++s) {
    for (ElementId u : sets[s]) esets[cursor[u]++] = s;
  }
  inst.BuildFromElementScatter(m, eoff, esets);
  return inst;
}

SetCoverInstance SetCoverInstance::FromEdges(uint32_t num_elements,
                                             uint32_t num_sets,
                                             std::span<const Edge> edges) {
  SetCoverInstance inst;
  inst.num_elements_ = num_elements;

  // Radix pass 1: order the edges set-major (counting sort on the set
  // id), validating both ids up front.
  std::vector<uint64_t> soff(size_t{num_sets} + 1, 0);
  for (const Edge& e : edges) {
    if (e.set >= num_sets) AbortOutOfRange("set", e.set, "m", num_sets);
    if (e.element >= num_elements) {
      AbortOutOfRange("element", e.element, "n", num_elements);
    }
    ++soff[size_t{e.set} + 1];
  }
  for (size_t s = 0; s < num_sets; ++s) soff[s + 1] += soff[s];
  std::vector<ElementId> set_major(edges.size());
  std::vector<uint64_t> scursor(soff.begin(), soff.end() - 1);
  for (const Edge& e : edges) set_major[scursor[e.set]++] = e.element;

  // Radix pass 2: scatter set-major into element-major buckets, sets
  // ascending, exactly as FromSets does.
  std::vector<uint64_t> eoff(size_t{num_elements} + 1, 0);
  for (ElementId u : set_major) ++eoff[size_t{u} + 1];
  for (size_t u = 0; u < num_elements; ++u) eoff[u + 1] += eoff[u];
  std::vector<SetId> esets(edges.size());
  std::vector<uint64_t> ecursor(eoff.begin(), eoff.end() - 1);
  for (SetId s = 0; s < num_sets; ++s) {
    for (uint64_t i = soff[s]; i < soff[s + 1]; ++i) {
      esets[ecursor[set_major[i]]++] = s;
    }
  }
  inst.BuildFromElementScatter(num_sets, eoff, esets);
  return inst;
}

void SetCoverInstance::BuildFromElementScatter(
    uint32_t num_sets, const std::vector<uint64_t>& eoff,
    const std::vector<SetId>& esets) {
  const uint32_t n = num_elements_;
  // Pass A: deduplicated sizes for both CSRs. A set claiming the same
  // element more than once is caught by the last-claim mark; kNoSet is a
  // safe initial mark because valid element ids are < num_elements_ <=
  // 2^32 - 1 = kNoSet.
  offsets_.assign(size_t{num_sets} + 1, 0);
  elem_offsets_.assign(size_t{n} + 1, 0);
  std::vector<ElementId> last_claim(num_sets, kNoSet);
  for (ElementId u = 0; u < n; ++u) {
    for (uint64_t i = eoff[u]; i < eoff[size_t{u} + 1]; ++i) {
      const SetId s = esets[i];
      if (last_claim[s] != u) {
        last_claim[s] = u;
        ++offsets_[size_t{s} + 1];
        ++elem_offsets_[size_t{u} + 1];
      }
    }
  }
  for (size_t s = 0; s < num_sets; ++s) offsets_[s + 1] += offsets_[s];
  for (size_t u = 0; u < n; ++u) elem_offsets_[u + 1] += elem_offsets_[u];

  // Pass B: fill both arenas. Walking elements ascending writes every
  // set's list sorted ascending; the bucket's ascending-set-id invariant
  // writes every element's set list sorted ascending.
  elements_.resize(offsets_.back());
  elem_sets_.resize(offsets_.back());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  std::fill(last_claim.begin(), last_claim.end(), kNoSet);
  uint64_t epos = 0;
  for (ElementId u = 0; u < n; ++u) {
    for (uint64_t i = eoff[u]; i < eoff[size_t{u} + 1]; ++i) {
      const SetId s = esets[i];
      if (last_claim[s] != u) {
        last_claim[s] = u;
        elements_[cursor[s]++] = u;
        elem_sets_[epos++] = s;
      }
    }
  }
}

bool SetCoverInstance::Contains(SetId s, ElementId u) const {
  const auto set = Set(s);
  return std::binary_search(set.begin(), set.end(), u);
}

std::vector<uint32_t> SetCoverInstance::ElementDegrees() const {
  std::vector<uint32_t> deg(num_elements_);
  for (ElementId u = 0; u < num_elements_; ++u) deg[u] = ElementDegree(u);
  return deg;
}

bool SetCoverInstance::IsFeasible() const {
  for (ElementId u = 0; u < num_elements_; ++u) {
    if (elem_offsets_[size_t{u} + 1] == elem_offsets_[u]) return false;
  }
  return true;
}

void SetCoverInstance::SetPlantedCover(std::vector<SetId> cover) {
  planted_cover_ = std::move(cover);
}

}  // namespace setcover
