#include "instance/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace setcover {
namespace {

void CheckPositive(uint32_t n, uint32_t m, const char* who) {
  if (n == 0 || m == 0) {
    std::fprintf(stderr, "%s: need num_elements > 0 and num_sets > 0\n", who);
    std::abort();
  }
}

// Ensures feasibility by adding each element of degree zero to a
// uniformly random set.
void PatchFeasibility(uint32_t num_elements,
                      std::vector<std::vector<ElementId>>& sets, Rng& rng) {
  std::vector<bool> covered(num_elements, false);
  for (const auto& set : sets) {
    for (ElementId u : set) covered[u] = true;
  }
  for (ElementId u = 0; u < num_elements; ++u) {
    if (!covered[u]) {
      sets[rng.UniformInt(sets.size())].push_back(u);
    }
  }
}

}  // namespace

SetCoverInstance GenerateUniformRandom(const UniformRandomParams& params,
                                       Rng& rng) {
  CheckPositive(params.num_elements, params.num_sets,
                "GenerateUniformRandom");
  std::vector<std::vector<ElementId>> sets(params.num_sets);
  uint32_t lo = std::max<uint32_t>(1, params.min_set_size);
  uint32_t hi = std::min(params.num_elements,
                         std::max(lo, params.max_set_size));
  for (auto& set : sets) {
    uint32_t k = static_cast<uint32_t>(rng.UniformRange(lo, hi));
    set = rng.RandomSubset(params.num_elements, k);
  }
  PatchFeasibility(params.num_elements, sets, rng);
  return SetCoverInstance::FromSets(params.num_elements, std::move(sets));
}

SetCoverInstance GeneratePlantedCover(const PlantedCoverParams& params,
                                      Rng& rng) {
  CheckPositive(params.num_elements, params.num_sets,
                "GeneratePlantedCover");
  uint32_t opt = std::min(params.planted_cover_size, params.num_elements);
  opt = std::max<uint32_t>(1, std::min(opt, params.num_sets));

  // Random permutation of the universe, chopped into `opt` blocks.
  std::vector<ElementId> perm(params.num_elements);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  std::vector<std::vector<ElementId>> sets(params.num_sets);
  std::vector<SetId> ids(params.num_sets);
  std::iota(ids.begin(), ids.end(), 0);
  rng.Shuffle(ids);  // ids[0..opt) are the planted set positions

  std::vector<SetId> planted(ids.begin(), ids.begin() + opt);
  size_t begin = 0;
  for (uint32_t b = 0; b < opt; ++b) {
    size_t end = static_cast<size_t>(params.num_elements) * (b + 1) / opt;
    sets[planted[b]].assign(perm.begin() + begin, perm.begin() + end);
    begin = end;
  }

  uint32_t lo = std::max<uint32_t>(1, params.decoy_min_size);
  uint32_t hi = std::min(params.num_elements,
                         std::max(lo, params.decoy_max_size));
  for (uint32_t i = opt; i < params.num_sets; ++i) {
    uint32_t k = static_cast<uint32_t>(rng.UniformRange(lo, hi));
    sets[ids[i]] = rng.RandomSubset(params.num_elements, k);
  }

  SetCoverInstance inst =
      SetCoverInstance::FromSets(params.num_elements, std::move(sets));
  std::sort(planted.begin(), planted.end());
  inst.SetPlantedCover(std::move(planted));
  return inst;
}

SetCoverInstance GenerateZipf(const ZipfParams& params, Rng& rng) {
  CheckPositive(params.num_elements, params.num_sets, "GenerateZipf");
  // Cumulative Zipf weights over elements for inverse-CDF sampling.
  std::vector<double> cdf(params.num_elements);
  double total = 0.0;
  for (uint32_t u = 0; u < params.num_elements; ++u) {
    total += 1.0 / std::pow(static_cast<double>(u + 1), params.exponent);
    cdf[u] = total;
  }
  auto sample_element = [&]() -> ElementId {
    double x = rng.UniformDouble() * total;
    return static_cast<ElementId>(
        std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
  };

  uint32_t lo = std::max<uint32_t>(1, params.min_set_size);
  uint32_t hi = std::min(params.num_elements,
                         std::max(lo, params.max_set_size));
  std::vector<std::vector<ElementId>> sets(params.num_sets);
  for (auto& set : sets) {
    uint32_t k = static_cast<uint32_t>(rng.UniformRange(lo, hi));
    set.reserve(k);
    // Sample with retries so sets reach their target size despite the
    // skew causing repeated draws of popular elements.
    for (uint32_t tries = 0; set.size() < k && tries < 16 * k; ++tries) {
      ElementId u = sample_element();
      if (std::find(set.begin(), set.end(), u) == set.end())
        set.push_back(u);
    }
  }
  PatchFeasibility(params.num_elements, sets, rng);
  return SetCoverInstance::FromSets(params.num_elements, std::move(sets));
}

SetCoverInstance GenerateDominatingSet(uint32_t num_vertices,
                                       double edge_probability, Rng& rng) {
  CheckPositive(num_vertices, num_vertices, "GenerateDominatingSet");
  std::vector<std::vector<ElementId>> closed_nbhd(num_vertices);
  for (uint32_t v = 0; v < num_vertices; ++v) closed_nbhd[v].push_back(v);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    for (uint32_t w = v + 1; w < num_vertices; ++w) {
      if (rng.Bernoulli(edge_probability)) {
        closed_nbhd[v].push_back(w);
        closed_nbhd[w].push_back(v);
      }
    }
  }
  return SetCoverInstance::FromSets(num_vertices, std::move(closed_nbhd));
}

SetCoverInstance GeneratePartition(uint32_t num_elements,
                                   uint32_t num_sets) {
  CheckPositive(num_elements, num_sets, "GeneratePartition");
  uint32_t blocks = std::min(num_sets, num_elements);
  std::vector<std::vector<ElementId>> sets(num_sets);
  for (uint32_t b = 0; b < blocks; ++b) {
    size_t begin = static_cast<size_t>(num_elements) * b / blocks;
    size_t end = static_cast<size_t>(num_elements) * (b + 1) / blocks;
    for (size_t u = begin; u < end; ++u)
      sets[b].push_back(static_cast<ElementId>(u));
  }
  // Any sets beyond `blocks` are duplicates of block 0 so the instance
  // has exactly `num_sets` sets and stays feasible.
  for (uint32_t s = blocks; s < num_sets; ++s) sets[s] = sets[0];
  return SetCoverInstance::FromSets(num_elements, std::move(sets));
}

SetCoverInstance GenerateLogUniform(const LogUniformParams& params,
                                    Rng& rng) {
  CheckPositive(params.num_elements, params.num_sets, "GenerateLogUniform");
  const uint32_t cap = params.max_set_size != 0
                           ? std::min(params.max_set_size,
                                      params.num_elements)
                           : params.num_elements;
  const double max_exp = std::log2(std::max(2.0, double(cap)));
  std::vector<std::vector<ElementId>> sets(params.num_sets);
  for (auto& set : sets) {
    double e = rng.UniformDouble() * max_exp;
    uint32_t size = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::lround(std::pow(2.0, e))));
    set = rng.RandomSubset(params.num_elements, std::min(size, cap));
  }
  PatchFeasibility(params.num_elements, sets, rng);
  return SetCoverInstance::FromSets(params.num_elements, std::move(sets));
}

}  // namespace setcover
