#ifndef SETCOVER_INSTANCE_INSTANCE_H_
#define SETCOVER_INSTANCE_INSTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "stream/edge.h"
#include "util/types.h"

namespace setcover {

/// An in-memory Set Cover instance (S, U): a universe of `n` elements and
/// a family of `m` subsets, stored as the bipartite incidence graph of
/// paper §2 in flat CSR (compressed sparse row) form.
///
/// Layout: one `offsets[m+1]` array and one `elements[N]` arena hold the
/// whole set-major adjacency — `Set(s)` is a span into the arena, so the
/// per-set indirection (and allocation) of a vector-of-vectors layout is
/// gone. A second CSR pair (`elem_offsets[n+1]`, `elem_sets[N]`) stores
/// the inverse element-major adjacency, which makes `ElementSets`,
/// `ElementDegrees`, feasibility checks and the element-major stream
/// orderings O(1)/O(n) lookups instead of full edge scans. Both CSRs are
/// built by counting sort in O(N + n + m) — no comparison sort anywhere.
///
/// Instances are immutable after construction. Sets are stored with
/// sorted, de-duplicated element lists; element lists of `ElementSets`
/// are sorted by set id. Generators may additionally record a *planted
/// cover* — a known feasible cover whose size upper bounds OPT — which
/// benchmarks use as the denominator of approximation ratios.
class SetCoverInstance {
 public:
  /// Builds an instance over `num_elements` elements from raw set
  /// contents. Element lists are sorted and de-duplicated; element ids
  /// must be < `num_elements`. Aborts on out-of-range ids.
  static SetCoverInstance FromSets(uint32_t num_elements,
                                   std::vector<std::vector<ElementId>> sets);

  /// Builds an instance directly from an edge list — the shape streaming
  /// algorithms buffer — without materializing a vector-of-vectors first.
  /// Duplicate edges collapse; ids must be in range (aborts otherwise).
  /// Exactly equivalent to scattering `edges` into per-set lists and
  /// calling FromSets, but one counting-sort pass over a flat arena.
  static SetCoverInstance FromEdges(uint32_t num_elements, uint32_t num_sets,
                                    std::span<const Edge> edges);

  uint32_t NumSets() const {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }
  uint32_t NumElements() const { return num_elements_; }

  /// Total number of (set, element) incidences = stream length N.
  size_t NumEdges() const { return offsets_.back(); }

  /// Elements of set `s`, sorted ascending. A span into the CSR arena.
  std::span<const ElementId> Set(SetId s) const {
    return {elements_.data() + offsets_[s], offsets_[s + 1] - offsets_[s]};
  }

  /// Sets containing element `u`, sorted ascending. A span into the
  /// inverse CSR arena.
  std::span<const SetId> ElementSets(ElementId u) const {
    return {elem_sets_.data() + elem_offsets_[u],
            elem_offsets_[u + 1] - elem_offsets_[u]};
  }

  /// Number of sets containing element `u`.
  uint32_t ElementDegree(ElementId u) const {
    return static_cast<uint32_t>(elem_offsets_[u + 1] - elem_offsets_[u]);
  }

  /// True iff `u` is in set `s` (binary search, O(log |S_s|)).
  bool Contains(SetId s, ElementId u) const;

  /// Number of sets containing each element (the element degrees).
  std::vector<uint32_t> ElementDegrees() const;

  /// True iff every element is contained in at least one set. The paper
  /// assumes feasibility throughout (§2); generators guarantee it.
  /// O(n) over the inverse CSR offsets.
  bool IsFeasible() const;

  /// A known feasible cover recorded by the generator, or empty if none.
  /// When non-empty it is an upper bound on OPT.
  const std::vector<SetId>& PlantedCover() const { return planted_cover_; }
  void SetPlantedCover(std::vector<SetId> cover);

 private:
  SetCoverInstance() = default;

  /// Finishes construction from the raw element-major scatter built by
  /// both factory functions: `eoff`/`esets` hold, for each element, the
  /// (possibly duplicated) ids of sets claiming it, ascending. Derives
  /// the deduplicated set-major CSR and the inverse element-major CSR.
  void BuildFromElementScatter(uint32_t num_sets,
                               const std::vector<uint64_t>& eoff,
                               const std::vector<SetId>& esets);

  uint32_t num_elements_ = 0;
  // Set-major CSR: Set(s) = elements_[offsets_[s] .. offsets_[s+1]).
  std::vector<uint64_t> offsets_{0};
  std::vector<ElementId> elements_;
  // Inverse element-major CSR:
  // ElementSets(u) = elem_sets_[elem_offsets_[u] .. elem_offsets_[u+1]).
  std::vector<uint64_t> elem_offsets_{0};
  std::vector<SetId> elem_sets_;
  std::vector<SetId> planted_cover_;
};

/// The output of a set cover algorithm: the chosen sets and the cover
/// certificate C : U -> T required by the problem definition (§1).
struct CoverSolution {
  /// Chosen set ids, distinct.
  std::vector<SetId> cover;

  /// certificate[u] is a set in `cover` containing u, or kNoSet if the
  /// algorithm failed to cover u (never happens for feasible instances
  /// with the algorithms in this library).
  std::vector<SetId> certificate;

  size_t CoverSize() const { return cover.size(); }
};

}  // namespace setcover

#endif  // SETCOVER_INSTANCE_INSTANCE_H_
