#ifndef SETCOVER_INSTANCE_INSTANCE_H_
#define SETCOVER_INSTANCE_INSTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.h"

namespace setcover {

/// An in-memory Set Cover instance (S, U): a universe of `n` elements and
/// a family of `m` subsets, stored as the bipartite incidence graph of
/// paper §2 in set-major adjacency form.
///
/// Instances are immutable after construction. Sets are stored with
/// sorted, de-duplicated element lists. Generators may additionally
/// record a *planted cover* — a known feasible cover whose size upper
/// bounds OPT — which benchmarks use as the denominator of approximation
/// ratios.
class SetCoverInstance {
 public:
  /// Builds an instance over `num_elements` elements from raw set
  /// contents. Element lists are sorted and de-duplicated; element ids
  /// must be < `num_elements`. Aborts on out-of-range ids.
  static SetCoverInstance FromSets(uint32_t num_elements,
                                   std::vector<std::vector<ElementId>> sets);

  uint32_t NumSets() const { return static_cast<uint32_t>(sets_.size()); }
  uint32_t NumElements() const { return num_elements_; }

  /// Total number of (set, element) incidences = stream length N.
  size_t NumEdges() const { return num_edges_; }

  /// Elements of set `s`, sorted ascending.
  std::span<const ElementId> Set(SetId s) const {
    return {sets_[s].data(), sets_[s].size()};
  }

  /// True iff `u` is in set `s` (binary search, O(log |S_s|)).
  bool Contains(SetId s, ElementId u) const;

  /// Number of sets containing each element (the element degrees).
  std::vector<uint32_t> ElementDegrees() const;

  /// True iff every element is contained in at least one set. The paper
  /// assumes feasibility throughout (§2); generators guarantee it.
  bool IsFeasible() const;

  /// A known feasible cover recorded by the generator, or empty if none.
  /// When non-empty it is an upper bound on OPT.
  const std::vector<SetId>& PlantedCover() const { return planted_cover_; }
  void SetPlantedCover(std::vector<SetId> cover);

 private:
  SetCoverInstance() = default;

  uint32_t num_elements_ = 0;
  size_t num_edges_ = 0;
  std::vector<std::vector<ElementId>> sets_;
  std::vector<SetId> planted_cover_;
};

/// The output of a set cover algorithm: the chosen sets and the cover
/// certificate C : U -> T required by the problem definition (§1).
struct CoverSolution {
  /// Chosen set ids, distinct.
  std::vector<SetId> cover;

  /// certificate[u] is a set in `cover` containing u, or kNoSet if the
  /// algorithm failed to cover u (never happens for feasible instances
  /// with the algorithms in this library).
  std::vector<SetId> certificate;

  size_t CoverSize() const { return cover.size(); }
};

}  // namespace setcover

#endif  // SETCOVER_INSTANCE_INSTANCE_H_
