#include "instance/validator.h"

#include <cstdio>
#include <limits>
#include <unordered_set>

namespace setcover {

ValidationResult ValidateSolution(const SetCoverInstance& instance,
                                  const CoverSolution& solution) {
  char buf[160];
  std::unordered_set<SetId> in_cover;
  in_cover.reserve(solution.cover.size() * 2);
  for (SetId s : solution.cover) {
    if (s >= instance.NumSets()) {
      std::snprintf(buf, sizeof(buf), "cover contains out-of-range set %u",
                    s);
      return {false, buf};
    }
    if (!in_cover.insert(s).second) {
      std::snprintf(buf, sizeof(buf), "cover contains duplicate set %u", s);
      return {false, buf};
    }
  }
  if (solution.certificate.size() != instance.NumElements()) {
    std::snprintf(buf, sizeof(buf),
                  "certificate has %zu entries, expected %u",
                  solution.certificate.size(), instance.NumElements());
    return {false, buf};
  }
  for (ElementId u = 0; u < instance.NumElements(); ++u) {
    SetId s = solution.certificate[u];
    if (s == kNoSet) {
      std::snprintf(buf, sizeof(buf), "element %u has no certificate", u);
      return {false, buf};
    }
    if (s >= instance.NumSets()) {
      std::snprintf(buf, sizeof(buf),
                    "certificate of element %u names invalid set %u", u, s);
      return {false, buf};
    }
    if (in_cover.find(s) == in_cover.end()) {
      std::snprintf(buf, sizeof(buf),
                    "certificate of element %u names set %u not in cover",
                    u, s);
      return {false, buf};
    }
    if (!instance.Contains(s, u)) {
      std::snprintf(buf, sizeof(buf),
                    "certificate set %u does not contain element %u", s, u);
      return {false, buf};
    }
  }
  return {true, ""};
}

double ApproxRatio(const CoverSolution& solution, size_t reference_size) {
  if (reference_size == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(solution.cover.size()) /
         static_cast<double>(reference_size);
}

}  // namespace setcover
