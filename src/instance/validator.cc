#include "instance/validator.h"

#include <cstdio>
#include <limits>

#include "util/bitset.h"

namespace setcover {

ValidationResult ValidateSolution(const SetCoverInstance& instance,
                                  const CoverSolution& solution) {
  char buf[160];
  // Cover membership as a packed bitset over set ids — O(1) probes and
  // O(m/64) words instead of a hash set.
  DynamicBitset in_cover(instance.NumSets());
  for (SetId s : solution.cover) {
    if (s >= instance.NumSets()) {
      std::snprintf(buf, sizeof(buf), "cover contains out-of-range set %u",
                    s);
      return {false, buf};
    }
    if (!in_cover.Set(s)) {
      std::snprintf(buf, sizeof(buf), "cover contains duplicate set %u", s);
      return {false, buf};
    }
  }
  if (solution.certificate.size() != instance.NumElements()) {
    std::snprintf(buf, sizeof(buf),
                  "certificate has %zu entries, expected %u",
                  solution.certificate.size(), instance.NumElements());
    return {false, buf};
  }

  // Fast path: sweep the cover sets' CSR spans once, marking every
  // element whose certificate names the set currently being swept. An
  // element ends up marked iff its certificate (a) names a set in the
  // cover that (b) contains it — out-of-range and kNoSet certificates
  // can never match a swept set id, so they stay unmarked. The whole
  // verdict is then one popcount-maintained All() check; the per-element
  // probe loop runs only to localize the first violation for the error
  // message.
  DynamicBitset certified(instance.NumElements());
  for (SetId s : solution.cover) {
    for (ElementId u : instance.Set(s)) {
      if (solution.certificate[u] == s) certified.Set(u);
    }
  }
  if (certified.All()) return {true, ""};

  for (ElementId u = 0; u < instance.NumElements(); ++u) {
    SetId s = solution.certificate[u];
    if (s == kNoSet) {
      std::snprintf(buf, sizeof(buf), "element %u has no certificate", u);
      return {false, buf};
    }
    if (s >= instance.NumSets()) {
      std::snprintf(buf, sizeof(buf),
                    "certificate of element %u names invalid set %u", u, s);
      return {false, buf};
    }
    if (!in_cover.Test(s)) {
      std::snprintf(buf, sizeof(buf),
                    "certificate of element %u names set %u not in cover",
                    u, s);
      return {false, buf};
    }
    if (!instance.Contains(s, u)) {
      std::snprintf(buf, sizeof(buf),
                    "certificate set %u does not contain element %u", s, u);
      return {false, buf};
    }
  }
  // Unreachable: certified.All() failing implies some element fails one
  // of the probes above.
  return {false, "internal: fast/slow validation disagreement"};
}

double ApproxRatio(const CoverSolution& solution, size_t reference_size) {
  if (reference_size == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(solution.cover.size()) /
         static_cast<double>(reference_size);
}

}  // namespace setcover
