#include "instance/hard_instance.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/bitset.h"
#include "util/math.h"

namespace setcover {

Lemma1Family Lemma1Family::Build(uint32_t n, uint32_t t, uint32_t m,
                                 Rng& rng) {
  if (t == 0 || t > n || m == 0) {
    std::fprintf(stderr, "Lemma1Family: need 1 <= t <= n, m >= 1\n");
    std::abort();
  }
  Lemma1Family fam;
  fam.n_ = n;
  fam.t_ = t;
  fam.m_ = m;
  fam.part_size_ = std::max<uint32_t>(1, static_cast<uint32_t>(ISqrt(n / t)));
  // The full set must fit in the universe.
  while (fam.part_size_ > 1 &&
         static_cast<uint64_t>(fam.part_size_) * t > n) {
    --fam.part_size_;
  }
  if (static_cast<uint64_t>(fam.part_size_) * t > n) {
    std::fprintf(stderr, "Lemma1Family: t=%u too large for n=%u\n", t, n);
    std::abort();
  }
  const uint32_t s = fam.part_size_ * t;
  fam.storage_.resize(m);
  for (uint32_t i = 0; i < m; ++i) {
    // Random s-subset of [n], then a random partition = random order.
    fam.storage_[i] = rng.RandomSubset(n, s);
    rng.Shuffle(fam.storage_[i]);
  }
  return fam;
}

uint32_t Lemma1Family::MaxCrossIntersection() const {
  uint32_t worst = 0;
  DynamicBitset member(n_);
  for (uint32_t j = 0; j < m_; ++j) {
    for (ElementId u : storage_[j]) member.Set(u);
    for (uint32_t i = 0; i < m_; ++i) {
      if (i == j) continue;
      for (uint32_t r = 0; r < t_; ++r) {
        uint32_t hits = 0;
        for (ElementId u : Part(i, r)) hits += member.Test(u) ? 1 : 0;
        worst = std::max(worst, hits);
      }
    }
    for (ElementId u : storage_[j]) member.Reset(u);
  }
  return worst;
}

std::vector<ElementId> Lemma1Family::Complement(uint32_t i) const {
  DynamicBitset member(n_);
  for (ElementId u : storage_[i]) member.Set(u);
  std::vector<ElementId> out;
  out.reserve(n_ - storage_[i].size());
  for (ElementId u = 0; u < n_; ++u) {
    if (!member.Test(u)) out.push_back(u);
  }
  return out;
}

}  // namespace setcover
