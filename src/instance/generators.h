#ifndef SETCOVER_INSTANCE_GENERATORS_H_
#define SETCOVER_INSTANCE_GENERATORS_H_

#include <cstdint>

#include "instance/instance.h"
#include "util/rng.h"

namespace setcover {

/// Parameters for the uniform random instance family: each set is a
/// uniformly random subset whose size is uniform in
/// [min_set_size, max_set_size]. Feasibility is enforced afterwards by
/// inserting each uncovered element into a random set.
struct UniformRandomParams {
  uint32_t num_elements = 0;
  uint32_t num_sets = 0;
  uint32_t min_set_size = 1;
  uint32_t max_set_size = 8;
};

/// Generates a uniform random instance. No planted cover is recorded.
SetCoverInstance GenerateUniformRandom(const UniformRandomParams& params,
                                       Rng& rng);

/// Parameters for the planted-cover family used by most benchmarks.
///
/// The universe is partitioned into `planted_cover_size` near-equal
/// blocks, one per planted set, so the planted cover is feasible and
/// OPT <= planted_cover_size (and, because the decoys below are small,
/// OPT is close to it). The remaining sets are "decoys": uniformly
/// random subsets of size uniform in [decoy_min_size, decoy_max_size].
/// This is the natural hard-but-known-OPT workload for streaming set
/// cover: a few large useful sets hidden among many small distractors,
/// the regime where the paper's Õ(√n)-approximation guarantees bite.
struct PlantedCoverParams {
  uint32_t num_elements = 0;
  uint32_t num_sets = 0;          // total, including planted sets
  uint32_t planted_cover_size = 4;
  uint32_t decoy_min_size = 1;
  uint32_t decoy_max_size = 8;
};

/// Generates a planted-cover instance; the planted cover is recorded on
/// the instance (`PlantedCover()`), with set ids shuffled so planted sets
/// are not identifiable by position.
SetCoverInstance GeneratePlantedCover(const PlantedCoverParams& params,
                                      Rng& rng);

/// Parameters for the Zipf-degree family: element popularity follows a
/// power law with the given exponent, so a few elements appear in many
/// sets — the skew typical of the web-scale coverage workloads the paper
/// cites (blog-watch [22], web-scale set cover [23]).
struct ZipfParams {
  uint32_t num_elements = 0;
  uint32_t num_sets = 0;
  uint32_t min_set_size = 1;
  uint32_t max_set_size = 16;
  double exponent = 1.0;
};

/// Generates a Zipf-skewed instance (feasibility enforced by patching).
SetCoverInstance GenerateZipf(const ZipfParams& params, Rng& rng);

/// Builds the Dominating Set instance of an Erdős–Rényi graph G(n, p):
/// sets are closed neighborhoods N[v], so m = n and a set cover is
/// exactly a dominating set. This is the m = n special case through
/// which the KK algorithm (Theorem 1) was originally derived.
SetCoverInstance GenerateDominatingSet(uint32_t num_vertices,
                                       double edge_probability, Rng& rng);

/// Builds an instance whose sets partition the universe into `num_sets`
/// equal blocks (OPT = num_sets exactly). Deterministic; used in tests.
SetCoverInstance GeneratePartition(uint32_t num_elements, uint32_t num_sets);

/// Generates sets with log-uniform sizes (2^U(0..log₂ max_set_size)),
/// so every degree scale is represented — the workload for experiments
/// about degree *spectra*, e.g. the KK level-decay law (bench_levels).
/// `max_set_size` = 0 means use num_elements. Feasibility is enforced
/// by patching.
struct LogUniformParams {
  uint32_t num_elements = 0;
  uint32_t num_sets = 0;
  uint32_t max_set_size = 0;
};
SetCoverInstance GenerateLogUniform(const LogUniformParams& params,
                                    Rng& rng);

}  // namespace setcover

#endif  // SETCOVER_INSTANCE_GENERATORS_H_
