#include "instance/io.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace setcover {
namespace {

std::optional<SetCoverInstance> Fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return std::nullopt;
}

}  // namespace

void WriteInstanceText(const SetCoverInstance& instance, std::ostream& os) {
  os << "setcover " << instance.NumElements() << ' ' << instance.NumSets()
     << '\n';
  for (SetId s = 0; s < instance.NumSets(); ++s) {
    auto set = instance.Set(s);
    os << set.size();
    for (ElementId u : set) os << ' ' << u;
    os << '\n';
  }
  if (!instance.PlantedCover().empty()) {
    os << "planted " << instance.PlantedCover().size();
    for (SetId s : instance.PlantedCover()) os << ' ' << s;
    os << '\n';
  }
}

std::optional<SetCoverInstance> ReadInstanceText(std::istream& is,
                                                 std::string* error) {
  std::string magic;
  uint32_t n = 0, m = 0;
  if (!(is >> magic >> n >> m) || magic != "setcover") {
    return Fail(error, "bad header: expected 'setcover <n> <m>'");
  }
  std::vector<std::vector<ElementId>> sets(m);
  for (uint32_t s = 0; s < m; ++s) {
    size_t k = 0;
    if (!(is >> k)) return Fail(error, "truncated set list");
    if (k > n) return Fail(error, "set larger than universe");
    sets[s].resize(k);
    for (size_t i = 0; i < k; ++i) {
      if (!(is >> sets[s][i])) return Fail(error, "truncated set contents");
      if (sets[s][i] >= n) return Fail(error, "element id out of range");
    }
  }
  SetCoverInstance inst = SetCoverInstance::FromSets(n, std::move(sets));
  std::string tag;
  if (is >> tag) {
    if (tag != "planted") return Fail(error, "unexpected trailer: " + tag);
    size_t k = 0;
    if (!(is >> k)) return Fail(error, "truncated planted cover");
    std::vector<SetId> planted(k);
    for (size_t i = 0; i < k; ++i) {
      if (!(is >> planted[i]) || planted[i] >= m) {
        return Fail(error, "bad planted cover entry");
      }
    }
    inst.SetPlantedCover(std::move(planted));
  }
  return inst;
}

bool WriteInstanceFile(const SetCoverInstance& instance,
                       const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteInstanceText(instance, os);
  return static_cast<bool>(os);
}

std::optional<SetCoverInstance> ReadInstanceFile(const std::string& path,
                                                 std::string* error) {
  std::ifstream is(path);
  if (!is) return Fail(error, "cannot open " + path);
  return ReadInstanceText(is, error);
}

}  // namespace setcover
