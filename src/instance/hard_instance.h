#ifndef SETCOVER_INSTANCE_HARD_INSTANCE_H_
#define SETCOVER_INSTANCE_HARD_INSTANCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "instance/instance.h"
#include "util/rng.h"

namespace setcover {

/// The random set family of Lemma 1, the combinatorial core of the
/// Theorem 2 lower bound.
///
/// A family T_1, ..., T_m ⊆ [n], each of size s ≈ √(n·t), together with a
/// partition of each T_i into t parts T_i^1 ∪̇ ... ∪̇ T_i^t of size s/t
/// each, such that cross intersections |T_i^r ∩ T_j| (i ≠ j) are
/// O(log n). Lemma 1 proves such a family exists via the probabilistic
/// method; `BuildLemma1Family` constructs it the same way (random sets,
/// random partitions) and the tests verify the intersection bound holds.
///
/// To keep part sizes integral on arbitrary (n, t) we take
/// part_size = max(1, floor(√(n/t))) and s = t · part_size, which matches
/// the lemma's s = √(n·t) up to rounding.
class Lemma1Family {
 public:
  /// Builds the family with fresh randomness. Requires 1 <= t <= n and
  /// m >= 1.
  static Lemma1Family Build(uint32_t n, uint32_t t, uint32_t m, Rng& rng);

  uint32_t n() const { return n_; }
  uint32_t t() const { return t_; }
  uint32_t m() const { return m_; }

  /// s = |T_i|, the full set size.
  uint32_t SetSize() const { return t_ * part_size_; }

  /// s/t = |T_i^r|, the per-party part size.
  uint32_t PartSize() const { return part_size_; }

  /// The elements of T_i (all t parts concatenated; the first
  /// `PartSize()` entries are part 1, and so on).
  std::span<const ElementId> FullSet(uint32_t i) const {
    return {storage_[i].data(), storage_[i].size()};
  }

  /// The elements of part T_i^r, r in [0, t).
  std::span<const ElementId> Part(uint32_t i, uint32_t r) const {
    return {storage_[i].data() + static_cast<size_t>(r) * part_size_,
            part_size_};
  }

  /// max over all i != j and all r of |T_i^r ∩ T_j|. Lemma 1: this is
  /// O(log n) with high probability. O(m² t · s/t) time — use on
  /// test-sized families only.
  uint32_t MaxCrossIntersection() const;

  /// The complement [n] \ T_i, used by the last party's forked runs in
  /// the Theorem 2 reduction.
  std::vector<ElementId> Complement(uint32_t i) const;

 private:
  uint32_t n_ = 0;
  uint32_t t_ = 0;
  uint32_t m_ = 0;
  uint32_t part_size_ = 0;
  // storage_[i] holds T_i in partition order (NOT sorted).
  std::vector<std::vector<ElementId>> storage_;
};

}  // namespace setcover

#endif  // SETCOVER_INSTANCE_HARD_INSTANCE_H_
