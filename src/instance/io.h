#ifndef SETCOVER_INSTANCE_IO_H_
#define SETCOVER_INSTANCE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "instance/instance.h"

namespace setcover {

/// Writes `instance` in the library's plain-text format:
///
///   setcover <n> <m>
///   <k> <e1> ... <ek>          (one line per set, m lines)
///   planted <k> <s1> ... <sk>  (only if a planted cover is recorded)
///
/// The format round-trips exactly (including the planted cover).
void WriteInstanceText(const SetCoverInstance& instance, std::ostream& os);

/// Parses the format above. Returns std::nullopt (with a message in
/// *error if non-null) on malformed input.
std::optional<SetCoverInstance> ReadInstanceText(std::istream& is,
                                                 std::string* error);

/// Convenience wrappers over file streams. `WriteInstanceFile` returns
/// false if the file cannot be opened.
bool WriteInstanceFile(const SetCoverInstance& instance,
                       const std::string& path);
std::optional<SetCoverInstance> ReadInstanceFile(const std::string& path,
                                                 std::string* error);

}  // namespace setcover

#endif  // SETCOVER_INSTANCE_IO_H_
