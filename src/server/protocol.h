#ifndef SETCOVER_SERVER_PROTOCOL_H_
#define SETCOVER_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/session.h"
#include "stream/edge.h"
#include "stream/fault_injector.h"

namespace setcover {
namespace server {

/// The session-server wire protocol: small, length-prefixed,
/// CRC-framed messages multiplexing many ingest sessions over one
/// connection.
///
/// Every message travels as one *frame*:
///
///   u32 payload_length            (transport framing, little-endian)
///   payload:
///     u8  type                    (MessageType)
///     u64 session_id
///     ... type-specific body ...
///     u32 crc                     CRC-32C of every payload byte before
///                                 the crc itself
///
/// The CRC lives inside the payload, so it is checked by
/// DecodeMessage regardless of transport — the in-process
/// LocalTransport exercises exactly the same framing validation as the
/// unix-domain socket. A frame whose payload exceeds kMaxFrameBytes,
/// whose CRC mismatches, whose body is truncated, or which carries
/// trailing bytes, is rejected (DecodeMessage returns nullopt) — the
/// server answers kError, it never crashes on hostile bytes
/// (tests/protocol_test.cc flips every byte and asserts this, under
/// ASan in scripts/check.sh).
///
/// Idempotency (what makes client retries safe):
///   kOpen      — open-or-attach: re-sending returns the current
///                durable cursor instead of failing.
///   kIngest    — exactly-once keyed by (session_id, sequence).
///   kFinalize  — idempotent (the report is cached server-side) and
///                fenced on the cursor: the request carries the
///                sequence the client believes is applied, so a blind
///                re-send cannot seal a session that a crash rolled
///                back to an older checkpoint (the client resyncs and
///                refills the tail instead).
///   kCheckpoint/kClose — naturally idempotent.
///   kStats     — read-only.
enum class MessageType : uint8_t {
  kInvalid = 0,

  // Requests.
  kOpen = 1,        // create or re-attach a session
  kIngest = 2,      // one sequenced edge batch
  kCheckpoint = 3,  // checkpoint now (drain, or a cautious client)
  kFinalize = 4,    // end of stream: cover + certificate
  kStats = 5,       // per-session (session_id != 0) or server-wide (0)
  kClose = 6,       // forget the session and delete its durable state

  // Replies.
  kOpenOk = 64,
  kIngestOk = 65,
  kCheckpointOk = 66,
  kFinalizeOk = 67,
  kStatsOk = 68,
  kCloseOk = 69,
  kRetryAfter = 80,  // shed: try again after a delay (see RetryReason)
  kError = 81,       // request-level failure, connection stays usable
};

/// Why the server asked the client to come back later.
enum class RetryReason : uint8_t {
  kOverloaded = 0,  // admission control: scheduler queue at capacity
  kDraining = 1,    // graceful shutdown in progress
  kEvicted = 2,     // idle TTL eviction: state checkpointed, re-open to resume
};

/// Hard ceiling on one frame's payload bytes; bounds server-side
/// allocation before any content is trusted.
inline constexpr size_t kMaxFrameBytes = 1u << 20;

/// Largest edge batch one kIngest frame can carry (fits kMaxFrameBytes
/// with room for the envelope).
inline constexpr size_t kMaxIngestEdges = 65536;

/// What kOpen carries — everything the server needs to build (or
/// rebuild, after a crash) the engine::Session. The server persists
/// the encoded kOpen frame as the session's manifest, so recovery
/// re-decodes exactly what the client declared.
struct OpenBody {
  std::string algorithm;
  uint64_t seed = 1;
  StreamMetadata meta;
  uint64_t checkpoint_every = 0;
  /// Worker fan-out behind the session (engine/sharded_session.h);
  /// 0 or 1 = one in-process pipeline. Requires a shardable algorithm
  /// and no fault schedule when > 1.
  uint32_t workers = 0;
  std::optional<FaultSchedule> faults;
};

/// One decoded protocol message; `type` says which fields are
/// meaningful. A single struct (rather than one per type) keeps
/// encode/decode/dispatch table-flat — the body overhead of unused
/// fields is a few words per in-flight message.
struct Message {
  MessageType type = MessageType::kInvalid;
  uint64_t session_id = 0;

  // kOpen
  OpenBody open;

  // kIngest (the batch's sequence) / kFinalize (the cursor fence;
  // 0 = unfenced)
  uint64_t sequence = 0;
  std::vector<Edge> edges;

  // kOpenOk / kIngestOk / kCheckpointOk. `last_sequence` is a
  // *cumulative* ack: the session's durable cursor after applying this
  // request, so one kIngestOk acknowledges every batch up to and
  // including that sequence — a pipelined sender (client.h's ingest
  // window) retires its whole in-flight prefix from a single reply.
  bool resumed = false;
  bool duplicate = false;
  uint64_t last_sequence = 0;
  uint64_t checkpoints_written = 0;

  // kFinalizeOk
  bool degraded = false;
  uint64_t edges_delivered = 0;
  uint64_t uncovered_elements = 0;
  uint64_t peak_words = 0;
  uint64_t current_words = 0;
  uint64_t transient_retries = 0;
  uint64_t corrupt_records_skipped = 0;
  uint64_t faults_survived = 0;
  std::vector<uint32_t> cover;
  std::vector<uint32_t> certificate;

  // kStatsOk, session scope (session_id != 0)
  engine::SessionStats session_stats;

  // kStatsOk, server scope (session_id == 0)
  uint64_t open_sessions = 0;
  uint64_t frames_received = 0;
  uint64_t sheds = 0;
  uint64_t total_edges_delivered = 0;

  // kRetryAfter
  uint64_t retry_after_us = 0;
  RetryReason retry_reason = RetryReason::kOverloaded;

  // kError
  std::string error;
};

/// Serializes `message` into one frame payload (type + session_id +
/// body + CRC-32C), ready for Connection::Send.
std::vector<uint8_t> EncodeMessage(const Message& message);

/// Arena-reuse overload: clears *out and fills it with the identical
/// bytes. A caller that keeps `out` alive across calls (SessionClient
/// does) pays zero allocations per message once the buffer has grown
/// to its working size.
void EncodeMessage(const Message& message, std::vector<uint8_t>* out);

/// Encodes a kIngest frame straight from the caller's edge buffer —
/// byte-identical to EncodeMessage on an equivalent Message, without
/// ever copying the batch into Message::edges. This is the zero-copy
/// hot path of the windowed ingest sender.
void EncodeIngest(uint64_t session_id, uint64_t sequence,
                  std::span<const Edge> edges, std::vector<uint8_t>* out);

/// Parses and CRC-verifies one frame payload. nullopt (with *error) on
/// any malformation — unknown type, bad CRC, truncation, trailing
/// bytes, out-of-bounds counts.
std::optional<Message> DecodeMessage(const std::vector<uint8_t>& payload,
                                     std::string* error);

/// Convenience constructors for the common replies.
Message MakeError(uint64_t session_id, std::string what);
Message MakeRetryAfter(uint64_t session_id, uint64_t delay_us,
                       RetryReason reason);

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_PROTOCOL_H_
