#include "server/protocol.h"

#include <bit>
#include <cstring>

#include "util/crc32.h"

namespace setcover {
namespace server {
namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutDouble(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, uint32_t(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutU32Vector(std::vector<uint8_t>* out,
                  const std::vector<uint32_t>& values) {
  PutU32(out, uint32_t(values.size()));
  for (uint32_t v : values) PutU32(out, v);
}

// An Edge is two packed little-endian u32s on the wire — on a
// little-endian host that is exactly its in-memory layout, so whole
// batches move with one memcpy instead of per-field byte loops. The
// big-endian fallback keeps the wire format identical.
static_assert(sizeof(Edge) == 8, "Edge wire layout assumes two packed u32s");

void PutEdges(std::vector<uint8_t>* out, std::span<const Edge> edges) {
  PutU32(out, uint32_t(edges.size()));
  if (edges.empty()) return;
  if constexpr (std::endian::native == std::endian::little) {
    const size_t at = out->size();
    out->resize(at + edges.size() * sizeof(Edge));
    std::memcpy(out->data() + at, edges.data(), edges.size() * sizeof(Edge));
  } else {
    for (const Edge& edge : edges) {
      PutU32(out, edge.set);
      PutU32(out, edge.element);
    }
  }
}

/// Bounds-checked little-endian cursor (the checkpoint loader's
/// ByteReader, grown strings/doubles). Any overrun latches `ok = false`
/// and further reads return zero values.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8() {
    if (pos + 1 > size) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  double Double() {
    uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string String(size_t max_len) {
    const uint32_t len = U32();
    if (!ok || len > max_len || pos + len > size) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
  std::vector<uint32_t> U32Vector(size_t max_count) {
    const uint32_t count = U32();
    std::vector<uint32_t> values;
    if (!ok || count > max_count || pos + size_t(count) * 4 > size) {
      ok = false;
      return values;
    }
    values.reserve(count);
    for (uint32_t i = 0; i < count; ++i) values.push_back(U32());
    return values;
  }
};

void EncodeSessionStats(std::vector<uint8_t>* out,
                        const engine::SessionStats& stats) {
  PutU64(out, stats.edges_delivered);
  PutU64(out, stats.batches);
  PutU64(out, stats.ingest_calls);
  PutU64(out, stats.duplicate_ingests);
  PutU64(out, stats.checkpoints_written);
  PutU64(out, stats.transient_retries);
  PutU64(out, stats.corrupt_records_skipped);
  PutU64(out, stats.faults_survived);
  PutU64(out, stats.last_sequence);
  PutU8(out, stats.resumed ? 1 : 0);
  PutU8(out, stats.finalized ? 1 : 0);
  PutU8(out, stats.degraded ? 1 : 0);
  PutDouble(out, stats.setup_seconds);
  PutDouble(out, stats.stream_seconds);
  PutDouble(out, stats.finalize_seconds);
  PutU64(out, stats.peak_words);
  PutU64(out, stats.current_words);
}

engine::SessionStats DecodeSessionStats(Cursor* in) {
  engine::SessionStats stats;
  stats.edges_delivered = in->U64();
  stats.batches = in->U64();
  stats.ingest_calls = in->U64();
  stats.duplicate_ingests = in->U64();
  stats.checkpoints_written = in->U64();
  stats.transient_retries = in->U64();
  stats.corrupt_records_skipped = in->U64();
  stats.faults_survived = in->U64();
  stats.last_sequence = in->U64();
  stats.resumed = in->U8() != 0;
  stats.finalized = in->U8() != 0;
  stats.degraded = in->U8() != 0;
  stats.setup_seconds = in->Double();
  stats.stream_seconds = in->Double();
  stats.finalize_seconds = in->Double();
  stats.peak_words = in->U64();
  stats.current_words = in->U64();
  return stats;
}

}  // namespace

std::vector<uint8_t> EncodeMessage(const Message& message) {
  std::vector<uint8_t> out;
  EncodeMessage(message, &out);
  return out;
}

void EncodeMessage(const Message& message, std::vector<uint8_t>* out_ptr) {
  std::vector<uint8_t>& out = *out_ptr;
  out.clear();
  PutU8(&out, uint8_t(message.type));
  PutU64(&out, message.session_id);
  switch (message.type) {
    case MessageType::kOpen:
      PutString(&out, message.open.algorithm);
      PutU64(&out, message.open.seed);
      PutU32(&out, message.open.meta.num_sets);
      PutU32(&out, message.open.meta.num_elements);
      PutU64(&out, message.open.meta.stream_length);
      PutU64(&out, message.open.checkpoint_every);
      PutU32(&out, message.open.workers);
      PutU8(&out, message.open.faults.has_value() ? 1 : 0);
      if (message.open.faults.has_value()) {
        const FaultSchedule& faults = *message.open.faults;
        PutU64(&out, faults.seed);
        PutDouble(&out, faults.transient_rate);
        PutDouble(&out, faults.duplicate_rate);
        PutDouble(&out, faults.drop_rate);
        PutDouble(&out, faults.corrupt_rate);
        PutU32(&out, faults.transient_failures);
      }
      break;
    case MessageType::kIngest:
      PutU64(&out, message.sequence);
      PutEdges(&out, message.edges);
      break;
    case MessageType::kFinalize:
      // The fence: the cursor the client believes the session is at.
      // Rejected on mismatch, so a finalize re-sent blindly after a
      // crash cannot seal a session that rolled back to an older
      // checkpoint. 0 = unfenced.
      PutU64(&out, message.sequence);
      break;
    case MessageType::kCheckpoint:
    case MessageType::kStats:
    case MessageType::kClose:
    case MessageType::kCloseOk:
      break;  // envelope only
    case MessageType::kOpenOk:
      PutU8(&out, message.resumed ? 1 : 0);
      PutU64(&out, message.last_sequence);
      PutU64(&out, message.edges_delivered);
      break;
    case MessageType::kIngestOk:
      PutU8(&out, message.duplicate ? 1 : 0);
      PutU64(&out, message.last_sequence);
      PutU64(&out, message.checkpoints_written);
      break;
    case MessageType::kCheckpointOk:
      PutU64(&out, message.checkpoints_written);
      break;
    case MessageType::kFinalizeOk:
      PutU8(&out, message.degraded ? 1 : 0);
      PutU64(&out, message.edges_delivered);
      PutU64(&out, message.uncovered_elements);
      PutU64(&out, message.peak_words);
      PutU64(&out, message.current_words);
      PutU64(&out, message.transient_retries);
      PutU64(&out, message.corrupt_records_skipped);
      PutU64(&out, message.faults_survived);
      PutU32Vector(&out, message.cover);
      PutU32Vector(&out, message.certificate);
      break;
    case MessageType::kStatsOk:
      if (message.session_id != 0) {
        EncodeSessionStats(&out, message.session_stats);
      } else {
        PutU64(&out, message.open_sessions);
        PutU64(&out, message.frames_received);
        PutU64(&out, message.sheds);
        PutU64(&out, message.total_edges_delivered);
      }
      break;
    case MessageType::kRetryAfter:
      PutU64(&out, message.retry_after_us);
      PutU8(&out, uint8_t(message.retry_reason));
      break;
    case MessageType::kError:
      PutString(&out, message.error);
      break;
    case MessageType::kInvalid:
      break;
  }
  PutU32(&out, Crc32c(out.data(), out.size()));
}

void EncodeIngest(uint64_t session_id, uint64_t sequence,
                  std::span<const Edge> edges, std::vector<uint8_t>* out_ptr) {
  std::vector<uint8_t>& out = *out_ptr;
  out.clear();
  PutU8(&out, uint8_t(MessageType::kIngest));
  PutU64(&out, session_id);
  PutU64(&out, sequence);
  PutEdges(&out, edges);
  PutU32(&out, Crc32c(out.data(), out.size()));
}

std::optional<Message> DecodeMessage(const std::vector<uint8_t>& payload,
                                     std::string* error) {
  auto fail = [&](const char* what) -> std::optional<Message> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (payload.size() > kMaxFrameBytes) return fail("frame too large");
  if (payload.size() < 1 + 8 + 4) return fail("frame too short");
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload.data() + payload.size() - 4, 4);
  if (Crc32c(payload.data(), payload.size() - 4) != stored_crc)
    return fail("frame checksum mismatch");

  Cursor in{payload.data(), payload.size() - 4};
  Message message;
  const uint8_t type = in.U8();
  message.type = MessageType(type);
  message.session_id = in.U64();
  switch (message.type) {
    case MessageType::kOpen: {
      message.open.algorithm = in.String(256);
      message.open.seed = in.U64();
      message.open.meta.num_sets = in.U32();
      message.open.meta.num_elements = in.U32();
      message.open.meta.stream_length = in.U64();
      message.open.checkpoint_every = in.U64();
      message.open.workers = in.U32();
      if (in.U8() != 0) {
        FaultSchedule faults;
        faults.seed = in.U64();
        faults.transient_rate = in.Double();
        faults.duplicate_rate = in.Double();
        faults.drop_rate = in.Double();
        faults.corrupt_rate = in.Double();
        faults.transient_failures = in.U32();
        message.open.faults = faults;
      }
      break;
    }
    case MessageType::kIngest: {
      message.sequence = in.U64();
      const uint32_t count = in.U32();
      if (!in.ok || count > kMaxIngestEdges ||
          in.pos + size_t(count) * 8 > in.size) {
        return fail("malformed ingest batch");
      }
      if constexpr (std::endian::native == std::endian::little) {
        message.edges.resize(count);
        if (count > 0) {
          std::memcpy(message.edges.data(), in.data + in.pos,
                      size_t(count) * sizeof(Edge));
        }
        in.pos += size_t(count) * sizeof(Edge);
      } else {
        message.edges.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          Edge edge;
          edge.set = in.U32();
          edge.element = in.U32();
          message.edges.push_back(edge);
        }
      }
      break;
    }
    case MessageType::kFinalize:
      message.sequence = in.U64();
      break;
    case MessageType::kCheckpoint:
    case MessageType::kStats:
    case MessageType::kClose:
    case MessageType::kCloseOk:
      break;
    case MessageType::kOpenOk:
      message.resumed = in.U8() != 0;
      message.last_sequence = in.U64();
      message.edges_delivered = in.U64();
      break;
    case MessageType::kIngestOk:
      message.duplicate = in.U8() != 0;
      message.last_sequence = in.U64();
      message.checkpoints_written = in.U64();
      break;
    case MessageType::kCheckpointOk:
      message.checkpoints_written = in.U64();
      break;
    case MessageType::kFinalizeOk:
      message.degraded = in.U8() != 0;
      message.edges_delivered = in.U64();
      message.uncovered_elements = in.U64();
      message.peak_words = in.U64();
      message.current_words = in.U64();
      message.transient_retries = in.U64();
      message.corrupt_records_skipped = in.U64();
      message.faults_survived = in.U64();
      message.cover = in.U32Vector(kMaxFrameBytes / 4);
      message.certificate = in.U32Vector(kMaxFrameBytes / 4);
      break;
    case MessageType::kStatsOk:
      if (message.session_id != 0) {
        message.session_stats = DecodeSessionStats(&in);
      } else {
        message.open_sessions = in.U64();
        message.frames_received = in.U64();
        message.sheds = in.U64();
        message.total_edges_delivered = in.U64();
      }
      break;
    case MessageType::kRetryAfter:
      message.retry_after_us = in.U64();
      message.retry_reason = RetryReason(in.U8());
      break;
    case MessageType::kError:
      message.error = in.String(4096);
      break;
    case MessageType::kInvalid:
    default:
      return fail("unknown message type");
  }
  if (!in.ok) return fail("truncated message body");
  if (in.pos != in.size) return fail("trailing bytes after message body");
  return message;
}

Message MakeError(uint64_t session_id, std::string what) {
  Message message;
  message.type = MessageType::kError;
  message.session_id = session_id;
  message.error = std::move(what);
  return message;
}

Message MakeRetryAfter(uint64_t session_id, uint64_t delay_us,
                       RetryReason reason) {
  Message message;
  message.type = MessageType::kRetryAfter;
  message.session_id = session_id;
  message.retry_after_us = delay_us;
  message.retry_reason = reason;
  return message;
}

}  // namespace server
}  // namespace setcover
