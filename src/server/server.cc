#include "server/server.h"

#include <chrono>
#include <condition_variable>
#include <utility>

#include "server/protocol.h"

namespace setcover {
namespace server {

SessionServer::SessionServer(ServerOptions options,
                             std::unique_ptr<Listener> listener)
    : options_(std::move(options)),
      listener_(std::move(listener)),
      manager_(options_.state_dir) {}

SessionServer::~SessionServer() { Abort(); }

void SessionServer::Start() {
  queue_ = std::make_unique<TaskQueue>(options_.worker_threads,
                                       options_.max_queue);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.session_ttl_us > 0 && !options_.state_dir.empty()) {
    // The TTL sweep: idle sessions get checkpointed and dropped so a
    // long-lived daemon's memory tracks its *active* set, not every id
    // ever opened. Interruptible sleep — DrainAndStop must not wait
    // out the sweep interval.
    eviction_thread_ = std::thread([this] {
      const auto ttl = std::chrono::microseconds(options_.session_ttl_us);
      const auto sweep =
          std::chrono::microseconds(options_.eviction_sweep_us);
      std::unique_lock<std::mutex> lock(eviction_mutex_);
      while (!eviction_cv_.wait_for(lock, sweep,
                                    [this] { return stopped_.load(); })) {
        manager_.EvictIdle(ttl);
      }
    });
  }
}

void SessionServer::AcceptLoop() {
  for (;;) {
    std::unique_ptr<Connection> accepted = listener_->Accept();
    if (accepted == nullptr) return;  // listener shut down
    std::shared_ptr<Connection> connection = std::move(accepted);
    std::lock_guard<std::mutex> lock(threads_mutex_);
    if (stopped_.load() || draining_.load()) {
      connection->Close();
      continue;
    }
    connections_.push_back(connection);
    connection_threads_.emplace_back(
        [this, connection] { ConnectionLoop(connection); });
  }
}

void SessionServer::ConnectionLoop(std::shared_ptr<Connection> connection) {
  // Per-connection execution tickets. A pipelined client keeps several
  // requests in flight on one connection; with worker_threads > 1 the
  // scheduler could otherwise apply them out of order and a windowed
  // ingest stream would see spurious sequence gaps. Each admitted
  // request takes the next ticket and its worker waits until every
  // earlier ticket from the *same connection* has replied — FIFO per
  // connection, still concurrent across connections. Deadlock-free
  // because TaskQueue pops strictly FIFO: the task holding ticket t is
  // always scheduled no later than the task waiting on it.
  struct Order {
    std::mutex mutex;
    std::condition_variable cv;
    uint64_t next = 0;  // next ticket to hand out (connection thread)
    uint64_t done = 0;  // tickets fully replied
  };
  auto order = std::make_shared<Order>();

  std::vector<uint8_t> payload;
  while (connection->Receive(&payload)) {
    frames_received_.fetch_add(1, std::memory_order_relaxed);

    std::string error;
    std::optional<Message> request = DecodeMessage(payload, &error);
    if (!request) {
      // Hostile or damaged bytes never reach the scheduler; the
      // connection stays usable for the client's (CRC-intact) retry.
      connection->Send(EncodeMessage(MakeError(0, "bad frame: " + error)));
      continue;
    }

    if (draining_.load() || stopped_.load()) {
      connection->Send(EncodeMessage(
          MakeRetryAfter(request->session_id, options_.retry_after_us,
                         RetryReason::kDraining)));
      continue;
    }

    // Admission control. The lambda owns the decoded request; the reply
    // is sent from the scheduler thread (transports serialize sends).
    Message owned = std::move(*request);
    const uint64_t session_id = owned.session_id;
    const uint64_t ticket = order->next;
    const bool admitted = queue_->TrySubmit(
        [this, connection, order, ticket,
         request = std::move(owned)]() mutable {
          {
            std::unique_lock<std::mutex> lock(order->mutex);
            order->cv.wait(lock, [&] { return order->done == ticket; });
          }
          Message reply = manager_.Handle(request);
          if (reply.type == MessageType::kStatsOk && reply.session_id == 0) {
            reply.frames_received =
                frames_received_.load(std::memory_order_relaxed);
            reply.sheds = sheds_.load(std::memory_order_relaxed);
          }
          // Per-worker encode arena: replies on the ingest hot path
          // allocate nothing once the buffer reaches working size.
          thread_local std::vector<uint8_t> encoded;
          EncodeMessage(reply, &encoded);
          connection->Send(encoded);
          {
            std::lock_guard<std::mutex> lock(order->mutex);
            order->done = ticket + 1;
          }
          order->cv.notify_all();
        });
    if (admitted) {
      // Only the connection thread mutates next, and only on admission
      // — a shed request consumes no ticket, so the sequence of
      // admitted tickets stays gap-free.
      std::lock_guard<std::mutex> lock(order->mutex);
      order->next = ticket + 1;
    } else {
      // Shed from the connection thread — rejecting work must not
      // depend on the queue that is already full.
      sheds_.fetch_add(1, std::memory_order_relaxed);
      connection->Send(EncodeMessage(MakeRetryAfter(
          session_id, options_.retry_after_us, RetryReason::kOverloaded)));
    }
  }
}

void SessionServer::StopInternal(bool drain) {
  if (stopped_.exchange(true)) return;
  draining_.store(true);

  // Stop the intake: no new connections.
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  eviction_cv_.notify_all();
  if (eviction_thread_.joinable()) eviction_thread_.join();

  // Graceful drain answers every admitted request while the
  // connections are still open, so no reply is lost.
  if (drain && queue_ != nullptr) queue_->Drain();

  // Unblock and collect the connection threads; after their join,
  // nobody can touch the queue.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (auto& connection : connections_) connection->Close();
    threads.swap(connection_threads_);
    connections_.clear();
  }
  for (std::thread& thread : threads) thread.join();

  if (queue_ != nullptr) {
    queue_->Stop();
    queue_.reset();  // joins the scheduler threads
  }

  if (drain) {
    // The drain sweep: every open session's state and exactly-once
    // cursor hit disk, so a restarted server resumes with zero replay.
    manager_.CheckpointAll(nullptr);
  }
}

void SessionServer::DrainAndStop() { StopInternal(/*drain=*/true); }

void SessionServer::Abort() { StopInternal(/*drain=*/false); }

ServerStats SessionServer::Stats() const {
  ServerStats stats;
  stats.open_sessions = manager_.OpenSessions();
  stats.frames_received = frames_received_.load(std::memory_order_relaxed);
  stats.sheds = sheds_.load(std::memory_order_relaxed);
  stats.total_edges_delivered = manager_.TotalEdgesDelivered();
  return stats;
}

}  // namespace server
}  // namespace setcover
