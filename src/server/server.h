#ifndef SETCOVER_SERVER_SERVER_H_
#define SETCOVER_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/session_manager.h"
#include "server/transport.h"
#include "util/thread_pool.h"

namespace setcover {
namespace server {

struct ServerOptions {
  /// Scheduler threads executing admitted requests.
  size_t worker_threads = 2;

  /// Admission bound: requests queued beyond this are shed with
  /// kRetryAfter(kOverloaded) instead of queueing unboundedly.
  size_t max_queue = 64;

  /// Delay hint carried in kRetryAfter replies. Clients treat it as the
  /// base of their jittered backoff, not a promise.
  uint64_t retry_after_us = 500;

  /// Session durability directory (manifests + checkpoints). Must
  /// exist. Empty => volatile sessions.
  std::string state_dir;

  /// Idle-session TTL: a persistent session untouched for this many
  /// microseconds is checkpointed and evicted from memory (the first
  /// re-touch gets kRetryAfter(kEvicted); the retry recovers it from
  /// its sidecars). 0 disables eviction. Volatile sessions are never
  /// evicted.
  uint64_t session_ttl_us = 0;

  /// How often the eviction sweep runs; only meaningful with a TTL.
  uint64_t eviction_sweep_us = 50'000;
};

/// Point-in-time server counters (the kStats/session_id=0 reply).
struct ServerStats {
  uint64_t open_sessions = 0;
  uint64_t frames_received = 0;
  uint64_t sheds = 0;
  uint64_t total_edges_delivered = 0;
};

/// The long-lived session server: accepts connections from a Listener,
/// decodes frames, and schedules admitted requests onto a bounded
/// TaskQueue over the SessionManager.
///
/// Life cycle:
///   Start()        spawn the accept loop; serve until stopped.
///   DrainAndStop() graceful: stop accepting work (in-flight requests
///                  finish, new ones get kRetryAfter(kDraining)),
///                  drain the queue, checkpoint every open session,
///                  close connections. What SIGTERM triggers.
///   Abort()        crash simulation: tear down without the final
///                  checkpoint sweep — only periodic checkpoints
///                  survive, exactly like kill -9. The soak test runs
///                  this mid-traffic and proves resumed sessions finish
///                  bit-identically.
///
/// Threading: one accept thread, one thread per live connection
/// (blocking Receive), options.worker_threads scheduler threads.
/// Replies go out from scheduler threads; the transports serialize
/// sends internally. Shedding and malformed-frame replies are sent
/// straight from the connection thread — rejecting work must not
/// depend on the very queue that is full.
class SessionServer {
 public:
  SessionServer(ServerOptions options, std::unique_ptr<Listener> listener);

  /// Abort()s if the server is still running.
  ~SessionServer();

  void Start();
  void DrainAndStop();
  void Abort();

  ServerStats Stats() const;

 private:
  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> connection);
  void StopInternal(bool drain);

  ServerOptions options_;
  std::unique_ptr<Listener> listener_;
  SessionManager manager_;
  std::unique_ptr<TaskQueue> queue_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> sheds_{0};

  std::mutex threads_mutex_;
  std::thread accept_thread_;
  std::thread eviction_thread_;
  std::condition_variable eviction_cv_;
  std::mutex eviction_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_SERVER_H_
