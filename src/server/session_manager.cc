#include "server/session_manager.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "engine/sharded_session.h"

namespace setcover {
namespace server {
namespace {

/// Delay hint on the evicted-session kRetryAfter: recovery is one
/// sidecar read away, so the client can come back almost immediately.
constexpr uint64_t kEvictedRetryUs = 1000;

/// Writes `bytes` to `path` atomically (tmp + rename), the same
/// crash-safety discipline as SaveCheckpoint: a manifest is either the
/// complete encoded kOpen frame or absent, never torn.
bool WriteFileAtomic(const std::string& path,
                     const std::vector<uint8_t>& bytes, std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    if (error != nullptr) *error = "cannot write " + tmp;
    return false;
  }
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), out) ==
                           bytes.size();
  if (std::fclose(out) != 0 || !wrote ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot persist " + path;
    return false;
  }
  return true;
}

bool ReadFile(const std::string& path, std::vector<uint8_t>* bytes) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return false;
  std::fseek(in, 0, SEEK_END);
  const long size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  bytes->resize(size > 0 ? size_t(size) : 0);
  const bool read_ok =
      bytes->empty() ||
      std::fread(bytes->data(), 1, bytes->size(), in) == bytes->size();
  std::fclose(in);
  return read_ok;
}

std::vector<uint32_t> ToU32(const std::vector<SetId>& ids) {
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

}  // namespace

SessionManager::SessionManager(std::string state_dir)
    : SessionManager(std::move(state_dir), [] { return Clock::now(); }) {}

SessionManager::SessionManager(std::string state_dir,
                               std::function<Clock::time_point()> clock)
    : state_dir_(std::move(state_dir)), clock_(std::move(clock)) {}

std::string SessionManager::CheckpointPath(uint64_t id) const {
  return state_dir_ + "/" + std::to_string(id) + ".sckp";
}

std::string SessionManager::ManifestPath(uint64_t id) const {
  return state_dir_ + "/" + std::to_string(id) + ".open";
}

void SessionManager::RemoveSidecars(uint64_t id, uint32_t workers) const {
  const std::string stem = CheckpointPath(id);
  std::remove(stem.c_str());
  for (uint32_t w = 0; w < workers; ++w)
    std::remove(engine::ShardedSession::SidecarPath(stem, w).c_str());
  std::remove(ManifestPath(id).c_str());
}

std::unique_ptr<engine::SessionHandle> SessionManager::BuildSession(
    uint64_t id, const OpenBody& open, bool resume, std::string* error) {
  engine::SessionConfig config;
  config.algorithm = open.algorithm;
  config.options.seed = open.seed;
  config.meta = open.meta;
  config.faults = open.faults;
  if (!state_dir_.empty()) {
    config.checkpoint_path = CheckpointPath(id);
    config.checkpoint_every = open.checkpoint_every;
  }
  if (open.workers > 1) {
    engine::ShardedSessionConfig sharded;
    sharded.base = std::move(config);
    sharded.workers = open.workers;
    return engine::ShardedSession::Open(sharded, resume, error);
  }
  return engine::Session::Open(config, resume, error);
}

std::optional<Message> SessionManager::EvictionGateLocked(uint64_t id) {
  auto it = evicted_.find(id);
  if (it == evicted_.end()) return std::nullopt;
  // One-shot: the retry takes the normal on-demand recovery path.
  evicted_.erase(it);
  Message reply =
      MakeRetryAfter(id, kEvictedRetryUs, RetryReason::kEvicted);
  return reply;
}

Message SessionManager::HandleOpen(const Message& request) {
  const uint64_t id = request.session_id;
  if (id == 0) return MakeError(0, "session id 0 is reserved");
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::optional<Message> gate = EvictionGateLocked(id)) return *gate;

  Message reply;
  reply.type = MessageType::kOpenOk;
  reply.session_id = id;

  auto it = sessions_.find(id);
  if (it == sessions_.end() && !state_dir_.empty()) {
    // Unknown in memory — maybe a previous incarnation of this server
    // opened it. The manifest decides.
    std::vector<uint8_t> manifest;
    if (ReadFile(ManifestPath(id), &manifest)) {
      std::string error;
      std::optional<Message> persisted = DecodeMessage(manifest, &error);
      if (!persisted || persisted->type != MessageType::kOpen)
        return MakeError(id, "corrupt session manifest: " + error);
      auto entry = std::make_shared<Entry>();
      entry->session = BuildSession(id, persisted->open, /*resume=*/true,
                                    &error);
      if (entry->session == nullptr)
        return MakeError(id, "session recovery failed: " + error);
      entry->workers = persisted->open.workers;
      it = sessions_.emplace(id, std::move(entry)).first;
    }
  }

  if (it != sessions_.end()) {
    // Re-attach (client retry of a lost kOpenOk, or a reconnect after a
    // server crash): report the durable cursor so the client resumes
    // sending from last_sequence + 1.
    it->second->last_touch = clock_();
    engine::SessionHandle& session = *it->second->session;
    reply.resumed = true;
    reply.last_sequence = session.LastSequence();
    reply.edges_delivered = session.Stats().edges_delivered;
    return reply;
  }

  // Fresh session. Persist the manifest before any state exists, so a
  // crash at any later point can always rebuild the config.
  if (!state_dir_.empty()) {
    std::string error;
    if (!WriteFileAtomic(ManifestPath(id), EncodeMessage(request), &error))
      return MakeError(id, error);
  }
  std::string error;
  auto entry = std::make_shared<Entry>();
  entry->session = BuildSession(id, request.open, /*resume=*/false, &error);
  if (entry->session == nullptr) {
    if (!state_dir_.empty()) std::remove(ManifestPath(id).c_str());
    return MakeError(id, error);
  }
  entry->workers = request.open.workers;
  entry->last_touch = clock_();
  sessions_.emplace(id, std::move(entry));
  reply.resumed = false;
  reply.last_sequence = 0;
  reply.edges_delivered = 0;
  return reply;
}

std::shared_ptr<SessionManager::Entry> SessionManager::FindOrRecover(
    uint64_t id, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    it->second->last_touch = clock_();
    return it->second;
  }
  if (!state_dir_.empty()) {
    std::vector<uint8_t> manifest;
    if (ReadFile(ManifestPath(id), &manifest)) {
      std::string decode_error;
      std::optional<Message> persisted =
          DecodeMessage(manifest, &decode_error);
      if (!persisted || persisted->type != MessageType::kOpen) {
        if (error != nullptr)
          *error = "corrupt session manifest: " + decode_error;
        return nullptr;
      }
      auto entry = std::make_shared<Entry>();
      entry->session =
          BuildSession(id, persisted->open, /*resume=*/true, error);
      if (entry->session == nullptr) return nullptr;
      entry->workers = persisted->open.workers;
      entry->last_touch = clock_();
      return sessions_.emplace(id, std::move(entry)).first->second;
    }
  }
  if (error != nullptr)
    *error = "unknown session " + std::to_string(id);
  return nullptr;
}

Message SessionManager::HandleClose(const Message& request) {
  const uint64_t id = request.session_id;
  uint32_t workers = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      workers = it->second->workers;
      sessions_.erase(it);
    }
    evicted_.erase(id);  // close ends the session; no retry gate needed
  }
  if (!state_dir_.empty()) {
    if (workers == 0) {
      // The session may live only on disk (evicted, or another server
      // incarnation opened it); the manifest knows its fan-out.
      std::vector<uint8_t> manifest;
      if (ReadFile(ManifestPath(id), &manifest)) {
        std::string error;
        std::optional<Message> persisted = DecodeMessage(manifest, &error);
        if (persisted && persisted->type == MessageType::kOpen)
          workers = persisted->open.workers;
      }
    }
    RemoveSidecars(id, workers);
  }
  Message reply;  // idempotent: closing an unknown id succeeds
  reply.type = MessageType::kCloseOk;
  reply.session_id = id;
  return reply;
}

Message SessionManager::Handle(const Message& request) {
  switch (request.type) {
    case MessageType::kOpen:
      return HandleOpen(request);
    case MessageType::kClose:
      return HandleClose(request);
    default:
      break;
  }

  // Server-scope stats never touch a session.
  if (request.type == MessageType::kStats && request.session_id == 0) {
    Message reply;
    reply.type = MessageType::kStatsOk;
    reply.session_id = 0;
    reply.open_sessions = OpenSessions();
    reply.total_edges_delivered = TotalEdgesDelivered();
    return reply;  // the server layer fills frames_received / sheds
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::optional<Message> gate = EvictionGateLocked(request.session_id))
      return *gate;
  }

  std::string error;
  std::shared_ptr<Entry> entry = FindOrRecover(request.session_id, &error);
  if (entry == nullptr) return MakeError(request.session_id, error);
  std::lock_guard<std::mutex> session_lock(entry->mutex);
  engine::SessionHandle& session = *entry->session;

  Message reply;
  reply.session_id = request.session_id;
  switch (request.type) {
    case MessageType::kIngest: {
      const engine::IngestResult result =
          session.Ingest(request.sequence, request.edges, &error);
      if (result.status == engine::IngestStatus::kOutOfOrder)
        return MakeError(request.session_id,
                         "ingest sequence gap: session is at " +
                             std::to_string(result.last_sequence));
      if (result.status == engine::IngestStatus::kFailed)
        return MakeError(request.session_id, error);
      reply.type = MessageType::kIngestOk;
      reply.duplicate = result.status == engine::IngestStatus::kDuplicate;
      reply.last_sequence = result.last_sequence;
      reply.checkpoints_written = result.checkpoints_written;
      return reply;
    }
    case MessageType::kCheckpoint: {
      if (!session.WriteCheckpoint(&error))
        return MakeError(request.session_id, error);
      reply.type = MessageType::kCheckpointOk;
      reply.checkpoints_written = session.Stats().checkpoints_written;
      return reply;
    }
    case MessageType::kFinalize: {
      // The cursor fence. A finalize re-sent blindly after a server
      // crash may land on a session recovered from a checkpoint older
      // than everything the client saw acked; sealing it there would
      // silently drop the tail of the stream. Reject so the client
      // re-attaches and refills the gap first.
      const uint64_t cursor = session.Stats().last_sequence;
      if (request.sequence != 0 && request.sequence != cursor)
        return MakeError(request.session_id,
                         "finalize fence mismatch: session is at " +
                             std::to_string(cursor) + ", client expects " +
                             std::to_string(request.sequence));
      const engine::RunReport& report = session.Finalize();
      reply.type = MessageType::kFinalizeOk;
      reply.degraded = report.degraded;
      reply.edges_delivered = report.edges_delivered;
      reply.uncovered_elements = report.uncovered_elements;
      reply.peak_words = report.peak_words;
      reply.current_words = report.current_words;
      reply.transient_retries = report.transient_retries;
      reply.corrupt_records_skipped = report.corrupt_records_skipped;
      reply.faults_survived = report.faults_survived;
      reply.cover = ToU32(report.solution.cover);
      reply.certificate = ToU32(report.solution.certificate);
      return reply;
    }
    case MessageType::kStats: {
      reply.type = MessageType::kStatsOk;
      reply.session_stats = session.Stats();
      return reply;
    }
    default:
      return MakeError(request.session_id, "unexpected message type");
  }
}

size_t SessionManager::CheckpointAll(size_t* failures) {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(sessions_.size());
    for (auto& [id, entry] : sessions_) entries.push_back(entry);
  }
  size_t written = 0, failed = 0;
  for (auto& entry : entries) {
    std::lock_guard<std::mutex> session_lock(entry->mutex);
    std::string error;
    if (entry->session->WriteCheckpoint(&error)) {
      ++written;
    } else {
      ++failed;
    }
  }
  if (failures != nullptr) *failures = failed;
  return written;
}

size_t SessionManager::EvictIdle(Clock::duration ttl) {
  if (state_dir_.empty()) return 0;  // volatile sessions are never evicted
  const Clock::time_point now = clock_();
  // The whole sweep holds the registry lock (mutex_ before Entry::mutex,
  // the same order every request path uses), so no request can slip in
  // between a session's eviction checkpoint and its removal and advance
  // state that would then be dropped.
  std::lock_guard<std::mutex> lock(mutex_);
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    // Pin the Entry past the erase below: the map may hold the last
    // reference, and session_lock must not outlive the mutex it guards.
    std::shared_ptr<Entry> entry = it->second;
    std::lock_guard<std::mutex> session_lock(entry->mutex);
    if (now - entry->last_touch < ttl) {
      ++it;
      continue;
    }
    std::string error;
    if (!entry->session->WriteCheckpoint(&error)) {
      ++it;  // never drop state that is not on disk
      continue;
    }
    evicted_.insert(it->first);
    it = sessions_.erase(it);
    ++evicted;
  }
  return evicted;
}

uint64_t SessionManager::OpenSessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

uint64_t SessionManager::TotalEdgesDelivered() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(sessions_.size());
    for (auto& [id, entry] : sessions_) entries.push_back(entry);
  }
  uint64_t total = 0;
  for (auto& entry : entries) {
    std::lock_guard<std::mutex> session_lock(entry->mutex);
    total += entry->session->Stats().edges_delivered;
  }
  return total;
}

}  // namespace server
}  // namespace setcover
