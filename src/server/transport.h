#ifndef SETCOVER_SERVER_TRANSPORT_H_
#define SETCOVER_SERVER_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace setcover {
namespace server {

/// Transport seam of the session server: a bidirectional, blocking,
/// frame-oriented connection. Send/Receive move whole frame *payloads*
/// (the CRC-carrying byte vectors of protocol.h); length-prefix
/// framing is a transport detail.
///
/// Implementations:
///   - LocalEndpoint::Connect / Listen — in-process queue pair, used by
///     the tests (exact same protocol bytes, no kernel in the loop, and
///     a server "crash" is just destroying the server object).
///   - unix-domain sockets (ListenUnix / ConnectUnix) — the real thing.
///
/// Thread safety: both implementations serialize Send internally (a
/// frame is never torn), and Receive may run concurrently with Send —
/// the server replies from scheduler threads while its connection
/// thread blocks in Receive. Only one thread may Receive at a time.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocking send of one frame payload. False once the peer is gone.
  virtual bool Send(const std::vector<uint8_t>& payload) = 0;

  /// Blocking receive of one frame payload. False on orderly close,
  /// peer crash, or malformed framing (oversized/torn length prefix).
  virtual bool Receive(std::vector<uint8_t>* payload) = 0;

  /// Unblocks both directions; further Send/Receive fail fast.
  virtual void Close() = 0;
};

/// Accept side of a transport.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next inbound connection; nullptr after Shutdown
  /// (or a fatal accept error).
  virtual std::unique_ptr<Connection> Accept() = 0;

  /// Unblocks Accept and refuses future connections. Idempotent.
  virtual void Shutdown() = 0;
};

/// In-process transport endpoint: a rendezvous object shared between a
/// test's clients and the server. The server calls Listen() (again
/// after a simulated crash — exactly like rebinding a socket path);
/// clients call Connect(), which fails while no listener is up (the
/// client's reconnect backoff handles the gap, same as a real socket).
class LocalEndpoint {
 public:
  LocalEndpoint();
  ~LocalEndpoint();

  /// Current listener, replacing any previous one (whose Accept then
  /// drains to nullptr).
  std::unique_ptr<Listener> Listen();

  /// Connects to the current listener; nullptr (with *error) when none
  /// is listening.
  std::unique_ptr<Connection> Connect(std::string* error);

  /// Opaque rendezvous state (public so the .cc's listener type can
  /// name it; never part of the API).
  struct Shared;

 private:
  std::shared_ptr<Shared> shared_;
};

/// Unix-domain stream socket listener bound at `path` (an existing
/// socket file is replaced). nullptr with *error on bind failure.
std::unique_ptr<Listener> ListenUnix(const std::string& path,
                                     std::string* error);

/// Connects to the unix-domain listener at `path`.
std::unique_ptr<Connection> ConnectUnix(const std::string& path,
                                        std::string* error);

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_TRANSPORT_H_
