#ifndef SETCOVER_SERVER_TRANSPORT_H_
#define SETCOVER_SERVER_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace setcover {
namespace server {

/// Transport seam of the session server: a bidirectional, blocking,
/// frame-oriented connection. Send/Receive move whole frame *payloads*
/// (the CRC-carrying byte vectors of protocol.h); length-prefix
/// framing is a transport detail.
///
/// Implementations:
///   - LocalEndpoint::Connect / Listen — in-process queue pair, used by
///     the tests (exact same protocol bytes, no kernel in the loop, and
///     a server "crash" is just destroying the server object).
///   - unix-domain sockets (ListenUnix / ConnectUnix) — the real thing;
///     one writev per frame (length + payload in a single syscall).
///   - same-host shared memory (ConnectShm) — two SPSC byte rings
///     (util/shm_ring.h) bootstrapped over the unix socket with
///     SCM_RIGHTS fd passing; zero syscalls on the data path.
///
/// Thread safety: both implementations serialize Send internally (a
/// frame is never torn), and Receive may run concurrently with Send —
/// the server replies from scheduler threads while its connection
/// thread blocks in Receive. Only one thread may Receive at a time.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocking send of one frame payload. False once the peer is gone.
  virtual bool Send(const std::vector<uint8_t>& payload) = 0;

  /// Blocking receive of one frame payload. False on orderly close,
  /// peer crash, or malformed framing (oversized/torn length prefix).
  virtual bool Receive(std::vector<uint8_t>* payload) = 0;

  /// Unblocks both directions; further Send/Receive fail fast.
  virtual void Close() = 0;
};

/// Accept side of a transport.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next inbound connection; nullptr after Shutdown
  /// (or a fatal accept error).
  virtual std::unique_ptr<Connection> Accept() = 0;

  /// Unblocks Accept and refuses future connections. Idempotent.
  virtual void Shutdown() = 0;
};

/// In-process transport endpoint: a rendezvous object shared between a
/// test's clients and the server. The server calls Listen() (again
/// after a simulated crash — exactly like rebinding a socket path);
/// clients call Connect(), which fails while no listener is up (the
/// client's reconnect backoff handles the gap, same as a real socket).
class LocalEndpoint {
 public:
  LocalEndpoint();
  ~LocalEndpoint();

  /// Current listener, replacing any previous one (whose Accept then
  /// drains to nullptr).
  std::unique_ptr<Listener> Listen();

  /// Connects to the current listener; nullptr (with *error) when none
  /// is listening.
  std::unique_ptr<Connection> Connect(std::string* error);

  /// Opaque rendezvous state (public so the .cc's listener type can
  /// name it; never part of the API).
  struct Shared;

 private:
  std::shared_ptr<Shared> shared_;
};

/// Unix-domain stream socket listener bound at `path` (an existing
/// socket file is replaced). nullptr with *error on bind failure.
///
/// Accepted connections are *hybrid*: the first bytes a client sends
/// pick the wire. A plain framed client (ConnectUnix) leads with a
/// frame's u32 length prefix; a shared-memory client (ConnectShm)
/// leads with a magic word — impossible as a length, it exceeds the
/// frame ceiling — plus two memfd ring fds over SCM_RIGHTS, after
/// which both directions move through the rings and the socket is kept
/// only as a liveness probe. The negotiation happens inside the
/// connection's first Receive, so a silent client never stalls Accept.
std::unique_ptr<Listener> ListenUnix(const std::string& path,
                                     std::string* error);

/// Connects to the unix-domain listener at `path`; frames travel over
/// the socket (u32 length + payload, sent as one writev).
std::unique_ptr<Connection> ConnectUnix(const std::string& path,
                                        std::string* error);

/// Connects to the unix-domain listener at `path` and upgrades the
/// connection to the same-host shared-memory transport: the client
/// creates two SPSC byte rings (util/shm_ring.h) of `ring_bytes` each
/// in anonymous memfds, hands them to the server over the socket
/// (SCM_RIGHTS), and waits for the server's ack. After the handshake,
/// frames move ring-to-ring with no syscalls on the data path; the
/// socket stays open purely so either side can detect peer death.
/// Ownership: each side maps both rings; the kernel frees the pages
/// when the last mapping dies, so a crash leaks nothing.
std::unique_ptr<Connection> ConnectShm(const std::string& path,
                                       size_t ring_bytes,
                                       std::string* error);

/// Default per-direction ring capacity for ConnectShm: comfortably
/// holds a full ingest window of max-size frames.
inline constexpr size_t kDefaultShmRingBytes = 8u << 20;

/// Test hook: wraps an already-connected stream fd (e.g. one end of a
/// socketpair) in the framed connection, with every read/write/writev
/// syscall capped at `max_io_bytes` bytes (0 = uncapped). The framing
/// tests use a 1-byte cap to prove Send/Receive survive frames
/// fragmented at every byte boundary in both directions.
std::unique_ptr<Connection> WrapFdForTest(int fd, size_t max_io_bytes);

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_TRANSPORT_H_
