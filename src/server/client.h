#ifndef SETCOVER_SERVER_CLIENT_H_
#define SETCOVER_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/transport.h"
#include "util/backoff.h"

namespace setcover {
namespace server {

struct ClientOptions {
  /// Paces reconnects and kRetryAfter waits. The jittered seeded mode
  /// (BackoffPolicy::jitter / jitter_seed) decorrelates a fleet of
  /// loadgen clients hammering one shedding server. NextDelay() doubles
  /// as the give-up budget: when the schedule is exhausted mid-op, the
  /// op fails.
  BackoffPolicy backoff;

  /// How the client waits, injectable so tests retry thousands of times
  /// without wall-clock sleeps. Defaults to a real microsecond sleep.
  std::function<void(uint64_t micros)> sleeper;
};

/// One client endpoint of the session protocol: dials through an
/// injected factory (LocalEndpoint::Connect or ConnectUnix), frames and
/// CRCs every request, and absorbs the two transient failure shapes —
///   - connection loss (server crashed / not up yet): redial with
///     backoff and re-send; safe because every op is idempotent,
///   - kRetryAfter (shedding or draining): wait the max of the server's
///     hint and the local backoff delay, then re-send.
/// kError replies are deterministic rejections and are returned to the
/// caller immediately, not retried.
///
/// Not thread-safe; give each client thread its own SessionClient.
class SessionClient {
 public:
  using Dialer =
      std::function<std::unique_ptr<Connection>(std::string* error)>;

  SessionClient(Dialer dial, ClientOptions options);

  /// Ops. Each returns true and fills *reply on the matching kXxxOk,
  /// false with *error on a kError reply or an exhausted retry budget.
  /// Open doubles as re-attach: reply->last_sequence is the server's
  /// durable cursor (resume sending from the next sequence).
  bool Open(uint64_t session_id, const OpenBody& open, Message* reply,
            std::string* error);
  bool Ingest(uint64_t session_id, uint64_t sequence,
              std::span<const Edge> edges, Message* reply,
              std::string* error);
  bool Checkpoint(uint64_t session_id, Message* reply, std::string* error);
  /// fence_sequence is the cursor the caller believes is applied; the
  /// server rejects the finalize if the session disagrees (e.g. a crash
  /// rolled it back to an older checkpoint). 0 finalizes unfenced.
  bool Finalize(uint64_t session_id, uint64_t fence_sequence, Message* reply,
                std::string* error);
  /// session_id = 0 queries server-wide stats.
  bool Stats(uint64_t session_id, Message* reply, std::string* error);
  bool Close(uint64_t session_id, Message* reply, std::string* error);

  /// Times the client was asked to shed (kRetryAfter replies seen) and
  /// times it redialed — the overload test's observables.
  uint64_t RetriesAfterShed() const { return sheds_seen_; }
  uint64_t Reconnects() const { return reconnects_; }

 private:
  bool Call(const Message& request, MessageType expect, Message* reply,
            std::string* error);
  bool EnsureConnected(ExponentialBackoff* retry, std::string* error);
  void Wait(uint64_t micros);

  Dialer dial_;
  ClientOptions options_;
  std::unique_ptr<Connection> connection_;
  std::vector<uint8_t> receive_buffer_;
  uint64_t sheds_seen_ = 0;
  uint64_t reconnects_ = 0;
};

/// Drives one whole session to its cover: open (or re-attach), stream
/// `edges` in `batch_edges`-sized sequenced batches from the server's
/// durable cursor, finalize. Any mid-stream failure re-attaches via
/// Open to learn the durable cursor and continues from there — across
/// server kills, sheds, and dropped connections the server applies
/// every batch exactly once. Fills *finalize_reply with the kFinalizeOk
/// message (cover + certificate). The soak test and setcover_loadgen
/// share this loop.
bool RunSessionToCompletion(SessionClient* client, uint64_t session_id,
                            const OpenBody& open,
                            std::span<const Edge> edges, size_t batch_edges,
                            Message* finalize_reply, std::string* error);

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_CLIENT_H_
