#ifndef SETCOVER_SERVER_CLIENT_H_
#define SETCOVER_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/transport.h"
#include "util/backoff.h"

namespace setcover {
namespace server {

struct ClientOptions {
  /// Paces reconnects and kRetryAfter waits. The jittered seeded mode
  /// (BackoffPolicy::jitter / jitter_seed) decorrelates a fleet of
  /// loadgen clients hammering one shedding server. NextDelay() doubles
  /// as the give-up budget: when the schedule is exhausted mid-op, the
  /// op fails.
  BackoffPolicy backoff;

  /// How the client waits, injectable so tests retry thousands of times
  /// without wall-clock sleeps. Defaults to a real microsecond sleep.
  std::function<void(uint64_t micros)> sleeper;
};

/// One client endpoint of the session protocol: dials through an
/// injected factory (LocalEndpoint::Connect or ConnectUnix), frames and
/// CRCs every request, and absorbs the two transient failure shapes —
///   - connection loss (server crashed / not up yet): redial with
///     backoff and re-send; safe because every op is idempotent,
///   - kRetryAfter (shedding or draining): wait the max of the server's
///     hint and the local backoff delay, then re-send.
/// kError replies are deterministic rejections and are returned to the
/// caller immediately, not retried.
///
/// Outcome of one windowed streaming attempt (StreamWindow).
enum class WindowOutcome {
  kCompleted,  // every remaining batch is sent and cumulatively acked
  kResync,     // disruption mid-window: re-Open to learn the durable
               // cursor, then refill from there
  kFailed,     // dial budget exhausted — the failure is real
};

/// Not thread-safe; give each client thread its own SessionClient.
class SessionClient {
 public:
  using Dialer =
      std::function<std::unique_ptr<Connection>(std::string* error)>;

  SessionClient(Dialer dial, ClientOptions options);

  /// Ops. Each returns true and fills *reply on the matching kXxxOk,
  /// false with *error on a kError reply or an exhausted retry budget.
  /// Open doubles as re-attach: reply->last_sequence is the server's
  /// durable cursor (resume sending from the next sequence).
  bool Open(uint64_t session_id, const OpenBody& open, Message* reply,
            std::string* error);
  bool Ingest(uint64_t session_id, uint64_t sequence,
              std::span<const Edge> edges, Message* reply,
              std::string* error);
  bool Checkpoint(uint64_t session_id, Message* reply, std::string* error);
  /// fence_sequence is the cursor the caller believes is applied; the
  /// server rejects the finalize if the session disagrees (e.g. a crash
  /// rolled it back to an older checkpoint). 0 finalizes unfenced.
  bool Finalize(uint64_t session_id, uint64_t fence_sequence, Message* reply,
                std::string* error);
  /// session_id = 0 queries server-wide stats.
  bool Stats(uint64_t session_id, Message* reply, std::string* error);
  bool Close(uint64_t session_id, Message* reply, std::string* error);

  /// The pipelined ingest fast path: streams batches
  /// [*next_sequence, total_batches] keeping up to `window` un-acked
  /// frames in flight, encoding each straight from `edges` with
  /// EncodeIngest (no per-batch Message or allocation). Acks are
  /// cumulative — one kIngestOk retires every in-flight batch up to its
  /// last_sequence, invoking `ingest_latency` (optional) with each
  /// batch's send-to-ack microseconds. On kCompleted, *next_sequence is
  /// total_batches + 1. Any disruption — torn link, shed, or a kError
  /// such as the sequence gap a crashed server induces — drops the
  /// connection (discarding in-flight replies with it) and returns
  /// kResync: the caller re-Opens, resets *next_sequence from the
  /// durable cursor, and calls again; exactly-once ingest makes the
  /// overlap safe.
  WindowOutcome StreamWindow(
      uint64_t session_id, std::span<const Edge> edges, size_t batch_edges,
      uint64_t total_batches, uint64_t* next_sequence, size_t window,
      const std::function<void(uint64_t micros)>& ingest_latency,
      std::string* error);

  /// Times the client was asked to shed (kRetryAfter replies seen) and
  /// times it redialed — the overload test's observables.
  uint64_t RetriesAfterShed() const { return sheds_seen_; }
  uint64_t Reconnects() const { return reconnects_; }

 private:
  bool Call(const Message& request, MessageType expect, Message* reply,
            std::string* error);
  bool EnsureConnected(ExponentialBackoff* retry, std::string* error);
  void Wait(uint64_t micros);

  Dialer dial_;
  ClientOptions options_;
  std::unique_ptr<Connection> connection_;
  std::vector<uint8_t> send_buffer_;  // encode arena, reused per call
  std::vector<uint8_t> receive_buffer_;
  uint64_t sheds_seen_ = 0;
  uint64_t reconnects_ = 0;
};

/// Tuning for RunSessionToCompletion.
struct RunSessionOptions {
  size_t batch_edges = 4096;

  /// Un-acked ingest batches kept in flight. 1 (the default) is the
  /// strict request–response loop — bit-for-bit the pre-windowing
  /// behavior; larger windows pipeline sends through StreamWindow and
  /// rely on cumulative acks.
  size_t window = 1;

  /// Optional per-batch send-to-ack latency observer (microseconds);
  /// feeds the loadgen histogram. Runs on the calling thread.
  std::function<void(uint64_t micros)> ingest_latency;
};

/// Drives one whole session to its cover: open (or re-attach), stream
/// `edges` in `batch_edges`-sized sequenced batches from the server's
/// durable cursor, finalize. Any mid-stream failure re-attaches via
/// Open to learn the durable cursor and continues from there — across
/// server kills, sheds, and dropped connections the server applies
/// every batch exactly once. Fills *finalize_reply with the kFinalizeOk
/// message (cover + certificate). The soak test and setcover_loadgen
/// share this loop.
bool RunSessionToCompletion(SessionClient* client, uint64_t session_id,
                            const OpenBody& open,
                            std::span<const Edge> edges, size_t batch_edges,
                            Message* finalize_reply, std::string* error);

/// Same, with windowed pipelining and latency observation. The crash
/// resync generalizes to mid-window disruptions: any failure re-Opens
/// to learn the durable cursor and refills from there, whether one
/// batch or a whole window was outstanding.
bool RunSessionToCompletion(SessionClient* client, uint64_t session_id,
                            const OpenBody& open,
                            std::span<const Edge> edges,
                            const RunSessionOptions& options,
                            Message* finalize_reply, std::string* error);

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_CLIENT_H_
