#include "server/transport.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace setcover {
namespace server {
namespace {

/// Transport-level ceiling on one frame, slightly above the protocol's
/// kMaxFrameBytes so a just-oversized payload is rejected by
/// DecodeMessage (with a protocol error the tests can see) rather than
/// torn at the transport. Anything larger than this is framing
/// corruption and kills the connection.
constexpr uint32_t kMaxTransportFrameBytes = (1u << 20) + 1024;

// --------------------------------------------------------------------
// In-process transport.
// --------------------------------------------------------------------

/// One direction of a local connection: a queue of frame payloads.
/// Closing either end closes both directions of the owning connection.
struct Pipe {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<std::vector<uint8_t>> frames;
  bool closed = false;

  bool Push(const std::vector<uint8_t>& payload) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closed) return false;
      frames.push_back(payload);
    }
    ready.notify_one();
    return true;
  }

  bool Pop(std::vector<uint8_t>* payload) {
    std::unique_lock<std::mutex> lock(mutex);
    ready.wait(lock, [&] { return !frames.empty() || closed; });
    if (frames.empty()) return false;  // closed and drained
    *payload = std::move(frames.front());
    frames.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    ready.notify_all();
  }
};

/// One end of an in-process connection: sends into one pipe, receives
/// from the other. The two ends share the pipes via shared_ptr, so a
/// destroyed server leaves clients with cleanly-closed connections.
class LocalConnection : public Connection {
 public:
  LocalConnection(std::shared_ptr<Pipe> outbound, std::shared_ptr<Pipe> inbound)
      : outbound_(std::move(outbound)), inbound_(std::move(inbound)) {}

  ~LocalConnection() override { Close(); }

  bool Send(const std::vector<uint8_t>& payload) override {
    if (payload.size() > kMaxTransportFrameBytes) return false;
    return outbound_->Push(payload);
  }

  bool Receive(std::vector<uint8_t>* payload) override {
    return inbound_->Pop(payload);
  }

  void Close() override {
    outbound_->Close();
    inbound_->Close();
  }

 private:
  std::shared_ptr<Pipe> outbound_;
  std::shared_ptr<Pipe> inbound_;
};

class LocalListener;

}  // namespace

/// Rendezvous state shared by a LocalEndpoint's handle(s) and every
/// listener/connection created through it.
struct LocalEndpoint::Shared {
  std::mutex mutex;
  std::condition_variable accept_ready;
  // Connections accepted but not yet returned by Accept(). Owned by the
  // current listener generation; replaced wholesale on re-Listen.
  std::deque<std::unique_ptr<Connection>> pending;
  uint64_t generation = 0;  // bumped by Listen(); stale listeners drain
  bool listening = false;
};

namespace {

class LocalListener : public Listener {
 public:
  LocalListener(std::shared_ptr<LocalEndpoint::Shared> shared,
                uint64_t generation)
      : shared_(std::move(shared)), generation_(generation) {}

  ~LocalListener() override { Shutdown(); }

  std::unique_ptr<Connection> Accept() override {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    shared_->accept_ready.wait(lock, [&] {
      return shared_->generation != generation_ || !shared_->listening ||
             !shared_->pending.empty();
    });
    if (shared_->generation != generation_ || !shared_->listening)
      return nullptr;
    std::unique_ptr<Connection> connection =
        std::move(shared_->pending.front());
    shared_->pending.pop_front();
    return connection;
  }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      if (shared_->generation != generation_) return;  // already replaced
      shared_->listening = false;
      shared_->pending.clear();
    }
    shared_->accept_ready.notify_all();
  }

 private:
  std::shared_ptr<LocalEndpoint::Shared> shared_;
  uint64_t generation_;
};

}  // namespace

LocalEndpoint::LocalEndpoint() : shared_(std::make_shared<Shared>()) {}

LocalEndpoint::~LocalEndpoint() {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  shared_->listening = false;
  shared_->pending.clear();
}

std::unique_ptr<Listener> LocalEndpoint::Listen() {
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    generation = ++shared_->generation;
    shared_->listening = true;
    shared_->pending.clear();
  }
  shared_->accept_ready.notify_all();  // drain any stale Accept to nullptr
  return std::make_unique<LocalListener>(shared_, generation);
}

std::unique_ptr<Connection> LocalEndpoint::Connect(std::string* error) {
  auto a_to_b = std::make_shared<Pipe>();
  auto b_to_a = std::make_shared<Pipe>();
  auto client_end = std::make_unique<LocalConnection>(a_to_b, b_to_a);
  auto server_end = std::make_unique<LocalConnection>(b_to_a, a_to_b);
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    if (!shared_->listening) {
      if (error != nullptr) *error = "connection refused: no listener";
      return nullptr;
    }
    shared_->pending.push_back(std::move(server_end));
  }
  shared_->accept_ready.notify_one();
  return client_end;
}

// --------------------------------------------------------------------
// Unix-domain socket transport.
// --------------------------------------------------------------------

namespace {

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    data += n;
    size -= size_t(n);
  }
  return true;
}

bool ReadAll(int fd, uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed mid-frame (or cleanly)
    data += n;
    size -= size_t(n);
  }
  return true;
}

/// Frame-over-stream connection: u32 little-endian payload length, then
/// the payload bytes. Send and Receive each hold their own lock so one
/// reader and one writer can run concurrently.
class UnixConnection : public Connection {
 public:
  explicit UnixConnection(int fd) : fd_(fd) {}

  ~UnixConnection() override {
    Close();
    ::close(fd_);
  }

  bool Send(const std::vector<uint8_t>& payload) override {
    if (payload.size() > kMaxTransportFrameBytes) return false;
    uint8_t prefix[4];
    const uint32_t length = uint32_t(payload.size());
    for (int i = 0; i < 4; ++i) prefix[i] = uint8_t(length >> (8 * i));
    std::lock_guard<std::mutex> lock(send_mutex_);
    return WriteAll(fd_, prefix, sizeof prefix) &&
           WriteAll(fd_, payload.data(), payload.size());
  }

  bool Receive(std::vector<uint8_t>* payload) override {
    uint8_t prefix[4];
    if (!ReadAll(fd_, prefix, sizeof prefix)) return false;
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) length |= uint32_t(prefix[i]) << (8 * i);
    if (length > kMaxTransportFrameBytes) return false;
    payload->resize(length);
    return length == 0 || ReadAll(fd_, payload->data(), length);
  }

  void Close() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
  std::mutex send_mutex_;
};

class UnixListener : public Listener {
 public:
  explicit UnixListener(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~UnixListener() override {
    Shutdown();
    ::close(fd_);
    ::unlink(path_.c_str());
  }

  std::unique_ptr<Connection> Accept() override {
    for (;;) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) return std::make_unique<UnixConnection>(client);
      if (errno == EINTR) continue;
      return nullptr;  // shut down, or a fatal accept error
    }
  }

  void Shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
  std::string path_;
};

bool FillAddress(const std::string& path, sockaddr_un* address,
                 std::string* error) {
  if (path.size() >= sizeof(address->sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memset(address, 0, sizeof *address);
  address->sun_family = AF_UNIX;
  std::memcpy(address->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

std::unique_ptr<Listener> ListenUnix(const std::string& path,
                                     std::string* error) {
  sockaddr_un address;
  if (!FillAddress(path, &address, error)) return nullptr;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return nullptr;
  }
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(fd, 128) != 0) {
    if (error != nullptr)
      *error = std::string("bind ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<UnixListener>(fd, path);
}

std::unique_ptr<Connection> ConnectUnix(const std::string& path,
                                        std::string* error) {
  sockaddr_un address;
  if (!FillAddress(path, &address, error)) return nullptr;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    if (error != nullptr)
      *error = std::string("connect ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<UnixConnection>(fd);
}

}  // namespace server
}  // namespace setcover
