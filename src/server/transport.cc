#include "server/transport.h"

#include "util/eintr.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/shm_ring.h"

namespace setcover {
namespace server {
namespace {

/// Transport-level ceiling on one frame, slightly above the protocol's
/// kMaxFrameBytes so a just-oversized payload is rejected by
/// DecodeMessage (with a protocol error the tests can see) rather than
/// torn at the transport. Anything larger than this is framing
/// corruption and kills the connection.
constexpr uint32_t kMaxTransportFrameBytes = (1u << 20) + 1024;

// --------------------------------------------------------------------
// In-process transport.
// --------------------------------------------------------------------

/// One direction of a local connection: a queue of frame payloads.
/// Closing either end closes both directions of the owning connection.
struct Pipe {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<std::vector<uint8_t>> frames;
  bool closed = false;

  bool Push(const std::vector<uint8_t>& payload) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closed) return false;
      frames.push_back(payload);
    }
    ready.notify_one();
    return true;
  }

  bool Pop(std::vector<uint8_t>* payload) {
    std::unique_lock<std::mutex> lock(mutex);
    ready.wait(lock, [&] { return !frames.empty() || closed; });
    if (frames.empty()) return false;  // closed and drained
    *payload = std::move(frames.front());
    frames.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    ready.notify_all();
  }
};

/// One end of an in-process connection: sends into one pipe, receives
/// from the other. The two ends share the pipes via shared_ptr, so a
/// destroyed server leaves clients with cleanly-closed connections.
class LocalConnection : public Connection {
 public:
  LocalConnection(std::shared_ptr<Pipe> outbound, std::shared_ptr<Pipe> inbound)
      : outbound_(std::move(outbound)), inbound_(std::move(inbound)) {}

  ~LocalConnection() override { Close(); }

  bool Send(const std::vector<uint8_t>& payload) override {
    if (payload.size() > kMaxTransportFrameBytes) return false;
    return outbound_->Push(payload);
  }

  bool Receive(std::vector<uint8_t>* payload) override {
    return inbound_->Pop(payload);
  }

  void Close() override {
    outbound_->Close();
    inbound_->Close();
  }

 private:
  std::shared_ptr<Pipe> outbound_;
  std::shared_ptr<Pipe> inbound_;
};

class LocalListener;

}  // namespace

/// Rendezvous state shared by a LocalEndpoint's handle(s) and every
/// listener/connection created through it.
struct LocalEndpoint::Shared {
  std::mutex mutex;
  std::condition_variable accept_ready;
  // Connections accepted but not yet returned by Accept(). Owned by the
  // current listener generation; replaced wholesale on re-Listen.
  std::deque<std::unique_ptr<Connection>> pending;
  uint64_t generation = 0;  // bumped by Listen(); stale listeners drain
  bool listening = false;
};

namespace {

class LocalListener : public Listener {
 public:
  LocalListener(std::shared_ptr<LocalEndpoint::Shared> shared,
                uint64_t generation)
      : shared_(std::move(shared)), generation_(generation) {}

  ~LocalListener() override { Shutdown(); }

  std::unique_ptr<Connection> Accept() override {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    shared_->accept_ready.wait(lock, [&] {
      return shared_->generation != generation_ || !shared_->listening ||
             !shared_->pending.empty();
    });
    if (shared_->generation != generation_ || !shared_->listening)
      return nullptr;
    std::unique_ptr<Connection> connection =
        std::move(shared_->pending.front());
    shared_->pending.pop_front();
    return connection;
  }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      if (shared_->generation != generation_) return;  // already replaced
      shared_->listening = false;
      shared_->pending.clear();
    }
    shared_->accept_ready.notify_all();
  }

 private:
  std::shared_ptr<LocalEndpoint::Shared> shared_;
  uint64_t generation_;
};

}  // namespace

LocalEndpoint::LocalEndpoint() : shared_(std::make_shared<Shared>()) {}

LocalEndpoint::~LocalEndpoint() {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  shared_->listening = false;
  shared_->pending.clear();
}

std::unique_ptr<Listener> LocalEndpoint::Listen() {
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    generation = ++shared_->generation;
    shared_->listening = true;
    shared_->pending.clear();
  }
  shared_->accept_ready.notify_all();  // drain any stale Accept to nullptr
  return std::make_unique<LocalListener>(shared_, generation);
}

std::unique_ptr<Connection> LocalEndpoint::Connect(std::string* error) {
  auto a_to_b = std::make_shared<Pipe>();
  auto b_to_a = std::make_shared<Pipe>();
  auto client_end = std::make_unique<LocalConnection>(a_to_b, b_to_a);
  auto server_end = std::make_unique<LocalConnection>(b_to_a, a_to_b);
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    if (!shared_->listening) {
      if (error != nullptr) *error = "connection refused: no listener";
      return nullptr;
    }
    shared_->pending.push_back(std::move(server_end));
  }
  shared_->accept_ready.notify_one();
  return client_end;
}

// --------------------------------------------------------------------
// Unix-domain socket transport (+ the shared-memory upgrade).
// --------------------------------------------------------------------

namespace {

/// Magic word a ConnectShm client sends where a framed client would
/// send its first length prefix. Chosen above kMaxTransportFrameBytes,
/// so it can never be a legitimate length — the accepted side
/// disambiguates the two wire dialects from the first four bytes.
constexpr uint32_t kShmHandshakeMagic = 0x314D4853;  // "SHM1" (LE)

/// The server's one-byte handshake ack: "both rings mapped, start
/// pushing frames".
constexpr uint8_t kShmHandshakeAck = 0x5A;

size_t CapIo(size_t size, size_t max_io) {
  return max_io == 0 ? size : std::min(size, max_io);
}

bool WriteAll(int fd, const uint8_t* data, size_t size, size_t max_io) {
  while (size > 0) {
    const ssize_t n =
        RetryEintr([&] { return ::write(fd, data, CapIo(size, max_io)); });
    if (n <= 0) return false;
    data += n;
    size -= size_t(n);
  }
  return true;
}

bool ReadAll(int fd, uint8_t* data, size_t size, size_t max_io) {
  while (size > 0) {
    const ssize_t n =
        RetryEintr([&] { return ::read(fd, data, CapIo(size, max_io)); });
    if (n <= 0) return false;  // peer closed mid-frame (or cleanly)
    data += n;
    size -= size_t(n);
  }
  return true;
}

/// One frame — length prefix and payload — in a single writev, resumed
/// across partial writes. Two buffers, one syscall in the common case,
/// instead of the two write()s the first cut of this transport paid
/// per frame.
bool WritevFrame(int fd, const uint8_t prefix[4],
                 const std::vector<uint8_t>& payload, size_t max_io) {
  size_t done = 0;  // bytes of (prefix + payload) already on the wire
  const size_t total = 4 + payload.size();
  while (done < total) {
    iovec iov[2];
    int iovcnt = 0;
    size_t budget = max_io == 0 ? size_t(-1) : max_io;
    if (done < 4) {
      iov[iovcnt].iov_base = const_cast<uint8_t*>(prefix) + done;
      iov[iovcnt].iov_len = std::min(4 - done, budget);
      budget -= iov[iovcnt].iov_len;
      ++iovcnt;
    }
    const size_t payload_done = done > 4 ? done - 4 : 0;
    if (payload_done < payload.size() && budget > 0) {
      iov[iovcnt].iov_base =
          const_cast<uint8_t*>(payload.data()) + payload_done;
      iov[iovcnt].iov_len = std::min(payload.size() - payload_done, budget);
      ++iovcnt;
    }
    const ssize_t n = RetryEintr([&] { return ::writev(fd, iov, iovcnt); });
    if (n <= 0) return false;
    done += size_t(n);
  }
  return true;
}

/// Sends `count` fds over the socket with SCM_RIGHTS, riding on the
/// 4-byte handshake magic as the required data byte(s).
bool SendFdsWithMagic(int fd, uint32_t magic, const int* fds, size_t count) {
  uint8_t word[4];
  for (int i = 0; i < 4; ++i) word[i] = uint8_t(magic >> (8 * i));
  iovec iov{word, sizeof word};
  alignas(cmsghdr) char control[CMSG_SPACE(2 * sizeof(int))];
  std::memset(control, 0, sizeof control);
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = CMSG_SPACE(count * sizeof(int));
  cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(count * sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), fds, count * sizeof(int));
  const ssize_t n = RetryEintr([&] { return ::sendmsg(fd, &msg, 0); });
  return n >= 0 && size_t(n) == sizeof word;
}

/// Receives the remainder of the 4-byte preamble plus any SCM_RIGHTS
/// fds attached to it. `already` bytes of *word were consumed by a
/// previous call. Appends received fds to *fds. False on EOF/error.
bool RecvPreamble(int fd, uint8_t word[4], size_t already,
                  std::vector<int>* fds) {
  size_t have = already;
  while (have < 4) {
    iovec iov{word + have, 4 - have};
    alignas(cmsghdr) char control[CMSG_SPACE(8 * sizeof(int))];
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof control;
    const ssize_t n = RetryEintr([&] { return ::recvmsg(fd, &msg, 0); });
    if (n <= 0) return false;
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS)
        continue;
      const size_t bytes = cmsg->cmsg_len - CMSG_LEN(0);
      const size_t count = bytes / sizeof(int);
      for (size_t i = 0; i < count; ++i) {
        int received = -1;
        std::memcpy(&received, CMSG_DATA(cmsg) + i * sizeof(int),
                    sizeof(int));
        fds->push_back(received);
      }
    }
    have += size_t(n);
  }
  return true;
}

/// Frame connection over a connected stream fd: u32 little-endian
/// payload length + payload bytes, one writev per frame. Send and
/// Receive each hold their own lock so one reader and one writer can
/// run concurrently.
///
/// Accepted (server-side) connections are hybrid: the first Receive
/// reads the 4-byte preamble and either treats it as the first frame's
/// length (plain client) or, on the shm magic, completes the
/// shared-memory handshake — map the client's two rings, ack — and
/// switches both directions onto the rings. The socket then serves
/// only as the liveness probe the rings' idle watcher polls.
class FdConnection : public Connection {
 public:
  FdConnection(int fd, bool negotiate, size_t max_io_bytes = 0)
      : fd_(fd), negotiate_(negotiate), max_io_(max_io_bytes) {}

  ~FdConnection() override {
    Close();
    ::close(fd_);
  }

  /// Installs mapped rings (client side after ConnectShm's handshake,
  /// or server side mid-negotiation). `inbound` is the ring this end
  /// pops, `outbound` the ring it pushes.
  void AdoptRings(std::unique_ptr<ShmRing> inbound,
                  std::unique_ptr<ShmRing> outbound) {
    ring_in_ = std::move(inbound);
    ring_out_ = std::move(outbound);
    // A crashed peer can never flip the rings' closed flag, so both
    // wait loops poll the bootstrap socket: EOF or error there means
    // the peer is gone and the wait must end.
    auto watcher = [this] {
      uint8_t probe;
      const ssize_t n =
          ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n > 0) return true;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        return true;
      }
      return false;  // EOF or hard error: peer died
    };
    ring_in_->SetIdleWatcher(watcher);
    ring_out_->SetIdleWatcher(watcher);
    shm_.store(true, std::memory_order_release);
  }

  bool Send(const std::vector<uint8_t>& payload) override {
    if (payload.size() > kMaxTransportFrameBytes) return false;
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (shm_.load(std::memory_order_acquire))
      return ring_out_->PushFrame(payload);
    uint8_t prefix[4];
    const uint32_t length = uint32_t(payload.size());
    for (int i = 0; i < 4; ++i) prefix[i] = uint8_t(length >> (8 * i));
    return WritevFrame(fd_, prefix, payload, max_io_);
  }

  bool Receive(std::vector<uint8_t>* payload) override {
    if (shm_.load(std::memory_order_acquire))
      return ring_in_->PopFrame(payload);

    uint32_t length = 0;
    if (negotiate_) {
      // First receive on an accepted connection: the preamble picks
      // the dialect. Plain clients' first length arrives here too.
      negotiate_ = false;
      uint8_t word[4];
      std::vector<int> fds;
      const bool got = RecvPreamble(fd_, word, 0, &fds);
      if (!got) {
        for (int fd : fds) ::close(fd);
        return false;
      }
      for (int i = 0; i < 4; ++i) length |= uint32_t(word[i]) << (8 * i);
      if (length == kShmHandshakeMagic) {
        if (!FinishShmAccept(fds)) return false;
        return ring_in_->PopFrame(payload);
      }
      for (int fd : fds) ::close(fd);  // framed dialect never carries fds
    } else {
      uint8_t prefix[4];
      if (!ReadAll(fd_, prefix, sizeof prefix, max_io_)) return false;
      for (int i = 0; i < 4; ++i) length |= uint32_t(prefix[i]) << (8 * i);
    }
    if (length > kMaxTransportFrameBytes) return false;
    payload->resize(length);
    return length == 0 || ReadAll(fd_, payload->data(), length, max_io_);
  }

  void Close() override {
    if (ring_in_ != nullptr) ring_in_->Close();
    if (ring_out_ != nullptr) ring_out_->Close();
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  bool FinishShmAccept(std::vector<int>& fds) {
    // The client sent [its-outbound, its-inbound]; from this side that
    // is [inbound, outbound]. Map both, then ack so the client knows
    // the pages are pinned on this end.
    if (fds.size() != 2) {
      for (int fd : fds) ::close(fd);
      return false;
    }
    std::string error;
    std::unique_ptr<ShmRing> inbound = ShmRing::Map(fds[0], &error);
    std::unique_ptr<ShmRing> outbound =
        inbound != nullptr ? ShmRing::Map(fds[1], &error) : nullptr;
    if (outbound == nullptr) {
      if (inbound == nullptr) ::close(fds[1]);  // Map closed fds[0]
      return false;
    }
    const uint8_t ack = kShmHandshakeAck;
    if (!WriteAll(fd_, &ack, 1, 0)) return false;
    std::lock_guard<std::mutex> lock(send_mutex_);
    AdoptRings(std::move(inbound), std::move(outbound));
    return true;
  }

  int fd_;
  bool negotiate_;  // touched only by the (single) receiving thread
  size_t max_io_;
  std::mutex send_mutex_;
  std::atomic<bool> shm_{false};
  std::unique_ptr<ShmRing> ring_in_;
  std::unique_ptr<ShmRing> ring_out_;
};

class UnixListener : public Listener {
 public:
  explicit UnixListener(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~UnixListener() override {
    Shutdown();
    ::close(fd_);
    ::unlink(path_.c_str());
  }

  std::unique_ptr<Connection> Accept() override {
    const int client =
        RetryEintr([&] { return ::accept(fd_, nullptr, nullptr); });
    if (client < 0) return nullptr;  // shut down, or a fatal accept error
    return std::make_unique<FdConnection>(client, /*negotiate=*/true);
  }

  void Shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
  std::string path_;
};

bool FillAddress(const std::string& path, sockaddr_un* address,
                 std::string* error) {
  if (path.size() >= sizeof(address->sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memset(address, 0, sizeof *address);
  address->sun_family = AF_UNIX;
  std::memcpy(address->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

std::unique_ptr<Listener> ListenUnix(const std::string& path,
                                     std::string* error) {
  sockaddr_un address;
  if (!FillAddress(path, &address, error)) return nullptr;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return nullptr;
  }
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(fd, 128) != 0) {
    if (error != nullptr)
      *error = std::string("bind ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<UnixListener>(fd, path);
}

namespace {

int DialUnix(const std::string& path, std::string* error) {
  sockaddr_un address;
  if (!FillAddress(path, &address, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    if (error != nullptr)
      *error = std::string("connect ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

std::unique_ptr<Connection> ConnectUnix(const std::string& path,
                                        std::string* error) {
  const int fd = DialUnix(path, error);
  if (fd < 0) return nullptr;
  return std::make_unique<FdConnection>(fd, /*negotiate=*/false);
}

std::unique_ptr<Connection> ConnectShm(const std::string& path,
                                       size_t ring_bytes,
                                       std::string* error) {
  const int fd = DialUnix(path, error);
  if (fd < 0) return nullptr;

  // The client owns ring creation; the server only maps. Naming is
  // from the client's point of view: outbound carries requests,
  // inbound carries replies.
  std::unique_ptr<ShmRing> outbound = ShmRing::Create(ring_bytes, error);
  std::unique_ptr<ShmRing> inbound =
      outbound != nullptr ? ShmRing::Create(ring_bytes, error) : nullptr;
  if (inbound == nullptr) {
    ::close(fd);
    return nullptr;
  }

  const int ring_fds[2] = {outbound->Fd(), inbound->Fd()};
  if (!SendFdsWithMagic(fd, kShmHandshakeMagic, ring_fds, 2)) {
    if (error != nullptr) *error = "shm handshake send failed";
    ::close(fd);
    return nullptr;
  }
  uint8_t ack = 0;
  if (!ReadAll(fd, &ack, 1, 0) || ack != kShmHandshakeAck) {
    if (error != nullptr) *error = "shm handshake rejected by server";
    ::close(fd);
    return nullptr;
  }

  auto connection = std::make_unique<FdConnection>(fd, /*negotiate=*/false);
  connection->AdoptRings(std::move(inbound), std::move(outbound));
  return connection;
}

std::unique_ptr<Connection> WrapFdForTest(int fd, size_t max_io_bytes) {
  return std::make_unique<FdConnection>(fd, /*negotiate=*/false,
                                        max_io_bytes);
}

}  // namespace server
}  // namespace setcover
