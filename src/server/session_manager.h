#ifndef SETCOVER_SERVER_SESSION_MANAGER_H_
#define SETCOVER_SERVER_SESSION_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "engine/session.h"
#include "server/protocol.h"

namespace setcover {
namespace server {

/// Owns every live ingest session, keyed by client-chosen session id,
/// and maps decoded protocol requests onto engine::SessionHandle calls.
/// Transport-agnostic: the server hands it Messages from scheduler
/// threads; tests can drive it directly.
///
/// Execution substrate: OpenBody::workers picks the handle behind an
/// id — one in-process engine::Session (workers <= 1), or an
/// engine::ShardedSession fanning each batch across W set-partitioned
/// sub-sessions merged through the deterministic t-party protocol.
/// Either way the manager speaks only SessionHandle, so one daemon
/// serves both.
///
/// Durability: with a state_dir, each session persists two sidecar
/// files —
///   <state_dir>/<id>.open   the encoded kOpen frame (the manifest:
///                           exactly what the client declared)
///   <state_dir>/<id>.sckp   the engine checkpoint (state + exactly-once
///                           cursor), rewritten every checkpoint_every
///                           delivered edges and on drain; sharded
///                           sessions write one per worker
///                           (<id>.sckp.w<k>)
/// A restarted manager recovers a session *on demand*, the first time
/// any op names an id it does not hold in memory: manifest -> config,
/// checkpoint -> state. A session that crashed before its first
/// checkpoint recovers at sequence 0 and the client replays from the
/// start — still exactly-once, because replayed batches walk the same
/// sequence numbers. Without a state_dir every session is volatile.
///
/// Idle eviction: EvictIdle(ttl) checkpoints and drops persistent
/// sessions that have not been touched for `ttl` (volatile sessions are
/// never evicted — dropping them would lose state the client was
/// promised). The first request that touches an evicted id gets
/// kRetryAfter(kEvicted); the retry then recovers the session from its
/// sidecars through the normal on-demand path. The server runs the
/// sweep on a background thread (ServerOptions::session_ttl).
///
/// Concurrency: a sharded-by-session two-level lock. The registry map
/// is guarded by `mutex_`, held only for lookup/insert/erase; each
/// session's work happens under its own Entry::mutex, so concurrent
/// batches for different sessions never serialize on each other.
class SessionManager {
 public:
  using Clock = std::chrono::steady_clock;

  /// `state_dir` empty => volatile sessions. The directory must exist.
  explicit SessionManager(std::string state_dir);

  /// Test seam: eviction deadlines read `clock` instead of wall time.
  SessionManager(std::string state_dir,
                 std::function<Clock::time_point()> clock);

  /// Handles one decoded request and returns the reply message
  /// (kXxxOk, kError, or kRetryAfter for the first touch of an evicted
  /// session). Thread-safe. Load-shedding kRetryAfter happens upstream
  /// in the server; by the time a request reaches the manager it has
  /// been admitted.
  Message Handle(const Message& request);

  /// Checkpoints every open session (graceful drain). Returns how many
  /// sessions were checkpointed; sessions whose write fails are counted
  /// in *failures but do not stop the sweep.
  size_t CheckpointAll(size_t* failures);

  /// Checkpoints and evicts every persistent session idle for at least
  /// `ttl`. Returns how many sessions were evicted; a session whose
  /// checkpoint write fails stays resident (never drop state that is
  /// not on disk).
  size_t EvictIdle(Clock::duration ttl);

  /// Open-session count and total delivered edges, for server-scope
  /// stats.
  uint64_t OpenSessions() const;
  uint64_t TotalEdgesDelivered() const;

 private:
  struct Entry {
    std::mutex mutex;
    std::unique_ptr<engine::SessionHandle> session;
    /// Worker fan-out declared at open (sidecar cleanup needs it).
    uint32_t workers = 0;
    /// Last Handle() that named this session, under the eviction clock.
    Clock::time_point last_touch;
  };

  std::string CheckpointPath(uint64_t id) const;
  std::string ManifestPath(uint64_t id) const;
  void RemoveSidecars(uint64_t id, uint32_t workers) const;

  /// Finds the entry for `id`, recovering it from the manifest when the
  /// manager does not hold it in memory. nullptr with *error when the
  /// id is unknown (no memory entry, no manifest).
  std::shared_ptr<Entry> FindOrRecover(uint64_t id, std::string* error);

  /// Builds a session handle from an OpenBody (fresh or resumed):
  /// Session at workers <= 1, ShardedSession above.
  std::unique_ptr<engine::SessionHandle> BuildSession(uint64_t id,
                                                      const OpenBody& open,
                                                      bool resume,
                                                      std::string* error);

  /// One-shot kRetryAfter gate for evicted ids; nullopt admits the
  /// request. Caller holds mutex_.
  std::optional<Message> EvictionGateLocked(uint64_t id);

  Message HandleOpen(const Message& request);
  Message HandleClose(const Message& request);

  std::string state_dir_;
  std::function<Clock::time_point()> clock_;
  mutable std::mutex mutex_;
  std::map<uint64_t, std::shared_ptr<Entry>> sessions_;
  /// Ids evicted by EvictIdle whose next touch should be told to retry
  /// (one kRetryAfter, then normal recovery).
  std::set<uint64_t> evicted_;
};

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_SESSION_MANAGER_H_
