#ifndef SETCOVER_SERVER_SESSION_MANAGER_H_
#define SETCOVER_SERVER_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "engine/session.h"
#include "server/protocol.h"

namespace setcover {
namespace server {

/// Owns every live ingest session, keyed by client-chosen session id,
/// and maps decoded protocol requests onto engine::Session calls.
/// Transport-agnostic: the server hands it Messages from scheduler
/// threads; tests can drive it directly.
///
/// Durability: with a state_dir, each session persists two sidecar
/// files —
///   <state_dir>/<id>.open   the encoded kOpen frame (the manifest:
///                           exactly what the client declared)
///   <state_dir>/<id>.sckp   the engine checkpoint (state + exactly-once
///                           cursor), rewritten every checkpoint_every
///                           delivered edges and on drain
/// A restarted manager recovers a session *on demand*, the first time
/// any op names an id it does not hold in memory: manifest -> config,
/// checkpoint -> state. A session that crashed before its first
/// checkpoint recovers at sequence 0 and the client replays from the
/// start — still exactly-once, because replayed batches walk the same
/// sequence numbers. Without a state_dir every session is volatile.
///
/// Concurrency: a sharded-by-session two-level lock. The registry map
/// is guarded by `mutex_`, held only for lookup/insert/erase; each
/// session's work happens under its own Entry::mutex, so concurrent
/// batches for different sessions never serialize on each other.
class SessionManager {
 public:
  /// `state_dir` empty => volatile sessions. The directory must exist.
  explicit SessionManager(std::string state_dir);

  /// Handles one decoded request and returns the reply message
  /// (kXxxOk or kError). Thread-safe. kRetryAfter shedding happens
  /// upstream in the server; by the time a request reaches the
  /// manager it has been admitted.
  Message Handle(const Message& request);

  /// Checkpoints every open session (graceful drain). Returns how many
  /// sessions were checkpointed; sessions whose write fails are counted
  /// in *failures but do not stop the sweep.
  size_t CheckpointAll(size_t* failures);

  /// Open-session count and total delivered edges, for server-scope
  /// stats.
  uint64_t OpenSessions() const;
  uint64_t TotalEdgesDelivered() const;

 private:
  struct Entry {
    std::mutex mutex;
    std::unique_ptr<engine::Session> session;
  };

  std::string CheckpointPath(uint64_t id) const;
  std::string ManifestPath(uint64_t id) const;

  /// Finds the entry for `id`, recovering it from the manifest when the
  /// manager does not hold it in memory. nullptr with *error when the
  /// id is unknown (no memory entry, no manifest).
  std::shared_ptr<Entry> FindOrRecover(uint64_t id, std::string* error);

  /// Builds a Session from an OpenBody (fresh or resumed).
  std::unique_ptr<engine::Session> BuildSession(uint64_t id,
                                                const OpenBody& open,
                                                bool resume,
                                                std::string* error);

  Message HandleOpen(const Message& request);
  Message HandleClose(const Message& request);

  std::string state_dir_;
  mutable std::mutex mutex_;
  std::map<uint64_t, std::shared_ptr<Entry>> sessions_;
};

}  // namespace server
}  // namespace setcover

#endif  // SETCOVER_SERVER_SESSION_MANAGER_H_
