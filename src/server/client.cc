#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

namespace setcover {
namespace server {

SessionClient::SessionClient(Dialer dial, ClientOptions options)
    : dial_(std::move(dial)), options_(std::move(options)) {}

void SessionClient::Wait(uint64_t micros) {
  if (options_.sleeper) {
    options_.sleeper(micros);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

bool SessionClient::EnsureConnected(ExponentialBackoff* retry,
                                    std::string* error) {
  while (connection_ == nullptr) {
    std::string dial_error;
    connection_ = dial_(&dial_error);
    if (connection_ != nullptr) {
      ++reconnects_;
      return true;
    }
    uint64_t delay_us = 0;
    if (!retry->NextDelay(&delay_us)) {
      if (error != nullptr)
        *error = "reconnect budget exhausted: " + dial_error;
      return false;
    }
    Wait(delay_us);
  }
  return true;
}

bool SessionClient::Call(const Message& request, MessageType expect,
                         Message* reply, std::string* error) {
  // Encoded once into the member arena; retries re-send the same bytes
  // and steady-state calls allocate nothing.
  EncodeMessage(request, &send_buffer_);
  ExponentialBackoff retry(options_.backoff);
  for (;;) {
    if (!EnsureConnected(&retry, error)) return false;
    // A failed send or receive means the connection died under us
    // (server crash, drain teardown). Drop it and redial — idempotent
    // ops make the blind re-send safe even when the server applied the
    // request but the reply was lost.
    if (!connection_->Send(send_buffer_) ||
        !connection_->Receive(&receive_buffer_)) {
      connection_.reset();
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        if (error != nullptr) *error = "retry budget exhausted on dead link";
        return false;
      }
      Wait(delay_us);
      continue;
    }
    std::string decode_error;
    std::optional<Message> decoded =
        DecodeMessage(receive_buffer_, &decode_error);
    if (!decoded) {
      // A torn reply is indistinguishable from a torn link.
      connection_.reset();
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        if (error != nullptr) *error = "bad reply frame: " + decode_error;
        return false;
      }
      Wait(delay_us);
      continue;
    }
    if (decoded->type == MessageType::kRetryAfter) {
      ++sheds_seen_;
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        if (error != nullptr) *error = "shed retry budget exhausted";
        return false;
      }
      Wait(std::max(delay_us, decoded->retry_after_us));
      continue;
    }
    if (decoded->type == MessageType::kError) {
      if (error != nullptr) *error = decoded->error;
      return false;
    }
    if (decoded->type != expect) {
      if (error != nullptr) *error = "unexpected reply type";
      return false;
    }
    *reply = std::move(*decoded);
    return true;
  }
}

bool SessionClient::Open(uint64_t session_id, const OpenBody& open,
                         Message* reply, std::string* error) {
  Message request;
  request.type = MessageType::kOpen;
  request.session_id = session_id;
  request.open = open;
  return Call(request, MessageType::kOpenOk, reply, error);
}

bool SessionClient::Ingest(uint64_t session_id, uint64_t sequence,
                           std::span<const Edge> edges, Message* reply,
                           std::string* error) {
  Message request;
  request.type = MessageType::kIngest;
  request.session_id = session_id;
  request.sequence = sequence;
  request.edges.assign(edges.begin(), edges.end());
  return Call(request, MessageType::kIngestOk, reply, error);
}

bool SessionClient::Checkpoint(uint64_t session_id, Message* reply,
                               std::string* error) {
  Message request;
  request.type = MessageType::kCheckpoint;
  request.session_id = session_id;
  return Call(request, MessageType::kCheckpointOk, reply, error);
}

bool SessionClient::Finalize(uint64_t session_id, uint64_t fence_sequence,
                             Message* reply, std::string* error) {
  Message request;
  request.type = MessageType::kFinalize;
  request.session_id = session_id;
  request.sequence = fence_sequence;
  return Call(request, MessageType::kFinalizeOk, reply, error);
}

bool SessionClient::Stats(uint64_t session_id, Message* reply,
                          std::string* error) {
  Message request;
  request.type = MessageType::kStats;
  request.session_id = session_id;
  return Call(request, MessageType::kStatsOk, reply, error);
}

bool SessionClient::Close(uint64_t session_id, Message* reply,
                          std::string* error) {
  Message request;
  request.type = MessageType::kClose;
  request.session_id = session_id;
  return Call(request, MessageType::kCloseOk, reply, error);
}

WindowOutcome SessionClient::StreamWindow(
    uint64_t session_id, std::span<const Edge> edges, size_t batch_edges,
    uint64_t total_batches, uint64_t* next_sequence, size_t window,
    const std::function<void(uint64_t micros)>& ingest_latency,
    std::string* error) {
  using Clock = std::chrono::steady_clock;
  ExponentialBackoff retry(options_.backoff);
  if (!EnsureConnected(&retry, error)) return WindowOutcome::kFailed;

  struct InFlight {
    uint64_t sequence;
    Clock::time_point sent;
  };
  std::deque<InFlight> in_flight;
  size_t awaiting_replies = 0;  // one reply owed per frame sent

  // Any disruption collapses to the same move: drop the connection
  // (its in-flight replies die with it — they can never be mistaken
  // for a later op's reply) and let the caller re-Open. The durable
  // cursor plus exactly-once ingest make the blind refill safe.
  auto disrupt = [&] {
    connection_.reset();
    return WindowOutcome::kResync;
  };

  uint64_t& next = *next_sequence;
  while (next <= total_batches || awaiting_replies > 0) {
    // Fill the window: stream frames without waiting for replies.
    while (next <= total_batches && in_flight.size() < window) {
      const size_t begin = size_t(next - 1) * batch_edges;
      const size_t count = std::min(batch_edges, edges.size() - begin);
      EncodeIngest(session_id, next, edges.subspan(begin, count),
                   &send_buffer_);
      if (!connection_->Send(send_buffer_)) return disrupt();
      in_flight.push_back({next, Clock::now()});
      ++awaiting_replies;
      ++next;
    }

    // Drain one reply; its cumulative ack may retire many batches.
    if (!connection_->Receive(&receive_buffer_)) return disrupt();
    --awaiting_replies;
    std::string decode_error;
    std::optional<Message> reply =
        DecodeMessage(receive_buffer_, &decode_error);
    if (!reply) return disrupt();
    if (reply->type == MessageType::kRetryAfter) {
      // Shed mid-window: later in-flight frames were likely shed too.
      // Waiting is the re-Open's job (it retries with backoff against
      // the same shedding server).
      ++sheds_seen_;
      return disrupt();
    }
    if (reply->type != MessageType::kIngestOk) {
      // kError here is usually the sequence gap a crash-recovered
      // server reports for frames beyond its restored cursor.
      return disrupt();
    }
    while (!in_flight.empty() &&
           in_flight.front().sequence <= reply->last_sequence) {
      if (ingest_latency) {
        const auto waited = Clock::now() - in_flight.front().sent;
        ingest_latency(uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(waited)
                .count()));
      }
      in_flight.pop_front();
    }
  }
  // Every reply is in and the connection is clean for the finalize.
  return in_flight.empty() ? WindowOutcome::kCompleted : disrupt();
}

bool RunSessionToCompletion(SessionClient* client, uint64_t session_id,
                            const OpenBody& open,
                            std::span<const Edge> edges, size_t batch_edges,
                            Message* finalize_reply, std::string* error) {
  RunSessionOptions options;
  options.batch_edges = batch_edges;
  return RunSessionToCompletion(client, session_id, open, edges, options,
                                finalize_reply, error);
}

bool RunSessionToCompletion(SessionClient* client, uint64_t session_id,
                            const OpenBody& open,
                            std::span<const Edge> edges,
                            const RunSessionOptions& options,
                            Message* finalize_reply, std::string* error) {
  using Clock = std::chrono::steady_clock;
  const size_t batch_edges = std::max<size_t>(options.batch_edges, 1);
  const size_t window = std::max<size_t>(options.window, 1);
  const uint64_t total_batches =
      (edges.size() + batch_edges - 1) / batch_edges;

  Message reply;
  if (!client->Open(session_id, open, &reply, error)) return false;
  uint64_t next = reply.last_sequence + 1;

  // A session that survived a server kill may already hold more applied
  // batches than its last checkpoint recorded; the durable cursor from
  // Open is authoritative either way.
  size_t resyncs = 0;
  auto resync = [&]() -> bool {
    if (++resyncs > 64) {
      if (error != nullptr) *error = "session resync did not converge";
      return false;
    }
    if (!client->Open(session_id, open, &reply, error)) return false;
    next = reply.last_sequence + 1;
    return true;
  };

  for (;;) {
    while (next <= total_batches) {
      if (window > 1) {
        const WindowOutcome outcome = client->StreamWindow(
            session_id, edges, batch_edges, total_batches, &next, window,
            options.ingest_latency, error);
        if (outcome == WindowOutcome::kFailed) return false;
        if (outcome == WindowOutcome::kCompleted) continue;  // exits loop
        if (!resync()) return false;
        continue;
      }
      // Strict request–response (window == 1): the original loop,
      // byte-for-byte — each batch fully acked before the next send.
      const size_t begin = size_t(next - 1) * batch_edges;
      const size_t count = std::min(batch_edges, edges.size() - begin);
      const Clock::time_point sent =
          options.ingest_latency ? Clock::now() : Clock::time_point();
      if (client->Ingest(session_id, next, edges.subspan(begin, count),
                         &reply, error)) {
        if (options.ingest_latency) {
          options.ingest_latency(uint64_t(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - sent)
                  .count()));
        }
        next = std::max<uint64_t>(reply.last_sequence, next) + 1;
        continue;
      }
      // Ingest failed outright (budget exhausted, or a sequence-gap
      // error after the server lost unflushed state in a crash).
      // Re-attach to learn the durable cursor and resume from there;
      // if even Open fails, the failure is real.
      if (!resync()) return false;
    }

    // Fence the finalize on the full cursor. If the server crashed
    // after acking the tail but before checkpointing it, the recovered
    // session is behind the fence — the kError sends us back around to
    // re-attach and refill the missing batches rather than sealing a
    // truncated stream.
    if (client->Finalize(session_id, total_batches, finalize_reply, error))
      return true;
    if (!resync()) return false;
  }
}

}  // namespace server
}  // namespace setcover
