#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace setcover {
namespace server {

SessionClient::SessionClient(Dialer dial, ClientOptions options)
    : dial_(std::move(dial)), options_(std::move(options)) {}

void SessionClient::Wait(uint64_t micros) {
  if (options_.sleeper) {
    options_.sleeper(micros);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

bool SessionClient::EnsureConnected(ExponentialBackoff* retry,
                                    std::string* error) {
  while (connection_ == nullptr) {
    std::string dial_error;
    connection_ = dial_(&dial_error);
    if (connection_ != nullptr) {
      ++reconnects_;
      return true;
    }
    uint64_t delay_us = 0;
    if (!retry->NextDelay(&delay_us)) {
      if (error != nullptr)
        *error = "reconnect budget exhausted: " + dial_error;
      return false;
    }
    Wait(delay_us);
  }
  return true;
}

bool SessionClient::Call(const Message& request, MessageType expect,
                         Message* reply, std::string* error) {
  const std::vector<uint8_t> payload = EncodeMessage(request);
  ExponentialBackoff retry(options_.backoff);
  for (;;) {
    if (!EnsureConnected(&retry, error)) return false;
    // A failed send or receive means the connection died under us
    // (server crash, drain teardown). Drop it and redial — idempotent
    // ops make the blind re-send safe even when the server applied the
    // request but the reply was lost.
    if (!connection_->Send(payload) ||
        !connection_->Receive(&receive_buffer_)) {
      connection_.reset();
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        if (error != nullptr) *error = "retry budget exhausted on dead link";
        return false;
      }
      Wait(delay_us);
      continue;
    }
    std::string decode_error;
    std::optional<Message> decoded =
        DecodeMessage(receive_buffer_, &decode_error);
    if (!decoded) {
      // A torn reply is indistinguishable from a torn link.
      connection_.reset();
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        if (error != nullptr) *error = "bad reply frame: " + decode_error;
        return false;
      }
      Wait(delay_us);
      continue;
    }
    if (decoded->type == MessageType::kRetryAfter) {
      ++sheds_seen_;
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        if (error != nullptr) *error = "shed retry budget exhausted";
        return false;
      }
      Wait(std::max(delay_us, decoded->retry_after_us));
      continue;
    }
    if (decoded->type == MessageType::kError) {
      if (error != nullptr) *error = decoded->error;
      return false;
    }
    if (decoded->type != expect) {
      if (error != nullptr) *error = "unexpected reply type";
      return false;
    }
    *reply = std::move(*decoded);
    return true;
  }
}

bool SessionClient::Open(uint64_t session_id, const OpenBody& open,
                         Message* reply, std::string* error) {
  Message request;
  request.type = MessageType::kOpen;
  request.session_id = session_id;
  request.open = open;
  return Call(request, MessageType::kOpenOk, reply, error);
}

bool SessionClient::Ingest(uint64_t session_id, uint64_t sequence,
                           std::span<const Edge> edges, Message* reply,
                           std::string* error) {
  Message request;
  request.type = MessageType::kIngest;
  request.session_id = session_id;
  request.sequence = sequence;
  request.edges.assign(edges.begin(), edges.end());
  return Call(request, MessageType::kIngestOk, reply, error);
}

bool SessionClient::Checkpoint(uint64_t session_id, Message* reply,
                               std::string* error) {
  Message request;
  request.type = MessageType::kCheckpoint;
  request.session_id = session_id;
  return Call(request, MessageType::kCheckpointOk, reply, error);
}

bool SessionClient::Finalize(uint64_t session_id, uint64_t fence_sequence,
                             Message* reply, std::string* error) {
  Message request;
  request.type = MessageType::kFinalize;
  request.session_id = session_id;
  request.sequence = fence_sequence;
  return Call(request, MessageType::kFinalizeOk, reply, error);
}

bool SessionClient::Stats(uint64_t session_id, Message* reply,
                          std::string* error) {
  Message request;
  request.type = MessageType::kStats;
  request.session_id = session_id;
  return Call(request, MessageType::kStatsOk, reply, error);
}

bool SessionClient::Close(uint64_t session_id, Message* reply,
                          std::string* error) {
  Message request;
  request.type = MessageType::kClose;
  request.session_id = session_id;
  return Call(request, MessageType::kCloseOk, reply, error);
}

bool RunSessionToCompletion(SessionClient* client, uint64_t session_id,
                            const OpenBody& open,
                            std::span<const Edge> edges, size_t batch_edges,
                            Message* finalize_reply, std::string* error) {
  if (batch_edges == 0) batch_edges = 1;
  const uint64_t total_batches =
      (edges.size() + batch_edges - 1) / batch_edges;

  Message reply;
  if (!client->Open(session_id, open, &reply, error)) return false;
  uint64_t next = reply.last_sequence + 1;

  // A session that survived a server kill may already hold more applied
  // batches than its last checkpoint recorded; the durable cursor from
  // Open is authoritative either way.
  size_t resyncs = 0;
  for (;;) {
    while (next <= total_batches) {
      const size_t begin = size_t(next - 1) * batch_edges;
      const size_t count = std::min(batch_edges, edges.size() - begin);
      if (client->Ingest(session_id, next, edges.subspan(begin, count),
                         &reply, error)) {
        next = std::max<uint64_t>(reply.last_sequence, next) + 1;
        continue;
      }
      // Ingest failed outright (budget exhausted, or a sequence-gap
      // error after the server lost unflushed state in a crash).
      // Re-attach to learn the durable cursor and resume from there;
      // if even Open fails, the failure is real.
      if (++resyncs > 64) {
        if (error != nullptr) *error = "session resync did not converge";
        return false;
      }
      if (!client->Open(session_id, open, &reply, error)) return false;
      next = reply.last_sequence + 1;
    }

    // Fence the finalize on the full cursor. If the server crashed
    // after acking the tail but before checkpointing it, the recovered
    // session is behind the fence — the kError sends us back around to
    // re-attach and refill the missing batches rather than sealing a
    // truncated stream.
    if (client->Finalize(session_id, total_batches, finalize_reply, error))
      return true;
    if (++resyncs > 64) {
      if (error != nullptr) *error = "session resync did not converge";
      return false;
    }
    if (!client->Open(session_id, open, &reply, error)) return false;
    next = reply.last_sequence + 1;
  }
}

}  // namespace server
}  // namespace setcover
