#include "offline/exact.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace setcover {

std::optional<CoverSolution> ExactCover(const SetCoverInstance& instance,
                                        uint32_t max_elements) {
  const uint32_t n = instance.NumElements();
  const uint32_t m = instance.NumSets();
  if (n > max_elements || n > 63) return std::nullopt;
  if (!instance.IsFeasible()) return std::nullopt;

  const uint64_t full = (n == 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
  std::vector<uint64_t> set_mask(m, 0);
  for (SetId s = 0; s < m; ++s) {
    for (ElementId u : instance.Set(s)) set_mask[s] |= uint64_t{1} << u;
  }

  // BFS from the empty mask; parent links reconstruct one optimal cover.
  struct Parent {
    uint64_t prev_mask;
    SetId via_set;
  };
  std::unordered_map<uint64_t, Parent> parent;
  parent.reserve(1024);
  std::vector<uint64_t> frontier = {0};
  parent[0] = {0, kNoSet};

  while (!frontier.empty()) {
    std::vector<uint64_t> next;
    for (uint64_t mask : frontier) {
      for (SetId s = 0; s < m; ++s) {
        uint64_t nm = mask | set_mask[s];
        if (nm == mask) continue;
        if (parent.emplace(nm, Parent{mask, s}).second) {
          if (nm == full) {
            // Reconstruct the cover along parent links.
            CoverSolution solution;
            solution.certificate.assign(n, kNoSet);
            uint64_t cur = full;
            while (cur != 0) {
              const Parent& p = parent[cur];
              solution.cover.push_back(p.via_set);
              uint64_t gained = cur & ~p.prev_mask;
              for (uint32_t u = 0; u < n; ++u) {
                if ((gained >> u) & 1) solution.certificate[u] = p.via_set;
              }
              cur = p.prev_mask;
            }
            return solution;
          }
          next.push_back(nm);
        }
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;  // Unreachable for feasible instances.
}

}  // namespace setcover
