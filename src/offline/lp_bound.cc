#include "offline/lp_bound.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace setcover {
namespace {

// Builds the dual certificate; shared by the bound and its audit.
std::vector<double> BuildCertificate(const SetCoverInstance& instance,
                                     uint32_t improvement_passes,
                                     uint64_t seed) {
  const uint32_t n = instance.NumElements();
  const uint32_t m = instance.NumSets();

  // max set size containing each element (0 for isolated elements).
  std::vector<uint32_t> max_size(n, 0);
  for (SetId s = 0; s < m; ++s) {
    uint32_t size = static_cast<uint32_t>(instance.Set(s).size());
    for (ElementId u : instance.Set(s)) {
      max_size[u] = std::max(max_size[u], size);
    }
  }
  std::vector<double> y(n, 0.0);
  for (ElementId u = 0; u < n; ++u) {
    if (max_size[u] > 0) y[u] = 1.0 / double(max_size[u]);
  }

  // Per-set loads for the lifting passes.
  std::vector<double> load(m, 0.0);
  for (SetId s = 0; s < m; ++s) {
    for (ElementId u : instance.Set(s)) load[s] += y[u];
  }

  // Element -> incident sets index (needed for slack queries).
  std::vector<std::vector<SetId>> incident(n);
  for (SetId s = 0; s < m; ++s) {
    for (ElementId u : instance.Set(s)) incident[u].push_back(s);
  }

  Rng rng(seed);
  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (uint32_t pass = 0; pass < improvement_passes; ++pass) {
    rng.Shuffle(order);
    for (ElementId u : order) {
      if (incident[u].empty()) continue;
      double slack = 1.0;
      for (SetId s : incident[u]) slack = std::min(slack, 1.0 - load[s]);
      if (slack <= 1e-12) continue;
      y[u] += slack;
      for (SetId s : incident[u]) load[s] += slack;
    }
  }
  return y;
}

}  // namespace

double DualPackingLowerBound(const SetCoverInstance& instance,
                             uint32_t improvement_passes, uint64_t seed) {
  std::vector<double> y =
      BuildCertificate(instance, improvement_passes, seed);
  double total = 0.0;
  for (double v : y) total += v;
  return total;
}

double DualPackingMaxLoad(const SetCoverInstance& instance,
                          uint32_t improvement_passes, uint64_t seed) {
  std::vector<double> y =
      BuildCertificate(instance, improvement_passes, seed);
  double worst = 0.0;
  for (SetId s = 0; s < instance.NumSets(); ++s) {
    double load = 0.0;
    for (ElementId u : instance.Set(s)) load += y[u];
    worst = std::max(worst, load);
  }
  return worst;
}

}  // namespace setcover
