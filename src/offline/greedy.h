#ifndef SETCOVER_OFFLINE_GREEDY_H_
#define SETCOVER_OFFLINE_GREEDY_H_

#include <vector>

#include "instance/instance.h"
#include "util/bitset.h"

namespace setcover {

/// Reusable scratch for GreedyCover: the covered bitset, the gain-indexed
/// buckets and their backing id arena. A workspace grows to the largest
/// instance it has seen and is reused across calls, so multi-run drivers
/// (core/multi_run.h) and per-cell benchmark loops pay the allocation
/// once per thread instead of once per run.
struct GreedyWorkspace {
  DynamicBitset covered;
  std::vector<std::vector<SetId>> buckets;
};

/// Classic offline greedy Set Cover: repeatedly pick the set covering the
/// most yet-uncovered elements. Guarantees a (ln n + 1)-approximation,
/// which makes it the standard OPT proxy for large instances (the paper
/// §1.3 notes practical systems are built on exactly this algorithm
/// [11, 21, 23]).
///
/// Implemented as a *bucket-queue greedy*: live sets sit in gain-indexed
/// buckets holding their last recorded (stale, upper-bound) gain;
/// decrease-key is lazy bucket migration on recount. Because accepted
/// sets only ever lower other sets' gains, the top bucket index is
/// monotone non-increasing, so one descending sweep over the buckets
/// visits every entry in exactly the order the classic lazy-heap
/// implementation pops them — the selected cover and certificate are
/// *verbatim identical* to GreedyCoverReference on every input (the
/// differential suite in tests/greedy_kernel_test.cc asserts equality).
/// Gain recounts run word-parallel: a set's sorted CSR span is gathered
/// into per-word masks and resolved with one AND + popcount against the
/// packed covered bitset per touched word. Total work is O(N + n + m)
/// plus the (near-sorted, small) per-bucket id sorts.
///
/// On an infeasible instance (elements in no set) the coverable part is
/// covered and the rest keeps a kNoSet certificate — callers that need
/// §2's feasibility assumption check it up front.
///
/// Passing a workspace reuses its buffers; passing nullptr uses a
/// thread-local workspace, which makes repeated calls allocation-free
/// per thread with no coordination between pool workers.
CoverSolution GreedyCover(const SetCoverInstance& instance,
                          GreedyWorkspace* workspace = nullptr);

/// The previous implementation — lazy greedy over a std::priority_queue
/// of stale gains with re-evaluation on pop. Kept as the differential-
/// testing seam for the bucket-queue kernel: same selection policy, same
/// cover, same certificate, heap instead of buckets. Not used on any hot
/// path.
CoverSolution GreedyCoverReference(const SetCoverInstance& instance);

}  // namespace setcover

#endif  // SETCOVER_OFFLINE_GREEDY_H_
