#ifndef SETCOVER_OFFLINE_GREEDY_H_
#define SETCOVER_OFFLINE_GREEDY_H_

#include "instance/instance.h"

namespace setcover {

/// Classic offline greedy Set Cover: repeatedly pick the set covering the
/// most yet-uncovered elements. Guarantees a (ln n + 1)-approximation,
/// which makes it the standard OPT proxy for large instances (the paper
/// §1.3 notes practical systems are built on exactly this algorithm
/// [11, 21, 23]).
///
/// Implemented as *lazy greedy*: a max-heap of stale gains with
/// re-evaluation on pop. Because coverage gain is monotone decreasing, a
/// popped entry whose refreshed gain still tops the heap is exactly the
/// greedy choice; this is the standard accelerated implementation and
/// returns the same cover as the textbook O(Σ|S|·rounds) version.
///
/// On an infeasible instance (elements in no set) the coverable part is
/// covered and the rest keeps a kNoSet certificate — callers that need
/// §2's feasibility assumption check it up front.
CoverSolution GreedyCover(const SetCoverInstance& instance);

}  // namespace setcover

#endif  // SETCOVER_OFFLINE_GREEDY_H_
