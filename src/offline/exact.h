#ifndef SETCOVER_OFFLINE_EXACT_H_
#define SETCOVER_OFFLINE_EXACT_H_

#include <optional>

#include "instance/instance.h"

namespace setcover {

/// Exact Set Cover by breadth-first search over covered-element bitmasks
/// (unit edge weights, so BFS depth = cover size). Exponential in n;
/// intended for test oracles only.
///
/// Returns std::nullopt if n > max_elements (default 24) or the instance
/// is infeasible; otherwise an optimal cover with certificate.
std::optional<CoverSolution> ExactCover(const SetCoverInstance& instance,
                                        uint32_t max_elements = 24);

}  // namespace setcover

#endif  // SETCOVER_OFFLINE_EXACT_H_
