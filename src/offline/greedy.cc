#include "offline/greedy.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <queue>
#include <utility>

namespace setcover {
namespace {

/// |S \ covered| for a sorted element span, word-parallel: consecutive
/// elements sharing a 64-bit word collapse into one mask that is
/// resolved with a single AND + popcount against the covered bitset.
/// Covered-word lookahead for the recount/cover walks: the element ids
/// are sequential in the CSR arena but the covered words they index are
/// not, so the word for an element ~2 cache lines ahead is requested
/// early. Purely a latency hint — results are untouched.
constexpr size_t kPrefetchDistance = 16;

uint32_t CountUncovered(std::span<const ElementId> set,
                        const DynamicBitset& covered) {
  uint32_t gain = 0;
  size_t i = 0;
  const size_t size = set.size();
  const uint64_t* words = covered.WordsData();
  while (i < size) {
    if (i + kPrefetchDistance < size) {
      __builtin_prefetch(words + (size_t{set[i + kPrefetchDistance]} >> 6));
    }
    const size_t w = size_t{set[i]} >> 6;
    uint64_t mask = uint64_t{1} << (set[i] & 63);
    ++i;
    while (i < size && (size_t{set[i]} >> 6) == w) {
      mask |= uint64_t{1} << (set[i] & 63);
      ++i;
    }
    gain += uint32_t(std::popcount(mask & ~words[w]));
  }
  return gain;
}

/// Marks every element of `set` covered and stamps `s` as the
/// certificate of the newly covered ones. Word-parallel like the
/// recount: one FetchOrWord per touched word, then a ctz walk over the
/// (typically sparse) newly-set bits.
void CoverAndCertify(std::span<const ElementId> set, SetId s,
                     DynamicBitset& covered,
                     std::vector<SetId>& certificate) {
  size_t i = 0;
  const size_t size = set.size();
  while (i < size) {
    if (i + kPrefetchDistance < size) {
      __builtin_prefetch(
          covered.WordsData() + (size_t{set[i + kPrefetchDistance]} >> 6), 1);
    }
    const size_t w = size_t{set[i]} >> 6;
    uint64_t mask = uint64_t{1} << (set[i] & 63);
    ++i;
    while (i < size && (size_t{set[i]} >> 6) == w) {
      mask |= uint64_t{1} << (set[i] & 63);
      ++i;
    }
    uint64_t newly = covered.FetchOrWord(w, mask);
    while (newly != 0) {
      certificate[(w << 6) + size_t(std::countr_zero(newly))] = s;
      newly &= newly - 1;
    }
  }
}

}  // namespace

CoverSolution GreedyCover(const SetCoverInstance& instance,
                          GreedyWorkspace* workspace) {
  GreedyWorkspace* ws = workspace;
  if (ws == nullptr) {
    static thread_local GreedyWorkspace tls_workspace;
    ws = &tls_workspace;
  }
  const uint32_t n = instance.NumElements();
  const uint32_t m = instance.NumSets();

  DynamicBitset& covered = ws->covered;
  covered.Assign(n);
  CoverSolution solution;
  solution.certificate.assign(n, kNoSet);

  // Gain-indexed buckets: bucket g holds the live sets whose last
  // recorded gain (a stale upper bound — gains only decrease) is g.
  // Initial gains are the exact set sizes.
  auto& buckets = ws->buckets;
  uint32_t max_size = 0;
  for (SetId s = 0; s < m; ++s) {
    max_size = std::max(max_size,
                        static_cast<uint32_t>(instance.Set(s).size()));
  }
  if (buckets.size() < size_t{max_size} + 1) {
    buckets.resize(size_t{max_size} + 1);
  }
  for (auto& bucket : buckets) bucket.clear();
  for (SetId s = 0; s < m; ++s) {
    const uint32_t size = static_cast<uint32_t>(instance.Set(s).size());
    if (size > 0) buckets[size].push_back(s);
  }

  // Descending sweep. Migration only ever moves an entry to a strictly
  // lower bucket, so no bucket gains entries once the sweep reaches it:
  // sorting it by descending id on arrival fixes the within-bucket pop
  // order for good, and the sweep as a whole visits entries in exactly
  // the lazy-heap's (recorded gain desc, set id desc) pop order.
  bool done = covered.Count() >= n;
  for (uint32_t g = max_size; g >= 1 && !done; --g) {
    auto& bucket = buckets[g];
    if (bucket.empty()) continue;
    std::sort(bucket.begin(), bucket.end(), std::greater<SetId>());
    for (size_t idx = 0; idx < bucket.size(); ++idx) {
      if (covered.Count() >= n) {
        done = true;
        break;
      }
      const SetId s = bucket[idx];
      const uint32_t gain = CountUncovered(instance.Set(s), covered);
      if (gain == 0) continue;
      if (idx + 1 < bucket.size()) {
        // Entries remain at this level, so the reference's acceptance
        // test compares against level g itself.
        if (gain < g) {
          buckets[gain].push_back(s);
          continue;
        }
      } else {
        // Last entry at this level: compare against the highest
        // non-empty lower bucket, exactly like the heap top after pop.
        uint32_t h = g;
        while (h > 1 && buckets[h - 1].empty()) --h;
        const bool queue_empty = (h == 1) || buckets[h - 1].empty();
        if (!queue_empty && gain < h - 1) {
          buckets[gain].push_back(s);
          continue;
        }
      }
      solution.cover.push_back(s);
      CoverAndCertify(instance.Set(s), s, covered, solution.certificate);
    }
    bucket.clear();
  }
  return solution;
}

CoverSolution GreedyCoverReference(const SetCoverInstance& instance) {
  const uint32_t n = instance.NumElements();
  const uint32_t m = instance.NumSets();

  DynamicBitset covered(n);
  CoverSolution solution;
  solution.certificate.assign(n, kNoSet);

  // Max-heap of (stale gain, set id). Gains only decrease, so lazy
  // re-evaluation on pop is sound.
  using Entry = std::pair<uint32_t, SetId>;
  std::priority_queue<Entry> heap;
  for (SetId s = 0; s < m; ++s) {
    uint32_t size = static_cast<uint32_t>(instance.Set(s).size());
    if (size > 0) heap.push({size, s});
  }

  while (covered.Count() < n) {
    if (heap.empty()) break;  // infeasible: leftover elements stay kNoSet
    auto [stale_gain, s] = heap.top();
    heap.pop();
    // Refresh the gain.
    uint32_t gain = 0;
    for (ElementId u : instance.Set(s)) gain += covered.Test(u) ? 0 : 1;
    if (gain == 0) continue;
    if (!heap.empty() && gain < heap.top().first) {
      heap.push({gain, s});  // Stale; requeue with the fresh value.
      continue;
    }
    solution.cover.push_back(s);
    for (ElementId u : instance.Set(s)) {
      if (covered.Set(u)) solution.certificate[u] = s;
    }
  }
  return solution;
}

}  // namespace setcover
