#include "offline/greedy.h"

#include <queue>
#include <utility>
#include <vector>

#include "util/bitset.h"

namespace setcover {

CoverSolution GreedyCover(const SetCoverInstance& instance) {
  const uint32_t n = instance.NumElements();
  const uint32_t m = instance.NumSets();

  DynamicBitset covered(n);
  CoverSolution solution;
  solution.certificate.assign(n, kNoSet);

  // Max-heap of (stale gain, set id). Gains only decrease, so lazy
  // re-evaluation on pop is sound.
  using Entry = std::pair<uint32_t, SetId>;
  std::priority_queue<Entry> heap;
  for (SetId s = 0; s < m; ++s) {
    uint32_t size = static_cast<uint32_t>(instance.Set(s).size());
    if (size > 0) heap.push({size, s});
  }

  while (covered.Count() < n) {
    if (heap.empty()) break;  // infeasible: leftover elements stay kNoSet
    auto [stale_gain, s] = heap.top();
    heap.pop();
    // Refresh the gain.
    uint32_t gain = 0;
    for (ElementId u : instance.Set(s)) gain += covered.Test(u) ? 0 : 1;
    if (gain == 0) continue;
    if (!heap.empty() && gain < heap.top().first) {
      heap.push({gain, s});  // Stale; requeue with the fresh value.
      continue;
    }
    solution.cover.push_back(s);
    for (ElementId u : instance.Set(s)) {
      if (covered.Set(u)) solution.certificate[u] = s;
    }
  }
  return solution;
}

}  // namespace setcover
