#ifndef SETCOVER_OFFLINE_LP_BOUND_H_
#define SETCOVER_OFFLINE_LP_BOUND_H_

#include <cstdint>

#include "instance/instance.h"

namespace setcover {

/// Lower bounds on the optimal cover size via LP duality.
///
/// The dual of the fractional Set Cover LP is the fractional element
/// packing: max Σ_u y_u subject to Σ_{u ∈ S} y_u ≤ 1 for every set S,
/// y ≥ 0. Any feasible y certifies Σ y_u ≤ LP* ≤ OPT — a *lower* bound
/// on OPT that complements greedy's upper bound when reporting
/// approximation ratios (greedy can overestimate OPT by up to ln n; a
/// dual certificate cannot).
///
/// `DualPackingLowerBound` builds a feasible dual in two stages:
///   1. the closed-form start y_u = 1 / max{|S| : u ∈ S}, feasible since
///      Σ_{u∈S} y_u ≤ Σ_{u∈S} 1/|S| = 1 — already tight on partition
///      instances;
///   2. `improvement_passes` rounds of greedy lifting: elements (in
///      random order) absorb the minimum slack of their sets.
///
/// Returns the certified bound (0 for an empty universe). Exact on
/// instances whose LP has an integral packing optimum; otherwise a
/// valid but possibly loose bound.
double DualPackingLowerBound(const SetCoverInstance& instance,
                             uint32_t improvement_passes = 2,
                             uint64_t seed = 1);

/// Verifies dual feasibility of the bound's internal certificate —
/// exposed for tests: returns the maximum constraint load
/// max_S Σ_{u∈S} y_u of the certificate built by
/// DualPackingLowerBound (must be ≤ 1 + ε).
double DualPackingMaxLoad(const SetCoverInstance& instance,
                          uint32_t improvement_passes = 2,
                          uint64_t seed = 1);

}  // namespace setcover

#endif  // SETCOVER_OFFLINE_LP_BOUND_H_
