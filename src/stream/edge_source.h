#ifndef SETCOVER_STREAM_EDGE_SOURCE_H_
#define SETCOVER_STREAM_EDGE_SOURCE_H_

#include <memory>
#include <string>

#include "stream/stream.h"
#include "stream/stream_file.h"

namespace setcover {

/// Outcome of pulling one record from an EdgeSource.
enum class ReadStatus {
  kOk,         // *edge holds the next stream item
  kEnd,        // the stream is exhausted (or ended early — see Truncated)
  kTransient,  // momentary failure; retrying the same call may succeed
  kCorrupt,    // the record was damaged and must not reach an algorithm
};

/// A positioned, resumable supply of stream edges — what the run
/// supervisor drives algorithms from. Unlike the raw in-memory
/// EdgeStream, an EdgeSource can fail: Next() reports transient faults
/// (worth retrying) and corrupt records (detected, skipped, counted)
/// distinctly from end-of-stream, which is what makes a supervised run
/// recoverable.
///
/// `Position()` counts *underlying* records consumed, which is the
/// coordinate checkpoints store and SeekTo() restores; a conforming
/// implementation replays the identical record sequence (including any
/// injected faults) from any position it previously reported at a
/// checkpoint boundary.
class EdgeSource {
 public:
  virtual ~EdgeSource() = default;

  virtual const StreamMetadata& Meta() const = 0;

  /// Pulls the next record. On kOk, *edge is the item; on kCorrupt,
  /// *edge holds the damaged record (for diagnostics) and the position
  /// still advances past it; on kTransient/kEnd, *edge is untouched.
  virtual ReadStatus Next(Edge* edge) = 0;

  /// Underlying records consumed so far.
  virtual size_t Position() const = 0;

  /// Repositions so the next record is the one at `position`. Returns
  /// false if unsupported or out of range.
  virtual bool SeekTo(size_t position) = 0;

  /// True when the source holds buffered replay state (e.g. the second
  /// copy of a duplicated record) that a position-based checkpoint
  /// could not reconstruct. Supervisors only checkpoint when this is
  /// false.
  virtual bool HasPendingReplay() const { return false; }

  /// True once the underlying stream ended before Meta().stream_length
  /// records were produced.
  virtual bool Truncated() const { return false; }
};

/// In-memory source over a materialized EdgeStream (tests, CLI solve).
class VectorEdgeSource : public EdgeSource {
 public:
  explicit VectorEdgeSource(const EdgeStream& stream) : stream_(stream) {}

  const StreamMetadata& Meta() const override { return stream_.meta; }
  ReadStatus Next(Edge* edge) override;
  size_t Position() const override { return position_; }
  bool SeekTo(size_t position) override;

 private:
  const EdgeStream& stream_;
  size_t position_ = 0;
};

/// File-backed source over the binary stream-file format. Surfaces a
/// chunk checksum failure as one kCorrupt status (position skips to the
/// end of the damaged chunk, after which the stream ends) and early EOF
/// as kEnd with Truncated() set.
class StreamFileSource : public EdgeSource {
 public:
  /// Opens `path` with default read options (mmap + prefetch); nullptr
  /// (with *error) on open/header failure.
  static std::unique_ptr<StreamFileSource> Open(const std::string& path,
                                                std::string* error);
  static std::unique_ptr<StreamFileSource> Open(
      const std::string& path, const StreamReadOptions& options,
      std::string* error);

  const StreamMetadata& Meta() const override { return reader_->Meta(); }
  ReadStatus Next(Edge* edge) override;
  size_t Position() const override { return reader_->EdgesRead(); }
  bool SeekTo(size_t position) override {
    corrupt_reported_ = false;
    return reader_->SeekToEdge(position);
  }
  /// A checksum-failed chunk also ends the stream before N records —
  /// that is truncation as far as a supervised run is concerned, so
  /// the run is reported degraded, not silently complete.
  bool Truncated() const override {
    return reader_->Truncated() || reader_->ChecksumFailed();
  }

 private:
  explicit StreamFileSource(std::unique_ptr<BatchEdgeReader> reader)
      : reader_(std::move(reader)) {}

  std::unique_ptr<BatchEdgeReader> reader_;
  bool corrupt_reported_ = false;
};

}  // namespace setcover

#endif  // SETCOVER_STREAM_EDGE_SOURCE_H_
