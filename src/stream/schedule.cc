#include "stream/schedule.h"

namespace setcover {

bool ScheduleSpec::Validate(std::string* error) const {
  if (passes == 0) {
    if (error != nullptr) *error = "schedule needs passes >= 1";
    return false;
  }
  if (window > 0 && replay_every == 0) {
    if (error != nullptr)
      *error = "windowed schedule needs replay_every >= 1";
    return false;
  }
  if (window == 0 && replay_every > 0) {
    if (error != nullptr)
      *error = "schedule sets replay_every without a window";
    return false;
  }
  return true;
}

ScheduledSource::ScheduledSource(EdgeSource* inner, const ScheduleSpec& spec)
    : inner_(inner), spec_(spec), inner_length_(inner->Meta().stream_length) {}

ReadStatus ScheduledSource::Next(Edge* edge) {
  // Owed window replay is served before any fresh record.
  if (replay_pos_ < replay_.size()) {
    *edge = replay_[replay_pos_++];
    if (replay_pos_ == replay_.size()) {
      replay_.clear();
      replay_pos_ = 0;
    }
    return ReadStatus::kOk;
  }
  for (;;) {
    const ReadStatus status = inner_->Next(edge);
    if (status == ReadStatus::kEnd) {
      // A truncated/damaged pass ends the whole schedule: replaying a
      // stream that did not deliver its N records would feed the
      // algorithm a different sequence per pass.
      if (inner_->Truncated()) return status;
      if (pass_ + 1 >= spec_.passes) return status;
      if (!inner_->SeekTo(0)) return status;
      ++pass_;
      window_.clear();
      fresh_ = 0;
      continue;
    }
    if (status == ReadStatus::kOk && spec_.window > 0) {
      window_.push_back(*edge);
      if (window_.size() > spec_.window) window_.pop_front();
      if (++fresh_ >= spec_.replay_every) {
        fresh_ = 0;
        replay_.assign(window_.begin(), window_.end());
        replay_pos_ = 0;
      }
    }
    return status;
  }
}

size_t ScheduledSource::Position() const {
  return size_t(pass_) * inner_length_ + inner_->Position();
}

bool ScheduledSource::SeekTo(size_t position) {
  if (spec_.window > 0) {
    // Window contents are not position-addressable; only a full rewind
    // is supported (and the engine rejects checkpointing these feeds).
    if (position != 0) return false;
    if (!inner_->SeekTo(0)) return false;
    pass_ = 0;
    window_.clear();
    replay_.clear();
    replay_pos_ = 0;
    fresh_ = 0;
    return true;
  }
  size_t pass = inner_length_ == 0 ? 0 : position / inner_length_;
  size_t offset = inner_length_ == 0 ? 0 : position % inner_length_;
  if (pass >= spec_.passes) {
    // position == passes * N is the end of the schedule: park the
    // cursor at the end of the final pass.
    if (pass == spec_.passes && offset == 0 && inner_length_ > 0) {
      pass = spec_.passes - 1;
      offset = inner_length_;
    } else {
      return false;
    }
  }
  if (!inner_->SeekTo(offset)) return false;
  pass_ = uint32_t(pass);
  return true;
}

bool ScheduledSource::HasPendingReplay() const {
  return replay_pos_ < replay_.size() || inner_->HasPendingReplay();
}

}  // namespace setcover
