#ifndef SETCOVER_STREAM_FAULT_INJECTOR_H_
#define SETCOVER_STREAM_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>

#include "stream/edge_source.h"

namespace setcover {

/// The kinds of stream damage the injector can manufacture, mirroring
/// what a real deployment sees from flaky disks, retried RPCs and
/// at-least-once delivery.
enum class FaultKind : uint8_t {
  kNone = 0,
  kTransient,  // Next() fails kTransient a few times, then succeeds
  kDuplicate,  // the record is delivered twice
  kDrop,       // the record is silently lost
  kCorrupt,    // the record arrives garbled (out-of-range ids)
};

/// Rates (per underlying record, in [0, 1]) and the seed of a fault
/// schedule. The schedule is a pure function of (seed, position): the
/// same seed over the same stream always injects the same faults at
/// the same places, and — crucially for checkpoint resume — replaying
/// from position k reproduces the identical suffix of faults. Rates
/// that sum above 1 are scaled down proportionally.
struct FaultSchedule {
  uint64_t seed = 1;
  double transient_rate = 0.0;
  double duplicate_rate = 0.0;
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;

  /// Consecutive kTransient failures delivered before the read at a
  /// transient-faulty position succeeds.
  uint32_t transient_failures = 2;

  /// A schedule with every fault kind active, for sweep tests.
  static FaultSchedule AllKinds(uint64_t seed, double rate_each = 0.02);
};

/// Deterministic fault-injection layer: wraps any EdgeSource and
/// damages its output according to a FaultSchedule. Used by the
/// robustness tests to prove the supervisor survives dirty streams,
/// and by the kill-and-resume tests to prove recovery is bit-exact
/// even while faults keep firing.
///
/// Determinism contract: the fault decision for the record at
/// underlying position p depends only on (schedule.seed, p). SeekTo()
/// therefore restores not just the data but the exact fault replay.
class FaultInjector : public EdgeSource {
 public:
  FaultInjector(EdgeSource* base, FaultSchedule schedule);

  const StreamMetadata& Meta() const override { return base_->Meta(); }
  ReadStatus Next(Edge* edge) override;
  size_t Position() const override;
  bool SeekTo(size_t position) override;
  bool HasPendingReplay() const override {
    return pending_duplicate_.has_value();
  }
  bool Truncated() const override { return base_->Truncated(); }

  /// What the schedule decrees for the record at position `p`.
  FaultKind KindAt(size_t p) const;

  /// Faults actually delivered so far, by kind (indexed by FaultKind).
  size_t DeliveredFaults(FaultKind kind) const {
    return delivered_[static_cast<size_t>(kind)];
  }

 private:
  double UniformAt(size_t p) const;

  EdgeSource* base_;
  FaultSchedule schedule_;
  double scale_ = 1.0;
  // Second copy of a duplicated record, owed to the consumer.
  std::optional<Edge> pending_duplicate_;
  size_t pending_position_ = 0;
  // Transient failures already delivered for the position currently
  // being read (reset whenever the position advances).
  uint32_t transient_delivered_ = 0;
  size_t delivered_[5] = {0, 0, 0, 0, 0};
};

}  // namespace setcover

#endif  // SETCOVER_STREAM_FAULT_INJECTOR_H_
