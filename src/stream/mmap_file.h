#ifndef SETCOVER_STREAM_MMAP_FILE_H_
#define SETCOVER_STREAM_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace setcover {

/// Read-only memory mapping of a whole file — the zero-copy backend of
/// StreamFileReader. On POSIX hosts the file's pages are mapped
/// directly (the page cache is the buffer; nothing is copied until the
/// reader dereferences it), so replaying a stream file costs no
/// read()/memcpy per chunk. On hosts without mmap, Open() reports
/// failure and callers fall back to the portable stdio reader.
///
/// The mapping is immutable and survives until Close()/destruction, so
/// any number of threads may read through data() concurrently — the
/// property the prefetch decoder relies on to decode chunk k+1 while
/// the algorithm thread still holds spans into chunk k.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Maps `path` read-only. Returns false with an errno-derived message
  /// in *error (if non-null) when the file cannot be opened, stat'ed,
  /// or mapped — including on platforms with no mmap support. A
  /// zero-length file opens successfully with size() == 0.
  bool Open(const std::string& path, std::string* error);

  /// Unmaps; safe to call repeatedly.
  void Close();

  bool IsOpen() const { return open_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool open_ = false;
};

}  // namespace setcover

#endif  // SETCOVER_STREAM_MMAP_FILE_H_
