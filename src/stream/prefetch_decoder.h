#ifndef SETCOVER_STREAM_PREFETCH_DECODER_H_
#define SETCOVER_STREAM_PREFETCH_DECODER_H_

#include <memory>
#include <thread>

#include "stream/stream_file.h"
#include "util/stage_pipe.h"

namespace setcover {

/// Pipelined file replay: a background thread decodes and CRC-checks
/// chunks one pipeline unit (kUnitChunks chunks) ahead of the consumer,
/// so decode/verify cost overlaps the algorithm's per-edge work instead
/// of serializing with it. The stage boundary is a StagePipe — the
/// generic two-slot SPSC handoff — with each payload grouping several
/// chunks so the handoff cost amortizes over tens of thousands of
/// edges.
///
/// Presents the same BatchEdgeReader contract as the synchronous
/// StreamFileReader it wraps, with identical damage semantics (a bad
/// chunk surfaces as flags and an ended stream, never as edges), so the
/// two are drop-in interchangeable and must produce bit-identical runs.
///
/// Threading: all public methods are consumer-thread-only. The worker
/// is the sole caller of StreamFileReader::DecodeChunk; SeekToEdge
/// joins the worker, rewinds, and restarts it (seeks are a resume-path
/// rarity, so simplicity beats cleverness there).
class PrefetchDecoder : public BatchEdgeReader {
 public:
  /// Takes ownership of an open reader and starts prefetching chunk 0.
  static std::unique_ptr<PrefetchDecoder> Create(
      std::unique_ptr<StreamFileReader> reader);

  ~PrefetchDecoder() override;
  PrefetchDecoder(const PrefetchDecoder&) = delete;
  PrefetchDecoder& operator=(const PrefetchDecoder&) = delete;

  const StreamMetadata& Meta() const override { return reader_->Meta(); }
  uint32_t Version() const override { return reader_->Version(); }
  bool Next(Edge* edge) override;
  std::span<const Edge> NextBatch() override;
  bool SeekToEdge(size_t index) override;
  bool Truncated() const override { return truncated_; }
  bool ChecksumFailed() const override { return checksum_failed_; }
  size_t EdgesRead() const override { return edges_read_; }

  /// Chunks decoded per pipeline unit.
  static constexpr size_t kUnitChunks = 8;

 private:
  /// One pipeline unit: a run of sequentially decoded chunks.
  struct Unit {
    std::vector<StreamFileReader::DecodedChunk> chunks;
    size_t first_chunk = 0;
    size_t count = 0;
  };

  explicit PrefetchDecoder(std::unique_ptr<StreamFileReader> reader);

  void StartWorker(size_t first_chunk);
  void StopWorker();
  void WorkerLoop(size_t first_chunk);

  /// Returns the decoded chunk at index `chunk` (the consumer's next
  /// sequential chunk), blocking on the pipeline if the worker has not
  /// produced it yet; nullptr when `chunk >= NumChunks()`.
  const StreamFileReader::DecodedChunk* AcquireChunk(size_t chunk);
  bool FillBuffer();

  std::unique_ptr<StreamFileReader> reader_;
  size_t num_chunks_ = 0;

  StagePipe<Unit> pipe_;
  std::thread worker_;

  // Consumer-side cursor (mirrors StreamFileReader's).
  size_t edges_read_ = 0;
  bool truncated_ = false;
  bool checksum_failed_ = false;
  Unit* active_unit_ = nullptr;  // unit the consumer currently owns
  size_t active_index_ = 0;      // position of the current chunk in it
  std::span<const Edge> current_;
  size_t current_pos_ = 0;
  bool current_valid_ = false;
};

}  // namespace setcover

#endif  // SETCOVER_STREAM_PREFETCH_DECODER_H_
