#include "stream/stream_file.h"

#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace setcover {
namespace {

constexpr char kMagic[4] = {'S', 'C', 'E', 'S'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr size_t kChunkEdges = 4096;
// The ingestion batch size is pinned to the on-disk chunk capacity so
// batched drivers flush exactly once per chunk and checkpoint positions
// stay aligned with chunk boundaries.
static_assert(kChunkEdges == kIngestBatchEdges,
              "stream-file chunk capacity must match kIngestBatchEdges");
// magic + version + m + n + N [+ header_crc in v2].
constexpr long kHeaderBytesV1 = 4 + 4 + 4 + 4 + 8;
constexpr long kHeaderBytesV2 = kHeaderBytesV1 + 4;
constexpr long kChunkHeaderBytes = 4 + 4;  // count + payload_crc

bool WriteAll(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

size_t ChunkEdgeCount(size_t stream_length, size_t chunk_index) {
  size_t start = chunk_index * kChunkEdges;
  if (start >= stream_length) return 0;
  return std::min(kChunkEdges, stream_length - start);
}

long ChunkFileOffset(size_t chunk_index) {
  return kHeaderBytesV2 +
         long(chunk_index) *
             (kChunkHeaderBytes + long(kChunkEdges * sizeof(Edge)));
}

}  // namespace

bool WriteStreamFile(const EdgeStream& stream, const std::string& path) {
  static_assert(sizeof(Edge) == 8, "Edge must pack to 8 bytes");
  // Stage into a sibling temp file and rename into place, so a crash
  // mid-write can never leave a half-valid file under the final name.
  const std::string temp = path + ".tmp";
  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) return false;

  uint32_t version = kVersionV2;
  uint32_t m = stream.meta.num_sets;
  uint32_t n = stream.meta.num_elements;
  uint64_t big_n = stream.edges.size();
  unsigned char header[20];
  std::memcpy(header, &version, 4);
  std::memcpy(header + 4, &m, 4);
  std::memcpy(header + 8, &n, 4);
  std::memcpy(header + 12, &big_n, 8);
  uint32_t header_crc = Crc32(header, sizeof(header));
  bool ok = WriteAll(f, kMagic, 4) && WriteAll(f, header, sizeof(header)) &&
            WriteAll(f, &header_crc, 4);

  for (size_t chunk = 0; ok && chunk * kChunkEdges < stream.edges.size();
       ++chunk) {
    uint32_t count =
        static_cast<uint32_t>(ChunkEdgeCount(stream.edges.size(), chunk));
    const Edge* payload = stream.edges.data() + chunk * kChunkEdges;
    uint32_t payload_crc = Crc32(payload, count * sizeof(Edge));
    ok = WriteAll(f, &count, 4) && WriteAll(f, &payload_crc, 4) &&
         WriteAll(f, payload, count * sizeof(Edge));
  }

  ok = (std::fflush(f) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

std::unique_ptr<StreamFileReader> StreamFileReader::Open(
    const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  auto fail = [&](const char* msg) -> std::unique_ptr<StreamFileReader> {
    if (error != nullptr) *error = msg;
    if (f != nullptr) std::fclose(f);
    return nullptr;
  };
  if (f == nullptr) return fail("cannot open stream file");
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return fail("bad magic");
  }
  unsigned char header[20];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    return fail("truncated header");
  }
  uint32_t version = 0, m = 0, n = 0;
  uint64_t big_n = 0;
  std::memcpy(&version, header, 4);
  std::memcpy(&m, header + 4, 4);
  std::memcpy(&n, header + 8, 4);
  std::memcpy(&big_n, header + 12, 8);
  if (version != kVersionV1 && version != kVersionV2) {
    return fail("unsupported version");
  }
  if (version == kVersionV2) {
    uint32_t stored_crc = 0;
    if (std::fread(&stored_crc, 4, 1, f) != 1) {
      return fail("truncated header");
    }
    if (stored_crc != Crc32(header, sizeof(header))) {
      return fail("header checksum mismatch");
    }
  }
  auto reader = std::unique_ptr<StreamFileReader>(new StreamFileReader());
  reader->file_ = f;
  reader->version_ = version;
  reader->meta_ = {m, n, big_n};
  return reader;
}

StreamFileReader::~StreamFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool StreamFileReader::FillBuffer() {
  if (version_ == kVersionV2) return FillBufferV2();
  size_t want =
      std::min(kChunkEdges, size_t{meta_.stream_length} - edges_read_);
  if (want == 0) return false;
  buffer_.resize(want);
  size_t got = std::fread(buffer_.data(), sizeof(Edge), want, file_);
  buffer_.resize(got);
  buffer_pos_ = 0;
  if (got < want) truncated_ = true;
  return got > 0;
}

bool StreamFileReader::FillBufferV2() {
  // The cursor sits on a chunk boundary whenever the buffer is empty
  // (chunks are only ever consumed whole or discarded by SeekToEdge).
  size_t chunk = edges_read_ / kChunkEdges;
  size_t want = ChunkEdgeCount(meta_.stream_length, chunk);
  if (want == 0) return false;
  uint32_t count = 0, stored_crc = 0;
  if (std::fread(&count, 4, 1, file_) != 1 ||
      std::fread(&stored_crc, 4, 1, file_) != 1) {
    truncated_ = true;
    return false;
  }
  if (count != want) {
    // A corrupted count would otherwise desynchronize every following
    // chunk; the expected count is implied by N, so treat any mismatch
    // as corruption.
    checksum_failed_ = true;
    return false;
  }
  buffer_.resize(want);
  size_t got = std::fread(buffer_.data(), sizeof(Edge), want, file_);
  if (got < want) {
    buffer_.clear();
    truncated_ = true;
    return false;
  }
  if (Crc32(buffer_.data(), want * sizeof(Edge)) != stored_crc) {
    buffer_.clear();
    checksum_failed_ = true;
    return false;
  }
  buffer_pos_ = 0;
  return true;
}

bool StreamFileReader::Next(Edge* edge) {
  if (checksum_failed_ || edges_read_ >= meta_.stream_length) return false;
  if (buffer_pos_ >= buffer_.size() && !FillBuffer()) return false;
  *edge = buffer_[buffer_pos_++];
  ++edges_read_;
  return true;
}

std::span<const Edge> StreamFileReader::NextBatch() {
  if (checksum_failed_ || edges_read_ >= meta_.stream_length) return {};
  if (buffer_pos_ >= buffer_.size() && !FillBuffer()) return {};
  std::span<const Edge> batch(buffer_.data() + buffer_pos_,
                              buffer_.size() - buffer_pos_);
  buffer_pos_ = buffer_.size();
  edges_read_ += batch.size();
  return batch;
}

bool StreamFileReader::SeekToEdge(size_t index) {
  if (index > meta_.stream_length) return false;
  buffer_.clear();
  buffer_pos_ = 0;
  checksum_failed_ = false;
  truncated_ = false;
  if (version_ == kVersionV1) {
    if (std::fseek(file_, kHeaderBytesV1 + long(index * sizeof(Edge)),
                   SEEK_SET) != 0) {
      return false;
    }
    edges_read_ = index;
    return true;
  }
  // v2: land on the containing chunk boundary, then re-read (and
  // CRC-verify) the prefix of the chunk that precedes `index`.
  size_t chunk = index / kChunkEdges;
  if (std::fseek(file_, ChunkFileOffset(chunk), SEEK_SET) != 0) {
    return false;
  }
  edges_read_ = chunk * kChunkEdges;
  Edge discard;
  while (edges_read_ < index) {
    if (!Next(&discard)) return false;
  }
  return true;
}

std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    std::string* error) {
  auto reader = StreamFileReader::Open(path, error);
  if (reader == nullptr) return std::nullopt;
  algorithm.Begin(reader->Meta());
  for (std::span<const Edge> batch = reader->NextBatch(); !batch.empty();
       batch = reader->NextBatch()) {
    algorithm.ProcessEdgeBatch(batch);
  }
  return algorithm.Finalize();
}

}  // namespace setcover
