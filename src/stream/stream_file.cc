#include "stream/stream_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/varint.h"

namespace setcover {
namespace {

constexpr char kMagic[4] = {'S', 'C', 'E', 'S'};
constexpr char kIndexMagic[4] = {'S', 'C', 'I', 'X'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint32_t kVersionV3 = 3;
constexpr size_t kChunkEdges = 4096;
// The ingestion batch size is pinned to the on-disk chunk capacity so
// batched drivers flush exactly once per chunk and checkpoint positions
// stay aligned with chunk boundaries.
static_assert(kChunkEdges == kIngestBatchEdges,
              "stream-file chunk capacity must match kIngestBatchEdges");
// The mmap backend serves v1/v2 payloads as Edge spans straight out of
// the mapping; that requires the on-disk layout to be the in-memory
// layout and every payload offset to be Edge-aligned (header offsets
// 24/28/36 and the v2 chunk stride are all multiples of 4).
static_assert(sizeof(Edge) == 8 && alignof(Edge) <= 4,
              "zero-copy chunk views require 8-byte, 4-aligned edges");
// magic + version + m + n + N [+ header_crc in v2/v3].
constexpr uint64_t kHeaderBytesV1 = 4 + 4 + 4 + 4 + 8;
constexpr uint64_t kHeaderBytesV2 = kHeaderBytesV1 + 4;
constexpr uint64_t kChunkHeaderBytesV2 = 4 + 4;       // count + crc
constexpr uint64_t kChunkHeaderBytesV3 = 4 + 4 + 4;   // + payload_bytes
constexpr uint64_t kFooterBytesV3 = 4 + 8 + 4;  // index_crc + offset + magic

bool WriteAll(std::FILE* f, const void* data, size_t bytes) {
  if (bytes == 0) return true;  // fwrite(nullptr, ...) is UB even for 0
  return std::fwrite(data, 1, bytes, f) == bytes;
}

size_t ChunkEdgeCount(size_t stream_length, size_t chunk_index) {
  size_t start = chunk_index * kChunkEdges;
  if (start >= stream_length) return 0;
  return std::min(kChunkEdges, stream_length - start);
}

uint64_t ChunkFileOffsetV1(size_t chunk_index) {
  return kHeaderBytesV1 + uint64_t(chunk_index) * kChunkEdges * sizeof(Edge);
}

uint64_t ChunkFileOffsetV2(size_t chunk_index) {
  return kHeaderBytesV2 +
         uint64_t(chunk_index) *
             (kChunkHeaderBytesV2 + kChunkEdges * sizeof(Edge));
}

void FailErrno(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

/// Delta-varint encodes one chunk's edges (the v3 payload).
void EncodeV3Payload(const Edge* edges, size_t count,
                     std::vector<uint8_t>* out) {
  out->clear();
  int64_t previous_set = 0;
  for (size_t i = 0; i < count; ++i) {
    const int64_t set = int64_t(edges[i].set);
    AppendVarint(out, ZigZagEncode(set - previous_set));
    AppendVarint(out, edges[i].element);
    previous_set = set;
  }
}

}  // namespace

bool WriteStreamFile(const EdgeStream& stream, const std::string& path,
                     StreamFormat format, std::string* error) {
  const uint32_t version = static_cast<uint32_t>(format);
  // Stage into a sibling temp file and rename into place, so a crash
  // mid-write can never leave a half-valid file under the final name.
  const std::string temp = path + ".tmp";
  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) {
    FailErrno(error, ("cannot create " + temp).c_str());
    return false;
  }

  uint32_t m = stream.meta.num_sets;
  uint32_t n = stream.meta.num_elements;
  uint64_t big_n = stream.edges.size();
  unsigned char header[20];
  std::memcpy(header, &version, 4);
  std::memcpy(header + 4, &m, 4);
  std::memcpy(header + 8, &n, 4);
  std::memcpy(header + 12, &big_n, 8);
  bool ok = WriteAll(f, kMagic, 4) && WriteAll(f, header, sizeof(header));
  if (version != kVersionV1) {
    uint32_t header_crc = Crc32(header, sizeof(header));
    ok = ok && WriteAll(f, &header_crc, 4);
  }

  const size_t num_chunks =
      (stream.edges.size() + kChunkEdges - 1) / kChunkEdges;
  if (version == kVersionV1) {
    ok = ok && WriteAll(f, stream.edges.data(),
                        stream.edges.size() * sizeof(Edge));
  } else if (version == kVersionV2) {
    for (size_t chunk = 0; ok && chunk < num_chunks; ++chunk) {
      uint32_t count =
          static_cast<uint32_t>(ChunkEdgeCount(stream.edges.size(), chunk));
      const Edge* payload = stream.edges.data() + chunk * kChunkEdges;
      uint32_t payload_crc = Crc32(payload, count * sizeof(Edge));
      ok = WriteAll(f, &count, 4) && WriteAll(f, &payload_crc, 4) &&
           WriteAll(f, payload, count * sizeof(Edge));
    }
  } else {
    std::vector<uint64_t> offsets;
    offsets.reserve(num_chunks);
    std::vector<uint8_t> payload;
    uint64_t offset = kHeaderBytesV2;
    for (size_t chunk = 0; ok && chunk < num_chunks; ++chunk) {
      uint32_t count =
          static_cast<uint32_t>(ChunkEdgeCount(stream.edges.size(), chunk));
      EncodeV3Payload(stream.edges.data() + chunk * kChunkEdges, count,
                      &payload);
      uint32_t payload_bytes = static_cast<uint32_t>(payload.size());
      uint32_t payload_crc = Crc32c(payload.data(), payload.size());
      ok = WriteAll(f, &count, 4) && WriteAll(f, &payload_bytes, 4) &&
           WriteAll(f, &payload_crc, 4) &&
           WriteAll(f, payload.data(), payload.size());
      offsets.push_back(offset);
      offset += kChunkHeaderBytesV3 + payload_bytes;
    }
    // Trailing chunk-offset index + self-locating footer: O(1) seeks
    // despite variable-size chunks, recoverable by header scan if the
    // tail is lost.
    const uint64_t index_offset = offset;
    uint32_t index_crc =
        Crc32c(offsets.data(), offsets.size() * sizeof(uint64_t));
    ok = ok &&
         WriteAll(f, offsets.data(), offsets.size() * sizeof(uint64_t)) &&
         WriteAll(f, &index_crc, 4) && WriteAll(f, &index_offset, 8) &&
         WriteAll(f, kIndexMagic, 4);
  }
  if (!ok) FailErrno(error, ("write to " + temp + " failed").c_str());

  if (std::fflush(f) != 0 && ok) {
    FailErrno(error, ("flush of " + temp + " failed").c_str());
    ok = false;
  }
  if (std::fclose(f) != 0 && ok) {
    FailErrno(error, ("close of " + temp + " failed").c_str());
    ok = false;
  }
  if (ok && std::rename(temp.c_str(), path.c_str()) != 0) {
    FailErrno(error, ("rename to " + path + " failed").c_str());
    ok = false;
  }
  if (!ok) std::remove(temp.c_str());
  return ok;
}

std::unique_ptr<StreamFileReader> StreamFileReader::Open(
    const std::string& path, std::string* error) {
  return Open(path, StreamReadOptions{}, error);
}

std::unique_ptr<StreamFileReader> StreamFileReader::Open(
    const std::string& path, const StreamReadOptions& options,
    std::string* error) {
  auto reader = std::unique_ptr<StreamFileReader>(new StreamFileReader());
  if (options.use_mmap && reader->map_.Open(path, error)) {
    reader->file_size_ = reader->map_.size();
  } else {
    // Portable fallback (also the explicit choice when use_mmap is
    // off): plain stdio with per-chunk reads.
    reader->file_ = std::fopen(path.c_str(), "rb");
    if (reader->file_ == nullptr) {
      FailErrno(error, ("cannot open " + path).c_str());
      return nullptr;
    }
    if (std::fseek(reader->file_, 0, SEEK_END) != 0) {
      FailErrno(error, ("cannot size " + path).c_str());
      return nullptr;
    }
    reader->file_size_ = static_cast<uint64_t>(std::ftell(reader->file_));
  }

  auto fail = [&](const char* msg) -> std::unique_ptr<StreamFileReader> {
    if (error != nullptr) *error = msg;
    return nullptr;
  };
  char magic[4];
  if (!reader->ReadRaw(0, magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return fail("bad magic");
  }
  unsigned char header[20];
  if (!reader->ReadRaw(4, header, sizeof(header))) {
    return fail("truncated header");
  }
  uint32_t version = 0, m = 0, n = 0;
  uint64_t big_n = 0;
  std::memcpy(&version, header, 4);
  std::memcpy(&m, header + 4, 4);
  std::memcpy(&n, header + 8, 4);
  std::memcpy(&big_n, header + 12, 8);
  if (version != kVersionV1 && version != kVersionV2 &&
      version != kVersionV3) {
    return fail("unsupported version");
  }
  if (version != kVersionV1) {
    uint32_t stored_crc = 0;
    if (!reader->ReadRaw(24, &stored_crc, 4)) {
      return fail("truncated header");
    }
    if (stored_crc != Crc32(header, sizeof(header))) {
      return fail("header checksum mismatch");
    }
  }
  reader->version_ = version;
  reader->meta_ = {m, n, big_n};
  if (version == kVersionV3 && !reader->LoadV3Offsets(error)) {
    return nullptr;
  }
  return reader;
}

StreamFileReader::~StreamFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool StreamFileReader::ReadRaw(uint64_t offset, void* out, size_t bytes) {
  if (map_.IsOpen()) {
    if (offset + bytes > file_size_) return false;
    std::memcpy(out, map_.data() + offset, bytes);
    return true;
  }
  if (std::fseek(file_, long(offset), SEEK_SET) != 0) return false;
  return std::fread(out, 1, bytes, file_) == bytes;
}

size_t StreamFileReader::NumChunks() const {
  return (size_t{meta_.stream_length} + kChunkEdges - 1) / kChunkEdges;
}

bool StreamFileReader::LoadV3Offsets(std::string*) {
  const size_t chunks = NumChunks();
  v3_offsets_.clear();
  v3_data_end_ = file_size_;
  if (chunks == 0) return true;

  // Fast path: the trailing index, validated end to end (footer magic,
  // size arithmetic, CRC, monotonicity) before a single offset is
  // trusted.
  const uint64_t index_bytes = uint64_t(chunks) * sizeof(uint64_t);
  uint8_t footer[kFooterBytesV3];
  if (file_size_ >= kHeaderBytesV2 + index_bytes + kFooterBytesV3 &&
      ReadRaw(file_size_ - kFooterBytesV3, footer, kFooterBytesV3)) {
    uint32_t index_crc = 0;
    uint64_t index_offset = 0;
    std::memcpy(&index_crc, footer, 4);
    std::memcpy(&index_offset, footer + 4, 8);
    if (std::memcmp(footer + 12, kIndexMagic, 4) == 0 &&
        index_offset >= kHeaderBytesV2 &&
        index_offset + index_bytes + kFooterBytesV3 == file_size_) {
      std::vector<uint64_t> offsets(chunks);
      if (ReadRaw(index_offset, offsets.data(), index_bytes) &&
          Crc32c(offsets.data(), index_bytes) == index_crc) {
        bool sane = offsets[0] == kHeaderBytesV2;
        for (size_t c = 1; sane && c < chunks; ++c) {
          sane = offsets[c] > offsets[c - 1] && offsets[c] < index_offset;
        }
        if (sane) {
          v3_offsets_ = std::move(offsets);
          v3_data_end_ = index_offset;
          return true;
        }
      }
    }
  }

  // Fallback: linear header scan — payload_bytes makes chunks
  // self-delimiting, so a file with a damaged or missing index (e.g. a
  // truncated tail) still yields every chunk that physically survives.
  uint64_t offset = kHeaderBytesV2;
  for (size_t chunk = 0; chunk < chunks; ++chunk) {
    uint8_t chunk_header[kChunkHeaderBytesV3];
    if (offset + kChunkHeaderBytesV3 > file_size_ ||
        !ReadRaw(offset, chunk_header, kChunkHeaderBytesV3)) {
      break;
    }
    v3_offsets_.push_back(offset);
    uint32_t payload_bytes = 0;
    std::memcpy(&payload_bytes, chunk_header + 4, 4);
    offset += kChunkHeaderBytesV3 + payload_bytes;
    if (offset > file_size_) break;  // truncated payload; chunk recorded
  }
  return true;
}

bool StreamFileReader::DecodeChunk(size_t chunk, DecodedChunk* out) {
  out->edges = {};
  out->truncated = false;
  out->checksum_failed = false;
  const size_t want = ChunkEdgeCount(meta_.stream_length, chunk);
  if (want == 0) return false;

  if (version_ == kVersionV1) {
    const uint64_t offset = ChunkFileOffsetV1(chunk);
    // No checksums in v1: surface whatever prefix of the chunk exists.
    if (map_.IsOpen()) {
      const uint64_t avail =
          offset < file_size_ ? (file_size_ - offset) / sizeof(Edge) : 0;
      const size_t got = std::min(want, size_t(avail));
      out->edges = std::span<const Edge>(
          reinterpret_cast<const Edge*>(map_.data() + offset), got);
      out->truncated = got < want;
    } else {
      out->storage.resize(want);
      size_t got = 0;
      if (std::fseek(file_, long(offset), SEEK_SET) == 0) {
        got = std::fread(out->storage.data(), sizeof(Edge), want, file_);
      }
      out->storage.resize(got);
      out->edges = std::span<const Edge>(out->storage);
      out->truncated = got < want;
    }
    return true;
  }

  if (version_ == kVersionV2) {
    const uint64_t offset = ChunkFileOffsetV2(chunk);
    uint8_t chunk_header[kChunkHeaderBytesV2];
    if (!ReadRaw(offset, chunk_header, kChunkHeaderBytesV2)) {
      out->truncated = true;
      return true;
    }
    uint32_t count = 0, stored_crc = 0;
    std::memcpy(&count, chunk_header, 4);
    std::memcpy(&stored_crc, chunk_header + 4, 4);
    if (count != want) {
      // A corrupted count would otherwise desynchronize every following
      // chunk; the expected count is implied by N, so treat any
      // mismatch as corruption.
      out->checksum_failed = true;
      return true;
    }
    const uint64_t payload_offset = offset + kChunkHeaderBytesV2;
    const size_t payload_bytes = want * sizeof(Edge);
    if (map_.IsOpen()) {
      if (payload_offset + payload_bytes > file_size_) {
        out->truncated = true;
        return true;
      }
      const uint8_t* payload = map_.data() + payload_offset;
      if (Crc32(payload, payload_bytes) != stored_crc) {
        out->checksum_failed = true;
        return true;
      }
      // Zero-copy: the CRC-verified payload is served straight from
      // the mapping.
      out->edges = std::span<const Edge>(
          reinterpret_cast<const Edge*>(payload), want);
    } else {
      out->storage.resize(want);
      if (!ReadRaw(payload_offset, out->storage.data(), payload_bytes)) {
        out->truncated = true;
        return true;
      }
      if (Crc32(out->storage.data(), payload_bytes) != stored_crc) {
        out->checksum_failed = true;
        return true;
      }
      out->edges = std::span<const Edge>(out->storage);
    }
    return true;
  }

  // v3: locate via the offset table, CRC32C-check the compressed
  // payload, then delta-varint decode.
  if (chunk >= v3_offsets_.size()) {
    out->truncated = true;  // the file ended before this chunk
    return true;
  }
  const uint64_t offset = v3_offsets_[chunk];
  uint8_t chunk_header[kChunkHeaderBytesV3];
  if (offset + kChunkHeaderBytesV3 > v3_data_end_ ||
      !ReadRaw(offset, chunk_header, kChunkHeaderBytesV3)) {
    out->truncated = true;
    return true;
  }
  uint32_t count = 0, payload_bytes = 0, stored_crc = 0;
  std::memcpy(&count, chunk_header, 4);
  std::memcpy(&payload_bytes, chunk_header + 4, 4);
  std::memcpy(&stored_crc, chunk_header + 8, 4);
  if (count != want) {
    out->checksum_failed = true;
    return true;
  }
  const uint64_t payload_offset = offset + kChunkHeaderBytesV3;
  if (payload_offset + payload_bytes > v3_data_end_) {
    out->truncated = true;
    return true;
  }
  const uint8_t* payload = nullptr;
  if (map_.IsOpen()) {
    payload = map_.data() + payload_offset;
  } else {
    out->scratch.resize(payload_bytes);
    if (!ReadRaw(payload_offset, out->scratch.data(), payload_bytes)) {
      out->truncated = true;
      return true;
    }
    payload = out->scratch.data();
  }
  if (Crc32c(payload, payload_bytes) != stored_crc) {
    out->checksum_failed = true;
    return true;
  }
  out->storage.resize(want);
  const uint8_t* cursor = payload;
  const uint8_t* end = payload + payload_bytes;
  int64_t set = 0;
  for (size_t i = 0; i < want; ++i) {
    uint64_t delta = 0, element = 0;
    if (!GetVarint(&cursor, end, &delta) ||
        !GetVarint(&cursor, end, &element)) {
      out->checksum_failed = true;
      return true;
    }
    set += ZigZagDecode(delta);
    if (set < 0 || set > int64_t{0xFFFFFFFF} ||
        element > uint64_t{0xFFFFFFFF}) {
      out->checksum_failed = true;
      return true;
    }
    out->storage[i] = Edge{SetId(set), ElementId(element)};
  }
  if (cursor != end) {
    // Leftover payload after the declared count: a CRC-passing encode
    // could only do this through a writer bug; refuse it all the same.
    out->checksum_failed = true;
    return true;
  }
  out->edges = std::span<const Edge>(out->storage);
  return true;
}

bool StreamFileReader::FillBuffer() {
  // The cursor may sit mid-chunk after a SeekToEdge; the containing
  // chunk is decoded whole and the prefix skipped.
  const size_t chunk = edges_read_ / kChunkEdges;
  if (!DecodeChunk(chunk, &current_)) return false;
  current_valid_ = true;
  if (current_.checksum_failed) {
    checksum_failed_ = true;
    current_.edges = {};
    return false;
  }
  if (current_.truncated) truncated_ = true;
  current_pos_ = edges_read_ - chunk * kChunkEdges;
  return current_pos_ < current_.edges.size();
}

bool StreamFileReader::Next(Edge* edge) {
  if (checksum_failed_ || edges_read_ >= meta_.stream_length) return false;
  if (!current_valid_ || current_pos_ >= current_.edges.size()) {
    if (truncated_) return false;  // already hit the end of the file
    if (!FillBuffer()) return false;
  }
  *edge = current_.edges[current_pos_++];
  ++edges_read_;
  return true;
}

std::span<const Edge> StreamFileReader::NextBatch() {
  if (checksum_failed_ || edges_read_ >= meta_.stream_length) return {};
  if (!current_valid_ || current_pos_ >= current_.edges.size()) {
    if (truncated_ || !FillBuffer()) return {};
  }
  std::span<const Edge> batch = current_.edges.subspan(current_pos_);
  current_pos_ = current_.edges.size();
  edges_read_ += batch.size();
  return batch;
}

bool StreamFileReader::SeekToEdge(size_t index) {
  if (index > meta_.stream_length) return false;
  current_valid_ = false;
  current_.edges = {};
  current_pos_ = 0;
  checksum_failed_ = false;
  truncated_ = false;
  edges_read_ = index;
  return true;
}

}  // namespace setcover
