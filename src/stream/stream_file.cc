#include "stream/stream_file.h"

#include <cstring>

namespace setcover {
namespace {

constexpr char kMagic[4] = {'S', 'C', 'E', 'S'};
constexpr uint32_t kVersion = 1;
constexpr size_t kBufferEdges = 1 << 16;

bool WriteAll(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

}  // namespace

bool WriteStreamFile(const EdgeStream& stream, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = WriteAll(f, kMagic, 4);
  uint32_t version = kVersion;
  uint32_t m = stream.meta.num_sets;
  uint32_t n = stream.meta.num_elements;
  uint64_t big_n = stream.edges.size();
  ok = ok && WriteAll(f, &version, 4) && WriteAll(f, &m, 4) &&
       WriteAll(f, &n, 4) && WriteAll(f, &big_n, 8);
  // Edge is two packed u32s; write in chunks.
  static_assert(sizeof(Edge) == 8, "Edge must pack to 8 bytes");
  if (ok && !stream.edges.empty()) {
    ok = WriteAll(f, stream.edges.data(),
                  stream.edges.size() * sizeof(Edge));
  }
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

std::unique_ptr<StreamFileReader> StreamFileReader::Open(
    const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  auto fail = [&](const char* msg) -> std::unique_ptr<StreamFileReader> {
    if (error != nullptr) *error = msg;
    if (f != nullptr) std::fclose(f);
    return nullptr;
  };
  if (f == nullptr) return fail("cannot open stream file");
  char magic[4];
  uint32_t version = 0, m = 0, n = 0;
  uint64_t big_n = 0;
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return fail("bad magic");
  }
  if (std::fread(&version, 4, 1, f) != 1 || version != kVersion) {
    return fail("unsupported version");
  }
  if (std::fread(&m, 4, 1, f) != 1 || std::fread(&n, 4, 1, f) != 1 ||
      std::fread(&big_n, 8, 1, f) != 1) {
    return fail("truncated header");
  }
  auto reader = std::unique_ptr<StreamFileReader>(new StreamFileReader());
  reader->file_ = f;
  reader->meta_ = {m, n, big_n};
  return reader;
}

StreamFileReader::~StreamFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool StreamFileReader::FillBuffer() {
  size_t want =
      std::min(kBufferEdges, size_t{meta_.stream_length} - edges_read_);
  if (want == 0) return false;
  buffer_.resize(want);
  size_t got = std::fread(buffer_.data(), sizeof(Edge), want, file_);
  buffer_.resize(got);
  buffer_pos_ = 0;
  if (got < want) truncated_ = true;
  return got > 0;
}

bool StreamFileReader::Next(Edge* edge) {
  if (edges_read_ >= meta_.stream_length) return false;
  if (buffer_pos_ >= buffer_.size() && !FillBuffer()) return false;
  *edge = buffer_[buffer_pos_++];
  ++edges_read_;
  return true;
}

std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    std::string* error) {
  auto reader = StreamFileReader::Open(path, error);
  if (reader == nullptr) return std::nullopt;
  algorithm.Begin(reader->Meta());
  Edge edge;
  while (reader->Next(&edge)) algorithm.ProcessEdge(edge);
  return algorithm.Finalize();
}

}  // namespace setcover
