#include "stream/stream.h"

namespace setcover {

std::vector<Edge> MaterializeEdges(const SetCoverInstance& instance) {
  std::vector<Edge> edges;
  edges.reserve(instance.NumEdges());
  for (SetId s = 0; s < instance.NumSets(); ++s) {
    for (ElementId u : instance.Set(s)) edges.push_back({s, u});
  }
  return edges;
}

EdgeStream MakeStream(const SetCoverInstance& instance,
                      std::vector<Edge> edges) {
  EdgeStream stream;
  stream.meta = {instance.NumSets(), instance.NumElements(), edges.size()};
  stream.edges = std::move(edges);
  return stream;
}

}  // namespace setcover
