#include "stream/edge_source.h"

namespace setcover {

ReadStatus VectorEdgeSource::Next(Edge* edge) {
  if (position_ >= stream_.edges.size()) return ReadStatus::kEnd;
  *edge = stream_.edges[position_++];
  return ReadStatus::kOk;
}

bool VectorEdgeSource::SeekTo(size_t position) {
  if (position > stream_.edges.size()) return false;
  position_ = position;
  return true;
}

std::unique_ptr<StreamFileSource> StreamFileSource::Open(
    const std::string& path, std::string* error) {
  return Open(path, StreamReadOptions{}, error);
}

std::unique_ptr<StreamFileSource> StreamFileSource::Open(
    const std::string& path, const StreamReadOptions& options,
    std::string* error) {
  auto reader = OpenBatchEdgeReader(path, options, error);
  if (reader == nullptr) return nullptr;
  return std::unique_ptr<StreamFileSource>(
      new StreamFileSource(std::move(reader)));
}

ReadStatus StreamFileSource::Next(Edge* edge) {
  if (reader_->Next(edge)) return ReadStatus::kOk;
  if (reader_->ChecksumFailed() && !corrupt_reported_) {
    // Report the damaged chunk once; the reader already refuses to
    // surface its edges, so the stream effectively ends here.
    corrupt_reported_ = true;
    *edge = Edge{0, 0};
    return ReadStatus::kCorrupt;
  }
  return ReadStatus::kEnd;
}

}  // namespace setcover
