#include "stream/prefetch_decoder.h"

namespace setcover {
namespace {

constexpr size_t kChunkEdges = kIngestBatchEdges;

}  // namespace

std::unique_ptr<PrefetchDecoder> PrefetchDecoder::Create(
    std::unique_ptr<StreamFileReader> reader) {
  auto decoder =
      std::unique_ptr<PrefetchDecoder>(new PrefetchDecoder(std::move(reader)));
  decoder->StartWorker(0);
  return decoder;
}

PrefetchDecoder::PrefetchDecoder(std::unique_ptr<StreamFileReader> reader)
    : reader_(std::move(reader)), num_chunks_(reader_->NumChunks()) {
  for (size_t i = 0; i < StagePipe<Unit>::kSlots; ++i)
    pipe_.PayloadAt(i).chunks.resize(kUnitChunks);
}

PrefetchDecoder::~PrefetchDecoder() { StopWorker(); }

void PrefetchDecoder::StartWorker(size_t first_chunk) {
  worker_ = std::thread([this, first_chunk] { WorkerLoop(first_chunk); });
}

void PrefetchDecoder::StopWorker() {
  pipe_.Stop();
  if (worker_.joinable()) worker_.join();
}

void PrefetchDecoder::WorkerLoop(size_t first_chunk) {
  size_t chunk = first_chunk;
  while (true) {
    Unit* unit = pipe_.BeginFill();
    if (unit == nullptr) return;  // stopped
    // Decode outside the pipe's lock: the consumer never touches a unit
    // it has handed back, so the worker owns it exclusively here.
    unit->first_chunk = chunk;
    unit->count = 0;
    bool damaged = false;
    for (size_t i = 0; i < kUnitChunks && chunk < num_chunks_; ++i) {
      StreamFileReader::DecodedChunk& decoded = unit->chunks[i];
      reader_->DecodeChunk(chunk, &decoded);
      ++unit->count;
      ++chunk;
      if (decoded.truncated || decoded.checksum_failed) {
        // The stream ends at the damaged chunk; decoding further would
        // be wasted work the consumer must never see anyway.
        damaged = true;
        break;
      }
    }
    pipe_.FinishFill();
    if (damaged || chunk >= num_chunks_) {
      pipe_.FinishProducing();
      return;
    }
  }
}

const StreamFileReader::DecodedChunk* PrefetchDecoder::AcquireChunk(
    size_t chunk) {
  if (chunk >= num_chunks_) return nullptr;
  if (active_unit_ != nullptr) {
    if (active_index_ + 1 < active_unit_->count) {
      ++active_index_;
      return &active_unit_->chunks[active_index_];
    }
    // Unit drained: hand it back to the worker.
    pipe_.FinishDrain();
    active_unit_ = nullptr;
  }
  Unit* unit = pipe_.BeginDrain();
  if (unit == nullptr) return nullptr;  // producer done; nothing pending
  active_unit_ = unit;
  active_index_ = 0;
  if (unit->count == 0) return nullptr;  // empty stream
  return &unit->chunks[0];
}

bool PrefetchDecoder::FillBuffer() {
  const size_t chunk = edges_read_ / kChunkEdges;
  const StreamFileReader::DecodedChunk* decoded = AcquireChunk(chunk);
  if (decoded == nullptr) return false;
  current_valid_ = true;
  if (decoded->checksum_failed) {
    checksum_failed_ = true;
    current_ = {};
    return false;
  }
  current_ = decoded->edges;
  if (decoded->truncated) truncated_ = true;
  current_pos_ = edges_read_ - chunk * kChunkEdges;
  return current_pos_ < current_.size();
}

bool PrefetchDecoder::Next(Edge* edge) {
  if (checksum_failed_ || edges_read_ >= Meta().stream_length) return false;
  if (!current_valid_ || current_pos_ >= current_.size()) {
    if (truncated_) return false;
    if (!FillBuffer()) return false;
  }
  *edge = current_[current_pos_++];
  ++edges_read_;
  return true;
}

std::span<const Edge> PrefetchDecoder::NextBatch() {
  if (checksum_failed_ || edges_read_ >= Meta().stream_length) return {};
  if (!current_valid_ || current_pos_ >= current_.size()) {
    if (truncated_ || !FillBuffer()) return {};
  }
  std::span<const Edge> batch = current_.subspan(current_pos_);
  current_pos_ = current_.size();
  edges_read_ += batch.size();
  return batch;
}

bool PrefetchDecoder::SeekToEdge(size_t index) {
  if (index > Meta().stream_length) return false;
  // Seeks happen on the resume path, not the hot path: tear the
  // pipeline down, rewind the consumer cursor, and restart the worker
  // at the containing chunk.
  StopWorker();
  pipe_.Reset();
  active_unit_ = nullptr;
  active_index_ = 0;
  current_ = {};
  current_pos_ = 0;
  current_valid_ = false;
  truncated_ = false;
  checksum_failed_ = false;
  edges_read_ = index;
  StartWorker(index / kChunkEdges);
  return true;
}

std::unique_ptr<BatchEdgeReader> OpenBatchEdgeReader(
    const std::string& path, const StreamReadOptions& options,
    std::string* error) {
  auto reader = StreamFileReader::Open(path, options, error);
  if (reader == nullptr) return nullptr;
  if (!options.prefetch) return reader;
  return PrefetchDecoder::Create(std::move(reader));
}

// RunStreamFromFile is implemented in engine/engine.cc as a thin client
// of the engine's file fast path (the old loop here, verbatim).

}  // namespace setcover
