#include "stream/prefetch_decoder.h"

namespace setcover {
namespace {

constexpr size_t kChunkEdges = kIngestBatchEdges;

}  // namespace

std::unique_ptr<PrefetchDecoder> PrefetchDecoder::Create(
    std::unique_ptr<StreamFileReader> reader) {
  auto decoder =
      std::unique_ptr<PrefetchDecoder>(new PrefetchDecoder(std::move(reader)));
  decoder->StartWorker(0);
  return decoder;
}

PrefetchDecoder::PrefetchDecoder(std::unique_ptr<StreamFileReader> reader)
    : reader_(std::move(reader)), num_chunks_(reader_->NumChunks()) {
  for (Slot& slot : slots_) slot.chunks.resize(kUnitChunks);
}

PrefetchDecoder::~PrefetchDecoder() { StopWorker(); }

void PrefetchDecoder::StartWorker(size_t first_chunk) {
  stop_ = false;
  worker_ = std::thread([this, first_chunk] { WorkerLoop(first_chunk); });
}

void PrefetchDecoder::StopWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void PrefetchDecoder::WorkerLoop(size_t first_chunk) {
  size_t chunk = first_chunk;
  size_t slot_index = 0;
  while (true) {
    Slot* slot = &slots_[slot_index];
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !slot->full; });
      if (stop_) return;
    }
    // Decode outside the lock: the consumer never touches a slot whose
    // full flag it has cleared, so the worker owns it exclusively here.
    slot->first_chunk = chunk;
    slot->count = 0;
    bool damaged = false;
    for (size_t i = 0; i < kUnitChunks && chunk < num_chunks_; ++i) {
      StreamFileReader::DecodedChunk& decoded = slot->chunks[i];
      reader_->DecodeChunk(chunk, &decoded);
      ++slot->count;
      ++chunk;
      if (decoded.truncated || decoded.checksum_failed) {
        // The stream ends at the damaged chunk; decoding further would
        // be wasted work the consumer must never see anyway.
        damaged = true;
        break;
      }
    }
    const bool last = damaged || chunk >= num_chunks_;
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot->full = true;
    }
    cv_.notify_all();
    if (last) return;
    slot_index ^= 1;
  }
}

const StreamFileReader::DecodedChunk* PrefetchDecoder::AcquireChunk(
    size_t chunk) {
  if (chunk >= num_chunks_) return nullptr;
  if (active_slot_ != nullptr) {
    if (active_index_ + 1 < active_slot_->count) {
      ++active_index_;
      return &active_slot_->chunks[active_index_];
    }
    // Slot drained: hand it back to the worker.
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_slot_->full = false;
    }
    cv_.notify_all();
    active_slot_ = nullptr;
  }
  Slot* slot = &slots_[next_slot_];
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return slot->full; });
  }
  next_slot_ ^= 1;
  active_slot_ = slot;
  active_index_ = 0;
  if (slot->count == 0) return nullptr;  // empty stream
  return &slot->chunks[0];
}

bool PrefetchDecoder::FillBuffer() {
  const size_t chunk = edges_read_ / kChunkEdges;
  const StreamFileReader::DecodedChunk* decoded = AcquireChunk(chunk);
  if (decoded == nullptr) return false;
  current_valid_ = true;
  if (decoded->checksum_failed) {
    checksum_failed_ = true;
    current_ = {};
    return false;
  }
  current_ = decoded->edges;
  if (decoded->truncated) truncated_ = true;
  current_pos_ = edges_read_ - chunk * kChunkEdges;
  return current_pos_ < current_.size();
}

bool PrefetchDecoder::Next(Edge* edge) {
  if (checksum_failed_ || edges_read_ >= Meta().stream_length) return false;
  if (!current_valid_ || current_pos_ >= current_.size()) {
    if (truncated_) return false;
    if (!FillBuffer()) return false;
  }
  *edge = current_[current_pos_++];
  ++edges_read_;
  return true;
}

std::span<const Edge> PrefetchDecoder::NextBatch() {
  if (checksum_failed_ || edges_read_ >= Meta().stream_length) return {};
  if (!current_valid_ || current_pos_ >= current_.size()) {
    if (truncated_ || !FillBuffer()) return {};
  }
  std::span<const Edge> batch = current_.subspan(current_pos_);
  current_pos_ = current_.size();
  edges_read_ += batch.size();
  return batch;
}

bool PrefetchDecoder::SeekToEdge(size_t index) {
  if (index > Meta().stream_length) return false;
  // Seeks happen on the resume path, not the hot path: tear the
  // pipeline down, rewind the consumer cursor, and restart the worker
  // at the containing chunk.
  StopWorker();
  for (Slot& slot : slots_) slot.full = false;
  active_slot_ = nullptr;
  active_index_ = 0;
  next_slot_ = 0;
  current_ = {};
  current_pos_ = 0;
  current_valid_ = false;
  truncated_ = false;
  checksum_failed_ = false;
  edges_read_ = index;
  StartWorker(index / kChunkEdges);
  return true;
}

std::unique_ptr<BatchEdgeReader> OpenBatchEdgeReader(
    const std::string& path, const StreamReadOptions& options,
    std::string* error) {
  auto reader = StreamFileReader::Open(path, options, error);
  if (reader == nullptr) return nullptr;
  if (!options.prefetch) return reader;
  return PrefetchDecoder::Create(std::move(reader));
}

// RunStreamFromFile is implemented in engine/engine.cc as a thin client
// of the engine's file fast path (the old loop here, verbatim).

}  // namespace setcover
