#ifndef SETCOVER_STREAM_ORDERINGS_H_
#define SETCOVER_STREAM_ORDERINGS_H_

#include <string>

#include "instance/instance.h"
#include "stream/stream.h"
#include "util/rng.h"

namespace setcover {

/// Arrival-order strategies for the edge stream. The paper's two models
/// are kRandom (Theorem 3's setting) and adversarial order (everything
/// else); the remaining strategies are concrete adversaries that the
/// benchmarks use to stress algorithms in the adversarial model.
enum class StreamOrder {
  /// Uniformly random permutation of the edges — the random-order model.
  kRandom,

  /// All edges of set 0, then all of set 1, ... (the set-arrival order;
  /// edge-arrival algorithms must still work, set-arrival baselines
  /// require it).
  kSetMajor,

  /// All edges of element 0, then element 1, ... — an adversary that
  /// spreads every set maximally across the stream, defeating any
  /// strategy that waits to see a set contiguously.
  kElementMajor,

  /// Round-robin across sets: first edge of every set, then second edge
  /// of every set, ... — each set trickles in one element at a time.
  kRoundRobinSets,

  /// Set-major order but with large (planted) sets' edges emitted last,
  /// so useful sets are revealed only after algorithms have committed
  /// space to decoys.
  kLargeSetsLast,
};

/// Human-readable name for bench output.
std::string StreamOrderName(StreamOrder order);

/// Materializes the edges of `instance` and arranges them per `order`.
/// `rng` is used by kRandom (and to break ties deterministically
/// elsewhere); non-random orders are deterministic given the instance.
EdgeStream OrderedStream(const SetCoverInstance& instance, StreamOrder order,
                         Rng& rng);

/// Random-order stream (shorthand used by most call sites).
EdgeStream RandomOrderStream(const SetCoverInstance& instance, Rng& rng);

}  // namespace setcover

#endif  // SETCOVER_STREAM_ORDERINGS_H_
