#include "stream/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SETCOVER_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace setcover {
namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

}  // namespace

MmapFile::~MmapFile() { Close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), open_(other.open_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    open_ = std::exchange(other.open_, false);
  }
  return *this;
}

#ifdef SETCOVER_HAVE_MMAP

bool MmapFile::Open(const std::string& path, std::string* error) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, "cannot open " + path + ": " + std::strerror(errno));
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    SetError(error, "cannot stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty file is still "open".
    ::close(fd);
    open_ = true;
    return true;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // no longer needed either way.
  ::close(fd);
  if (map == MAP_FAILED) {
    SetError(error, "cannot mmap " + path + ": " + std::strerror(errno));
    return false;
  }
  ::madvise(map, size, MADV_SEQUENTIAL);
  data_ = static_cast<const uint8_t*>(map);
  size_ = size;
  open_ = true;
  return true;
}

void MmapFile::Close() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

#else  // !SETCOVER_HAVE_MMAP

bool MmapFile::Open(const std::string& path, std::string* error) {
  (void)path;
  SetError(error, "mmap is not supported on this platform");
  return false;
}

void MmapFile::Close() {
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

#endif  // SETCOVER_HAVE_MMAP

}  // namespace setcover
