#include "stream/orderings.h"

#include <algorithm>

namespace setcover {

std::string StreamOrderName(StreamOrder order) {
  switch (order) {
    case StreamOrder::kRandom:
      return "random";
    case StreamOrder::kSetMajor:
      return "set-major";
    case StreamOrder::kElementMajor:
      return "element-major";
    case StreamOrder::kRoundRobinSets:
      return "round-robin-sets";
    case StreamOrder::kLargeSetsLast:
      return "large-sets-last";
  }
  return "unknown";
}

namespace {

// Every ordering below emits the exact same edge sequence the previous
// comparison-sort implementation produced (orderings_test pins this
// against reference reimplementations), just without the sort: the CSR
// layout already stores both adjacency directions sorted, so each order
// is a linear emission.

/// Element-major: all edges of element 0, then element 1, ... with set
/// ids ascending within an element. This is exactly a stable sort of the
/// set-major sequence by element — which is what the inverse CSR stores.
std::vector<Edge> ElementMajorEdges(const SetCoverInstance& instance) {
  std::vector<Edge> edges;
  edges.reserve(instance.NumEdges());
  for (ElementId u = 0; u < instance.NumElements(); ++u) {
    for (SetId s : instance.ElementSets(u)) edges.push_back({s, u});
  }
  return edges;
}

/// Round k emits the k-th element of every set that still has one, set
/// ids ascending. An active list compacted in place replaces the old
/// all-sets scan per round: total work O(N + m) instead of
/// O(m · max set size).
std::vector<Edge> RoundRobinEdges(const SetCoverInstance& instance) {
  std::vector<Edge> edges;
  edges.reserve(instance.NumEdges());
  std::vector<SetId> active;
  active.reserve(instance.NumSets());
  for (SetId s = 0; s < instance.NumSets(); ++s) {
    if (!instance.Set(s).empty()) active.push_back(s);
  }
  for (size_t k = 0; !active.empty(); ++k) {
    size_t kept = 0;
    for (SetId s : active) {
      auto set = instance.Set(s);
      edges.push_back({s, set[k]});
      // In-place compaction keeps the surviving sets in ascending order
      // for the next round.
      if (k + 1 < set.size()) active[kept++] = s;
    }
    active.resize(kept);
  }
  return edges;
}

/// Sets ordered by ascending size (ties by ascending id — the stable
/// order), edges set-major within each set. Counting sort on the size
/// replaces the stable_sort.
std::vector<Edge> LargeSetsLastEdges(const SetCoverInstance& instance) {
  const uint32_t m = instance.NumSets();
  size_t max_size = 0;
  for (SetId s = 0; s < m; ++s) {
    max_size = std::max(max_size, instance.Set(s).size());
  }
  std::vector<size_t> size_offsets(max_size + 2, 0);
  for (SetId s = 0; s < m; ++s) ++size_offsets[instance.Set(s).size() + 1];
  for (size_t k = 0; k <= max_size; ++k) {
    size_offsets[k + 1] += size_offsets[k];
  }
  std::vector<SetId> by_size(m);
  for (SetId s = 0; s < m; ++s) {
    by_size[size_offsets[instance.Set(s).size()]++] = s;
  }
  std::vector<Edge> edges;
  edges.reserve(instance.NumEdges());
  for (SetId s : by_size) {
    for (ElementId u : instance.Set(s)) edges.push_back({s, u});
  }
  return edges;
}

}  // namespace

EdgeStream OrderedStream(const SetCoverInstance& instance, StreamOrder order,
                         Rng& rng) {
  std::vector<Edge> edges;
  switch (order) {
    case StreamOrder::kRandom:
      edges = MaterializeEdges(instance);
      rng.Shuffle(edges);
      break;
    case StreamOrder::kSetMajor:
      // MaterializeEdges is already set-major.
      edges = MaterializeEdges(instance);
      break;
    case StreamOrder::kElementMajor:
      edges = ElementMajorEdges(instance);
      break;
    case StreamOrder::kRoundRobinSets:
      edges = RoundRobinEdges(instance);
      break;
    case StreamOrder::kLargeSetsLast:
      edges = LargeSetsLastEdges(instance);
      break;
  }
  return MakeStream(instance, std::move(edges));
}

EdgeStream RandomOrderStream(const SetCoverInstance& instance, Rng& rng) {
  return OrderedStream(instance, StreamOrder::kRandom, rng);
}

}  // namespace setcover
