#include "stream/orderings.h"

#include <algorithm>
#include <numeric>

namespace setcover {

std::string StreamOrderName(StreamOrder order) {
  switch (order) {
    case StreamOrder::kRandom:
      return "random";
    case StreamOrder::kSetMajor:
      return "set-major";
    case StreamOrder::kElementMajor:
      return "element-major";
    case StreamOrder::kRoundRobinSets:
      return "round-robin-sets";
    case StreamOrder::kLargeSetsLast:
      return "large-sets-last";
  }
  return "unknown";
}

EdgeStream OrderedStream(const SetCoverInstance& instance, StreamOrder order,
                         Rng& rng) {
  std::vector<Edge> edges = MaterializeEdges(instance);
  switch (order) {
    case StreamOrder::kRandom:
      rng.Shuffle(edges);
      break;
    case StreamOrder::kSetMajor:
      // MaterializeEdges is already set-major.
      break;
    case StreamOrder::kElementMajor:
      std::stable_sort(edges.begin(), edges.end(),
                       [](const Edge& a, const Edge& b) {
                         return a.element < b.element;
                       });
      break;
    case StreamOrder::kRoundRobinSets: {
      // Emit the k-th element of every set in round k.
      std::vector<Edge> out;
      out.reserve(edges.size());
      size_t max_size = 0;
      for (SetId s = 0; s < instance.NumSets(); ++s)
        max_size = std::max(max_size, instance.Set(s).size());
      for (size_t k = 0; k < max_size; ++k) {
        for (SetId s = 0; s < instance.NumSets(); ++s) {
          auto set = instance.Set(s);
          if (k < set.size()) out.push_back({s, set[k]});
        }
      }
      edges = std::move(out);
      break;
    }
    case StreamOrder::kLargeSetsLast: {
      // Sets ordered by ascending size; edges set-major within that.
      std::vector<SetId> ids(instance.NumSets());
      std::iota(ids.begin(), ids.end(), 0);
      std::stable_sort(ids.begin(), ids.end(), [&](SetId a, SetId b) {
        return instance.Set(a).size() < instance.Set(b).size();
      });
      std::vector<Edge> out;
      out.reserve(edges.size());
      for (SetId s : ids) {
        for (ElementId u : instance.Set(s)) out.push_back({s, u});
      }
      edges = std::move(out);
      break;
    }
  }
  return MakeStream(instance, std::move(edges));
}

EdgeStream RandomOrderStream(const SetCoverInstance& instance, Rng& rng) {
  return OrderedStream(instance, StreamOrder::kRandom, rng);
}

}  // namespace setcover
