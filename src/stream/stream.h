#ifndef SETCOVER_STREAM_STREAM_H_
#define SETCOVER_STREAM_STREAM_H_

#include <cstddef>
#include <vector>

#include "instance/instance.h"
#include "stream/edge.h"

namespace setcover {

/// What a streaming algorithm may know before the stream starts.
///
/// m and n are assumed known by all algorithms in the paper. The stream
/// length N is assumed known by Algorithm 1 (paper §4.1 justifies this
/// w.l.o.g. via parallel guesses, implemented in core/multi_run).
struct StreamMetadata {
  uint32_t num_sets = 0;      // m
  uint32_t num_elements = 0;  // n
  size_t stream_length = 0;   // N
};

/// A fully materialized edge stream: metadata plus the edges in arrival
/// order. Orderings (stream/orderings.h) produce these from an instance.
struct EdgeStream {
  StreamMetadata meta;
  std::vector<Edge> edges;

  size_t size() const { return edges.size(); }
};

/// Lists all incidences of `instance` in canonical set-major order
/// (set 0's elements ascending, then set 1's, ...). This is the raw
/// material every ordering permutes.
std::vector<Edge> MaterializeEdges(const SetCoverInstance& instance);

/// Wraps `edges` with metadata taken from `instance`.
EdgeStream MakeStream(const SetCoverInstance& instance,
                      std::vector<Edge> edges);

}  // namespace setcover

#endif  // SETCOVER_STREAM_STREAM_H_
