#include "stream/fault_injector.h"

#include <algorithm>

namespace setcover {
namespace {

// SplitMix64 finalizer — a stateless position hash, so fault decisions
// are a pure function of (seed, position) and survive SeekTo replay.
uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultSchedule FaultSchedule::AllKinds(uint64_t seed, double rate_each) {
  FaultSchedule schedule;
  schedule.seed = seed;
  schedule.transient_rate = rate_each;
  schedule.duplicate_rate = rate_each;
  schedule.drop_rate = rate_each;
  schedule.corrupt_rate = rate_each;
  return schedule;
}

FaultInjector::FaultInjector(EdgeSource* base, FaultSchedule schedule)
    : base_(base), schedule_(schedule) {
  double sum = schedule_.transient_rate + schedule_.duplicate_rate +
               schedule_.drop_rate + schedule_.corrupt_rate;
  scale_ = sum > 1.0 ? 1.0 / sum : 1.0;
}

double FaultInjector::UniformAt(size_t p) const {
  return double(Mix64(schedule_.seed ^ (uint64_t{p} + 1) *
                                           0xD1B54A32D192ED03ULL) >>
                11) *
         0x1.0p-53;
}

FaultKind FaultInjector::KindAt(size_t p) const {
  double u = UniformAt(p);
  double edge = schedule_.transient_rate * scale_;
  if (u < edge) return FaultKind::kTransient;
  edge += schedule_.duplicate_rate * scale_;
  if (u < edge) return FaultKind::kDuplicate;
  edge += schedule_.drop_rate * scale_;
  if (u < edge) return FaultKind::kDrop;
  edge += schedule_.corrupt_rate * scale_;
  if (u < edge) return FaultKind::kCorrupt;
  return FaultKind::kNone;
}

size_t FaultInjector::Position() const {
  return pending_duplicate_.has_value() ? pending_position_
                                        : base_->Position();
}

bool FaultInjector::SeekTo(size_t position) {
  if (!base_->SeekTo(position)) return false;
  pending_duplicate_.reset();
  transient_delivered_ = 0;
  return true;
}

ReadStatus FaultInjector::Next(Edge* edge) {
  if (pending_duplicate_.has_value()) {
    *edge = *pending_duplicate_;
    pending_duplicate_.reset();
    return ReadStatus::kOk;
  }
  for (;;) {
    const size_t p = base_->Position();
    const FaultKind kind = KindAt(p);
    if (kind == FaultKind::kTransient &&
        transient_delivered_ < schedule_.transient_failures) {
      ++transient_delivered_;
      ++delivered_[static_cast<size_t>(FaultKind::kTransient)];
      return ReadStatus::kTransient;
    }
    ReadStatus status = base_->Next(edge);
    if (status != ReadStatus::kOk) return status;
    transient_delivered_ = 0;
    switch (kind) {
      case FaultKind::kDrop:
        ++delivered_[static_cast<size_t>(FaultKind::kDrop)];
        continue;  // the record is lost; move on to the next one
      case FaultKind::kDuplicate:
        pending_duplicate_ = *edge;
        pending_position_ = p;
        ++delivered_[static_cast<size_t>(FaultKind::kDuplicate)];
        return ReadStatus::kOk;
      case FaultKind::kCorrupt: {
        // Garble both ids out of range — detectably damaged, the way a
        // checksum-failing record surfaces after decoding.
        uint64_t h = Mix64(schedule_.seed ^ uint64_t{p} ^
                           0xC2B2AE3D27D4EB4FULL);
        edge->set = Meta().num_sets + static_cast<uint32_t>(h % 1009);
        edge->element =
            Meta().num_elements + static_cast<uint32_t>((h >> 32) % 1013);
        ++delivered_[static_cast<size_t>(FaultKind::kCorrupt)];
        return ReadStatus::kCorrupt;
      }
      default:
        return ReadStatus::kOk;
    }
  }
}

}  // namespace setcover
