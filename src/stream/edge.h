#ifndef SETCOVER_STREAM_EDGE_H_
#define SETCOVER_STREAM_EDGE_H_

#include "util/types.h"

namespace setcover {

/// One stream item: the tuple (S, u) indicating that element `u` is
/// contained in set `S` — an edge of the bipartite incidence graph.
struct Edge {
  SetId set;
  ElementId element;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace setcover

#endif  // SETCOVER_STREAM_EDGE_H_
