#ifndef SETCOVER_STREAM_SCHEDULE_H_
#define SETCOVER_STREAM_SCHEDULE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "stream/edge_source.h"

namespace setcover {

/// Declarative arrival schedule for a run's source stage: how the
/// underlying one-pass record sequence is presented to the algorithm.
/// The default (passes == 1, window == 0) is the plain one-pass feed
/// and adds no wrapper at all.
///
/// Schedules compose as source backends: the engine layers
/// ScheduledSource *under* the fault injector, so fault decisions key
/// on scheduled positions and the whole stack stays deterministic and
/// (for pass schedules) checkpointable.
struct ScheduleSpec {
  /// k >= 1 repeated passes over the underlying stream (Chakrabarti–
  /// Wirth style multi-pass). Each pass replays the identical record
  /// sequence via SeekTo(0); scheduled position p maps to pass p / N,
  /// record p % N, so checkpoints compose with multi-pass runs.
  uint32_t passes = 1;

  /// Sliding-window replay: keep the last `window` delivered records
  /// and re-deliver them (oldest first) after every `replay_every`
  /// fresh records — a duplicate-heavy arrival feed. Replayed records
  /// do not advance Position() and are flagged via HasPendingReplay(),
  /// so supervisors never checkpoint mid-replay; window schedules are
  /// not resumable (the window contents are not position-addressable)
  /// and the engine rejects them combined with checkpointing.
  uint32_t window = 0;
  uint32_t replay_every = 0;

  /// True when the schedule is the plain one-pass feed.
  bool Trivial() const { return passes <= 1 && window == 0; }

  bool Validate(std::string* error) const;
};

/// EdgeSource combinator applying a ScheduleSpec to an inner source.
/// Non-owning: the inner source must outlive the schedule.
class ScheduledSource : public EdgeSource {
 public:
  ScheduledSource(EdgeSource* inner, const ScheduleSpec& spec);

  const StreamMetadata& Meta() const override { return inner_->Meta(); }
  ReadStatus Next(Edge* edge) override;

  /// Scheduled coordinate: pass * N + inner position for pass
  /// schedules; replayed window records do not advance it.
  size_t Position() const override;
  bool SeekTo(size_t position) override;
  bool HasPendingReplay() const override;
  bool Truncated() const override { return inner_->Truncated(); }

  /// Pass currently being delivered (0-based).
  uint32_t CurrentPass() const { return pass_; }

 private:
  EdgeSource* inner_;
  ScheduleSpec spec_;
  size_t inner_length_;
  uint32_t pass_ = 0;

  // Sliding-window replay state.
  std::deque<Edge> window_;
  std::vector<Edge> replay_;
  size_t replay_pos_ = 0;
  uint32_t fresh_ = 0;
};

}  // namespace setcover

#endif  // SETCOVER_STREAM_SCHEDULE_H_
