#ifndef SETCOVER_STREAM_STREAM_FILE_H_
#define SETCOVER_STREAM_STREAM_FILE_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/streaming_algorithm.h"
#include "stream/mmap_file.h"
#include "stream/stream.h"

namespace setcover {

/// Binary on-disk edge-stream formats, so streams larger than memory
/// can be produced once and replayed through any algorithm — the
/// operating mode an actual deployment of these one-pass algorithms
/// would use. Three format versions share the same magic/header
/// envelope and are auto-detected by the reader; all integers are
/// little-endian.
///
/// Common header:
///   magic      "SCES"            (4 bytes)
///   version    u32 = 1 | 2 | 3
///   m          u32, n u32, N u64
///   header_crc u32               CRC-32 of the 20 bytes above it
///                                (absent in v1)
///
/// Format v2 — fixed-size CRC'd chunks:
///   chunks     ⌈N / 4096⌉ chunks of up to 4096 edges each:
///                count u32, payload_crc u32 (CRC-32),
///                count × (set u32, elem u32)
///   The fixed chunk capacity makes chunk offsets computable, so a
///   reader can seek to any edge index without scanning, and the
///   per-chunk CRC turns silent on-disk corruption into a detected,
///   reported condition instead of garbage edges fed to an algorithm.
///
/// Format v3 — delta-varint compressed chunks + offset index:
///   chunks     ⌈N / 4096⌉ chunks of up to 4096 edges each:
///                count u32, payload_bytes u32,
///                payload_crc u32 (CRC-32C), payload
///              payload encodes each edge as two LEB128 varints
///              (util/varint.h): zig-zag(set − previous set in chunk,
///              starting from 0) then the raw element id. Sort-free:
///              any arrival order round-trips; orders with set-id
///              locality (set-major, element-major) compress hardest.
///   index      ⌈N / 4096⌉ × u64   absolute offset of each chunk
///   footer     index_crc u32 (CRC-32C of the index bytes),
///              index_offset u64, magic "SCIX" (4 bytes)
///   The trailing index keeps SeekToEdge O(1) despite variable-size
///   chunks; a reader that finds the footer damaged falls back to a
///   linear header scan (payload_bytes makes chunks self-delimiting),
///   so a truncated file still replays its intact prefix.
///
/// Format v1 (legacy, still readable): the header without header_crc,
/// followed by N raw edges with no checksums.
///
/// Writers stage into `path + ".tmp"` and atomically rename, so a
/// crash mid-write never leaves a half-valid file at `path`. Writers
/// fail (returning false with an errno-derived *error) on I/O errors;
/// the reader validates the header and surfaces truncation/corruption
/// via flags rather than crashing.

/// On-disk format selector for WriteStreamFile. kV1 exists for
/// compatibility tests; new files should be kV3 (the CLI default).
enum class StreamFormat : uint32_t { kV1 = 1, kV2 = 2, kV3 = 3 };

/// Writes `stream` to `path` in the requested format. On failure
/// returns false and, when `error` is non-null, stores an
/// errno-derived message (e.g. "rename failed: No space left on
/// device").
bool WriteStreamFile(const EdgeStream& stream, const std::string& path,
                     StreamFormat format, std::string* error);

/// Legacy two-argument writer: format v2, errors reported only as
/// `false` (byte layout relied on by existing corruption tests).
inline bool WriteStreamFile(const EdgeStream& stream,
                            const std::string& path) {
  return WriteStreamFile(stream, path, StreamFormat::kV2, nullptr);
}

/// How to read a stream file back.
struct StreamReadOptions {
  /// Map the file and decode straight out of the page cache (zero-copy
  /// for v1/v2 payloads). Falls back to the portable stdio reader when
  /// the platform has no mmap or the mapping fails.
  bool use_mmap = true;

  /// Decode and CRC-check chunks on a background pipeline thread, one
  /// pipeline unit ahead of the consumer (stream/prefetch_decoder.h).
  /// Honoured by OpenBatchEdgeReader / StreamFileSource /
  /// RunStreamFromFile; a bare StreamFileReader is always synchronous.
  bool prefetch = true;
};

/// What every positioned reader of decoded stream-file edges looks
/// like — implemented synchronously by StreamFileReader and
/// asynchronously by PrefetchDecoder, so drivers (RunStreamFromFile,
/// StreamFileSource) are agnostic to where decoding runs.
class BatchEdgeReader {
 public:
  virtual ~BatchEdgeReader() = default;

  virtual const StreamMetadata& Meta() const = 0;

  /// Format version of the open file (1, 2 or 3).
  virtual uint32_t Version() const = 0;

  /// Reads the next edge into *edge; returns false at end of stream,
  /// after truncation, or after a checksum failure.
  virtual bool Next(Edge* edge) = 0;

  /// Returns the remainder of the current CRC-verified chunk (decoding
  /// the next chunk when the buffer is drained) and advances the
  /// cursor past it — at most kIngestBatchEdges edges, exactly a chunk
  /// when the cursor sits on a chunk boundary. Empty at end of stream,
  /// after truncation, or after a checksum failure. The span aliases
  /// reader-owned storage and is invalidated by the next read or seek.
  virtual std::span<const Edge> NextBatch() = 0;

  /// Repositions the cursor so the next Next() yields edge `index`
  /// (0-based; `index` may equal N to position at end). Returns false
  /// on an out-of-range index. The containing chunk is decoded and
  /// CRC-verified on the following read; damage there surfaces as an
  /// ended stream with Truncated()/ChecksumFailed() set — never as
  /// garbage edges.
  virtual bool SeekToEdge(size_t index) = 0;

  /// True if the file ended before the declared N edges were read.
  virtual bool Truncated() const = 0;

  /// True once a chunk failed its CRC (or its headers are
  /// inconsistent); the stream stops there and the damaged chunk's
  /// edges are never surfaced.
  virtual bool ChecksumFailed() const = 0;

  /// Edges returned so far (equals the cursor position).
  virtual size_t EdgesRead() const = 0;
};

/// Incremental synchronous reader: opens the file, exposes the
/// metadata, and yields edges chunk by chunk without materializing the
/// stream. With the mmap backend, v1/v2 batches are served zero-copy
/// straight out of the mapping.
class StreamFileReader : public BatchEdgeReader {
 public:
  /// Opens `path` with default options (mmap preferred). Returns
  /// nullptr (and sets *error) on a missing file or malformed header
  /// (bad magic, bad version, header CRC mismatch).
  static std::unique_ptr<StreamFileReader> Open(const std::string& path,
                                                std::string* error);
  static std::unique_ptr<StreamFileReader> Open(
      const std::string& path, const StreamReadOptions& options,
      std::string* error);

  ~StreamFileReader() override;
  StreamFileReader(const StreamFileReader&) = delete;
  StreamFileReader& operator=(const StreamFileReader&) = delete;

  const StreamMetadata& Meta() const override { return meta_; }
  uint32_t Version() const override { return version_; }
  bool Next(Edge* edge) override;
  std::span<const Edge> NextBatch() override;
  bool SeekToEdge(size_t index) override;
  bool Truncated() const override { return truncated_; }
  bool ChecksumFailed() const override { return checksum_failed_; }
  size_t EdgesRead() const override { return edges_read_; }

  /// True when the reader serves reads from a memory mapping rather
  /// than stdio.
  bool UsesMmap() const { return map_.IsOpen(); }

  /// Chunks the open file declares (⌈N / 4096⌉), whether or not they
  /// all survive on disk.
  size_t NumChunks() const;

  /// One decoded chunk plus its damage report. `edges` aliases either
  /// `storage` or, for zero-copy formats on the mmap backend, the
  /// mapping itself; it stays valid until the DecodedChunk is reused
  /// or the reader is destroyed.
  struct DecodedChunk {
    std::vector<Edge> storage;
    std::vector<uint8_t> scratch;  // stdio-backend payload staging
    std::span<const Edge> edges;
    bool truncated = false;
    bool checksum_failed = false;
  };

  /// Decodes chunk `chunk` into *out (reusing its buffers); returns
  /// false only when `chunk >= NumChunks()`. Damage is reported in the
  /// DecodedChunk, and a damaged chunk never exposes payload edges
  /// (except v1, which has no checksums and surfaces the intact
  /// prefix). Does not move the reader's cursor. With the mmap backend
  /// this is safe to call from a thread other than the cursor's — the
  /// contract the prefetch decoder is built on; the stdio backend must
  /// only ever be driven by one thread at a time.
  bool DecodeChunk(size_t chunk, DecodedChunk* out);

 private:
  StreamFileReader() = default;
  bool FillBuffer();
  bool LoadV3Offsets(std::string* error);
  bool ReadRaw(uint64_t offset, void* out, size_t bytes);

  MmapFile map_;
  std::FILE* file_ = nullptr;
  uint64_t file_size_ = 0;
  StreamMetadata meta_;
  uint32_t version_ = 0;
  size_t edges_read_ = 0;
  bool truncated_ = false;
  bool checksum_failed_ = false;

  /// v3: absolute offset of each chunk that is physically locatable —
  /// from the trailing index when its footer verifies, else from a
  /// linear header scan (shorter than NumChunks() on truncated files).
  std::vector<uint64_t> v3_offsets_;
  /// v3: first byte past the chunk area (index start when the footer
  /// verified, file size otherwise) — the bound chunk payloads must
  /// respect.
  uint64_t v3_data_end_ = 0;

  DecodedChunk current_;
  size_t current_pos_ = 0;
  bool current_valid_ = false;
};

/// Opens `path` as a positioned batch reader per `options`: the plain
/// synchronous reader, or one wrapped in the background
/// PrefetchDecoder when `options.prefetch` is set. Defined in
/// stream/prefetch_decoder.cc.
std::unique_ptr<BatchEdgeReader> OpenBatchEdgeReader(
    const std::string& path, const StreamReadOptions& options,
    std::string* error);

/// Streams a whole file through `algorithm` (Begin → batches →
/// Finalize), decoding per `options`. Returns std::nullopt (with
/// *error) if the file cannot be opened.
std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    const StreamReadOptions& options, std::string* error);
std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    std::string* error);

}  // namespace setcover

#endif  // SETCOVER_STREAM_STREAM_FILE_H_
