#ifndef SETCOVER_STREAM_STREAM_FILE_H_
#define SETCOVER_STREAM_STREAM_FILE_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "core/streaming_algorithm.h"
#include "stream/stream.h"

namespace setcover {

/// Binary on-disk edge-stream format, so streams larger than memory can
/// be produced once and replayed through any algorithm — the operating
/// mode an actual deployment of these one-pass algorithms would use.
///
/// Format v2 (written by WriteStreamFile; little-endian):
///   magic      "SCES"            (4 bytes)
///   version    u32 = 2
///   m          u32, n u32, N u64
///   header_crc u32               CRC-32 of the 20 bytes above it
///   chunks     ⌈N / 4096⌉ chunks of up to 4096 edges each:
///                count u32, payload_crc u32, count × (set u32, elem u32)
///
/// The fixed chunk capacity makes chunk offsets computable, so a reader
/// can seek to any edge index without scanning (SeekToEdge — what
/// checkpoint resume uses), and the per-chunk CRC turns silent on-disk
/// corruption into a detected, reported condition instead of garbage
/// edges fed to an algorithm.
///
/// Format v1 (legacy, still readable): same header without header_crc,
/// followed by N raw edges with no checksums.
///
/// The writer stages into `path + ".tmp"` and atomically renames, so a
/// crash mid-write never leaves a half-valid file at `path`. Writers
/// fail (return false) on I/O errors; the reader validates the header
/// and surfaces truncation/corruption via flags rather than crashing.
bool WriteStreamFile(const EdgeStream& stream, const std::string& path);

/// Incremental reader: opens the file, exposes the metadata, and yields
/// edges one at a time with an internal buffer (no full materialization).
class StreamFileReader {
 public:
  /// Opens `path`. Returns nullptr (and sets *error) on a missing file
  /// or malformed header (bad magic, bad version, v2 header CRC
  /// mismatch).
  static std::unique_ptr<StreamFileReader> Open(const std::string& path,
                                                std::string* error);

  ~StreamFileReader();
  StreamFileReader(const StreamFileReader&) = delete;
  StreamFileReader& operator=(const StreamFileReader&) = delete;

  const StreamMetadata& Meta() const { return meta_; }

  /// Format version of the open file (1 or 2).
  uint32_t Version() const { return version_; }

  /// Reads the next edge into *edge; returns false at end of stream,
  /// after truncation, or after a checksum failure.
  bool Next(Edge* edge);

  /// Returns the remainder of the current CRC-verified chunk (reading
  /// the next chunk when the buffer is drained) and advances the cursor
  /// past it — at most kIngestBatchEdges edges, exactly a chunk when the
  /// cursor sits on a chunk boundary. Empty at end of stream, after
  /// truncation, or after a checksum failure. The span aliases the
  /// internal buffer and is invalidated by the next read or seek.
  std::span<const Edge> NextBatch();

  /// Repositions the cursor so the next Next() yields edge `index`
  /// (0-based; `index` may equal N to position at end). For v2 files
  /// the target chunk is re-read and CRC-verified. Returns false on
  /// out-of-range index or I/O failure.
  bool SeekToEdge(size_t index);

  /// True if the file ended before the declared N edges were read.
  bool Truncated() const { return truncated_; }

  /// True once a v2 chunk failed its CRC (the stream stops there; the
  /// corrupt chunk's edges are never surfaced).
  bool ChecksumFailed() const { return checksum_failed_; }

  /// Edges returned so far (equals the cursor position).
  size_t EdgesRead() const { return edges_read_; }

 private:
  StreamFileReader() = default;
  bool FillBuffer();
  bool FillBufferV2();

  std::FILE* file_ = nullptr;
  StreamMetadata meta_;
  uint32_t version_ = 0;
  size_t edges_read_ = 0;
  bool truncated_ = false;
  bool checksum_failed_ = false;
  std::vector<Edge> buffer_;
  size_t buffer_pos_ = 0;
};

/// Streams a whole file through `algorithm` (Begin → edges → Finalize).
/// Returns std::nullopt (with *error) if the file cannot be opened.
std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    std::string* error);

}  // namespace setcover

#endif  // SETCOVER_STREAM_STREAM_FILE_H_
