#ifndef SETCOVER_STREAM_STREAM_FILE_H_
#define SETCOVER_STREAM_STREAM_FILE_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "core/streaming_algorithm.h"
#include "stream/stream.h"

namespace setcover {

/// Binary on-disk edge-stream format, so streams larger than memory can
/// be produced once and replayed through any algorithm — the operating
/// mode an actual deployment of these one-pass algorithms would use.
///
/// Layout (little-endian):
///   magic   "SCES"            (4 bytes)
///   version u32 = 1
///   m       u32, n u32, N u64
///   edges   N × (set u32, element u32)
///
/// Writers fail (return false) on I/O errors; the reader validates the
/// header and surfaces truncation as a shortened stream with an error
/// flag rather than crashing.
bool WriteStreamFile(const EdgeStream& stream, const std::string& path);

/// Incremental reader: opens the file, exposes the metadata, and yields
/// edges one at a time with an internal buffer (no full materialization).
class StreamFileReader {
 public:
  /// Opens `path`. Returns nullptr (and sets *error) on a missing file
  /// or malformed header.
  static std::unique_ptr<StreamFileReader> Open(const std::string& path,
                                                std::string* error);

  ~StreamFileReader();
  StreamFileReader(const StreamFileReader&) = delete;
  StreamFileReader& operator=(const StreamFileReader&) = delete;

  const StreamMetadata& Meta() const { return meta_; }

  /// Reads the next edge into *edge; returns false at end of stream.
  bool Next(Edge* edge);

  /// True if the file ended before the declared N edges were read.
  bool Truncated() const { return truncated_; }

  /// Edges returned so far.
  size_t EdgesRead() const { return edges_read_; }

 private:
  StreamFileReader() = default;
  bool FillBuffer();

  std::FILE* file_ = nullptr;
  StreamMetadata meta_;
  size_t edges_read_ = 0;
  bool truncated_ = false;
  std::vector<Edge> buffer_;
  size_t buffer_pos_ = 0;
};

/// Streams a whole file through `algorithm` (Begin → edges → Finalize).
/// Returns std::nullopt (with *error) if the file cannot be opened.
std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    std::string* error);

}  // namespace setcover

#endif  // SETCOVER_STREAM_STREAM_FILE_H_
