#ifndef SETCOVER_GRAPH_GRAPH_H_
#define SETCOVER_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "instance/instance.h"
#include "util/rng.h"

namespace setcover {

/// Simple undirected graph, used for the Dominating Set special case of
/// edge-arrival Set Cover (m = n, sets = closed neighborhoods — the
/// setting of [Khanna & Konrad, ITCS'22] from which Theorem 1 comes).
///
/// Three generators cover the workload spectrum: Erdős–Rényi (flat
/// degrees), Barabási–Albert preferential attachment (heavy-tailed
/// degrees, the "few hub vertices dominate" regime where streaming
/// dominating set is easy to get wrong), and a configuration-model
/// approximation of d-regular graphs.
class Graph {
 public:
  /// An empty graph on `num_vertices` vertices.
  explicit Graph(uint32_t num_vertices);

  /// G(n, p): every unordered pair independently with probability p.
  static Graph ErdosRenyi(uint32_t num_vertices, double edge_probability,
                          Rng& rng);

  /// Barabási–Albert preferential attachment: vertices arrive one at a
  /// time and connect to `attach` existing vertices chosen with
  /// probability proportional to degree (+1 smoothing).
  static Graph BarabasiAlbert(uint32_t num_vertices, uint32_t attach,
                              Rng& rng);

  /// Configuration-model d-regular-ish graph: d stubs per vertex paired
  /// uniformly; self-loops and duplicate edges are dropped, so degrees
  /// are ≤ d and concentrate near d.
  static Graph RandomRegular(uint32_t num_vertices, uint32_t degree,
                             Rng& rng);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(adjacency_.size());
  }
  size_t NumEdges() const { return num_edges_; }

  /// Neighbors of v, sorted ascending, without v itself.
  std::span<const uint32_t> Neighbors(uint32_t v) const {
    return {adjacency_[v].data(), adjacency_[v].size()};
  }

  /// Adds the undirected edge {a, b}; ignores self-loops and
  /// duplicates. Call Finish() before reading neighbors.
  void AddEdge(uint32_t a, uint32_t b);

  /// Sorts and deduplicates adjacency lists; recomputes the edge count.
  void Finish();

  /// The Dominating Set instance: element u covered by set v iff
  /// u ∈ N[v]. A set cover of it is exactly a dominating set.
  SetCoverInstance ToDominatingSetInstance() const;

  /// True iff `vertices` dominates the graph (every vertex is in the
  /// set or adjacent to one).
  bool IsDominatingSet(const std::vector<uint32_t>& vertices) const;

 private:
  std::vector<std::vector<uint32_t>> adjacency_;
  size_t num_edges_ = 0;
  bool finished_ = true;
};

}  // namespace setcover

#endif  // SETCOVER_GRAPH_GRAPH_H_
