#include "graph/graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace setcover {

Graph::Graph(uint32_t num_vertices) : adjacency_(num_vertices) {}

Graph Graph::ErdosRenyi(uint32_t num_vertices, double edge_probability,
                        Rng& rng) {
  Graph graph(num_vertices);
  for (uint32_t a = 0; a < num_vertices; ++a) {
    for (uint32_t b = a + 1; b < num_vertices; ++b) {
      if (rng.Bernoulli(edge_probability)) graph.AddEdge(a, b);
    }
  }
  graph.Finish();
  return graph;
}

Graph Graph::BarabasiAlbert(uint32_t num_vertices, uint32_t attach,
                            Rng& rng) {
  Graph graph(num_vertices);
  if (num_vertices == 0) return graph;
  // Repeated-endpoint trick: sampling a uniform entry of the endpoint
  // list is exactly degree-proportional sampling.
  std::vector<uint32_t> endpoints;
  uint32_t seed_size = std::max<uint32_t>(1, std::min(attach, num_vertices));
  // Seed clique so early vertices have degree.
  for (uint32_t a = 0; a < seed_size; ++a) {
    for (uint32_t b = a + 1; b < seed_size; ++b) {
      graph.AddEdge(a, b);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  if (endpoints.empty()) endpoints.push_back(0);
  for (uint32_t v = seed_size; v < num_vertices; ++v) {
    for (uint32_t j = 0; j < attach; ++j) {
      uint32_t target = endpoints[rng.UniformInt(endpoints.size())];
      if (target == v) continue;
      graph.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  graph.Finish();
  return graph;
}

Graph Graph::RandomRegular(uint32_t num_vertices, uint32_t degree,
                           Rng& rng) {
  Graph graph(num_vertices);
  std::vector<uint32_t> stubs;
  stubs.reserve(size_t{num_vertices} * degree);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    for (uint32_t d = 0; d < degree; ++d) stubs.push_back(v);
  }
  rng.Shuffle(stubs);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    graph.AddEdge(stubs[i], stubs[i + 1]);
  }
  graph.Finish();
  return graph;
}

void Graph::AddEdge(uint32_t a, uint32_t b) {
  if (a == b) return;
  if (a >= adjacency_.size() || b >= adjacency_.size()) {
    std::fprintf(stderr, "Graph::AddEdge: vertex out of range\n");
    std::abort();
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  finished_ = false;
}

void Graph::Finish() {
  num_edges_ = 0;
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    num_edges_ += list.size();
  }
  num_edges_ /= 2;
  finished_ = true;
}

SetCoverInstance Graph::ToDominatingSetInstance() const {
  std::vector<std::vector<ElementId>> sets(adjacency_.size());
  for (uint32_t v = 0; v < adjacency_.size(); ++v) {
    sets[v].reserve(adjacency_[v].size() + 1);
    sets[v].push_back(v);
    sets[v].insert(sets[v].end(), adjacency_[v].begin(),
                   adjacency_[v].end());
  }
  return SetCoverInstance::FromSets(
      static_cast<uint32_t>(adjacency_.size()), std::move(sets));
}

bool Graph::IsDominatingSet(const std::vector<uint32_t>& vertices) const {
  std::vector<bool> dominated(adjacency_.size(), false);
  for (uint32_t v : vertices) {
    if (v >= adjacency_.size()) return false;
    dominated[v] = true;
    for (uint32_t w : adjacency_[v]) dominated[w] = true;
  }
  return std::all_of(dominated.begin(), dominated.end(),
                     [](bool d) { return d; });
}

}  // namespace setcover
