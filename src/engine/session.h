#ifndef SETCOVER_ENGINE_SESSION_H_
#define SETCOVER_ENGINE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace setcover {
namespace engine {

/// Incremental (push-style) execution: the long-lived counterpart of
/// the single-shot Execute()/Drive() pull loop, built for the session
/// server (src/server/) where edges arrive over a transport in
/// client-sized batches instead of being pulled from a source the
/// engine owns.
///
/// A Session owns exactly the per-run state Drive() keeps on its stack
/// — algorithm instance (resolved through the registry), fault-injector
/// coordinates, retry budget, checkpoint spec, fault counters — and
/// exposes it across calls:
///
///   open (fresh or resumed from checkpoint)
///     -> Ingest(seq 1, edges) -> Ingest(seq 2, edges) -> ...
///     -> Finalize() -> report
///
/// Equivalence contract: for the same (algorithm, seed, fault schedule,
/// concatenated edges), a Session produces the bit-identical cover,
/// certificate, and meter readings of engine::Execute over the whole
/// stream — at ANY ingest batch sizing, because ProcessEdgeBatch makes
/// batching observationally invisible and fault decisions are a pure
/// function of (seed, absolute position). tests/engine_session_test.cc
/// pins this for every registered algorithm.
///
/// Exactly-once ingest: every batch carries a client-assigned sequence
/// number, 1-based and contiguous. A batch at or below the last applied
/// sequence is acknowledged without re-applying (idempotent retry); a
/// gap is rejected. The sequence is persisted inside the checkpoint
/// (Checkpoint::session_sequence), so after a crash the server reports
/// the durable cursor and the client re-sends from there — a batch is
/// applied exactly once no matter how often the transport duplicated it.
struct SessionConfig {
  /// Algorithm by registry name (the server never holds instances).
  std::string algorithm;
  AlgorithmOptions options;

  /// Stream shape declared up front (OpenSession carries it).
  StreamMetadata meta;

  /// Deterministic per-session stream damage, applied to ingested
  /// batches by absolute stream position — identical to handing the
  /// schedule to engine::Execute over the concatenated stream.
  std::optional<FaultSchedule> faults;

  /// Sidecar checkpoint file; empty = volatile session (a crash loses
  /// it and the client replays from scratch).
  std::string checkpoint_path;

  /// Write a checkpoint whenever at least this many edges were
  /// delivered since the last one, at ingest-batch boundaries.
  /// 0 disables periodic checkpoints (explicit Checkpoint() still
  /// works when a path is set).
  uint64_t checkpoint_every = 0;

  /// Retry budget for transient read faults (mirrors Drive()).
  BackoffPolicy backoff;
};

enum class IngestStatus {
  kApplied,     // batch consumed, state advanced
  kDuplicate,   // sequence already applied; acknowledged, not re-applied
  kOutOfOrder,  // gap in the sequence; client must back-fill first
  kFailed,      // fatal (finalized session, retry budget exhausted, I/O)
};

struct IngestResult {
  IngestStatus status = IngestStatus::kFailed;
  /// The session's durable cursor after the call.
  uint64_t last_sequence = 0;
  /// Checkpoints written by this call (0 or 1).
  uint64_t checkpoints_written = 0;
};

/// Per-session observability, exported through the server's Stats op.
/// The stage timings mirror engine::StageStats: setup (open/resume),
/// stream (sum of Ingest calls), finalize.
struct SessionStats {
  uint64_t edges_delivered = 0;
  uint64_t batches = 0;           // ProcessEdgeBatch calls issued
  uint64_t ingest_calls = 0;      // client batches applied
  uint64_t duplicate_ingests = 0; // retries deduplicated
  uint64_t checkpoints_written = 0;
  uint64_t transient_retries = 0;
  uint64_t corrupt_records_skipped = 0;
  uint64_t faults_survived = 0;
  uint64_t last_sequence = 0;
  bool resumed = false;
  bool finalized = false;
  bool degraded = false;
  double setup_seconds = 0.0;
  double stream_seconds = 0.0;
  double finalize_seconds = 0.0;
  size_t peak_words = 0;
  size_t current_words = 0;
};

/// The push-side face of the backend seam: what the session server
/// holds per open session, regardless of which execution substrate is
/// behind it. Session (one in-process pipeline) and ShardedSession
/// (engine/sharded_session.h — W set-partitioned sub-sessions merged
/// through the deterministic t-party protocol) both implement it, so
/// one daemon serves single-session and sharded runs through the same
/// code path (server/session_manager.cc dispatches on OpenBody::workers).
class SessionHandle {
 public:
  virtual ~SessionHandle() = default;

  /// See Session::Ingest for the exactly-once contract.
  virtual IngestResult Ingest(uint64_t sequence, std::span<const Edge> edges,
                              std::string* error) = 0;

  /// See Session::WriteCheckpoint.
  virtual bool WriteCheckpoint(std::string* error) = 0;

  /// See Session::Finalize. Idempotent.
  virtual const RunReport& Finalize() = 0;

  /// Point-in-time counters; cheap, no algorithm work.
  virtual SessionStats Stats() const = 0;

  virtual uint64_t LastSequence() const = 0;
  virtual bool Resumed() const = 0;
  virtual bool Finalized() const = 0;
  virtual const StreamMetadata& Meta() const = 0;
  virtual const std::string& AlgorithmName() const = 0;
};

class Session final : public SessionHandle {
 public:
  /// Opens a session. With `resume` set and a loadable checkpoint at
  /// config.checkpoint_path, restores algorithm state, position,
  /// counters, and the exactly-once cursor from it; with `resume` set
  /// and NO checkpoint file, starts fresh (a crash before the first
  /// checkpoint is indistinguishable from never having started). A
  /// checkpoint that exists but fails to load, or does not match the
  /// configured algorithm/shape, is a fatal error — never a silent
  /// restart. Returns nullptr with *error on failure.
  static std::unique_ptr<Session> Open(const SessionConfig& config,
                                       bool resume, std::string* error);

  /// Applies one ingest batch (see the exactly-once contract above).
  /// On kFailed, *error describes the failure and no state advanced
  /// unless the failure was a checkpoint write after a successful
  /// apply (then last_sequence reflects the applied batch).
  IngestResult Ingest(uint64_t sequence, std::span<const Edge> edges,
                      std::string* error) override;

  /// Writes a checkpoint now (requires a configured path). True on
  /// success; also true (without writing) for volatile sessions so
  /// callers can checkpoint-all unconditionally on drain.
  bool WriteCheckpoint(std::string* error) override;

  /// Ends the stream: finalizes the algorithm into a RunReport (cover,
  /// certificate, meter, fault counters, stage timings). Idempotent —
  /// repeated calls (a client retrying a lost Finalize reply) return
  /// the cached report without re-finalizing.
  const RunReport& Finalize() override;

  /// Point-in-time counters; cheap, no algorithm work.
  SessionStats Stats() const override;

  uint64_t LastSequence() const override { return last_sequence_; }
  bool Resumed() const override { return resumed_; }
  bool Finalized() const override { return final_report_.has_value(); }
  const StreamMetadata& Meta() const override { return config_.meta; }
  const std::string& AlgorithmName() const override {
    return algorithm_name_;
  }

 private:
  Session() = default;

  SessionConfig config_;
  std::unique_ptr<StreamingSetCoverAlgorithm> algorithm_;
  std::string algorithm_name_;

  /// Absolute underlying-record position — the coordinate fault
  /// decisions and checkpoints are keyed on.
  uint64_t position_ = 0;
  uint64_t last_sequence_ = 0;
  uint64_t edges_delivered_ = 0;
  uint64_t delivered_at_last_checkpoint_ = 0;
  uint64_t transient_retries_ = 0;
  uint64_t corrupt_records_skipped_ = 0;
  uint64_t faults_survived_ = 0;
  uint64_t checkpoints_written_ = 0;
  uint64_t batches_ = 0;
  uint64_t ingest_calls_ = 0;
  uint64_t duplicate_ingests_ = 0;
  bool resumed_ = false;
  bool degraded_ = false;
  double setup_seconds_ = 0.0;
  double stream_seconds_ = 0.0;
  double finalize_seconds_ = 0.0;

  /// Reusable post-fault delivery buffer (duplicates can make it
  /// slightly larger than the incoming batch).
  std::vector<Edge> delivery_;

  std::optional<RunReport> final_report_;
};

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_SESSION_H_
