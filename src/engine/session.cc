#include "engine/session.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "run/checkpoint.h"

namespace setcover {
namespace engine {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

/// EdgeSource over one ingest batch, positioned at the session's
/// absolute stream coordinate so the fault injector's (seed, position)
/// decisions match a whole-stream run exactly. End-of-span reads as
/// kEnd — "end of this batch", not end of the session's stream.
class SpanEdgeSource : public EdgeSource {
 public:
  SpanEdgeSource(const StreamMetadata& meta, std::span<const Edge> edges,
                 uint64_t base_position)
      : meta_(meta), edges_(edges), base_(base_position) {}

  const StreamMetadata& Meta() const override { return meta_; }

  ReadStatus Next(Edge* edge) override {
    if (offset_ >= edges_.size()) return ReadStatus::kEnd;
    *edge = edges_[offset_++];
    return ReadStatus::kOk;
  }

  size_t Position() const override { return base_ + offset_; }

  bool SeekTo(size_t position) override {
    if (position < base_ || position > base_ + edges_.size()) return false;
    offset_ = position - base_;
    return true;
  }

 private:
  const StreamMetadata& meta_;
  std::span<const Edge> edges_;
  uint64_t base_;
  size_t offset_ = 0;
};

}  // namespace

std::unique_ptr<Session> Session::Open(const SessionConfig& config,
                                       bool resume, std::string* error) {
  const auto setup_start = Clock::now();
  std::unique_ptr<Session> session(new Session());
  session->config_ = config;
  session->algorithm_ = MakeAlgorithmByName(config.algorithm, config.options);
  if (session->algorithm_ == nullptr) {
    if (error != nullptr) *error = UnknownAlgorithmError(config.algorithm);
    return nullptr;
  }
  session->algorithm_name_ = session->algorithm_->Name();

  std::optional<Checkpoint> checkpoint;
  if (resume && !config.checkpoint_path.empty()) {
    // A missing file means "crashed before the first checkpoint" and is
    // a legitimate fresh start; anything else wrong with an *existing*
    // file is fatal (never a silent restart).
    std::FILE* probe = std::fopen(config.checkpoint_path.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      std::string load_error;
      checkpoint = LoadCheckpoint(config.checkpoint_path, &load_error);
      if (!checkpoint) {
        if (error != nullptr) *error = load_error;
        return nullptr;
      }
    }
  }

  if (checkpoint) {
    if (checkpoint->algorithm_name != session->algorithm_name_) {
      if (error != nullptr) {
        *error = "checkpoint was written by algorithm '" +
                 checkpoint->algorithm_name + "', not '" +
                 session->algorithm_name_ + "'";
      }
      return nullptr;
    }
    if (checkpoint->meta.num_sets != config.meta.num_sets ||
        checkpoint->meta.num_elements != config.meta.num_elements ||
        checkpoint->meta.stream_length != config.meta.stream_length) {
      if (error != nullptr)
        *error = "checkpoint stream shape does not match the session";
      return nullptr;
    }
    if (!session->algorithm_->DecodeState(config.meta,
                                          checkpoint->state_words)) {
      if (error != nullptr) {
        *error = "algorithm '" + session->algorithm_name_ +
                 "' could not decode the checkpointed state";
      }
      return nullptr;
    }
    session->position_ = checkpoint->stream_position;
    session->edges_delivered_ = checkpoint->edges_delivered;
    session->delivered_at_last_checkpoint_ = checkpoint->edges_delivered;
    session->transient_retries_ = checkpoint->transient_retries;
    session->corrupt_records_skipped_ = checkpoint->corrupt_skipped;
    session->faults_survived_ = checkpoint->faults_survived;
    session->last_sequence_ = checkpoint->session_sequence;
    session->resumed_ = true;
  } else {
    session->algorithm_->Begin(config.meta);
  }
  session->setup_seconds_ = Seconds(setup_start);
  return session;
}

IngestResult Session::Ingest(uint64_t sequence, std::span<const Edge> edges,
                             std::string* error) {
  IngestResult result;
  result.last_sequence = last_sequence_;
  if (final_report_.has_value()) {
    if (error != nullptr) *error = "session already finalized";
    return result;
  }
  if (sequence <= last_sequence_) {
    ++duplicate_ingests_;
    result.status = IngestStatus::kDuplicate;
    return result;
  }
  if (sequence != last_sequence_ + 1) {
    if (error != nullptr) *error = "ingest sequence gap";
    result.status = IngestStatus::kOutOfOrder;
    return result;
  }

  const auto stream_start = Clock::now();

  // Pass the batch through a fresh fault-injection pipeline anchored at
  // the session's absolute position. All injector replay state
  // (transient countdowns, owed duplicates) lives strictly inside one
  // batch: duplicates are delivered before the span's kEnd, so nothing
  // straddles batches and checkpoints at batch boundaries never see
  // pending replay.
  delivery_.clear();
  if (delivery_.capacity() < edges.size()) delivery_.reserve(edges.size());
  SpanEdgeSource span_source(config_.meta, edges, position_);
  std::optional<FaultInjector> injector;
  EdgeSource* source = &span_source;
  if (config_.faults.has_value()) {
    injector.emplace(&span_source, *config_.faults);
    source = &*injector;
  }

  ExponentialBackoff retry(config_.backoff);
  uint64_t transient_seen = 0, corrupt_seen = 0;
  Edge edge;
  for (;;) {
    const ReadStatus status = source->Next(&edge);
    if (status == ReadStatus::kTransient) {
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        // Budget exhausted before anything reached the algorithm: the
        // batch is rejected whole, so the retry stays idempotent.
        stream_seconds_ += Seconds(stream_start);
        if (error != nullptr)
          *error = "transient retry budget exhausted mid-batch";
        degraded_ = true;
        return result;
      }
      ++transient_seen;
      continue;  // the server never sleeps; clients own pacing
    }
    retry.Reset();
    if (status == ReadStatus::kEnd) break;
    if (status == ReadStatus::kCorrupt) {
      ++corrupt_seen;
      continue;
    }
    delivery_.push_back(edge);
  }

  // Everything that survives fault injection is applied in one
  // ProcessEdgeBatch call — by the batch/per-edge contract this leaves
  // state bit-identical to any other batching of the same edges.
  if (!delivery_.empty()) {
    algorithm_->ProcessEdgeBatch(std::span<const Edge>(delivery_));
    ++batches_;
  }
  position_ += edges.size();
  edges_delivered_ += delivery_.size();
  transient_retries_ += transient_seen;
  corrupt_records_skipped_ += corrupt_seen;
  faults_survived_ += transient_seen + corrupt_seen;
  last_sequence_ = sequence;
  ++ingest_calls_;
  result.status = IngestStatus::kApplied;
  result.last_sequence = last_sequence_;
  stream_seconds_ += Seconds(stream_start);

  if (config_.checkpoint_every > 0 && !config_.checkpoint_path.empty() &&
      edges_delivered_ - delivered_at_last_checkpoint_ >=
          config_.checkpoint_every) {
    if (!WriteCheckpoint(error)) {
      result.status = IngestStatus::kFailed;
      return result;
    }
    result.checkpoints_written = 1;
  }
  return result;
}

bool Session::WriteCheckpoint(std::string* error) {
  if (config_.checkpoint_path.empty()) return true;  // volatile session
  Checkpoint checkpoint;
  checkpoint.algorithm_name = algorithm_name_;
  checkpoint.meta = config_.meta;
  checkpoint.stream_position = position_;
  checkpoint.edges_delivered = edges_delivered_;
  checkpoint.transient_retries = transient_retries_;
  checkpoint.corrupt_skipped = corrupt_records_skipped_;
  checkpoint.faults_survived = faults_survived_;
  checkpoint.session_sequence = last_sequence_;
  StateEncoder encoder;
  algorithm_->EncodeState(&encoder);
  checkpoint.state_words = encoder.Words();
  if (!SaveCheckpoint(checkpoint, config_.checkpoint_path, error))
    return false;
  ++checkpoints_written_;
  delivered_at_last_checkpoint_ = edges_delivered_;
  return true;
}

const RunReport& Session::Finalize() {
  if (final_report_.has_value()) return *final_report_;
  const auto finalize_start = Clock::now();
  RunReport report;
  report.algorithm_name = algorithm_name_;
  report.solution = algorithm_->Finalize();
  report.completed = true;
  report.resumed = resumed_;
  report.edges_delivered = edges_delivered_;
  report.checkpoints_written = checkpoints_written_;
  report.transient_retries = transient_retries_;
  report.corrupt_records_skipped = corrupt_records_skipped_;
  report.faults_survived = faults_survived_;
  report.degraded = degraded_;
  for (SetId s : report.solution.certificate)
    if (s == kNoSet) ++report.uncovered_elements;
  report.peak_words = algorithm_->Meter().PeakWords();
  report.current_words = algorithm_->Meter().CurrentWords();
  report.meter_breakdown = algorithm_->Meter().BreakdownString();
  finalize_seconds_ = Seconds(finalize_start);
  report.stages.setup_seconds = setup_seconds_;
  report.stages.stream_seconds = stream_seconds_;
  report.stages.finalize_seconds = finalize_seconds_;
  report.stages.total_seconds =
      setup_seconds_ + stream_seconds_ + finalize_seconds_;
  report.stages.batches = batches_;
  final_report_ = std::move(report);
  return *final_report_;
}

SessionStats Session::Stats() const {
  SessionStats stats;
  stats.edges_delivered = edges_delivered_;
  stats.batches = batches_;
  stats.ingest_calls = ingest_calls_;
  stats.duplicate_ingests = duplicate_ingests_;
  stats.checkpoints_written = checkpoints_written_;
  stats.transient_retries = transient_retries_;
  stats.corrupt_records_skipped = corrupt_records_skipped_;
  stats.faults_survived = faults_survived_;
  stats.last_sequence = last_sequence_;
  stats.resumed = resumed_;
  stats.finalized = final_report_.has_value();
  stats.degraded = degraded_;
  stats.setup_seconds = setup_seconds_;
  stats.stream_seconds = stream_seconds_;
  stats.finalize_seconds = finalize_seconds_;
  stats.peak_words = algorithm_->Meter().PeakWords();
  stats.current_words = algorithm_->Meter().CurrentWords();
  return stats;
}

}  // namespace engine
}  // namespace setcover
