#include "engine/sharded_session.h"

#include <algorithm>
#include <utility>

#include "engine/backends/shard_common.h"

namespace setcover {
namespace engine {

std::string ShardedSession::SidecarPath(const std::string& stem,
                                        uint32_t worker) {
  return stem + ".w" + std::to_string(worker);
}

std::unique_ptr<ShardedSession> ShardedSession::Open(
    const ShardedSessionConfig& config, bool resume, std::string* error) {
  if (config.workers == 0) {
    if (error != nullptr) *error = "sharded session needs at least 1 worker";
    return nullptr;
  }
  if (config.base.faults.has_value()) {
    if (error != nullptr) {
      *error =
          "sharded sessions do not support fault schedules (per-worker "
          "slice positions are not stream positions, so (seed, position) "
          "fault decisions would diverge from a whole-stream run)";
    }
    return nullptr;
  }
  const AlgorithmInfo* info = FindAlgorithm(config.base.algorithm);
  if (info == nullptr) {
    if (error != nullptr)
      *error = UnknownAlgorithmError(config.base.algorithm);
    return nullptr;
  }
  if (config.workers > 1 && !info->shardable) {
    if (error != nullptr) {
      *error = "algorithm '" + config.base.algorithm +
               "' does not support sharded execution";
    }
    return nullptr;
  }

  std::unique_ptr<ShardedSession> session(new ShardedSession());
  session->config_ = config;
  session->workers_.reserve(config.workers);
  session->slices_.resize(config.workers);
  for (uint32_t w = 0; w < config.workers; ++w) {
    SessionConfig sub = config.base;
    sub.options.seed = config.base.options.seed + w;
    if (!sub.checkpoint_path.empty() && config.workers > 1) {
      sub.checkpoint_path = SidecarPath(sub.checkpoint_path, w);
    }
    std::unique_ptr<Session> worker = Session::Open(sub, resume, error);
    if (worker == nullptr) {
      if (error != nullptr && config.workers > 1) {
        *error = "worker " + std::to_string(w) + ": " + *error;
      }
      return nullptr;
    }
    session->workers_.push_back(std::move(worker));
  }

  // The session's durable cursor is the slowest worker's: sub-sessions
  // hit their checkpoint cadence independently, so after a crash their
  // sidecars may disagree. Replaying from the minimum re-applies only
  // at workers that were behind; the rest dedupe.
  uint64_t cursor = session->workers_[0]->LastSequence();
  for (const auto& worker : session->workers_) {
    cursor = std::min(cursor, worker->LastSequence());
    session->resumed_ = session->resumed_ || worker->Resumed();
  }
  session->last_sequence_ = cursor;
  return session;
}

IngestResult ShardedSession::Ingest(uint64_t sequence,
                                    std::span<const Edge> edges,
                                    std::string* error) {
  IngestResult result;
  result.last_sequence = last_sequence_;
  if (final_report_.has_value()) {
    if (error != nullptr) *error = "session already finalized";
    return result;
  }
  if (sequence <= last_sequence_) {
    result.status = IngestStatus::kDuplicate;
    return result;
  }
  if (sequence != last_sequence_ + 1) {
    if (error != nullptr) *error = "ingest sequence gap";
    result.status = IngestStatus::kOutOfOrder;
    return result;
  }

  const uint32_t shards = config_.workers;
  for (auto& slice : slices_) slice.clear();
  internal::WithOwner(config_.partitioner, shards, [&](auto owner) {
    for (const Edge& edge : edges) slices_[owner(edge.set)].push_back(edge);
  });

  // Every worker sees every sequence number (possibly with an empty
  // slice), so the cursors stay in lockstep. A worker that resumed
  // ahead of the aggregate cursor reports kDuplicate — that is the
  // catch-up replay working as intended, not a failure.
  for (uint32_t w = 0; w < shards; ++w) {
    std::string sub_error;
    IngestResult sub = workers_[w]->Ingest(
        sequence, std::span<const Edge>(slices_[w]), &sub_error);
    if (sub.status == IngestStatus::kApplied ||
        sub.status == IngestStatus::kDuplicate) {
      result.checkpoints_written += sub.checkpoints_written;
      continue;
    }
    if (error != nullptr)
      *error = "worker " + std::to_string(w) + ": " + sub_error;
    result.status = sub.status;
    return result;
  }
  last_sequence_ = sequence;
  result.status = IngestStatus::kApplied;
  result.last_sequence = last_sequence_;
  return result;
}

bool ShardedSession::WriteCheckpoint(std::string* error) {
  for (uint32_t w = 0; w < config_.workers; ++w) {
    std::string sub_error;
    if (!workers_[w]->WriteCheckpoint(&sub_error)) {
      if (error != nullptr)
        *error = "worker " + std::to_string(w) + ": " + sub_error;
      return false;
    }
  }
  return true;
}

const RunReport& ShardedSession::Finalize() {
  if (final_report_.has_value()) return *final_report_;
  std::vector<RunReport> shard_reports;
  shard_reports.reserve(workers_.size());
  for (auto& worker : workers_) shard_reports.push_back(worker->Finalize());
  RunReport report;
  internal::AggregateShardReports(&report, shard_reports,
                                  uint32_t(workers_.size()),
                                  config_.merge_threshold);
  report.stages.total_seconds = report.stages.setup_seconds +
                                report.stages.stream_seconds +
                                report.stages.finalize_seconds;
  final_report_ = std::move(report);
  return *final_report_;
}

SessionStats ShardedSession::Stats() const {
  SessionStats stats;
  for (const auto& worker : workers_) {
    const SessionStats sub = worker->Stats();
    stats.edges_delivered += sub.edges_delivered;
    stats.batches += sub.batches;
    stats.duplicate_ingests += sub.duplicate_ingests;
    stats.checkpoints_written += sub.checkpoints_written;
    stats.transient_retries += sub.transient_retries;
    stats.corrupt_records_skipped += sub.corrupt_records_skipped;
    stats.faults_survived += sub.faults_survived;
    stats.degraded = stats.degraded || sub.degraded;
    stats.setup_seconds = std::max(stats.setup_seconds, sub.setup_seconds);
    stats.stream_seconds = std::max(stats.stream_seconds, sub.stream_seconds);
    stats.finalize_seconds =
        std::max(stats.finalize_seconds, sub.finalize_seconds);
    stats.peak_words += sub.peak_words;
    stats.current_words += sub.current_words;
  }
  // The aggregate cursor and per-call counters belong to this layer:
  // one client Ingest fans into W sub-calls.
  stats.ingest_calls = workers_[0]->Stats().ingest_calls;
  stats.last_sequence = last_sequence_;
  stats.resumed = resumed_;
  stats.finalized = final_report_.has_value();
  return stats;
}

}  // namespace engine
}  // namespace setcover
