#ifndef SETCOVER_ENGINE_SHARDED_SESSION_H_
#define SETCOVER_ENGINE_SHARDED_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/backend.h"
#include "engine/session.h"

namespace setcover {
namespace engine {

/// Push-style counterpart of the sharded backend: W set-partitioned
/// sub-Sessions behind one SessionHandle, so the session server can run
/// a W-worker pipeline without the client knowing anything but
/// OpenBody::workers.
///
/// Each ingest batch is sliced by the set-id partitioner and every
/// sub-session receives its slice under the SAME client sequence
/// number, so the exactly-once cursor advances in lockstep. Sub-session
/// w runs the algorithm at seed base+w and checkpoints to the sidecar
/// `<path>.w<w>`; after a crash the sidecars may hold different durable
/// cursors (they hit their cadence independently), so the session's
/// reported cursor is the MINIMUM over sub-sessions — the client
/// re-sends from there and workers that were already ahead absorb the
/// replay as idempotent duplicates.
///
/// Finalize merges the W local covers through the same deterministic
/// t-party protocol as the pull-side backends
/// (internal::MergeCertificates), so a sharded session's cover and
/// certificate are bit-identical to ExecuteSharded / --backend=forked
/// over the concatenated stream at the same W and seed.
///
/// Fault schedules are rejected: sub-session positions are slice-local
/// coordinates, not stream positions, so (seed, position) fault
/// decisions would diverge from a whole-stream run. Clients that need
/// fault injection over a sharded session inject on their side of the
/// wire.
struct ShardedSessionConfig {
  /// Shared per-worker config. `options.seed` is the base seed;
  /// `checkpoint_path` the sidecar stem; `faults` must be empty.
  SessionConfig base;

  /// Worker fan-out (>= 1). 1 degenerates to a plain Session wrapped in
  /// the handle, bit-identical sidecar included.
  uint32_t workers = 1;

  /// Set-id partitioner shared with the pull-side backends.
  ShardPartitioner partitioner;

  /// Merge threshold τ override (0 = √(n·W)).
  uint32_t merge_threshold = 0;
};

class ShardedSession final : public SessionHandle {
 public:
  /// Opens (or with `resume`, recovers) the W sub-sessions. Fatal
  /// errors mirror Session::Open, plus: workers == 0, a non-shardable
  /// or unknown algorithm, or a fault schedule. Returns nullptr with
  /// *error on failure.
  static std::unique_ptr<ShardedSession> Open(
      const ShardedSessionConfig& config, bool resume, std::string* error);

  IngestResult Ingest(uint64_t sequence, std::span<const Edge> edges,
                      std::string* error) override;
  bool WriteCheckpoint(std::string* error) override;
  const RunReport& Finalize() override;
  SessionStats Stats() const override;

  uint64_t LastSequence() const override { return last_sequence_; }
  bool Resumed() const override { return resumed_; }
  bool Finalized() const override { return final_report_.has_value(); }
  const StreamMetadata& Meta() const override { return config_.base.meta; }
  const std::string& AlgorithmName() const override {
    return workers_[0]->AlgorithmName();
  }

  /// Sidecar path of sub-session w (for cleanup on close).
  static std::string SidecarPath(const std::string& stem, uint32_t worker);

 private:
  ShardedSession() = default;

  ShardedSessionConfig config_;
  std::vector<std::unique_ptr<Session>> workers_;
  uint64_t last_sequence_ = 0;
  bool resumed_ = false;

  /// Reusable per-worker slice buffers for the ingest fan-out.
  std::vector<std::vector<Edge>> slices_;

  std::optional<RunReport> final_report_;
};

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_SHARDED_SESSION_H_
