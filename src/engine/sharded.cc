#include "engine/sharded.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/deterministic_protocol.h"
#include "comm/protocol.h"
#include "run/checkpoint.h"
#include "stream/edge_source.h"
#include "stream/fault_injector.h"
#include "util/math.h"
#include "util/thread_pool.h"

namespace setcover {
namespace engine {
namespace {

using Clock = std::chrono::steady_clock;
using CheckpointSink = std::function<bool(const Checkpoint&, std::string*)>;

double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

uint64_t CountUncovered(const CoverSolution& solution) {
  uint64_t uncovered = 0;
  for (SetId s : solution.certificate)
    if (s == kNoSet) ++uncovered;
  return uncovered;
}

void FinalizeShard(RunReport* report,
                   StreamingSetCoverAlgorithm& algorithm) {
  const auto start = Clock::now();
  report->solution = algorithm.Finalize();
  report->stages.finalize_seconds = Seconds(start);
  report->uncovered_elements = CountUncovered(report->solution);
  report->completed = true;
  report->peak_words = algorithm.Meter().PeakWords();
  report->current_words = algorithm.Meter().CurrentWords();
  report->meter_breakdown = algorithm.Meter().BreakdownString();
}

// Owner functors for the hot compaction loops: the set-modulo default
// compiles to a mask (power-of-two W) or one integer modulo per edge;
// only custom partitioners pay a std::function call.
struct MaskOwner {
  uint32_t mask;
  uint32_t operator()(SetId s) const { return s & mask; }
};
struct ModOwner {
  uint32_t shards;
  uint32_t operator()(SetId s) const { return s % shards; }
};
struct FnOwner {
  const std::function<uint32_t(SetId, uint32_t)>* fn;
  uint32_t shards;
  uint32_t operator()(SetId s) const { return (*fn)(s, shards); }
};

template <typename Fn>
void WithOwner(const ShardPartitioner& partitioner, uint32_t shards,
               Fn&& fn) {
  if (!partitioner.index) {
    if ((shards & (shards - 1)) == 0) {
      fn(MaskOwner{shards - 1});
    } else {
      fn(ModOwner{shards});
    }
  } else {
    fn(FnOwner{&partitioner.index, shards});
  }
}

/// Supervised-path filter: surfaces exactly this shard's slice of the
/// (possibly fault-injected) record sequence. Stateless, so the inner
/// source's positions remain the checkpoint coordinate — Position,
/// SeekTo, and replay state pass straight through.
class ShardFilterSource : public EdgeSource {
 public:
  ShardFilterSource(EdgeSource* inner, uint32_t shard, uint32_t shards,
                    const ShardPartitioner& partitioner)
      : inner_(inner),
        shard_(shard),
        shards_(shards),
        partitioner_(partitioner) {}

  const StreamMetadata& Meta() const override { return inner_->Meta(); }

  ReadStatus Next(Edge* edge) override {
    for (;;) {
      const ReadStatus status = inner_->Next(edge);
      if (status == ReadStatus::kTransient || status == ReadStatus::kEnd) {
        return status;
      }
      // kOk and kCorrupt records both carry a set id (a corrupt one
      // possibly damaged); exactly one shard surfaces each record, so
      // the aggregate corrupt count stays W-invariant.
      if (OwnerOf(edge->set) == shard_) return status;
    }
  }

  size_t Position() const override { return inner_->Position(); }
  bool SeekTo(size_t position) override { return inner_->SeekTo(position); }
  bool HasPendingReplay() const override {
    return inner_->HasPendingReplay();
  }
  bool Truncated() const override { return inner_->Truncated(); }

 private:
  uint32_t OwnerOf(SetId s) const {
    return partitioner_.index ? partitioner_.index(s, shards_)
                              : s % shards_;
  }

  EdgeSource* inner_;
  uint32_t shard_;
  uint32_t shards_;
  const ShardPartitioner& partitioner_;
};

/// In-memory fast path for one shard: walks the shared edge span (no
/// copy of the stream), compacts this shard's edges into a reusable
/// batch, and flushes through ProcessEdgeBatch at exactly the batch
/// boundaries DriveInMemory would use — at W = 1 every edge matches, so
/// the flush pattern (and therefore the run) is bit-identical to the
/// unsharded fast path.
template <typename Owner>
void DriveInMemoryShard(RunReport* report,
                        StreamingSetCoverAlgorithm& algorithm,
                        const EdgeStream& stream, size_t batch_edges,
                        uint32_t shard, Owner owner) {
  const auto start = Clock::now();
  algorithm.Begin(stream.meta);
  std::vector<Edge> batch;
  batch.reserve(batch_edges);
  auto flush = [&] {
    if (batch.empty()) return;
    algorithm.ProcessEdgeBatch(std::span<const Edge>(batch));
    report->edges_delivered += batch.size();
    ++report->stages.batches;
    batch.clear();
  };
  for (const Edge& e : stream.edges) {
    if (owner(e.set) != shard) continue;
    batch.push_back(e);
    if (batch.size() == batch_edges) flush();
  }
  flush();
  report->stages.stream_seconds = Seconds(start);
  FinalizeShard(report, algorithm);
}

/// File fast path for one shard: its own BatchEdgeReader cursor over
/// the same file — with mmap the shards share one physical mapping and
/// the page cache dedupes the reads. Only shard 0 *counts* a checksum
/// failure (every shard observes the same damaged chunk, and the
/// aggregate corrupt count must stay W-invariant); every shard that
/// saw it still degrades.
template <typename Owner>
void DriveFileShard(RunReport* report, StreamingSetCoverAlgorithm& algorithm,
                    BatchEdgeReader& reader, size_t batch_edges,
                    uint32_t shard, Owner owner) {
  const auto start = Clock::now();
  algorithm.Begin(reader.Meta());
  std::vector<Edge> compact;
  compact.reserve(batch_edges);
  auto flush = [&] {
    if (compact.empty()) return;
    algorithm.ProcessEdgeBatch(std::span<const Edge>(compact));
    report->edges_delivered += compact.size();
    ++report->stages.batches;
    compact.clear();
  };
  for (std::span<const Edge> batch = reader.NextBatch(); !batch.empty();
       batch = reader.NextBatch()) {
    for (const Edge& e : batch) {
      if (owner(e.set) != shard) continue;
      compact.push_back(e);
      if (compact.size() == batch_edges) flush();
    }
  }
  flush();
  report->stages.stream_seconds = Seconds(start);
  if (reader.ChecksumFailed() && shard == 0) {
    ++report->corrupt_records_skipped;
    ++report->faults_survived;
  }
  if (reader.Truncated() || reader.ChecksumFailed()) report->degraded = true;
  FinalizeShard(report, algorithm);
}

/// One shard's full pipeline, fast or supervised.
RunReport RunShard(const ShardedRunConfig& config, uint32_t shard,
                   const std::optional<Checkpoint>& resume_slot,
                   const CheckpointSink& sink, bool supervised,
                   bool checkpointing) {
  const RunConfig& base = config.base;
  RunReport report;

  AlgorithmOptions options = base.options;
  options.seed = base.options.seed + shard;
  std::unique_ptr<StreamingSetCoverAlgorithm> algorithm =
      MakeAlgorithmByName(base.algorithm, options);
  if (algorithm == nullptr) {
    report.error = UnknownAlgorithmError(base.algorithm);
    return report;
  }
  report.algorithm_name = algorithm->Name();

  if (!supervised) {
    if (base.source.stream != nullptr) {
      WithOwner(config.partitioner, config.shards, [&](auto owner) {
        DriveInMemoryShard(&report, *algorithm, *base.source.stream,
                           base.batch_edges, shard, owner);
      });
    } else {
      std::string error;
      auto reader = OpenBatchEdgeReader(base.source.path,
                                        base.source.read_options, &error);
      if (reader == nullptr) {
        report.error = error;
        return report;
      }
      WithOwner(config.partitioner, config.shards, [&](auto owner) {
        DriveFileShard(&report, *algorithm, *reader, base.batch_edges,
                       shard, owner);
      });
    }
    return report;
  }

  // Supervised: per-shard source -> fault injector -> shard filter ->
  // Drive. The fault schedule is replicated per shard (pure function of
  // (seed, position)), so every shard sees the identical damaged
  // stream; the filter then surfaces only this shard's slice.
  std::unique_ptr<StreamFileSource> file_source;
  std::unique_ptr<VectorEdgeSource> vector_source;
  EdgeSource* inner = nullptr;
  if (base.source.stream != nullptr) {
    vector_source = std::make_unique<VectorEdgeSource>(*base.source.stream);
    inner = vector_source.get();
  } else {
    std::string error;
    file_source = StreamFileSource::Open(base.source.path,
                                         base.source.read_options, &error);
    if (file_source == nullptr) {
      report.error = error;
      return report;
    }
    inner = file_source.get();
  }
  std::optional<FaultInjector> injector;
  if (base.faults.has_value()) {
    injector.emplace(inner, *base.faults);
    inner = &*injector;
  }
  ShardFilterSource filtered(inner, shard, config.shards,
                             config.partitioner);

  DriveOptions drive;
  drive.checkpoint_every = checkpointing ? base.checkpoint.every : 0;
  if (checkpointing) drive.checkpoint_sink = sink;
  if (resume_slot.has_value()) drive.resume_from = &*resume_slot;
  drive.backoff = base.backoff;
  drive.sleeper = base.sleeper;
  drive.stop_after = base.stop_after;
  drive.batch_edges = base.batch_edges;
  return Drive(drive, *algorithm, filtered);
}

}  // namespace

ShardPartitioner SetModuloPartitioner() { return ShardPartitioner{}; }

RunReport ExecuteSharded(const ShardedRunConfig& config) {
  RunReport report;
  const auto total_start = Clock::now();
  const std::clock_t cpu_start = std::clock();
  const auto setup_start = Clock::now();

  const RunConfig& base = config.base;
  const uint32_t shards = config.shards;
  if (shards == 0) {
    report.error = "sharded run needs shards >= 1";
    return report;
  }
  if (base.algorithm_instance != nullptr) {
    report.error =
        "sharded runs drive one algorithm instance per shard; pass a "
        "registry algorithm name instead of algorithm_instance";
    return report;
  }
  const AlgorithmInfo* info = FindAlgorithm(base.algorithm);
  if (info == nullptr) {
    report.error = UnknownAlgorithmError(base.algorithm);
    return report;
  }
  if (!info->shardable) {
    report.error = NotShardableError(base.algorithm);
    return report;
  }
  if ((base.source.stream != nullptr) == !base.source.path.empty()) {
    report.error = base.source.stream == nullptr
                       ? "run config has no source (set SourceSpec::stream "
                         "or SourceSpec::path)"
                       : "run config sets both an in-memory stream and a "
                         "file path; pick one";
    return report;
  }

  const bool checkpointing =
      !base.checkpoint.path.empty() && base.checkpoint.every > 0;
  const bool supervised = base.faults.has_value() || base.stop_after != 0 ||
                          base.checkpoint.resume || checkpointing ||
                          base.batch_edges != kIngestBatchEdges;

  // The one aggregate sidecar: W slots, rewritten atomically whenever
  // any shard reaches its checkpoint cadence. Resume slots are copied
  // out before the shards launch so each shard reads its slot without
  // racing the sinks.
  ShardedCheckpoint aggregate;
  aggregate.shards = shards;
  aggregate.partitioner = config.partitioner.name;
  aggregate.shard_states.assign(shards, std::nullopt);
  std::vector<std::optional<Checkpoint>> resume_slots(shards);
  if (base.checkpoint.resume) {
    std::string error;
    std::optional<ShardedCheckpoint> loaded =
        LoadShardedCheckpoint(base.checkpoint.path, &error);
    if (!loaded) {
      report.error = error;
      return report;
    }
    if (loaded->shards != shards) {
      report.error = "sharded checkpoint was written by a " +
                     std::to_string(loaded->shards) + "-shard run, not " +
                     std::to_string(shards) + " shards";
      return report;
    }
    if (loaded->partitioner != config.partitioner.name) {
      report.error = "sharded checkpoint was partitioned by '" +
                     loaded->partitioner + "', not '" +
                     config.partitioner.name + "'";
      return report;
    }
    resume_slots = loaded->shard_states;
    aggregate.shard_states = std::move(loaded->shard_states);
  }
  std::mutex aggregate_mutex;
  auto make_sink = [&](uint32_t shard) -> CheckpointSink {
    if (!checkpointing) return nullptr;
    return [&aggregate, &aggregate_mutex, shard,
            path = base.checkpoint.path](const Checkpoint& checkpoint,
                                         std::string* error) {
      std::lock_guard<std::mutex> lock(aggregate_mutex);
      aggregate.shard_states[shard] = checkpoint;
      return SaveShardedCheckpoint(aggregate, path, error);
    };
  };
  report.stages.setup_seconds = Seconds(setup_start);

  // Fan out: one independent pipeline per shard on the deterministic
  // pool. Shards share nothing but the (read-only) source bytes and the
  // mutex-guarded aggregate checkpoint, so results are bit-identical at
  // any thread count.
  std::vector<RunReport> shard_reports(shards);
  {
    ThreadPool pool(config.threads == 0 ? shards : config.threads);
    pool.RunIndexed(shards, [&](size_t w) {
      shard_reports[w] =
          RunShard(config, uint32_t(w), resume_slots[w],
                   make_sink(uint32_t(w)), supervised, checkpointing);
    });
  }

  if (shards == 1) {
    // Single-shard runs skip the merge entirely: shard 0's report *is*
    // the run, bit-identical to engine::Execute on the same config.
    const double setup_seconds = report.stages.setup_seconds;
    report = std::move(shard_reports[0]);
    report.stages.setup_seconds += setup_seconds;
    report.sharded.shards = 1;
    report.sharded.shard_edges = {report.edges_delivered};
    report.sharded.shard_cover_sizes = {report.solution.cover.size()};
    report.sharded.shard_peak_words = {report.peak_words};
    report.sharded.shard_stream_seconds = {report.stages.stream_seconds};
  } else {
    RunReport::ShardStats& stats = report.sharded;
    stats.shards = shards;
    stats.shard_edges.resize(shards);
    stats.shard_cover_sizes.resize(shards);
    stats.shard_peak_words.resize(shards);
    stats.shard_stream_seconds.resize(shards);
    bool all_completed = true;
    for (uint32_t w = 0; w < shards; ++w) {
      const RunReport& shard = shard_reports[w];
      if (!shard.error.empty() && report.error.empty()) {
        report.error = "shard " + std::to_string(w) + ": " + shard.error;
      }
      all_completed = all_completed && shard.completed;
      report.edges_delivered += shard.edges_delivered;
      report.checkpoints_written += shard.checkpoints_written;
      report.transient_retries += shard.transient_retries;
      report.corrupt_records_skipped += shard.corrupt_records_skipped;
      report.faults_survived += shard.faults_survived;
      report.resumed = report.resumed || shard.resumed;
      report.resumed_at += shard.resumed_at;
      report.degraded = report.degraded || shard.degraded;
      // W pipelines run concurrently: the slowest shard is the stage's
      // wall-clock; batches and space add up (the run really holds W
      // working sets).
      report.stages.stream_seconds = std::max(
          report.stages.stream_seconds, shard.stages.stream_seconds);
      report.stages.finalize_seconds = std::max(
          report.stages.finalize_seconds, shard.stages.finalize_seconds);
      report.stages.batches += shard.stages.batches;
      report.peak_words += shard.peak_words;
      report.current_words += shard.current_words;
      stats.shard_edges[w] = shard.edges_delivered;
      stats.shard_cover_sizes[w] = shard.solution.cover.size();
      stats.shard_peak_words[w] = shard.peak_words;
      stats.shard_stream_seconds[w] = shard.stages.stream_seconds;
    }
    report.algorithm_name = shard_reports[0].algorithm_name;
    report.meter_breakdown = shard_reports[0].meter_breakdown;

    if (report.error.empty() && all_completed) {
      // Merge: each shard's certified (set -> covered elements) groups
      // become the candidate sets of a t = W party instance — the
      // partitioner makes candidates shard-disjoint — and the
      // deterministic protocol (threshold-greedy at τ, then patching)
      // picks the merged cover with its 2√(n·W) guarantee. Candidate
      // order is the certificate scan order (shard-major, elements
      // ascending), so the merge is deterministic.
      const auto merge_start = Clock::now();
      const uint32_t n =
          uint32_t(shard_reports[0].solution.certificate.size());
      std::vector<std::vector<ElementId>> candidate_elems;
      std::vector<SetId> candidate_set;
      std::vector<uint32_t> candidate_owner;
      std::unordered_map<SetId, size_t> candidate_index;
      for (uint32_t w = 0; w < shards; ++w) {
        const std::vector<SetId>& certificate =
            shard_reports[w].solution.certificate;
        for (ElementId u = 0; u < certificate.size(); ++u) {
          const SetId s = certificate[u];
          if (s == kNoSet) continue;
          auto [it, inserted] =
              candidate_index.try_emplace(s, candidate_elems.size());
          if (inserted) {
            candidate_elems.emplace_back();
            candidate_set.push_back(s);
            candidate_owner.push_back(w);
          }
          candidate_elems[it->second].push_back(u);
        }
      }

      const uint32_t tau =
          config.merge_threshold != 0
              ? config.merge_threshold
              : std::max<uint32_t>(
                    1, uint32_t(ISqrt(uint64_t(n) * shards)));
      stats.merge_threshold = tau;
      // §3's message: covered bitmap (n bits) + first-seen table R (n
      // words) + the threshold picks so far — each pick covers ≥ τ new
      // elements, so at most ⌈n/τ⌉ ever travel. That is the Õ(n) bound
      // every benchmarked instance is checked against.
      stats.message_words_bound =
          BitsToWords(n) + n + (tau > 0 ? (n + tau - 1) / tau : 0);

      if (candidate_elems.empty()) {
        report.solution.cover.clear();
        report.solution.certificate.assign(n, kNoSet);
      } else {
        SetCoverInstance merged =
            SetCoverInstance::FromSets(n, std::move(candidate_elems));
        DeterministicProtocolResult protocol = RunDeterministicProtocol(
            merged, candidate_owner, shards, tau);
        stats.max_message_words = protocol.max_message_words;
        stats.threshold_sets = protocol.threshold_sets;
        stats.patched_sets = protocol.patched_sets;
        // Candidate ids map 1:1 back to global set ids.
        report.solution.cover.clear();
        report.solution.cover.reserve(protocol.solution.cover.size());
        for (SetId candidate : protocol.solution.cover) {
          report.solution.cover.push_back(candidate_set[candidate]);
        }
        report.solution.certificate.assign(n, kNoSet);
        for (ElementId u = 0; u < n; ++u) {
          const SetId candidate = protocol.solution.certificate[u];
          if (candidate != kNoSet) {
            report.solution.certificate[u] = candidate_set[candidate];
          }
        }
      }
      report.uncovered_elements = CountUncovered(report.solution);
      report.completed = true;
      stats.merge_seconds = Seconds(merge_start);
    }
  }

  if (base.validate != nullptr && report.completed) {
    const auto validate_start = Clock::now();
    report.validation = ValidateSolution(*base.validate, report.solution);
    report.validated = true;
    report.stages.validate_seconds = Seconds(validate_start);
  }

  report.stages.total_seconds = Seconds(total_start);
  report.stages.cpu_seconds =
      double(std::clock() - cpu_start) / double(CLOCKS_PER_SEC);
  return report;
}

}  // namespace engine
}  // namespace setcover
