#include "engine/backends/forked.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "engine/backends/common.h"
#include "engine/backends/shard_common.h"
#include "run/checkpoint.h"
#include "stream/edge_source.h"
#include "stream/fault_injector.h"
#include "stream/schedule.h"
#include "util/eintr.h"
#include "util/shm_ring.h"
#include "util/stage_pipe.h"

namespace setcover {
namespace engine {
namespace {

using internal::AggregateCheckpointWriter;
using internal::Clock;
using internal::FinalizeRun;
using internal::Seconds;
using internal::ShardFilterSource;

constexpr size_t kFeedRingBytes = size_t(1) << 20;
// Result frames carry whole certificates (n u32s) and checkpoint
// state words, so this ring is sized generously; a frame that can
// never fit fails the push and surfaces as a worker error.
constexpr size_t kResultRingBytes = size_t(1) << 22;
constexpr size_t kFeedRecords = 512;  // records per feed frame

// Feed-ring frames (parent -> child), kind byte first:
//   kRecords: u32 count, then per record u8 status (0 = kOk,
//             1 = kCorrupt), u32 set, u32 element
//   kFeedEnd: u8 truncated
// Result-ring frames (child -> parent):
//   kCheckpoint: an EncodeCheckpointBody body
//   kReport:     a serialized RunReport (SerializeReport below)
constexpr uint8_t kRecords = 1;
constexpr uint8_t kFeedEnd = 2;
constexpr uint8_t kCheckpoint = 1;
constexpr uint8_t kReport = 2;

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, uint32_t(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutU32Vector(std::vector<uint8_t>* out,
                  const std::vector<uint32_t>& v) {
  PutU32(out, uint32_t(v.size()));
  for (uint32_t x : v) PutU32(out, x);
}

/// Bounds-checked little-endian reader; `ok` latches false on any
/// overrun so callers can validate once at the end.
struct ByteCursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8() {
    if (pos + 1 > size) return Fail<uint8_t>();
    return data[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > size) return Fail<uint32_t>();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > size) return Fail<uint64_t>();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string String() {
    const uint32_t len = U32();
    if (!ok || pos + len > size) return Fail<std::string>();
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
  std::vector<uint32_t> U32Vector() {
    const uint32_t len = U32();
    if (!ok || pos + size_t(len) * 4 > size) {
      return Fail<std::vector<uint32_t>>();
    }
    std::vector<uint32_t> v(len);
    for (uint32_t i = 0; i < len; ++i) v[i] = U32();
    return v;
  }

  template <typename T>
  T Fail() {
    ok = false;
    return T{};
  }
};

/// The subset of RunReport a worker ships back: everything the
/// aggregation in shard_common.h reads. Timings are bit-cast doubles so
/// the frame stays byte-deterministic for a deterministic run.
std::vector<uint8_t> SerializeReport(const RunReport& report) {
  std::vector<uint8_t> out;
  PutU8(&out, kReport);
  PutU8(&out, report.completed ? 1 : 0);
  PutU8(&out, report.resumed ? 1 : 0);
  PutU8(&out, report.degraded ? 1 : 0);
  PutString(&out, report.error);
  PutString(&out, report.algorithm_name);
  PutString(&out, report.meter_breakdown);
  PutU64(&out, report.edges_delivered);
  PutU64(&out, report.checkpoints_written);
  PutU64(&out, report.transient_retries);
  PutU64(&out, report.corrupt_records_skipped);
  PutU64(&out, report.faults_survived);
  PutU64(&out, report.resumed_at);
  PutU64(&out, report.uncovered_elements);
  PutU64(&out, report.stages.batches);
  PutU64(&out, report.peak_words);
  PutU64(&out, report.current_words);
  PutF64(&out, report.stages.setup_seconds);
  PutF64(&out, report.stages.stream_seconds);
  PutF64(&out, report.stages.finalize_seconds);
  PutU32Vector(&out, report.solution.cover);
  PutU32Vector(&out, report.solution.certificate);
  return out;
}

bool DeserializeReport(const uint8_t* data, size_t size, RunReport* out) {
  ByteCursor in{data, size};
  out->completed = in.U8() != 0;
  out->resumed = in.U8() != 0;
  out->degraded = in.U8() != 0;
  out->error = in.String();
  out->algorithm_name = in.String();
  out->meter_breakdown = in.String();
  out->edges_delivered = in.U64();
  out->checkpoints_written = in.U64();
  out->transient_retries = in.U64();
  out->corrupt_records_skipped = in.U64();
  out->faults_survived = in.U64();
  out->resumed_at = in.U64();
  out->uncovered_elements = in.U64();
  out->stages.batches = in.U64();
  out->peak_words = size_t(in.U64());
  out->current_words = size_t(in.U64());
  out->stages.setup_seconds = in.F64();
  out->stages.stream_seconds = in.F64();
  out->stages.finalize_seconds = in.F64();
  out->solution.cover = in.U32Vector();
  out->solution.certificate = in.U32Vector();
  return in.ok && in.pos == in.size;
}

/// Child-side EdgeSource over the feed ring. Positions advance by one
/// per surfaced record (kOk and kCorrupt alike), starting at the resume
/// position the parent is feeding from — the same coordinate the
/// parent's (scheduled) source cursor reports, so checkpoints taken
/// over this source seek back correctly on any backend. (The only raw
/// source whose position can jump is a v3 file skipping a damaged
/// chunk, and that jump occurs at end-of-stream where no checkpoint
/// follows.) SeekTo succeeds only at the current position: the ring is
/// a forward-only feed, and Drive's resume seek lands exactly there.
class RingEdgeSource : public EdgeSource {
 public:
  RingEdgeSource(ShmRing* ring, const StreamMetadata& meta, size_t start)
      : ring_(ring), meta_(meta), position_(start) {}

  const StreamMetadata& Meta() const override { return meta_; }

  ReadStatus Next(Edge* edge) override {
    while (next_ >= records_.size()) {
      if (ended_) return ReadStatus::kEnd;
      if (!PopBatch()) return ReadStatus::kEnd;
    }
    const Record& record = records_[next_++];
    edge->set = record.set;
    edge->element = record.element;
    ++position_;
    return record.corrupt ? ReadStatus::kCorrupt : ReadStatus::kOk;
  }

  size_t Position() const override { return position_; }
  bool SeekTo(size_t position) override { return position == position_; }
  bool Truncated() const override { return truncated_; }

 private:
  struct Record {
    SetId set;
    ElementId element;
    bool corrupt;
  };

  bool PopBatch() {
    std::vector<uint8_t> frame;
    if (!ring_->PopFrame(&frame)) {
      // Ring closed without an end frame: the parent (or its feeder)
      // died mid-stream — treat as truncation, never as clean EOF.
      ended_ = true;
      truncated_ = true;
      return false;
    }
    ByteCursor in{frame.data(), frame.size()};
    const uint8_t kind = in.U8();
    if (kind == kFeedEnd) {
      ended_ = true;
      truncated_ = in.U8() != 0;
      return false;
    }
    if (kind != kRecords) {
      ended_ = true;
      truncated_ = true;
      return false;
    }
    const uint32_t count = in.U32();
    records_.clear();
    records_.reserve(count);
    for (uint32_t i = 0; i < count && in.ok; ++i) {
      Record record;
      record.corrupt = in.U8() != 0;
      record.set = in.U32();
      record.element = in.U32();
      records_.push_back(record);
    }
    next_ = 0;
    if (!in.ok) {
      ended_ = true;
      truncated_ = true;
      records_.clear();
      return false;
    }
    return true;
  }

  ShmRing* ring_;
  StreamMetadata meta_;
  size_t position_;
  std::vector<Record> records_;
  size_t next_ = 0;
  bool ended_ = false;
  bool truncated_ = false;
};

/// Everything one child inherits across fork() (plain copies of the
/// parent's pre-fork state; the rings are shared MAP_SHARED mappings).
struct ChildPlan {
  const RunConfig* config;
  uint32_t shard = 0;
  uint32_t shards = 1;
  ShmRing* feed = nullptr;
  ShmRing* result = nullptr;
  const std::optional<Checkpoint>* resume_slot = nullptr;
  StreamMetadata meta;
  bool supervised = false;
  bool checkpointing = false;
  /// Debug-build first-flush equivalence spot-check — only on the clean
  /// in-memory path, mirroring the inprocess/sharded fast paths.
  bool spot_check = false;
};

/// Clean fast loop for an unsupervised child: the forked analogue of
/// DriveInMemoryShard/DriveFileShard, over the ring.
void DriveRingClean(const ChildPlan& plan, RunReport* report,
                    StreamingSetCoverAlgorithm& algorithm,
                    EdgeSource& source) {
  const RunConfig& config = *plan.config;
  const size_t batch_edges =
      config.batch_edges > 0 ? config.batch_edges : kIngestBatchEdges;
  const auto start = Clock::now();
  algorithm.Begin(plan.meta);
  std::vector<Edge> batch;
  batch.reserve(batch_edges);
#ifndef NDEBUG
  bool first_flush = true;
#endif
  auto flush = [&] {
    if (batch.empty()) return;
#ifndef NDEBUG
    if (first_flush) {
      first_flush = false;
      if (plan.spot_check) {
        ProcessBatchCheckedForEquivalence(algorithm, plan.meta,
                                          std::span<const Edge>(batch));
        report->edges_delivered += batch.size();
        ++report->stages.batches;
        batch.clear();
        return;
      }
    }
#endif
    algorithm.ProcessEdgeBatch(std::span<const Edge>(batch));
    report->edges_delivered += batch.size();
    ++report->stages.batches;
    batch.clear();
  };
  Edge edge;
  for (;;) {
    const ReadStatus status = source.Next(&edge);
    if (status == ReadStatus::kEnd) break;
    if (status == ReadStatus::kCorrupt) {
      // The owner shard counts the damaged record (the filter routed it
      // here), keeping the aggregate corrupt count W-invariant.
      ++report->corrupt_records_skipped;
      ++report->faults_survived;
      continue;
    }
    if (status == ReadStatus::kTransient) continue;  // rings never emit
    batch.push_back(edge);
    if (batch.size() == batch_edges) flush();
  }
  flush();
  report->stages.stream_seconds = Seconds(start);
  if (source.Truncated()) report->degraded = true;
  FinalizeRun(report, algorithm);
}

RunReport RunChild(const ChildPlan& plan) {
  const RunConfig& config = *plan.config;
  RunReport report;

  AlgorithmOptions options = config.options;
  options.seed = config.options.seed + plan.shard;
  std::unique_ptr<StreamingSetCoverAlgorithm> algorithm =
      MakeAlgorithmByName(config.algorithm, options);
  if (algorithm == nullptr) {
    report.error = UnknownAlgorithmError(config.algorithm);
    return report;
  }
  report.algorithm_name = algorithm->Name();

  const std::optional<Checkpoint>& slot = *plan.resume_slot;
  const size_t start =
      slot.has_value() ? size_t(slot->stream_position) : 0;
  RingEdgeSource ring_source(plan.feed, plan.meta, start);

  if (!plan.supervised) {
    ShardFilterSource filtered(&ring_source, plan.shard, plan.shards,
                               config.backend.partitioner);
    DriveRingClean(plan, &report, *algorithm, filtered);
    return report;
  }

  // Supervised: ring -> fault injector -> shard filter -> Drive, the
  // same stack a sharded-backend worker thread runs (the schedule is
  // already applied parent-side, under these layers' positions).
  EdgeSource* inner = &ring_source;
  std::optional<FaultInjector> injector;
  if (config.faults.has_value()) {
    injector.emplace(inner, *config.faults);
    inner = &*injector;
  }
  ShardFilterSource filtered(inner, plan.shard, plan.shards,
                             config.backend.partitioner);

  DriveOptions drive;
  drive.checkpoint_every = plan.checkpointing ? config.checkpoint.every : 0;
  if (plan.checkpointing) {
    ShmRing* result = plan.result;
    drive.checkpoint_sink = [result](const Checkpoint& checkpoint,
                                     std::string* error) {
      std::vector<uint8_t> frame;
      PutU8(&frame, kCheckpoint);
      EncodeCheckpointBody(checkpoint, &frame);
      if (!result->PushFrame(frame)) {
        *error = "result ring closed before the checkpoint was sent";
        return false;
      }
      return true;
    };
  }
  if (slot.has_value()) drive.resume_from = &*slot;
  drive.backoff = config.backoff;
  drive.sleeper = config.sleeper;
  drive.stop_after = config.backend.fail_worker == plan.shard
                         ? config.backend.fail_worker_after
                         : config.stop_after;
  drive.batch_edges = config.batch_edges;
  return Drive(drive, *algorithm, filtered);
}

[[noreturn]] void ChildMain(const ChildPlan& plan) {
  if (plan.config->backend.fail_worker == plan.shard) {
    // Crash-injection knob: run up to the kill point (checkpoints
    // included), then die without reporting — exactly what a worker
    // process crash looks like to the parent.
    RunChild(plan);
    plan.feed->Close();
    plan.result->Close();
    _exit(137);
  }
  RunReport report = RunChild(plan);
  plan.result->PushFrame(SerializeReport(report));
  plan.feed->Close();
  plan.result->Close();
  // _exit, not exit: no atexit handlers, no static destructors, no
  // leak-check pass — the child shares the parent's address space
  // snapshot and must not tear it down.
  _exit(0);
}

}  // namespace

RunReport ForkedBackend::Run(const RunConfig& config) {
  RunReport report;
  const auto total_start = Clock::now();
  const std::clock_t cpu_start = std::clock();
  const auto setup_start = Clock::now();

  const uint32_t shards = config.backend.workers != 0
                              ? config.backend.workers
                              : (config.shards > 1 ? config.shards : 1);
  if (!internal::ValidateShardedBase(config, shards, &report.error)) {
    return report;
  }
  if (config.source.schedule.window != 0) {
    report.error =
        "the forked backend does not support windowed schedules (replayed "
        "window contents are not position-addressable across the process "
        "boundary)";
    return report;
  }

  // Probe the stream metadata before forking. File probes must not
  // leave a prefetch thread alive across fork(), so the probe reader is
  // synchronous and destroyed here.
  StreamMetadata meta;
  if (config.source.stream != nullptr) {
    meta = config.source.stream->meta;
  } else {
    StreamReadOptions probe_options = config.source.read_options;
    probe_options.prefetch = false;
    std::string error;
    auto probe =
        StreamFileSource::Open(config.source.path, probe_options, &error);
    if (probe == nullptr) {
      report.error = error;
      return report;
    }
    meta = probe->Meta();
  }

  const bool checkpointing =
      !config.checkpoint.path.empty() && config.checkpoint.every > 0;
  const bool supervised =
      config.faults.has_value() || config.stop_after != 0 ||
      config.checkpoint.resume || checkpointing ||
      config.batch_edges != kIngestBatchEdges ||
      !config.source.schedule.Trivial() ||
      config.backend.fail_worker != BackendSpec::kNoFailWorker;

  std::vector<std::optional<Checkpoint>> resume_slots(shards);
  if (config.checkpoint.resume) {
    if (!internal::LoadResumeSlots(config.checkpoint.path, shards,
                                   config.backend.partitioner.name,
                                   &resume_slots, &report.error)) {
      return report;
    }
  }
  std::optional<AggregateCheckpointWriter> writer;
  if (checkpointing) {
    writer.emplace(config.checkpoint.path, shards,
                   config.backend.partitioner.name, resume_slots);
  }

  // Two rings per worker, created in the parent before fork() so the
  // children inherit the shared mappings directly — no fd passing.
  std::vector<std::unique_ptr<ShmRing>> feeds(shards);
  std::vector<std::unique_ptr<ShmRing>> results(shards);
  for (uint32_t w = 0; w < shards; ++w) {
    std::string error;
    feeds[w] = ShmRing::Create(kFeedRingBytes, &error);
    if (feeds[w] == nullptr) {
      report.error = "feed ring: " + error;
      return report;
    }
    results[w] = ShmRing::Create(kResultRingBytes, &error);
    if (results[w] == nullptr) {
      report.error = "result ring: " + error;
      return report;
    }
  }
  report.stages.setup_seconds = Seconds(setup_start);

  // Fork all workers BEFORE spawning any parent-side thread: fork()
  // only clones the calling thread, and a child must never inherit a
  // mutex another thread holds.
  std::vector<pid_t> pids(shards, -1);
  for (uint32_t w = 0; w < shards; ++w) {
    ChildPlan plan;
    plan.config = &config;
    plan.shard = w;
    plan.shards = shards;
    plan.feed = feeds[w].get();
    plan.result = results[w].get();
    plan.resume_slot = &resume_slots[w];
    plan.meta = meta;
    plan.supervised = supervised;
    plan.checkpointing = checkpointing;
    plan.spot_check = !supervised && config.source.stream != nullptr;

    const pid_t pid = fork();
    if (pid == 0) {
      ChildMain(plan);  // never returns
    }
    if (pid < 0) {
      report.error = std::string("fork failed: ") + std::strerror(errno);
      for (uint32_t k = 0; k < w; ++k) {
        feeds[k]->Close();
        results[k]->Close();
        int status = 0;
        RetryEintr([&] { return waitpid(pids[k], &status, 0); });
      }
      return report;
    }
    pids[w] = pid;
  }

  std::vector<RunReport> shard_reports(shards);
  std::vector<uint8_t> got_report(shards, 0);
  // Written by exactly one thread each (feeder / collector), merged
  // after the joins — no locking needed.
  std::vector<std::string> feed_errors(shards);
  std::vector<std::string> collect_errors(shards);

  std::vector<std::thread> threads;
  threads.reserve(size_t(shards) * 3 + 1);
  std::vector<std::unique_ptr<StagePipe<std::vector<uint8_t>>>> pipes(
      shards);
  for (uint32_t w = 0; w < shards; ++w) {
    pipes[w] = std::make_unique<StagePipe<std::vector<uint8_t>>>();
  }

  for (uint32_t w = 0; w < shards; ++w) {
    // Feeder: this worker's own cursor over the raw source, schedule
    // applied parent-side, serialized into feed frames. The StagePipe
    // overlaps serialization of the next frame with the ring push of
    // the current one (backpressure from a slow child lands in the
    // pusher, not the reader).
    threads.emplace_back([&, w] {
      StagePipe<std::vector<uint8_t>>& pipe = *pipes[w];
      std::unique_ptr<StreamFileSource> file_source;
      std::unique_ptr<VectorEdgeSource> vector_source;
      EdgeSource* source = nullptr;
      if (config.source.stream != nullptr) {
        vector_source =
            std::make_unique<VectorEdgeSource>(*config.source.stream);
        source = vector_source.get();
      } else {
        std::string error;
        file_source = StreamFileSource::Open(
            config.source.path, config.source.read_options, &error);
        if (file_source == nullptr) {
          feed_errors[w] = error;
          pipe.FinishProducing();
          return;
        }
        source = file_source.get();
      }
      std::optional<ScheduledSource> scheduled;
      if (!config.source.schedule.Trivial()) {
        scheduled.emplace(source, config.source.schedule);
        source = &*scheduled;
      }
      const size_t start = resume_slots[w].has_value()
                               ? size_t(resume_slots[w]->stream_position)
                               : 0;
      if (start != 0 && !source->SeekTo(start)) {
        feed_errors[w] = "source cannot seek to checkpointed position";
        pipe.FinishProducing();
        return;
      }
      Edge edge;
      bool ended = false;
      while (!ended) {
        std::vector<uint8_t>* frame = pipe.BeginFill();
        if (frame == nullptr) return;  // pusher saw the ring close
        frame->clear();
        PutU8(frame, kRecords);
        PutU32(frame, 0);  // patched below
        uint32_t count = 0;
        while (count < kFeedRecords) {
          const ReadStatus status = source->Next(&edge);
          if (status == ReadStatus::kEnd) {
            ended = true;
            break;
          }
          // Raw sources never emit kTransient (only the child-side
          // fault injector does); kCorrupt is relayed with its status.
          PutU8(frame, status == ReadStatus::kCorrupt ? 1 : 0);
          PutU32(frame, edge.set);
          PutU32(frame, edge.element);
          ++count;
        }
        for (int i = 0; i < 4; ++i) {
          (*frame)[1 + i] = uint8_t(count >> (8 * i));
        }
        if (count > 0) pipe.FinishFill();
        if (ended) {
          std::vector<uint8_t>* end_frame =
              count > 0 ? pipe.BeginFill() : frame;
          if (end_frame == nullptr) return;
          end_frame->clear();
          PutU8(end_frame, kFeedEnd);
          PutU8(end_frame, source->Truncated() ? 1 : 0);
          pipe.FinishFill();
        }
      }
      pipe.FinishProducing();
    });

    // Pusher: drains serialized frames into the feed ring.
    threads.emplace_back([&, w] {
      StagePipe<std::vector<uint8_t>>& pipe = *pipes[w];
      while (std::vector<uint8_t>* frame = pipe.BeginDrain()) {
        if (!feeds[w]->PushFrame(*frame)) {
          pipe.Stop();  // child gone; unblock the feeder
          return;
        }
        pipe.FinishDrain();
      }
      feeds[w]->Close();
    });

    // Collector: folds checkpoint bodies into the aggregate sidecar
    // (in frame order, so every checkpoint a worker counted is on disk
    // before its report is processed) and captures the final report.
    threads.emplace_back([&, w] {
      std::vector<uint8_t> frame;
      while (results[w]->PopFrame(&frame)) {
        if (frame.empty()) continue;
        if (frame[0] == kCheckpoint) {
          Checkpoint checkpoint;
          std::string error;
          if (!DecodeCheckpointBody(frame.data() + 1, frame.size() - 1,
                                    &checkpoint, &error)) {
            if (collect_errors[w].empty()) {
              collect_errors[w] = "worker " + std::to_string(w) +
                                  " sent a malformed checkpoint: " + error;
            }
            continue;
          }
          if (writer.has_value() &&
              !writer->Store(w, checkpoint, &error) &&
              collect_errors[w].empty()) {
            collect_errors[w] = error;
          }
        } else if (frame[0] == kReport) {
          if (DeserializeReport(frame.data() + 1, frame.size() - 1,
                                &shard_reports[w])) {
            got_report[w] = 1;
          } else if (collect_errors[w].empty()) {
            collect_errors[w] =
                "worker " + std::to_string(w) + " sent a malformed report";
          }
        }
      }
    });
  }

  // Reaper: waits for each child, then closes its rings — so a worker
  // that crashed without closing (SIGKILL, test knob) still unblocks
  // the parent's feeder, pusher, and collector.
  threads.emplace_back([&] {
    for (uint32_t w = 0; w < shards; ++w) {
      int status = 0;
      RetryEintr([&] { return waitpid(pids[w], &status, 0); });
      feeds[w]->Close();
      results[w]->Close();
    }
  });

  for (std::thread& thread : threads) thread.join();

  for (uint32_t w = 0; w < shards; ++w) {
    const std::string& side_error =
        !feed_errors[w].empty() ? feed_errors[w] : collect_errors[w];
    if (!got_report[w]) {
      shard_reports[w] = RunReport{};
      shard_reports[w].error =
          !side_error.empty()
              ? side_error
              : "worker " + std::to_string(w) +
                    " exited without a report (worker process died "
                    "mid-stream)";
    } else if (!side_error.empty() && shard_reports[w].error.empty()) {
      shard_reports[w].error = side_error;
    }
  }

  internal::AggregateShardReports(&report, shard_reports, shards,
                                  config.backend.merge_threshold);

  if (config.validate != nullptr && report.completed) {
    const auto validate_start = Clock::now();
    report.validation = ValidateSolution(*config.validate, report.solution);
    report.validated = true;
    report.stages.validate_seconds = Seconds(validate_start);
  }

  report.stages.total_seconds = Seconds(total_start);
  report.stages.cpu_seconds =
      double(std::clock() - cpu_start) / double(CLOCKS_PER_SEC);
  return report;
}

}  // namespace engine
}  // namespace setcover
