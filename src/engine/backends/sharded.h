#ifndef SETCOVER_ENGINE_BACKENDS_SHARDED_H_
#define SETCOVER_ENGINE_BACKENDS_SHARDED_H_

#include "engine/backend.h"
#include "engine/engine.h"

namespace setcover {
namespace engine {

/// The thread-pool substrate: W set-partitioned worker pipelines on the
/// deterministic pool, merged through the §3 t-party protocol. Thin
/// Backend adapter over ExecuteSharded (engine/sharded.h), which keeps
/// its direct entry point for callers that configure ShardedRunConfig
/// explicitly.
class ShardedBackend : public Backend {
 public:
  const char* Name() const override { return "sharded"; }
  RunReport Run(const RunConfig& config) override;
};

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_BACKENDS_SHARDED_H_
