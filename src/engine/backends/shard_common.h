#ifndef SETCOVER_ENGINE_BACKENDS_SHARD_COMMON_H_
#define SETCOVER_ENGINE_BACKENDS_SHARD_COMMON_H_

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/backend.h"
#include "engine/engine.h"
#include "run/checkpoint.h"
#include "stream/edge_source.h"

namespace setcover {
namespace engine {
namespace internal {

/// Machinery shared by the set-partitioned backends (sharded threads,
/// forked processes): the partitioner hot-loop dispatch, the per-shard
/// stream filter, the aggregate checkpoint sidecar, and the
/// deterministic-protocol cover merge. Internal to src/engine/.

using CheckpointSink = std::function<bool(const Checkpoint&, std::string*)>;

// Owner functors for the hot compaction loops: the set-modulo default
// compiles to a mask (power-of-two W) or one integer modulo per edge;
// only custom partitioners pay a std::function call.
struct MaskOwner {
  uint32_t mask;
  uint32_t operator()(SetId s) const { return s & mask; }
};
struct ModOwner {
  uint32_t shards;
  uint32_t operator()(SetId s) const { return s % shards; }
};
struct FnOwner {
  const std::function<uint32_t(SetId, uint32_t)>* fn;
  uint32_t shards;
  uint32_t operator()(SetId s) const { return (*fn)(s, shards); }
};

template <typename Fn>
void WithOwner(const ShardPartitioner& partitioner, uint32_t shards,
               Fn&& fn) {
  if (!partitioner.index) {
    if ((shards & (shards - 1)) == 0) {
      fn(MaskOwner{shards - 1});
    } else {
      fn(ModOwner{shards});
    }
  } else {
    fn(FnOwner{&partitioner.index, shards});
  }
}

/// Supervised-path filter: surfaces exactly this shard's slice of the
/// (possibly fault-injected) record sequence. Stateless, so the inner
/// source's positions remain the checkpoint coordinate — Position,
/// SeekTo, and replay state pass straight through.
class ShardFilterSource : public EdgeSource {
 public:
  ShardFilterSource(EdgeSource* inner, uint32_t shard, uint32_t shards,
                    const ShardPartitioner& partitioner)
      : inner_(inner),
        shard_(shard),
        shards_(shards),
        partitioner_(partitioner) {}

  const StreamMetadata& Meta() const override { return inner_->Meta(); }

  ReadStatus Next(Edge* edge) override {
    for (;;) {
      const ReadStatus status = inner_->Next(edge);
      if (status == ReadStatus::kTransient || status == ReadStatus::kEnd) {
        return status;
      }
      // kOk and kCorrupt records both carry a set id (a corrupt one
      // possibly damaged); exactly one shard surfaces each record, so
      // the aggregate corrupt count stays W-invariant.
      if (OwnerOf(edge->set) == shard_) return status;
    }
  }

  size_t Position() const override { return inner_->Position(); }
  bool SeekTo(size_t position) override { return inner_->SeekTo(position); }
  bool HasPendingReplay() const override {
    return inner_->HasPendingReplay();
  }
  bool Truncated() const override { return inner_->Truncated(); }

 private:
  uint32_t OwnerOf(SetId s) const {
    return partitioner_.index ? partitioner_.index(s, shards_)
                              : s % shards_;
  }

  EdgeSource* inner_;
  uint32_t shard_;
  uint32_t shards_;
  const ShardPartitioner& partitioner_;
};

/// The config checks every set-partitioned backend performs before
/// fanning out: W >= 1, a shardable registry algorithm name (never an
/// instance), a well-formed source, a valid schedule. False with
/// *error carrying the exact legacy diagnostics.
bool ValidateShardedBase(const RunConfig& base, uint32_t shards,
                         std::string* error);

/// Loads the resume slots for a W-way run from `path`. W == 1 reads a
/// plain single-run SCKP sidecar (so one-worker runs of any backend are
/// byte-identical to the inprocess pipeline, sidecar included); W > 1
/// reads the aggregate SCSH format and refuses a shard-count or
/// partitioner mismatch.
bool LoadResumeSlots(const std::string& path, uint32_t shards,
                     const std::string& partitioner_name,
                     std::vector<std::optional<Checkpoint>>* slots,
                     std::string* error);

/// The one aggregate checkpoint sidecar of a W-way run: thread-safe
/// slot folding, rewritten atomically whenever any shard reaches its
/// checkpoint cadence. At W == 1 it degenerates to the plain single-run
/// SaveCheckpoint (matching LoadResumeSlots).
class AggregateCheckpointWriter {
 public:
  AggregateCheckpointWriter(std::string path, uint32_t shards,
                            std::string partitioner_name,
                            std::vector<std::optional<Checkpoint>> slots);

  /// Folds shard `w`'s snapshot in and rewrites the sidecar. Safe from
  /// concurrent shard threads.
  bool Store(uint32_t shard, const Checkpoint& checkpoint,
             std::string* error);

  /// A DriveOptions::checkpoint_sink bound to one shard's slot.
  CheckpointSink SinkFor(uint32_t shard);

 private:
  std::mutex mutex_;
  std::string path_;
  ShardedCheckpoint aggregate_;
};

/// One deterministic-protocol merge of W local covers (paper §3):
/// certificate groups become shard-disjoint candidate sets,
/// threshold-greedy at τ = √(n·W) (unless overridden) picks the heavy
/// candidates, the patching scan covers the rest. Candidate order is
/// the certificate scan order (party-major, elements ascending), so
/// the merge is deterministic.
struct CertificateMerge {
  CoverSolution solution;
  uint32_t merge_threshold = 0;
  uint64_t max_message_words = 0;
  uint64_t message_words_bound = 0;
  uint64_t threshold_sets = 0;
  uint64_t patched_sets = 0;
};
CertificateMerge MergeCertificates(
    const std::vector<const CoverSolution*>& locals, uint32_t parties,
    uint32_t merge_threshold_override);

/// Folds W completed shard reports into `report`: counter sums, stage
/// maxima, per-shard stats, then the certificate merge. At W == 1 the
/// single shard report *is* the run (merge skipped, bit-identical to
/// the inprocess pipeline); `report` enters with setup_seconds stamped
/// and keeps it.
void AggregateShardReports(RunReport* report,
                           std::vector<RunReport>& shard_reports,
                           uint32_t shards, uint32_t merge_threshold);

}  // namespace internal
}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_BACKENDS_SHARD_COMMON_H_
