#ifndef SETCOVER_ENGINE_BACKENDS_INPROCESS_H_
#define SETCOVER_ENGINE_BACKENDS_INPROCESS_H_

#include "engine/backend.h"
#include "engine/engine.h"

namespace setcover {
namespace engine {

/// The default substrate: the single pipeline on the calling thread —
/// zero-copy fast paths (span-sliced batches for in-memory streams,
/// chunk-aligned reader batches for files) when the run is
/// unsupervised, the supervised Drive() loop otherwise. This is the
/// reference implementation every other backend is pinned
/// bit-identical against.
class InProcessBackend : public Backend {
 public:
  const char* Name() const override { return "inprocess"; }
  RunReport Run(const RunConfig& config) override;
};

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_BACKENDS_INPROCESS_H_
