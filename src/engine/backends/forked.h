#ifndef SETCOVER_ENGINE_BACKENDS_FORKED_H_
#define SETCOVER_ENGINE_BACKENDS_FORKED_H_

#include "engine/backend.h"
#include "engine/engine.h"

namespace setcover {
namespace engine {

/// The multi-process substrate: W fork()ed worker processes, each
/// running one set-partitioned pipeline in its own address space.
///
/// Topology per worker:
///   parent: source cursor -> schedule -> [StagePipe] -> feed shm ring
///   child:  ring source -> fault injector -> shard filter -> pipeline
///   child:  checkpoint/report frames -> result shm ring -> parent
///
/// The parent feeds every worker the full record sequence over a
/// same-host shm ring (util/shm_ring.h — the PR 9 transport; the memfd
/// mapping is inherited across fork, so no fd passing is needed) with
/// frame serialization double-buffered through a StagePipe; each child
/// applies the deterministic fault schedule and its shard filter
/// locally, exactly like a sharded-backend worker thread. Checkpoints
/// travel back as encoded bodies (run/checkpoint.h) and fold into the
/// ONE aggregate sidecar (plain SCKP at W = 1, SCSH otherwise), so
/// kill-and-resume — including killing an individual worker process
/// mid-stream — is bit-identical at any W. Completed workers ship their
/// serialized RunReport back and the parent merges covers through the
/// same deterministic t-party protocol as the sharded backend.
///
/// A worker that dies without reporting (crash, or the
/// BackendSpec::fail_worker test knob) is detected by the reaper
/// (waitpid + ring close) and surfaces as "worker N exited without a
/// report"; the aggregate checkpoint it already contributed to resumes
/// the run.
class ForkedBackend : public Backend {
 public:
  const char* Name() const override { return "forked"; }
  RunReport Run(const RunConfig& config) override;
};

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_BACKENDS_FORKED_H_
