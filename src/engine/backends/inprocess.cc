#include "engine/backends/inprocess.h"

#include <ctime>
#include <memory>
#include <optional>
#include <utility>

#include "engine/backends/common.h"
#include "stream/schedule.h"

namespace setcover {
namespace engine {
namespace {

using internal::Clock;
using internal::FinalizeRun;
using internal::Seconds;
using internal::StampMeter;

/// The in-memory fast path: RunStream's exact loop (same batch
/// boundaries, same debug-build first-batch equivalence spot-check)
/// with the engine's counters layered on. Bit-identical to RunStream —
/// pinned by engine_equivalence_test.
void DriveInMemory(RunReport* report, StreamingSetCoverAlgorithm& algorithm,
                   const EdgeStream& stream, size_t batch_edges) {
  const auto start = Clock::now();
  algorithm.Begin(stream.meta);
  std::span<const Edge> edges(stream.edges);
  for (size_t offset = 0; offset < edges.size(); offset += batch_edges) {
    std::span<const Edge> batch =
        edges.subspan(offset, std::min(batch_edges, edges.size() - offset));
#ifndef NDEBUG
    if (offset == 0) {
      // Spot-check the batch/per-edge equivalence contract on the first
      // batch of every debug-build run; cheap relative to the stream.
      ProcessBatchCheckedForEquivalence(algorithm, stream.meta, batch);
      ++report->stages.batches;
      report->edges_delivered += batch.size();
      continue;
    }
#endif
    algorithm.ProcessEdgeBatch(batch);
    ++report->stages.batches;
    report->edges_delivered += batch.size();
  }
  report->stages.stream_seconds = Seconds(start);
  FinalizeRun(report, algorithm);
}

/// The file fast path: RunStreamFromFile's exact loop — chunk-aligned,
/// CRC-verified batches straight off the (possibly prefetching, possibly
/// zero-copy mmap) reader. Damage semantics match the supervised loop:
/// a checksum-failed chunk counts as one corrupt record and degrades
/// the run; early EOF degrades it.
void DriveFile(RunReport* report, StreamingSetCoverAlgorithm& algorithm,
               BatchEdgeReader& reader) {
  const auto start = Clock::now();
  algorithm.Begin(reader.Meta());
  for (std::span<const Edge> batch = reader.NextBatch(); !batch.empty();
       batch = reader.NextBatch()) {
    algorithm.ProcessEdgeBatch(batch);
    ++report->stages.batches;
    report->edges_delivered += batch.size();
  }
  report->stages.stream_seconds = Seconds(start);
  if (reader.ChecksumFailed()) {
    ++report->corrupt_records_skipped;
    ++report->faults_survived;
  }
  if (reader.Truncated() || reader.ChecksumFailed()) report->degraded = true;
  FinalizeRun(report, algorithm);
}

}  // namespace

RunReport InProcessBackend::Run(const RunConfig& config) {
  RunReport report;
  const auto total_start = Clock::now();
  const std::clock_t cpu_start = std::clock();
  const auto setup_start = Clock::now();

  // Resolve the algorithm: a caller-provided instance, or the
  // self-describing registry by name.
  std::unique_ptr<StreamingSetCoverAlgorithm> owned;
  StreamingSetCoverAlgorithm* algorithm = config.algorithm_instance;
  if (algorithm == nullptr) {
    owned = MakeAlgorithmByName(config.algorithm, config.options);
    if (owned == nullptr) {
      report.error = UnknownAlgorithmError(config.algorithm);
      return report;
    }
    algorithm = owned.get();
  }
  report.algorithm_name = algorithm->Name();

  if (!internal::ValidateSourceSpec(config.source, &report.error))
    return report;

  const ScheduleSpec& schedule = config.source.schedule;
  if (!schedule.Validate(&report.error)) return report;

  const bool checkpointing = !config.checkpoint.path.empty() &&
                             config.checkpoint.every > 0;
  if (schedule.window > 0 && (checkpointing || config.checkpoint.resume)) {
    report.error = "windowed schedules are not checkpointable (the window "
                   "contents are not position-addressable)";
    return report;
  }
  const bool supervised = config.faults.has_value() ||
                          config.stop_after != 0 ||
                          config.checkpoint.resume || checkpointing ||
                          config.batch_edges != kIngestBatchEdges ||
                          !schedule.Trivial();

  auto drive_options = [&] {
    DriveOptions options;
    options.checkpoint_path = config.checkpoint.path;
    options.checkpoint_every = config.checkpoint.every;
    options.resume = config.checkpoint.resume;
    options.backoff = config.backoff;
    options.sleeper = config.sleeper;
    options.stop_after = config.stop_after;
    options.batch_edges = config.batch_edges;
    return options;
  };

  if (!supervised) {
    // Fast paths: clean source, no mid-run observation points — the
    // legacy RunStream / RunStreamFromFile loops, verbatim.
    if (config.source.stream != nullptr) {
      report.stages.setup_seconds = Seconds(setup_start);
      DriveInMemory(&report, *algorithm, *config.source.stream,
                    config.batch_edges);
    } else {
      std::string error;
      auto reader = OpenBatchEdgeReader(config.source.path,
                                        config.source.read_options, &error);
      if (reader == nullptr) {
        report.error = error;
        return report;
      }
      report.stages.setup_seconds = Seconds(setup_start);
      DriveFile(&report, *algorithm, *reader);
    }
  } else {
    // Supervised path: assemble source -> schedule -> fault injector
    // -> Drive. The schedule sits under the injector so fault decisions
    // key on scheduled positions and the whole stack stays
    // deterministic (and, for pass schedules, checkpointable).
    std::unique_ptr<EdgeSource> file_source;
    std::unique_ptr<VectorEdgeSource> vector_source;
    EdgeSource* source = nullptr;
    if (config.source.stream != nullptr) {
      vector_source =
          std::make_unique<VectorEdgeSource>(*config.source.stream);
      source = vector_source.get();
    } else {
      std::string error;
      file_source = StreamFileSource::Open(config.source.path,
                                           config.source.read_options,
                                           &error);
      if (file_source == nullptr) {
        report.error = error;
        return report;
      }
      source = file_source.get();
    }
    std::optional<ScheduledSource> scheduled;
    if (!schedule.Trivial()) {
      scheduled.emplace(source, schedule);
      source = &*scheduled;
    }
    std::optional<FaultInjector> injector;
    if (config.faults.has_value()) {
      injector.emplace(source, *config.faults);
      source = &*injector;
    }
    const double setup_seconds = Seconds(setup_start);
    report = Drive(drive_options(), *algorithm, *source);
    report.stages.setup_seconds += setup_seconds;
  }

  // Validation stage (only meaningful for completed runs).
  if (config.validate != nullptr && report.completed) {
    const auto validate_start = Clock::now();
    report.validation = ValidateSolution(*config.validate, report.solution);
    report.validated = true;
    report.stages.validate_seconds = Seconds(validate_start);
  }

  report.stages.total_seconds = Seconds(total_start);
  report.stages.cpu_seconds =
      double(std::clock() - cpu_start) / double(CLOCKS_PER_SEC);
  return report;
}

}  // namespace engine
}  // namespace setcover
