#include "engine/backends/sharded.h"

#include <ctime>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "engine/backends/common.h"
#include "engine/backends/shard_common.h"
#include "engine/sharded.h"
#include "run/checkpoint.h"
#include "stream/edge_source.h"
#include "stream/fault_injector.h"
#include "stream/schedule.h"
#include "util/thread_pool.h"

namespace setcover {
namespace engine {
namespace {

using internal::AggregateCheckpointWriter;
using internal::CheckpointSink;
using internal::Clock;
using internal::FinalizeRun;
using internal::Seconds;
using internal::ShardFilterSource;
using internal::WithOwner;

/// In-memory fast path for one shard: walks the shared edge span (no
/// copy of the stream), compacts this shard's edges into a reusable
/// batch, and flushes through ProcessEdgeBatch at exactly the batch
/// boundaries DriveInMemory would use — at W = 1 every edge matches, so
/// the flush pattern (and therefore the run, including the debug-build
/// first-flush equivalence spot-check) is bit-identical to the
/// inprocess fast path.
template <typename Owner>
void DriveInMemoryShard(RunReport* report,
                        StreamingSetCoverAlgorithm& algorithm,
                        const EdgeStream& stream, size_t batch_edges,
                        uint32_t shard, Owner owner) {
  const auto start = Clock::now();
  algorithm.Begin(stream.meta);
  std::vector<Edge> batch;
  batch.reserve(batch_edges);
#ifndef NDEBUG
  bool first_flush = true;
#endif
  auto flush = [&] {
    if (batch.empty()) return;
#ifndef NDEBUG
    if (first_flush) {
      // Same debug-build spot-check as the inprocess fast path, so
      // meters (and therefore peak_words) agree at any W.
      first_flush = false;
      ProcessBatchCheckedForEquivalence(algorithm, stream.meta,
                                        std::span<const Edge>(batch));
      report->edges_delivered += batch.size();
      ++report->stages.batches;
      batch.clear();
      return;
    }
#endif
    algorithm.ProcessEdgeBatch(std::span<const Edge>(batch));
    report->edges_delivered += batch.size();
    ++report->stages.batches;
    batch.clear();
  };
  for (const Edge& e : stream.edges) {
    if (owner(e.set) != shard) continue;
    batch.push_back(e);
    if (batch.size() == batch_edges) flush();
  }
  flush();
  report->stages.stream_seconds = Seconds(start);
  FinalizeRun(report, algorithm);
}

/// File fast path for one shard: its own BatchEdgeReader cursor over
/// the same file — with mmap the shards share one physical mapping and
/// the page cache dedupes the reads. Only shard 0 *counts* a checksum
/// failure (every shard observes the same damaged chunk, and the
/// aggregate corrupt count must stay W-invariant); every shard that
/// saw it still degrades.
template <typename Owner>
void DriveFileShard(RunReport* report, StreamingSetCoverAlgorithm& algorithm,
                    BatchEdgeReader& reader, size_t batch_edges,
                    uint32_t shard, Owner owner) {
  const auto start = Clock::now();
  algorithm.Begin(reader.Meta());
  std::vector<Edge> compact;
  compact.reserve(batch_edges);
  auto flush = [&] {
    if (compact.empty()) return;
    algorithm.ProcessEdgeBatch(std::span<const Edge>(compact));
    report->edges_delivered += compact.size();
    ++report->stages.batches;
    compact.clear();
  };
  for (std::span<const Edge> batch = reader.NextBatch(); !batch.empty();
       batch = reader.NextBatch()) {
    for (const Edge& e : batch) {
      if (owner(e.set) != shard) continue;
      compact.push_back(e);
      if (compact.size() == batch_edges) flush();
    }
  }
  flush();
  report->stages.stream_seconds = Seconds(start);
  if (reader.ChecksumFailed() && shard == 0) {
    ++report->corrupt_records_skipped;
    ++report->faults_survived;
  }
  if (reader.Truncated() || reader.ChecksumFailed()) report->degraded = true;
  FinalizeRun(report, algorithm);
}

/// One shard's full pipeline, fast or supervised.
RunReport RunShard(const ShardedRunConfig& config, uint32_t shard,
                   const std::optional<Checkpoint>& resume_slot,
                   const CheckpointSink& sink, bool supervised,
                   bool checkpointing) {
  const RunConfig& base = config.base;
  RunReport report;

  AlgorithmOptions options = base.options;
  options.seed = base.options.seed + shard;
  std::unique_ptr<StreamingSetCoverAlgorithm> algorithm =
      MakeAlgorithmByName(base.algorithm, options);
  if (algorithm == nullptr) {
    report.error = UnknownAlgorithmError(base.algorithm);
    return report;
  }
  report.algorithm_name = algorithm->Name();

  if (!supervised) {
    if (base.source.stream != nullptr) {
      WithOwner(config.partitioner, config.shards, [&](auto owner) {
        DriveInMemoryShard(&report, *algorithm, *base.source.stream,
                           base.batch_edges, shard, owner);
      });
    } else {
      std::string error;
      auto reader = OpenBatchEdgeReader(base.source.path,
                                        base.source.read_options, &error);
      if (reader == nullptr) {
        report.error = error;
        return report;
      }
      WithOwner(config.partitioner, config.shards, [&](auto owner) {
        DriveFileShard(&report, *algorithm, *reader, base.batch_edges,
                       shard, owner);
      });
    }
    return report;
  }

  // Supervised: per-shard source -> schedule -> fault injector -> shard
  // filter -> Drive. The fault schedule is replicated per shard (pure
  // function of (seed, position)), so every shard sees the identical
  // damaged stream; the filter then surfaces only this shard's slice.
  // The schedule sits under the injector so fault decisions key on
  // scheduled positions, exactly like the inprocess supervised path.
  std::unique_ptr<StreamFileSource> file_source;
  std::unique_ptr<VectorEdgeSource> vector_source;
  EdgeSource* inner = nullptr;
  if (base.source.stream != nullptr) {
    vector_source = std::make_unique<VectorEdgeSource>(*base.source.stream);
    inner = vector_source.get();
  } else {
    std::string error;
    file_source = StreamFileSource::Open(base.source.path,
                                         base.source.read_options, &error);
    if (file_source == nullptr) {
      report.error = error;
      return report;
    }
    inner = file_source.get();
  }
  std::optional<ScheduledSource> scheduled;
  if (!base.source.schedule.Trivial()) {
    scheduled.emplace(inner, base.source.schedule);
    inner = &*scheduled;
  }
  std::optional<FaultInjector> injector;
  if (base.faults.has_value()) {
    injector.emplace(inner, *base.faults);
    inner = &*injector;
  }
  ShardFilterSource filtered(inner, shard, config.shards,
                             config.partitioner);

  DriveOptions drive;
  drive.checkpoint_every = checkpointing ? base.checkpoint.every : 0;
  if (checkpointing) drive.checkpoint_sink = sink;
  if (resume_slot.has_value()) drive.resume_from = &*resume_slot;
  drive.backoff = base.backoff;
  drive.sleeper = base.sleeper;
  drive.stop_after = base.stop_after;
  drive.batch_edges = base.batch_edges;
  return Drive(drive, *algorithm, filtered);
}

}  // namespace

RunReport ExecuteSharded(const ShardedRunConfig& config) {
  RunReport report;
  const auto total_start = Clock::now();
  const std::clock_t cpu_start = std::clock();
  const auto setup_start = Clock::now();

  const RunConfig& base = config.base;
  const uint32_t shards = config.shards;
  if (!internal::ValidateShardedBase(base, shards, &report.error)) {
    return report;
  }

  const bool checkpointing =
      !base.checkpoint.path.empty() && base.checkpoint.every > 0;
  const bool supervised = base.faults.has_value() || base.stop_after != 0 ||
                          base.checkpoint.resume || checkpointing ||
                          base.batch_edges != kIngestBatchEdges ||
                          !base.source.schedule.Trivial();

  // Resume slots are copied out before the shards launch so each shard
  // reads its slot without racing the sinks; the aggregate writer owns
  // the ONE sidecar (plain SCKP at W = 1, SCSH otherwise).
  std::vector<std::optional<Checkpoint>> resume_slots(shards);
  if (base.checkpoint.resume) {
    if (!internal::LoadResumeSlots(base.checkpoint.path, shards,
                                   config.partitioner.name, &resume_slots,
                                   &report.error)) {
      return report;
    }
  }
  std::optional<AggregateCheckpointWriter> writer;
  if (checkpointing) {
    writer.emplace(base.checkpoint.path, shards, config.partitioner.name,
                   resume_slots);
  }
  auto make_sink = [&](uint32_t shard) -> CheckpointSink {
    if (!checkpointing) return nullptr;
    return writer->SinkFor(shard);
  };
  report.stages.setup_seconds = Seconds(setup_start);

  // Fan out: one independent pipeline per shard on the deterministic
  // pool. Shards share nothing but the (read-only) source bytes and the
  // mutex-guarded aggregate checkpoint, so results are bit-identical at
  // any thread count.
  std::vector<RunReport> shard_reports(shards);
  {
    ThreadPool pool(config.threads == 0 ? shards : config.threads);
    pool.RunIndexed(shards, [&](size_t w) {
      shard_reports[w] =
          RunShard(config, uint32_t(w), resume_slots[w],
                   make_sink(uint32_t(w)), supervised, checkpointing);
    });
  }

  internal::AggregateShardReports(&report, shard_reports, shards,
                                  config.merge_threshold);

  if (base.validate != nullptr && report.completed) {
    const auto validate_start = Clock::now();
    report.validation = ValidateSolution(*base.validate, report.solution);
    report.validated = true;
    report.stages.validate_seconds = Seconds(validate_start);
  }

  report.stages.total_seconds = Seconds(total_start);
  report.stages.cpu_seconds =
      double(std::clock() - cpu_start) / double(CLOCKS_PER_SEC);
  return report;
}

RunReport ShardedBackend::Run(const RunConfig& config) {
  ShardedRunConfig sharded;
  sharded.base = config;
  sharded.base.shards = 0;
  sharded.shards = config.backend.workers != 0
                       ? config.backend.workers
                       : (config.shards > 1 ? config.shards : 1);
  sharded.partitioner = config.backend.partitioner;
  sharded.threads = config.backend.threads;
  sharded.merge_threshold = config.backend.merge_threshold;
  return ExecuteSharded(sharded);
}

}  // namespace engine
}  // namespace setcover
