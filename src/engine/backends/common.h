#ifndef SETCOVER_ENGINE_BACKENDS_COMMON_H_
#define SETCOVER_ENGINE_BACKENDS_COMMON_H_

#include <chrono>

#include "engine/engine.h"

namespace setcover {
namespace engine {
namespace internal {

/// Small helpers shared by every execution backend (and by the Drive
/// loop itself). Internal to src/engine/ — not API.

using Clock = std::chrono::steady_clock;

inline double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

inline uint64_t CountUncovered(const CoverSolution& solution) {
  uint64_t uncovered = 0;
  for (SetId s : solution.certificate)
    if (s == kNoSet) ++uncovered;
  return uncovered;
}

/// Records the algorithm's space accounting into the report — called on
/// every exit path so even killed or failed runs report their meter.
inline void StampMeter(RunReport* report,
                       const StreamingSetCoverAlgorithm& algorithm) {
  report->peak_words = algorithm.Meter().PeakWords();
  report->current_words = algorithm.Meter().CurrentWords();
  report->meter_breakdown = algorithm.Meter().BreakdownString();
}

/// Finalize + bookkeeping shared by every completing path.
inline void FinalizeRun(RunReport* report,
                        StreamingSetCoverAlgorithm& algorithm) {
  const auto start = Clock::now();
  report->solution = algorithm.Finalize();
  report->stages.finalize_seconds = Seconds(start);
  report->uncovered_elements = CountUncovered(report->solution);
  report->completed = true;
  StampMeter(report, algorithm);
}

/// The config-level source sanity check, shared verbatim so every
/// backend rejects a malformed SourceSpec with the same message.
/// Returns false with *error set when exactly-one-of is violated.
inline bool ValidateSourceSpec(const SourceSpec& source, std::string* error) {
  if ((source.stream != nullptr) == !source.path.empty()) {
    *error = source.stream == nullptr
                 ? "run config has no source (set SourceSpec::stream "
                   "or SourceSpec::path)"
                 : "run config sets both an in-memory stream and a "
                   "file path; pick one";
    return false;
  }
  return true;
}

}  // namespace internal
}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_BACKENDS_COMMON_H_
