#include "engine/backends/shard_common.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "comm/deterministic_protocol.h"
#include "comm/protocol.h"
#include "core/registry.h"
#include "engine/backends/common.h"
#include "util/math.h"

namespace setcover {
namespace engine {
namespace internal {

bool ValidateShardedBase(const RunConfig& base, uint32_t shards,
                         std::string* error) {
  if (shards == 0) {
    *error = "sharded run needs shards >= 1";
    return false;
  }
  if (base.algorithm_instance != nullptr) {
    *error =
        "sharded runs drive one algorithm instance per shard; pass a "
        "registry algorithm name instead of algorithm_instance";
    return false;
  }
  const AlgorithmInfo* info = FindAlgorithm(base.algorithm);
  if (info == nullptr) {
    *error = UnknownAlgorithmError(base.algorithm);
    return false;
  }
  if (!info->shardable) {
    *error = NotShardableError(base.algorithm);
    return false;
  }
  if (!ValidateSourceSpec(base.source, error)) return false;
  if (!base.source.schedule.Validate(error)) return false;
  const bool checkpointing =
      !base.checkpoint.path.empty() && base.checkpoint.every > 0;
  if (base.source.schedule.window > 0 &&
      (checkpointing || base.checkpoint.resume)) {
    *error = "windowed schedules are not checkpointable (the window "
             "contents are not position-addressable)";
    return false;
  }
  return true;
}

bool LoadResumeSlots(const std::string& path, uint32_t shards,
                     const std::string& partitioner_name,
                     std::vector<std::optional<Checkpoint>>* slots,
                     std::string* error) {
  slots->assign(shards, std::nullopt);
  if (shards == 1) {
    std::optional<Checkpoint> loaded = LoadCheckpoint(path, error);
    if (!loaded) return false;
    (*slots)[0] = std::move(*loaded);
    return true;
  }
  std::optional<ShardedCheckpoint> loaded =
      LoadShardedCheckpoint(path, error);
  if (!loaded) return false;
  if (loaded->shards != shards) {
    *error = "sharded checkpoint was written by a " +
             std::to_string(loaded->shards) + "-shard run, not " +
             std::to_string(shards) + " shards";
    return false;
  }
  if (loaded->partitioner != partitioner_name) {
    *error = "sharded checkpoint was partitioned by '" +
             loaded->partitioner + "', not '" + partitioner_name + "'";
    return false;
  }
  *slots = std::move(loaded->shard_states);
  return true;
}

AggregateCheckpointWriter::AggregateCheckpointWriter(
    std::string path, uint32_t shards, std::string partitioner_name,
    std::vector<std::optional<Checkpoint>> slots)
    : path_(std::move(path)) {
  aggregate_.shards = shards;
  aggregate_.partitioner = std::move(partitioner_name);
  aggregate_.shard_states = std::move(slots);
  aggregate_.shard_states.resize(shards);
}

bool AggregateCheckpointWriter::Store(uint32_t shard,
                                      const Checkpoint& checkpoint,
                                      std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (aggregate_.shards == 1) {
    // One-worker runs keep the plain single-run sidecar format so any
    // backend at W = 1 is byte-identical to the inprocess pipeline.
    return SaveCheckpoint(checkpoint, path_, error);
  }
  aggregate_.shard_states[shard] = checkpoint;
  return SaveShardedCheckpoint(aggregate_, path_, error);
}

CheckpointSink AggregateCheckpointWriter::SinkFor(uint32_t shard) {
  return [this, shard](const Checkpoint& checkpoint, std::string* error) {
    return Store(shard, checkpoint, error);
  };
}

CertificateMerge MergeCertificates(
    const std::vector<const CoverSolution*>& locals, uint32_t parties,
    uint32_t merge_threshold_override) {
  CertificateMerge merge;
  const uint32_t n = uint32_t(locals.empty() ? 0
                                             : locals[0]->certificate.size());
  // Each party's certified (set -> covered elements) groups become the
  // candidate sets of a t = W party instance — the partitioner makes
  // candidates party-disjoint.
  std::vector<std::vector<ElementId>> candidate_elems;
  std::vector<SetId> candidate_set;
  std::vector<uint32_t> candidate_owner;
  std::unordered_map<SetId, size_t> candidate_index;
  for (uint32_t w = 0; w < locals.size(); ++w) {
    const std::vector<SetId>& certificate = locals[w]->certificate;
    for (ElementId u = 0; u < certificate.size(); ++u) {
      const SetId s = certificate[u];
      if (s == kNoSet) continue;
      auto [it, inserted] =
          candidate_index.try_emplace(s, candidate_elems.size());
      if (inserted) {
        candidate_elems.emplace_back();
        candidate_set.push_back(s);
        candidate_owner.push_back(w);
      }
      candidate_elems[it->second].push_back(u);
    }
  }

  const uint32_t tau =
      merge_threshold_override != 0
          ? merge_threshold_override
          : std::max<uint32_t>(1, uint32_t(ISqrt(uint64_t(n) * parties)));
  merge.merge_threshold = tau;
  // §3's message: covered bitmap (n bits) + first-seen table R (n
  // words) + the threshold picks so far — each pick covers ≥ τ new
  // elements, so at most ⌈n/τ⌉ ever travel. That is the Õ(n) bound
  // every benchmarked instance is checked against.
  merge.message_words_bound =
      BitsToWords(n) + n + (tau > 0 ? (n + tau - 1) / tau : 0);

  if (candidate_elems.empty()) {
    merge.solution.cover.clear();
    merge.solution.certificate.assign(n, kNoSet);
    return merge;
  }
  SetCoverInstance merged =
      SetCoverInstance::FromSets(n, std::move(candidate_elems));
  DeterministicProtocolResult protocol =
      RunDeterministicProtocol(merged, candidate_owner, parties, tau);
  merge.max_message_words = protocol.max_message_words;
  merge.threshold_sets = protocol.threshold_sets;
  merge.patched_sets = protocol.patched_sets;
  // Candidate ids map 1:1 back to global set ids.
  merge.solution.cover.reserve(protocol.solution.cover.size());
  for (SetId candidate : protocol.solution.cover) {
    merge.solution.cover.push_back(candidate_set[candidate]);
  }
  merge.solution.certificate.assign(n, kNoSet);
  for (ElementId u = 0; u < n; ++u) {
    const SetId candidate = protocol.solution.certificate[u];
    if (candidate != kNoSet) {
      merge.solution.certificate[u] = candidate_set[candidate];
    }
  }
  return merge;
}

void AggregateShardReports(RunReport* report,
                           std::vector<RunReport>& shard_reports,
                           uint32_t shards, uint32_t merge_threshold) {
  if (shards == 1) {
    // Single-shard runs skip the merge entirely: shard 0's report *is*
    // the run, bit-identical to the inprocess pipeline on the same
    // config.
    const double setup_seconds = report->stages.setup_seconds;
    *report = std::move(shard_reports[0]);
    report->stages.setup_seconds += setup_seconds;
    report->sharded.shards = 1;
    report->sharded.shard_edges = {report->edges_delivered};
    report->sharded.shard_cover_sizes = {report->solution.cover.size()};
    report->sharded.shard_peak_words = {report->peak_words};
    report->sharded.shard_stream_seconds = {report->stages.stream_seconds};
    return;
  }

  RunReport::ShardStats& stats = report->sharded;
  stats.shards = shards;
  stats.shard_edges.resize(shards);
  stats.shard_cover_sizes.resize(shards);
  stats.shard_peak_words.resize(shards);
  stats.shard_stream_seconds.resize(shards);
  bool all_completed = true;
  for (uint32_t w = 0; w < shards; ++w) {
    const RunReport& shard = shard_reports[w];
    if (!shard.error.empty() && report->error.empty()) {
      report->error = "shard " + std::to_string(w) + ": " + shard.error;
    }
    all_completed = all_completed && shard.completed;
    report->edges_delivered += shard.edges_delivered;
    report->checkpoints_written += shard.checkpoints_written;
    report->transient_retries += shard.transient_retries;
    report->corrupt_records_skipped += shard.corrupt_records_skipped;
    report->faults_survived += shard.faults_survived;
    report->resumed = report->resumed || shard.resumed;
    report->resumed_at += shard.resumed_at;
    report->degraded = report->degraded || shard.degraded;
    // W pipelines run concurrently: the slowest shard is the stage's
    // wall-clock; batches and space add up (the run really holds W
    // working sets).
    report->stages.stream_seconds = std::max(report->stages.stream_seconds,
                                             shard.stages.stream_seconds);
    report->stages.finalize_seconds = std::max(
        report->stages.finalize_seconds, shard.stages.finalize_seconds);
    report->stages.batches += shard.stages.batches;
    report->peak_words += shard.peak_words;
    report->current_words += shard.current_words;
    stats.shard_edges[w] = shard.edges_delivered;
    stats.shard_cover_sizes[w] = shard.solution.cover.size();
    stats.shard_peak_words[w] = shard.peak_words;
    stats.shard_stream_seconds[w] = shard.stages.stream_seconds;
  }
  report->algorithm_name = shard_reports[0].algorithm_name;
  report->meter_breakdown = shard_reports[0].meter_breakdown;

  if (report->error.empty() && all_completed) {
    const auto merge_start = Clock::now();
    std::vector<const CoverSolution*> locals;
    locals.reserve(shards);
    for (uint32_t w = 0; w < shards; ++w)
      locals.push_back(&shard_reports[w].solution);
    CertificateMerge merge =
        MergeCertificates(locals, shards, merge_threshold);
    stats.merge_threshold = merge.merge_threshold;
    stats.max_message_words = merge.max_message_words;
    stats.message_words_bound = merge.message_words_bound;
    stats.threshold_sets = merge.threshold_sets;
    stats.patched_sets = merge.patched_sets;
    report->solution = std::move(merge.solution);
    report->uncovered_elements = CountUncovered(report->solution);
    report->completed = true;
    stats.merge_seconds = Seconds(merge_start);
  }
}

}  // namespace internal
}  // namespace engine
}  // namespace setcover
