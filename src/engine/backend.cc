#include "engine/backend.h"

#include <memory>

#include "engine/backends/forked.h"
#include "engine/backends/inprocess.h"
#include "engine/backends/sharded.h"

namespace setcover {
namespace engine {

ShardPartitioner SetModuloPartitioner() { return ShardPartitioner{}; }

const std::vector<BackendInfo>& BackendRegistry() {
  static const std::vector<BackendInfo>* registry =
      new std::vector<BackendInfo>{
          {"inprocess",
           "single pipeline on the calling thread (default)", false},
          {"sharded",
           "W set-partitioned worker pipelines on the thread pool, "
           "t-party merge",
           false},
          {"forked",
           "W forked worker processes fed over shm rings, t-party merge",
           true},
      };
  return *registry;
}

std::unique_ptr<Backend> MakeBackend(const std::string& name,
                                     std::string* error) {
  if (name.empty() || name == "inprocess") {
    return std::make_unique<InProcessBackend>();
  }
  if (name == "sharded") return std::make_unique<ShardedBackend>();
  if (name == "forked") return std::make_unique<ForkedBackend>();
  if (error != nullptr) {
    std::string known;
    for (const BackendInfo& info : BackendRegistry()) {
      if (!known.empty()) known += ", ";
      known += info.name;
    }
    *error = "unknown backend '" + name + "'; known backends: " + known;
  }
  return nullptr;
}

}  // namespace engine
}  // namespace setcover
