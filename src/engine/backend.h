#ifndef SETCOVER_ENGINE_BACKEND_H_
#define SETCOVER_ENGINE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/edge.h"

namespace setcover {
namespace engine {

struct RunConfig;
struct RunReport;

/// The execution-substrate seam of the engine: *where* a RunConfig
/// executes — in-process on the calling thread, fanned out over the
/// thread pool, or across forked worker processes — is a Backend, and
/// engine::Execute is a thin dispatcher over it. Callers describe the
/// run once (RunConfig) and pick a substrate (BackendSpec); covers,
/// certificates, and checkpoint bytes are bit-identical across
/// substrates at the same worker count, which is what lets one daemon,
/// one CLI, and one test suite serve every backend.
///
/// Registered backends:
///   inprocess — the single pipeline on the calling thread (fast paths
///               + supervised Drive); the default.
///   sharded   — W set-partitioned worker pipelines on the thread pool,
///               merged through the deterministic t-party protocol
///               (engine/sharded.h).
///   forked    — W forked worker *processes*, edges fed over shm rings,
///               per-shard SCSH checkpoint slots, same deterministic
///               merge (engine/backends/forked.h).

/// The partitioner seam: maps a set id to its owning shard in [0, W).
/// Must be a pure function — it runs in every shard's hot loop and its
/// verdicts must agree across shards and across resume. The name is
/// recorded in sharded checkpoints; resuming under a different
/// partitioner is refused.
struct ShardPartitioner {
  std::string name = "set-mod";
  /// nullptr means the built-in set-modulo rule (set_id % shards),
  /// which the hot paths inline (bit-mask for power-of-two W) instead
  /// of paying a std::function call per edge.
  std::function<uint32_t(SetId, uint32_t shards)> index;
};

/// The default partitioner, spelled out.
ShardPartitioner SetModuloPartitioner();

/// Which substrate a RunConfig executes on, and with what fan-out.
struct BackendSpec {
  /// Registered backend name; empty selects automatically: "sharded"
  /// when the run asks for more than one worker (workers > 1 or the
  /// legacy RunConfig::shards > 1), else "inprocess" — unless the
  /// SETCOVER_BACKEND environment variable forces an eligible run onto
  /// a named substrate (the ctest backend matrix hook).
  std::string name;

  /// Worker fan-out W for multi-worker backends; 0 falls back to
  /// RunConfig::shards (or 1). The inprocess backend ignores it.
  uint32_t workers = 0;

  /// Set-id partitioner shared by the sharded and forked backends.
  ShardPartitioner partitioner = SetModuloPartitioner();

  /// sharded: thread-pool width; 0 = one thread per shard.
  size_t threads = 0;

  /// Merge threshold τ override; 0 = the protocol's √(n·W) default.
  uint32_t merge_threshold = 0;

  /// Crash-injection knob of the forked backend (tests): worker
  /// `fail_worker` exits without reporting after `fail_worker_after`
  /// delivered edges, simulating a worker process dying mid-stream.
  /// kNoFailWorker disables.
  static constexpr uint32_t kNoFailWorker = ~uint32_t(0);
  uint32_t fail_worker = kNoFailWorker;
  uint64_t fail_worker_after = 0;
};

/// One execution substrate. Run() owns the whole lifecycle — validate
/// the config, drive the pipeline(s), merge, validate the solution,
/// stamp timings — and must honor the engine's equivalence contract:
/// identical covers/certificates/checkpoint bytes as the inprocess
/// pipeline at W = 1, and as each other at any W.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual const char* Name() const = 0;
  virtual RunReport Run(const RunConfig& config) = 0;
};

/// Registry row for the CLI `describe` backend column and diagnostics.
struct BackendInfo {
  std::string name;
  std::string summary;
  /// True when the backend runs worker pipelines outside the calling
  /// thread's process.
  bool multiprocess = false;
};

/// All registered backends, in dispatch-preference order.
const std::vector<BackendInfo>& BackendRegistry();

/// Instantiates a backend by registry name; nullptr (with *error
/// naming the known backends) for unknown names.
std::unique_ptr<Backend> MakeBackend(const std::string& name,
                                     std::string* error);

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_BACKEND_H_
