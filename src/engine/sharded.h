#ifndef SETCOVER_ENGINE_SHARDED_H_
#define SETCOVER_ENGINE_SHARDED_H_

#include <cstdint>
#include <string>

#include "engine/backend.h"
#include "engine/engine.h"
#include "stream/edge.h"

namespace setcover {
namespace engine {

/// The sharded execution mode: the horizontal-scaling path of the
/// engine (ROADMAP item "sharded multi-worker solver").
///
/// A W-way sharded run partitions the edge stream by set id into W
/// disjoint slices, drives one independent per-shard pipeline
///
///   source -> fault injector -> shard filter -> batcher -> algorithm
///
/// per slice on the deterministic thread pool (util/thread_pool.h),
/// then merges the W candidate covers with the deterministic t-party
/// protocol of paper §3 (comm/deterministic_protocol.h): each shard's
/// certified (set, elements) groups become the candidate sets of a
/// merge instance, threshold-greedy at τ = √(n·W) picks the heavy
/// candidates, and the final patching scan covers the rest — so the
/// merged cover inherits the protocol's 2√(n·W)·OPT guarantee over the
/// shards' local covers, and the largest inter-party message stays
/// within the Õ(n) bound (recorded in RunReport::sharded against
/// `message_words_bound`).
///
/// Sharding is observationally layered on the single-run engine:
///  * W = 1 is bit-identical to engine::Execute on the same config
///    (the filter passes everything, the merge is skipped);
///  * each shard sees the global StreamMetadata and the same damaged
///    stream a single-run FaultInjector would produce (the fault
///    schedule is a pure function of (seed, position), replicated per
///    shard), so a record dropped/duplicated/corrupted for one shard
///    is dropped/duplicated/corrupted for all — a corrupt record is
///    *counted* by exactly the shard owning its set id, keeping the
///    aggregate corrupt count W-invariant (transient faults are
///    retried by every shard, so that counter scales with W);
///  * checkpointing composes: the W per-shard cursors + states
///    aggregate into ONE sidecar file (run/checkpoint.h's "SCSH"
///    format) and kill-and-resume reproduces the unkilled run
///    byte-for-byte at any W, because each shard's execution is a pure
///    function of its slice suffix + decoded state;
///  * file sources stay zero-copy: every shard walks the same mmap'd
///    v3 mapping through its own reader cursor, and the page cache
///    dedupes the physical reads.
///
/// Shard w's algorithm is seeded with `base.options.seed + w`, so
/// shards draw independent coins while W = 1 reproduces the base seed
/// exactly.

/// One declarative sharded run, consumed by ExecuteSharded(). The
/// partitioner seam (ShardPartitioner / SetModuloPartitioner) lives in
/// engine/backend.h — it is shared with the forked-process backend.
struct ShardedRunConfig {
  /// The per-shard pipeline description: algorithm (a shardable
  /// registry name — `algorithm_instance` is rejected, each shard owns
  /// its instance), source, faults, checkpointing (the path names the
  /// ONE aggregate "SCSH" sidecar), stop_after (per shard), batching,
  /// and validation. `base.shards` is ignored here.
  RunConfig base;

  /// Worker count W; 1 runs the single pipeline with the merge skipped.
  uint32_t shards = 1;

  ShardPartitioner partitioner = SetModuloPartitioner();

  /// Thread-pool width; 0 = one thread per shard. Results are
  /// bit-identical at any value (shards are independent; the merge is
  /// sequential).
  size_t threads = 0;

  /// Merge threshold τ override; 0 = the protocol's √(n·W) default.
  uint32_t merge_threshold = 0;
};

/// Runs the W-shard fan-out + deterministic-protocol merge described by
/// `config` and returns the unified report: aggregate counters summed
/// across shards (peak words too — the run really holds W working sets),
/// `degraded` when any shard degraded, and RunReport::sharded carrying
/// the per-shard breakdown plus the merge's message-size accounting.
/// engine::Execute dispatches here when RunConfig::shards > 1.
RunReport ExecuteSharded(const ShardedRunConfig& config);

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_SHARDED_H_
