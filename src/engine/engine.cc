#include "engine/engine.h"

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/backend.h"
#include "engine/backends/common.h"
#include "run/checkpoint.h"
#include "stream/edge.h"

namespace setcover {
namespace engine {
namespace {

using internal::Clock;
using internal::FinalizeRun;
using internal::Seconds;
using internal::StampMeter;

/// Which backend a config executes on. An explicit BackendSpec::name
/// wins outright. Otherwise multi-worker configs (backend.workers > 1
/// or the legacy RunConfig::shards > 1) pick the sharded substrate,
/// and single-worker configs pick inprocess — unless SETCOVER_BACKEND
/// forces an *eligible* run onto a named substrate. Eligibility keeps
/// env forcing semantics-preserving: configs the multi-worker backends
/// would reject (caller-owned algorithm instances, non-shardable or
/// unknown algorithms, windowed schedules) silently stay inprocess, so
/// the ctest matrix can export one variable across whole suites.
std::string ResolveBackendName(const RunConfig& config) {
  if (!config.backend.name.empty()) return config.backend.name;
  if (config.backend.workers > 1 || config.shards > 1) return "sharded";
  const char* forced = std::getenv("SETCOVER_BACKEND");
  if (forced != nullptr && *forced != '\0' &&
      std::string_view(forced) != "inprocess" &&
      config.algorithm_instance == nullptr && config.shards <= 1 &&
      config.source.schedule.window == 0) {
    const AlgorithmInfo* info = FindAlgorithm(config.algorithm);
    if (info != nullptr && info->shardable) return forced;
  }
  return "inprocess";
}

}  // namespace

RunReport Drive(const DriveOptions& options,
                StreamingSetCoverAlgorithm& algorithm, EdgeSource& source) {
  RunReport report;
  report.algorithm_name = algorithm.Name();
  const StreamMetadata& meta = source.Meta();
  const auto setup_start = Clock::now();

  if (options.resume || options.resume_from != nullptr) {
    std::optional<Checkpoint> checkpoint;
    if (options.resume_from != nullptr) {
      checkpoint = *options.resume_from;
    } else {
      std::string error;
      checkpoint = LoadCheckpoint(options.checkpoint_path, &error);
      if (!checkpoint) {
        report.error = error;
        return report;
      }
    }
    if (checkpoint->algorithm_name != algorithm.Name()) {
      report.error = "checkpoint was written by algorithm '" +
                     checkpoint->algorithm_name + "', not '" +
                     algorithm.Name() + "'";
      return report;
    }
    if (checkpoint->meta.num_sets != meta.num_sets ||
        checkpoint->meta.num_elements != meta.num_elements ||
        checkpoint->meta.stream_length != meta.stream_length) {
      report.error = "checkpoint stream shape does not match the source";
      return report;
    }
    if (!algorithm.DecodeState(meta, checkpoint->state_words)) {
      report.error = "algorithm '" + algorithm.Name() +
                     "' could not decode the checkpointed state";
      return report;
    }
    if (!source.SeekTo(checkpoint->stream_position)) {
      report.error = "source cannot seek to checkpointed position";
      return report;
    }
    report.resumed = true;
    report.resumed_at = checkpoint->stream_position;
    report.edges_delivered = checkpoint->edges_delivered;
    report.transient_retries = checkpoint->transient_retries;
    report.corrupt_records_skipped = checkpoint->corrupt_skipped;
    report.faults_survived = checkpoint->faults_survived;
  } else {
    algorithm.Begin(meta);
  }
  report.stages.setup_seconds = Seconds(setup_start);

  const bool checkpointing =
      (!options.checkpoint_path.empty() || options.checkpoint_sink) &&
      options.checkpoint_every > 0;
  const size_t batch_edges =
      options.batch_edges > 0 ? options.batch_edges : kIngestBatchEdges;
  uint64_t delivered_this_run = 0;
  ExponentialBackoff retry(options.backoff);
  const auto stream_start = Clock::now();

  // Batched ingestion: edges accumulate with the same per-edge fault
  // handling as the original per-edge supervisor, and flush through
  // ProcessEdgeBatch. Batches are capped so that every observable
  // boundary of the per-edge loop — checkpoint positions
  // (edges_delivered % checkpoint_every == 0), the stop_after kill
  // point, and end-of-stream — falls exactly on a flush, so
  // checkpoints, reports and the algorithm's state are bit-identical
  // to the per-edge path.
  Edge edge;
  std::vector<Edge> batch;
  batch.reserve(batch_edges);
  auto flush = [&] {
    if (batch.empty()) return;
    algorithm.ProcessEdgeBatch(std::span<const Edge>(batch));
    report.edges_delivered += batch.size();
    delivered_this_run += batch.size();
    ++report.stages.batches;
    batch.clear();
  };
  for (;;) {
    if (options.stop_after != 0 &&
        delivered_this_run + batch.size() >= options.stop_after) {
      // Simulated kill: walk away mid-stream. The last checkpoint on
      // disk is exactly what a real crash would leave behind.
      flush();
      report.stages.stream_seconds = Seconds(stream_start);
      report.uncovered_elements = 0;
      StampMeter(&report, algorithm);
      return report;
    }
    const ReadStatus status = source.Next(&edge);
    if (status == ReadStatus::kTransient) {
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        report.degraded = true;  // retry budget exhausted mid-stream
        break;
      }
      ++report.transient_retries;
      ++report.faults_survived;
      if (options.sleeper) options.sleeper(delay_us);
      continue;
    }
    retry.Reset();
    if (status == ReadStatus::kEnd) break;
    if (status == ReadStatus::kCorrupt) {
      ++report.corrupt_records_skipped;
      ++report.faults_survived;
      continue;
    }

    batch.push_back(edge);
    const uint64_t logical_delivered = report.edges_delivered + batch.size();

    if (checkpointing &&
        logical_delivered % options.checkpoint_every == 0) {
      flush();
      if (!source.HasPendingReplay()) {
        StateEncoder encoder;
        algorithm.EncodeState(&encoder);
        Checkpoint checkpoint;
        checkpoint.algorithm_name = algorithm.Name();
        checkpoint.meta = meta;
        checkpoint.stream_position = source.Position();
        checkpoint.edges_delivered = report.edges_delivered;
        checkpoint.transient_retries = report.transient_retries;
        checkpoint.corrupt_skipped = report.corrupt_records_skipped;
        checkpoint.faults_survived = report.faults_survived;
        checkpoint.state_words = encoder.Words();
        std::string error;
        const bool saved =
            options.checkpoint_sink
                ? options.checkpoint_sink(checkpoint, &error)
                : SaveCheckpoint(checkpoint, options.checkpoint_path, &error);
        if (!saved) {
          report.error = error;
          StampMeter(&report, algorithm);
          return report;
        }
        ++report.checkpoints_written;
      }
    } else if (batch.size() >= batch_edges) {
      flush();
    }
  }
  flush();
  report.stages.stream_seconds = Seconds(stream_start);

  if (source.Truncated()) report.degraded = true;
  FinalizeRun(&report, algorithm);
  return report;
}

RunReport Execute(const RunConfig& config) {
  std::string error;
  std::unique_ptr<Backend> backend =
      MakeBackend(ResolveBackendName(config), &error);
  if (backend == nullptr) {
    RunReport report;
    report.error = error;
    return report;
  }
  return backend->Run(config);
}

}  // namespace engine

// RunStreamFromFile (declared in stream/stream_file.h) predates the
// engine and survives as API surface for examples/tests/benches; it is
// now a thin client of the engine's file fast path, which is its old
// loop verbatim.
std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    const StreamReadOptions& options, std::string* error) {
  engine::RunConfig config;
  config.algorithm_instance = &algorithm;
  config.source = engine::SourceSpec::File(path, options);
  engine::RunReport report = engine::Execute(config);
  if (!report.completed) {
    if (error != nullptr) *error = report.error;
    return std::nullopt;
  }
  return std::move(report.solution);
}

std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    std::string* error) {
  return RunStreamFromFile(algorithm, path, StreamReadOptions{}, error);
}

}  // namespace setcover
