#include "engine/engine.h"

#include <chrono>
#include <ctime>
#include <memory>
#include <utility>
#include <vector>

#include "engine/sharded.h"
#include "run/checkpoint.h"
#include "stream/edge.h"

namespace setcover {
namespace engine {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

uint64_t CountUncovered(const CoverSolution& solution) {
  uint64_t uncovered = 0;
  for (SetId s : solution.certificate)
    if (s == kNoSet) ++uncovered;
  return uncovered;
}

/// Records the algorithm's space accounting into the report — called on
/// every exit path so even killed or failed runs report their meter.
void StampMeter(RunReport* report,
                const StreamingSetCoverAlgorithm& algorithm) {
  report->peak_words = algorithm.Meter().PeakWords();
  report->current_words = algorithm.Meter().CurrentWords();
  report->meter_breakdown = algorithm.Meter().BreakdownString();
}

/// Finalize + bookkeeping shared by every completing path.
void FinalizeRun(RunReport* report, StreamingSetCoverAlgorithm& algorithm) {
  const auto start = Clock::now();
  report->solution = algorithm.Finalize();
  report->stages.finalize_seconds = Seconds(start);
  report->uncovered_elements = CountUncovered(report->solution);
  report->completed = true;
  StampMeter(report, algorithm);
}

/// The in-memory fast path: RunStream's exact loop (same batch
/// boundaries, same debug-build first-batch equivalence spot-check)
/// with the engine's counters layered on. Bit-identical to RunStream —
/// pinned by engine_equivalence_test.
void DriveInMemory(RunReport* report, StreamingSetCoverAlgorithm& algorithm,
                   const EdgeStream& stream, size_t batch_edges) {
  const auto start = Clock::now();
  algorithm.Begin(stream.meta);
  std::span<const Edge> edges(stream.edges);
  for (size_t offset = 0; offset < edges.size(); offset += batch_edges) {
    std::span<const Edge> batch =
        edges.subspan(offset, std::min(batch_edges, edges.size() - offset));
#ifndef NDEBUG
    if (offset == 0) {
      // Spot-check the batch/per-edge equivalence contract on the first
      // batch of every debug-build run; cheap relative to the stream.
      ProcessBatchCheckedForEquivalence(algorithm, stream.meta, batch);
      ++report->stages.batches;
      report->edges_delivered += batch.size();
      continue;
    }
#endif
    algorithm.ProcessEdgeBatch(batch);
    ++report->stages.batches;
    report->edges_delivered += batch.size();
  }
  report->stages.stream_seconds = Seconds(start);
  FinalizeRun(report, algorithm);
}

/// The file fast path: RunStreamFromFile's exact loop — chunk-aligned,
/// CRC-verified batches straight off the (possibly prefetching, possibly
/// zero-copy mmap) reader. Damage semantics match the supervised loop:
/// a checksum-failed chunk counts as one corrupt record and degrades
/// the run; early EOF degrades it.
void DriveFile(RunReport* report, StreamingSetCoverAlgorithm& algorithm,
               BatchEdgeReader& reader) {
  const auto start = Clock::now();
  algorithm.Begin(reader.Meta());
  for (std::span<const Edge> batch = reader.NextBatch(); !batch.empty();
       batch = reader.NextBatch()) {
    algorithm.ProcessEdgeBatch(batch);
    ++report->stages.batches;
    report->edges_delivered += batch.size();
  }
  report->stages.stream_seconds = Seconds(start);
  if (reader.ChecksumFailed()) {
    ++report->corrupt_records_skipped;
    ++report->faults_survived;
  }
  if (reader.Truncated() || reader.ChecksumFailed()) report->degraded = true;
  FinalizeRun(report, algorithm);
}

}  // namespace

RunReport Drive(const DriveOptions& options,
                StreamingSetCoverAlgorithm& algorithm, EdgeSource& source) {
  RunReport report;
  report.algorithm_name = algorithm.Name();
  const StreamMetadata& meta = source.Meta();
  const auto setup_start = Clock::now();

  if (options.resume || options.resume_from != nullptr) {
    std::optional<Checkpoint> checkpoint;
    if (options.resume_from != nullptr) {
      checkpoint = *options.resume_from;
    } else {
      std::string error;
      checkpoint = LoadCheckpoint(options.checkpoint_path, &error);
      if (!checkpoint) {
        report.error = error;
        return report;
      }
    }
    if (checkpoint->algorithm_name != algorithm.Name()) {
      report.error = "checkpoint was written by algorithm '" +
                     checkpoint->algorithm_name + "', not '" +
                     algorithm.Name() + "'";
      return report;
    }
    if (checkpoint->meta.num_sets != meta.num_sets ||
        checkpoint->meta.num_elements != meta.num_elements ||
        checkpoint->meta.stream_length != meta.stream_length) {
      report.error = "checkpoint stream shape does not match the source";
      return report;
    }
    if (!algorithm.DecodeState(meta, checkpoint->state_words)) {
      report.error = "algorithm '" + algorithm.Name() +
                     "' could not decode the checkpointed state";
      return report;
    }
    if (!source.SeekTo(checkpoint->stream_position)) {
      report.error = "source cannot seek to checkpointed position";
      return report;
    }
    report.resumed = true;
    report.resumed_at = checkpoint->stream_position;
    report.edges_delivered = checkpoint->edges_delivered;
    report.transient_retries = checkpoint->transient_retries;
    report.corrupt_records_skipped = checkpoint->corrupt_skipped;
    report.faults_survived = checkpoint->faults_survived;
  } else {
    algorithm.Begin(meta);
  }
  report.stages.setup_seconds = Seconds(setup_start);

  const bool checkpointing =
      (!options.checkpoint_path.empty() || options.checkpoint_sink) &&
      options.checkpoint_every > 0;
  const size_t batch_edges =
      options.batch_edges > 0 ? options.batch_edges : kIngestBatchEdges;
  uint64_t delivered_this_run = 0;
  ExponentialBackoff retry(options.backoff);
  const auto stream_start = Clock::now();

  // Batched ingestion: edges accumulate with the same per-edge fault
  // handling as the original per-edge supervisor, and flush through
  // ProcessEdgeBatch. Batches are capped so that every observable
  // boundary of the per-edge loop — checkpoint positions
  // (edges_delivered % checkpoint_every == 0), the stop_after kill
  // point, and end-of-stream — falls exactly on a flush, so
  // checkpoints, reports and the algorithm's state are bit-identical
  // to the per-edge path.
  Edge edge;
  std::vector<Edge> batch;
  batch.reserve(batch_edges);
  auto flush = [&] {
    if (batch.empty()) return;
    algorithm.ProcessEdgeBatch(std::span<const Edge>(batch));
    report.edges_delivered += batch.size();
    delivered_this_run += batch.size();
    ++report.stages.batches;
    batch.clear();
  };
  for (;;) {
    if (options.stop_after != 0 &&
        delivered_this_run + batch.size() >= options.stop_after) {
      // Simulated kill: walk away mid-stream. The last checkpoint on
      // disk is exactly what a real crash would leave behind.
      flush();
      report.stages.stream_seconds = Seconds(stream_start);
      report.uncovered_elements = 0;
      StampMeter(&report, algorithm);
      return report;
    }
    const ReadStatus status = source.Next(&edge);
    if (status == ReadStatus::kTransient) {
      uint64_t delay_us = 0;
      if (!retry.NextDelay(&delay_us)) {
        report.degraded = true;  // retry budget exhausted mid-stream
        break;
      }
      ++report.transient_retries;
      ++report.faults_survived;
      if (options.sleeper) options.sleeper(delay_us);
      continue;
    }
    retry.Reset();
    if (status == ReadStatus::kEnd) break;
    if (status == ReadStatus::kCorrupt) {
      ++report.corrupt_records_skipped;
      ++report.faults_survived;
      continue;
    }

    batch.push_back(edge);
    const uint64_t logical_delivered = report.edges_delivered + batch.size();

    if (checkpointing &&
        logical_delivered % options.checkpoint_every == 0) {
      flush();
      if (!source.HasPendingReplay()) {
        StateEncoder encoder;
        algorithm.EncodeState(&encoder);
        Checkpoint checkpoint;
        checkpoint.algorithm_name = algorithm.Name();
        checkpoint.meta = meta;
        checkpoint.stream_position = source.Position();
        checkpoint.edges_delivered = report.edges_delivered;
        checkpoint.transient_retries = report.transient_retries;
        checkpoint.corrupt_skipped = report.corrupt_records_skipped;
        checkpoint.faults_survived = report.faults_survived;
        checkpoint.state_words = encoder.Words();
        std::string error;
        const bool saved =
            options.checkpoint_sink
                ? options.checkpoint_sink(checkpoint, &error)
                : SaveCheckpoint(checkpoint, options.checkpoint_path, &error);
        if (!saved) {
          report.error = error;
          StampMeter(&report, algorithm);
          return report;
        }
        ++report.checkpoints_written;
      }
    } else if (batch.size() >= batch_edges) {
      flush();
    }
  }
  flush();
  report.stages.stream_seconds = Seconds(stream_start);

  if (source.Truncated()) report.degraded = true;
  FinalizeRun(&report, algorithm);
  return report;
}

RunReport Execute(const RunConfig& config) {
  if (config.shards > 1) {
    // First-class sharded path: W set-modulo shards merged through the
    // deterministic protocol (engine/sharded.h).
    ShardedRunConfig sharded;
    sharded.base = config;
    sharded.base.shards = 0;
    sharded.shards = config.shards;
    return ExecuteSharded(sharded);
  }

  RunReport report;
  const auto total_start = Clock::now();
  const std::clock_t cpu_start = std::clock();
  const auto setup_start = Clock::now();

  // Resolve the algorithm: a caller-provided instance, or the
  // self-describing registry by name.
  std::unique_ptr<StreamingSetCoverAlgorithm> owned;
  StreamingSetCoverAlgorithm* algorithm = config.algorithm_instance;
  if (algorithm == nullptr) {
    owned = MakeAlgorithmByName(config.algorithm, config.options);
    if (owned == nullptr) {
      report.error = UnknownAlgorithmError(config.algorithm);
      return report;
    }
    algorithm = owned.get();
  }
  report.algorithm_name = algorithm->Name();

  if ((config.source.stream != nullptr) == !config.source.path.empty()) {
    report.error = config.source.stream == nullptr
                       ? "run config has no source (set SourceSpec::stream "
                         "or SourceSpec::path)"
                       : "run config sets both an in-memory stream and a "
                         "file path; pick one";
    return report;
  }

  const bool checkpointing = !config.checkpoint.path.empty() &&
                             config.checkpoint.every > 0;
  const bool supervised = config.faults.has_value() ||
                          config.stop_after != 0 ||
                          config.checkpoint.resume || checkpointing ||
                          config.batch_edges != kIngestBatchEdges;

  auto drive_options = [&] {
    DriveOptions options;
    options.checkpoint_path = config.checkpoint.path;
    options.checkpoint_every = config.checkpoint.every;
    options.resume = config.checkpoint.resume;
    options.backoff = config.backoff;
    options.sleeper = config.sleeper;
    options.stop_after = config.stop_after;
    options.batch_edges = config.batch_edges;
    return options;
  };

  if (!supervised) {
    // Fast paths: clean source, no mid-run observation points — the
    // legacy RunStream / RunStreamFromFile loops, verbatim.
    if (config.source.stream != nullptr) {
      report.stages.setup_seconds = Seconds(setup_start);
      DriveInMemory(&report, *algorithm, *config.source.stream,
                    config.batch_edges);
    } else {
      std::string error;
      auto reader = OpenBatchEdgeReader(config.source.path,
                                        config.source.read_options, &error);
      if (reader == nullptr) {
        report.error = error;
        return report;
      }
      report.stages.setup_seconds = Seconds(setup_start);
      DriveFile(&report, *algorithm, *reader);
    }
  } else {
    // Supervised path: assemble source -> fault injector -> Drive.
    std::unique_ptr<EdgeSource> file_source;
    std::unique_ptr<VectorEdgeSource> vector_source;
    EdgeSource* source = nullptr;
    if (config.source.stream != nullptr) {
      vector_source =
          std::make_unique<VectorEdgeSource>(*config.source.stream);
      source = vector_source.get();
    } else {
      std::string error;
      file_source = StreamFileSource::Open(config.source.path,
                                           config.source.read_options,
                                           &error);
      if (file_source == nullptr) {
        report.error = error;
        return report;
      }
      source = file_source.get();
    }
    std::optional<FaultInjector> injector;
    if (config.faults.has_value()) {
      injector.emplace(source, *config.faults);
      source = &*injector;
    }
    const double setup_seconds = Seconds(setup_start);
    report = Drive(drive_options(), *algorithm, *source);
    report.stages.setup_seconds += setup_seconds;
  }

  // Validation stage (only meaningful for completed runs).
  if (config.validate != nullptr && report.completed) {
    const auto validate_start = Clock::now();
    report.validation = ValidateSolution(*config.validate, report.solution);
    report.validated = true;
    report.stages.validate_seconds = Seconds(validate_start);
  }

  report.stages.total_seconds = Seconds(total_start);
  report.stages.cpu_seconds =
      double(std::clock() - cpu_start) / double(CLOCKS_PER_SEC);
  return report;
}

}  // namespace engine

// RunStreamFromFile (declared in stream/stream_file.h) predates the
// engine and survives as API surface for examples/tests/benches; it is
// now a thin client of the engine's file fast path, which is its old
// loop verbatim.
std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    const StreamReadOptions& options, std::string* error) {
  engine::RunConfig config;
  config.algorithm_instance = &algorithm;
  config.source = engine::SourceSpec::File(path, options);
  engine::RunReport report = engine::Execute(config);
  if (!report.completed) {
    if (error != nullptr) *error = report.error;
    return std::nullopt;
  }
  return std::move(report.solution);
}

std::optional<CoverSolution> RunStreamFromFile(
    StreamingSetCoverAlgorithm& algorithm, const std::string& path,
    std::string* error) {
  return RunStreamFromFile(algorithm, path, StreamReadOptions{}, error);
}

}  // namespace setcover
