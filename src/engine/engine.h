#ifndef SETCOVER_ENGINE_ENGINE_H_
#define SETCOVER_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/streaming_algorithm.h"
#include "engine/backend.h"
#include "instance/validator.h"
#include "run/checkpoint.h"
#include "stream/edge_source.h"
#include "stream/fault_injector.h"
#include "stream/schedule.h"
#include "stream/stream_file.h"
#include "util/backoff.h"

namespace setcover {
namespace engine {

/// The execution engine: every way this repository drives an edge
/// stream through a streaming algorithm goes through here. A run is
/// described declaratively by a RunConfig — algorithm, source, fault
/// injection, checkpointing, batching, validation — and Execute()
/// assembles the pipeline
///
///   source -> fault injector -> batcher -> algorithm -> finalize
///          -> validate
///
/// returning one unified RunReport. RunSupervisor, BestOfRuns, the
/// bench harnesses, RunStreamFromFile, and the CLI are all thin clients
/// of this seam (docs/architecture.md has the layer diagram); the only
/// drive loop outside src/engine/ is the header-inline RunStream in
/// core/streaming_algorithm.h, kept as the reference primitive that
/// tests/engine_equivalence_test.cc pins the engine against.
///
/// Equivalence contract: for the same (algorithm, seed, edges), every
/// engine path produces bit-identical covers, certificates, meter
/// readings, and checkpoint bytes to the legacy RunStream /
/// RunSupervisor / RunStreamFromFile loops it replaced — enforced by
/// tests/engine_equivalence_test.cc for every registered algorithm.

/// Where a run's edges come from. Exactly one of `stream` (an in-memory
/// materialized stream) or `path` (a binary stream file, format v1/v2/
/// v3 auto-detected) must be set; `read_options` tunes the file
/// backends (mmap on/off, background prefetch decoding on/off).
struct SourceSpec {
  const EdgeStream* stream = nullptr;
  std::string path;
  StreamReadOptions read_options;

  /// Stream schedule layered over the raw source: k repeated passes
  /// (multi-pass algorithms), or a sliding-window replay feed
  /// (duplicate-heavy arrival simulation). The default is the trivial
  /// one-pass schedule. Non-trivial schedules run supervised; windowed
  /// schedules are not checkpointable. See stream/schedule.h.
  ScheduleSpec schedule;

  static SourceSpec InMemory(const EdgeStream& stream) {
    SourceSpec spec;
    spec.stream = &stream;
    return spec;
  }
  static SourceSpec File(std::string file_path,
                         StreamReadOptions options = {}) {
    SourceSpec spec;
    spec.path = std::move(file_path);
    spec.read_options = options;
    return spec;
  }
};

/// Crash tolerance for one run. `path` names the sidecar checkpoint
/// file; a checkpoint is written every `every` delivered edges (at
/// record boundaries only). With `resume`, the run restores from `path`
/// instead of starting fresh — the checkpoint must load, CRC-verify,
/// match the algorithm and stream shape, and decode; anything less is a
/// fatal error, never a silent restart.
struct CheckpointSpec {
  std::string path;
  uint64_t every = 0;
  bool resume = false;
};

/// Built-in observability: wall-clock per pipeline stage, process CPU
/// for the whole run, and how many batches the batcher flushed. Stage
/// boundaries are coarse on purpose — per-edge timing would perturb the
/// hot loop the engine exists to keep fast.
struct StageStats {
  double setup_seconds = 0.0;     // source open + algorithm resolve/resume
  double stream_seconds = 0.0;    // source -> batcher -> algorithm loop
  double finalize_seconds = 0.0;  // Finalize(): cover + certificate
  double validate_seconds = 0.0;  // certificate validation (when enabled)
  double total_seconds = 0.0;     // Execute() entry to exit
  double cpu_seconds = 0.0;       // process CPU consumed during the run
  uint64_t batches = 0;           // ProcessEdgeBatch calls issued
};

/// Everything a caller learns from an engine run — a superset of the
/// old run/run_supervisor.h report (same field names, so supervised-run
/// clients read it unchanged) extended with per-stage observability,
/// the resolved algorithm identity, meter totals, and the validation
/// verdict.
struct RunReport {
  /// Valid only when `completed`.
  CoverSolution solution;

  /// The run reached Finalize(). False after a simulated kill
  /// (stop_after) or a fatal error (see `error`).
  bool completed = false;

  /// This run restored state from a checkpoint, at this position.
  bool resumed = false;
  uint64_t resumed_at = 0;

  /// Totals across the whole logical run (carried over a resume).
  uint64_t edges_delivered = 0;
  uint64_t checkpoints_written = 0;
  uint64_t transient_retries = 0;
  uint64_t corrupt_records_skipped = 0;
  uint64_t faults_survived = 0;

  /// The run could not consume the full stream (retry budget exhausted
  /// or truncated input) and the cover may be partial; the certificate
  /// still certifies exactly which elements are covered.
  bool degraded = false;
  uint64_t uncovered_elements = 0;

  /// Non-empty on fatal failure (unknown algorithm, unreadable source,
  /// unreadable/corrupt/mismatched checkpoint, undecodable state,
  /// checkpoint write failure).
  std::string error;

  /// Name() of the algorithm that ran (empty when resolution failed).
  std::string algorithm_name;

  /// Space accounting at the end of the run, from the algorithm's
  /// MemoryMeter.
  size_t peak_words = 0;
  size_t current_words = 0;
  std::string meter_breakdown;

  /// Per-stage counters and timings.
  StageStats stages;

  /// Sharded-mode accounting (ExecuteSharded / shards > 1); shards == 0
  /// means the run was unsharded and the struct is untouched.
  struct ShardStats {
    uint32_t shards = 0;

    /// Threshold τ the merge ran threshold-greedy at (√(n·W) unless
    /// overridden).
    uint32_t merge_threshold = 0;

    /// Largest per-party message of the merge protocol, in words,
    /// against the Õ(n) bound it must stay under (paper §3: coverage
    /// bitmap + first-seen table + threshold picks, where each pick
    /// covers ≥ τ new elements so at most ⌈n/τ⌉ fit in one message).
    uint64_t max_message_words = 0;
    uint64_t message_words_bound = 0;

    /// Merge outcome split: candidate sets taken by threshold-greedy
    /// vs. added by the final patching scan.
    uint64_t threshold_sets = 0;
    uint64_t patched_sets = 0;

    /// Wall-clock of the merge stage alone.
    double merge_seconds = 0.0;

    /// Per-shard observability, indexed by shard (size == shards).
    std::vector<uint64_t> shard_edges;
    std::vector<uint64_t> shard_cover_sizes;
    std::vector<size_t> shard_peak_words;
    std::vector<double> shard_stream_seconds;
  };
  ShardStats sharded;

  /// Certificate validation verdict; meaningful only when `validated`
  /// (RunConfig::validate was set and the run completed).
  bool validated = false;
  ValidationResult validation;
};

/// Knobs of the supervised drive loop (the old SupervisorOptions, now
/// owned by the engine; run/run_supervisor.h aliases this type).
struct DriveOptions {
  /// Sidecar checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;

  /// Write a checkpoint every this many delivered edges (at record
  /// boundaries only — never while the source holds pending replay
  /// state). 0 disables periodic checkpoints even with a path set.
  uint64_t checkpoint_every = 0;

  /// Resume from `checkpoint_path` instead of starting fresh.
  bool resume = false;

  /// Resume from this already-loaded checkpoint instead of reading
  /// `checkpoint_path` (which may then be empty). The sharded runner
  /// uses this to hand each shard its slot out of the aggregate "SCSH"
  /// file. Not owned; must outlive the call. Implies `resume`.
  const Checkpoint* resume_from = nullptr;

  /// When set, replaces SaveCheckpoint as the destination of periodic
  /// checkpoints — the sharded runner installs a sink that folds the
  /// shard's snapshot into the aggregate file. Return false (with
  /// *error) to fail the run like a checkpoint write failure.
  std::function<bool(const Checkpoint&, std::string*)> checkpoint_sink;

  /// Retry budget for transient read faults.
  BackoffPolicy backoff;

  /// Called with each backoff delay in microseconds. Defaults to not
  /// sleeping, which keeps tests and simulations instant; the CLI
  /// installs a real sleep.
  std::function<void(uint64_t)> sleeper;

  /// Simulated kill switch: stop (without finalizing) once this many
  /// edges have been delivered this run. 0 disables.
  uint64_t stop_after = 0;

  /// Edges per ProcessEdgeBatch flush. Checkpoint positions, the
  /// stop_after kill point, and end-of-stream always fall exactly on a
  /// flush, so reports and algorithm state are bit-identical at any
  /// batch size (the batch/per-edge contract of ProcessEdgeBatch).
  size_t batch_edges = kIngestBatchEdges;
};

/// Low-level entry point: drives `algorithm` over a caller-assembled
/// `source` to completion under full supervision — periodic CRC'd
/// checkpoints, crash resume with bit-identical continuation, bounded
/// retries on transient faults, skip-and-count on corrupt records, and
/// graceful degradation to a certified partial cover when the stream
/// cannot be fully consumed. RunSupervisor::Run is an alias for this.
RunReport Drive(const DriveOptions& options,
                StreamingSetCoverAlgorithm& algorithm, EdgeSource& source);

/// One declarative run description, consumed by Execute().
struct RunConfig {
  /// Algorithm to run, by registry name. Ignored when
  /// `algorithm_instance` is set. Unknown names fail with the
  /// registry's unknown-algorithm diagnostic (names + suggestion).
  std::string algorithm;
  AlgorithmOptions options;

  /// Pre-built algorithm to drive instead of a registry name — for
  /// callers that need non-registry parameterizations (bench rows) or
  /// want to inspect the object afterwards. Not owned; must outlive the
  /// call.
  StreamingSetCoverAlgorithm* algorithm_instance = nullptr;

  /// Where the edges come from.
  SourceSpec source;

  /// Deterministic stream damage layered over the source (transient /
  /// duplicate / drop / corrupt, a pure function of (seed, position)).
  std::optional<FaultSchedule> faults;

  /// Checkpoint/resume behavior.
  CheckpointSpec checkpoint;

  /// Simulated kill switch (see DriveOptions::stop_after).
  uint64_t stop_after = 0;

  /// Retry/sleep policy for transient source faults.
  BackoffPolicy backoff;
  std::function<void(uint64_t)> sleeper;

  /// Edges per batcher flush (see DriveOptions::batch_edges).
  size_t batch_edges = kIngestBatchEdges;

  /// When set, the completed solution is validated against this
  /// instance (legal cover + legal certificate) and the verdict lands
  /// in RunReport::validation.
  const SetCoverInstance* validate = nullptr;

  /// Shard fan-out: 0 or 1 runs the single pipeline above; W > 1
  /// dispatches to the sharded backend (engine/sharded.h) with W
  /// set-modulo shards — W worker pipelines merged through the
  /// deterministic t-party protocol. Requires a shardable registry
  /// `algorithm` name (not `algorithm_instance`). Kept for
  /// compatibility; `backend.workers` is the spelled-out form.
  uint32_t shards = 0;

  /// Which execution substrate runs this config (engine/backend.h).
  /// An empty `backend.name` auto-selects: sharded when the run asks
  /// for more than one worker, inprocess otherwise — unless the
  /// SETCOVER_BACKEND environment variable forces an eligible run onto
  /// a named substrate (the ctest backend-matrix hook).
  BackendSpec backend;
};

/// Assembles the pipeline described by `config`, runs it, and returns
/// the unified report. Unsupervised configurations (no faults, no
/// checkpointing, no kill switch, default batch size) take a zero-copy
/// fast path — span-sliced batches for in-memory streams, chunk-aligned
/// reader batches for files — that is bit-identical to the supervised
/// loop; supervised configurations run under Drive().
RunReport Execute(const RunConfig& config);

}  // namespace engine
}  // namespace setcover

#endif  // SETCOVER_ENGINE_ENGINE_H_
