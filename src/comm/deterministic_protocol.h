#ifndef SETCOVER_COMM_DETERMINISTIC_PROTOCOL_H_
#define SETCOVER_COMM_DETERMINISTIC_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "instance/instance.h"

namespace setcover {

/// Result of the deterministic t-party protocol of §3's remark.
struct DeterministicProtocolResult {
  CoverSolution solution;
  /// Largest message forwarded between parties, in 64-bit words (the
  /// paper: Õ(n)).
  size_t max_message_words = 0;
  /// Sets added by the threshold-greedy rule (≤ √(n·t)).
  size_t threshold_sets = 0;
  /// Sets added by the final patching (≤ OPT·√(n·t)).
  size_t patched_sets = 0;
};

/// The deterministic t-party one-way protocol with approximation factor
/// 2√(n·t) and maximum message length Õ(n) whose existence the paper
/// invokes ("omitted due to space restrictions") to justify needing
/// t = Ω(α²/n) parties in the Theorem 2 lower bound.
///
/// Construction: the input sets are distributed over t parties
/// (`set_owner[s]` in [0, t)). Each party, upon receiving the covered
/// bitmap, the partial solution and the first-seen patch table R(·),
/// repeatedly adds own sets covering at least τ = √(n·t) yet-uncovered
/// elements, updates the bitmap/patch table, and forwards them. The
/// last party patches every remaining uncovered element u with R(u).
///
///  * threshold adds ≤ n/τ per party → ≤ t·n/τ = √(n·t) sets in total;
///  * when an optimal set's party runs, at most τ of its elements stay
///    uncovered afterwards, so patching adds ≤ OPT·τ sets;
///  * hence |cover| ≤ √(n·t)·(OPT + 1) ≤ 2√(n·t)·OPT;
///  * message = bitmap (n bits) + R (n words) + solution ids = Õ(n).
///
/// `threshold` = 0 uses τ = √(n·t).
DeterministicProtocolResult RunDeterministicProtocol(
    const SetCoverInstance& instance, const std::vector<uint32_t>& set_owner,
    uint32_t num_parties, uint32_t threshold = 0);

}  // namespace setcover

#endif  // SETCOVER_COMM_DETERMINISTIC_PROTOCOL_H_
