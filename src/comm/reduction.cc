#include "comm/reduction.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "stream/edge.h"

namespace setcover {
namespace {

// Party-major prefix stream: party p contributes the partial sets
// T_b^p for every b in S_p, set-by-set (an adversarial order).
struct Prefix {
  std::vector<Edge> edges;
  std::vector<size_t> boundary_positions;  // after party 0 .. t-2
};

Prefix BuildPrefix(const Lemma1Family& family,
                   const DisjointnessInstance& disjointness) {
  Prefix prefix;
  const uint32_t t = family.t();
  for (uint32_t p = 0; p < t; ++p) {
    for (uint32_t b : disjointness.party_sets[p]) {
      // Party p streams its part of set T_b under the *shared* set id b:
      // in the uniquely-intersecting case the common set assembles to
      // full size √(n·t) across all parties — the edge-arrival crux.
      for (ElementId u : family.Part(b, p)) {
        prefix.edges.push_back({b, u});
      }
    }
    if (p + 1 < t) prefix.boundary_positions.push_back(prefix.edges.size());
  }
  return prefix;
}

}  // namespace

ReductionResult RunTheorem2Reduction(
    const Lemma1Family& family, const DisjointnessInstance& disjointness,
    const AlgorithmFactory& factory, uint64_t seed,
    const std::vector<uint32_t>& fork_indices) {
  const uint32_t t = family.t();
  const uint32_t m = family.m();
  const uint32_t n = family.n();
  const uint32_t s = family.SetSize();

  Prefix prefix = BuildPrefix(family, disjointness);
  const size_t complement_size = n - s;
  StreamMetadata meta;
  meta.num_sets = m + 1;  // the family's sets + the complement set
  meta.num_elements = n;
  meta.stream_length = prefix.edges.size() + complement_size;

  ReductionResult result;

  // Pass over the shared prefix once to measure the forwarded state at
  // every party boundary.
  {
    auto algorithm = factory(seed);
    algorithm->Begin(meta);
    size_t next_boundary = 0;
    for (size_t pos = 0; pos < prefix.edges.size(); ++pos) {
      algorithm->ProcessEdge(prefix.edges[pos]);
      if (next_boundary < prefix.boundary_positions.size() &&
          pos + 1 == prefix.boundary_positions[next_boundary]) {
        result.boundary_state_words.push_back(algorithm->StateWords());
        ++next_boundary;
      }
    }
  }
  for (size_t words : result.boundary_state_words) {
    result.max_boundary_state_words =
        std::max(result.max_boundary_state_words, words);
  }

  // Forked parallel runs: run j continues the (deterministically
  // replayed) execution on the complement set [n] \ T_j.
  std::vector<uint32_t> forks = fork_indices;
  if (forks.empty()) {
    forks.resize(m);
    std::iota(forks.begin(), forks.end(), 0);
  }

  result.min_estimate = std::numeric_limits<size_t>::max();
  const SetId complement_id = m;
  for (size_t f = 0; f < forks.size(); ++f) {
    const uint32_t j = forks[f];
    auto algorithm = factory(seed);
    algorithm->Begin(meta);
    for (const Edge& e : prefix.edges) algorithm->ProcessEdge(e);
    for (ElementId u : family.Complement(j)) {
      algorithm->ProcessEdge({complement_id, u});
    }
    CoverSolution solution = algorithm->Finalize();
    // Cover-size estimate: the cover size when everything is covered,
    // else "no finite cover" (elements absent from run j's instance).
    bool complete = std::all_of(
        solution.certificate.begin(), solution.certificate.end(),
        [](SetId w) { return w != kNoSet; });
    size_t estimate = complete ? solution.cover.size()
                               : std::numeric_limits<size_t>::max();
    if (estimate < result.min_estimate) {
      result.min_estimate = estimate;
      result.argmin_fork = static_cast<uint32_t>(f);
    }
  }

  // Disjoint-case OPT lower bound: the s - s/t elements of T_j outside
  // the (at most one) present part must be covered by sets whose
  // intersection with T_j is at most the family's worst cross
  // intersection.
  const uint32_t cross = std::max<uint32_t>(1, family.MaxCrossIntersection());
  result.disjoint_case_opt_lower_bound =
      std::max<size_t>(2, (s - family.PartSize()) / cross);
  return result;
}

ReductionResult RunTheorem2ReductionMessagePassing(
    const Lemma1Family& family, const DisjointnessInstance& disjointness,
    const AlgorithmFactory& factory, uint64_t seed,
    const std::vector<uint32_t>& fork_indices) {
  const uint32_t t = family.t();
  const uint32_t m = family.m();
  const uint32_t n = family.n();
  const uint32_t s = family.SetSize();

  Prefix prefix = BuildPrefix(family, disjointness);
  StreamMetadata meta;
  meta.num_sets = m + 1;
  meta.num_elements = n;
  meta.stream_length = prefix.edges.size() + (n - s);

  ReductionResult result;

  // Parties in sequence, each reconstructed from the previous one's
  // literal message.
  std::vector<uint64_t> message;
  size_t begin = 0;
  for (uint32_t p = 0; p < t; ++p) {
    size_t end = p + 1 < t ? prefix.boundary_positions[p]
                           : prefix.edges.size();
    auto algorithm = factory(seed);
    if (p == 0) {
      algorithm->Begin(meta);
    } else if (!algorithm->DecodeState(meta, message)) {
      result.message_passing_ok = false;
      return result;
    }
    for (size_t pos = begin; pos < end; ++pos) {
      algorithm->ProcessEdge(prefix.edges[pos]);
    }
    StateEncoder encoder;
    algorithm->EncodeState(&encoder);
    message = encoder.Words();
    if (p + 1 < t) {
      result.boundary_state_words.push_back(message.size());
      result.max_boundary_state_words =
          std::max(result.max_boundary_state_words, message.size());
    }
    begin = end;
  }

  // Forked parallel runs, each resumed from the final message.
  std::vector<uint32_t> forks = fork_indices;
  if (forks.empty()) {
    forks.resize(m);
    std::iota(forks.begin(), forks.end(), 0);
  }
  result.min_estimate = std::numeric_limits<size_t>::max();
  const SetId complement_id = m;
  for (size_t f = 0; f < forks.size(); ++f) {
    auto algorithm = factory(seed);
    if (!algorithm->DecodeState(meta, message)) {
      result.message_passing_ok = false;
      return result;
    }
    for (ElementId u : family.Complement(forks[f])) {
      algorithm->ProcessEdge({complement_id, u});
    }
    CoverSolution solution = algorithm->Finalize();
    bool complete = std::all_of(
        solution.certificate.begin(), solution.certificate.end(),
        [](SetId w) { return w != kNoSet; });
    size_t estimate = complete ? solution.cover.size()
                               : std::numeric_limits<size_t>::max();
    if (estimate < result.min_estimate) {
      result.min_estimate = estimate;
      result.argmin_fork = static_cast<uint32_t>(f);
    }
  }

  const uint32_t cross = std::max<uint32_t>(1, family.MaxCrossIntersection());
  result.disjoint_case_opt_lower_bound =
      std::max<size_t>(2, (s - family.PartSize()) / cross);
  return result;
}

}  // namespace setcover
