#include "comm/disjointness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace setcover {
namespace {

void CheckSizes(uint32_t t, uint32_t universe, uint32_t per_party) {
  if (t == 0 || per_party == 0 ||
      static_cast<uint64_t>(t) * per_party > universe) {
    std::fprintf(stderr,
                 "Disjointness: need t·per_party <= universe "
                 "(t=%u per_party=%u universe=%u)\n",
                 t, per_party, universe);
    std::abort();
  }
}

std::vector<uint32_t> Permutation(uint32_t universe, Rng& rng) {
  std::vector<uint32_t> perm(universe);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  return perm;
}

}  // namespace

DisjointnessInstance GenerateDisjointInstance(uint32_t num_parties,
                                              uint32_t universe,
                                              uint32_t per_party, Rng& rng) {
  CheckSizes(num_parties, universe, per_party);
  std::vector<uint32_t> perm = Permutation(universe, rng);
  DisjointnessInstance instance;
  instance.num_parties = num_parties;
  instance.universe = universe;
  instance.party_sets.resize(num_parties);
  size_t cursor = 0;
  for (auto& set : instance.party_sets) {
    set.assign(perm.begin() + cursor, perm.begin() + cursor + per_party);
    std::sort(set.begin(), set.end());
    cursor += per_party;
  }
  instance.uniquely_intersecting = false;
  return instance;
}

DisjointnessInstance GenerateIntersectingInstance(uint32_t num_parties,
                                                  uint32_t universe,
                                                  uint32_t per_party,
                                                  Rng& rng) {
  CheckSizes(num_parties, universe, per_party);
  std::vector<uint32_t> perm = Permutation(universe, rng);
  DisjointnessInstance instance;
  instance.num_parties = num_parties;
  instance.universe = universe;
  instance.party_sets.resize(num_parties);
  instance.uniquely_intersecting = true;
  instance.common_element = perm[0];
  size_t cursor = 1;
  for (auto& set : instance.party_sets) {
    set.push_back(instance.common_element);
    set.insert(set.end(), perm.begin() + cursor,
               perm.begin() + cursor + (per_party - 1));
    std::sort(set.begin(), set.end());
    cursor += per_party - 1;
  }
  return instance;
}

bool VerifyPromise(const DisjointnessInstance& instance) {
  const auto& sets = instance.party_sets;
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i + 1; j < sets.size(); ++j) {
      std::vector<uint32_t> common;
      std::set_intersection(sets[i].begin(), sets[i].end(), sets[j].begin(),
                            sets[j].end(), std::back_inserter(common));
      if (instance.uniquely_intersecting) {
        if (common.size() != 1 || common[0] != instance.common_element) {
          return false;
        }
      } else if (!common.empty()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace setcover
