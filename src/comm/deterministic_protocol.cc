#include "comm/deterministic_protocol.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "comm/protocol.h"
#include "util/bitset.h"
#include "util/math.h"

namespace setcover {

DeterministicProtocolResult RunDeterministicProtocol(
    const SetCoverInstance& instance, const std::vector<uint32_t>& set_owner,
    uint32_t num_parties, uint32_t threshold) {
  const uint32_t n = instance.NumElements();
  const uint32_t m = instance.NumSets();
  if (set_owner.size() != m || num_parties == 0) {
    std::fprintf(stderr, "RunDeterministicProtocol: bad ownership map\n");
    std::abort();
  }
  const uint32_t tau =
      threshold != 0
          ? threshold
          : std::max<uint32_t>(
                1, static_cast<uint32_t>(ISqrt(
                       static_cast<uint64_t>(n) * num_parties)));

  // Forwarded state. The explicit structures below *are* the message;
  // message size is computed from them at every hop.
  DynamicBitset covered(n);
  std::vector<SetId> patch(n, kNoSet);        // R(u)
  std::vector<SetId> certificate(n, kNoSet);  // for threshold-covered
  std::vector<SetId> solution;

  DeterministicProtocolResult result;

  auto message_words = [&]() {
    return BitsToWords(n) + n + solution.size();
  };

  for (uint32_t party = 0; party < num_parties; ++party) {
    // Own sets, processed greedily until none clears the threshold.
    // (Repeated scans; fine for experiment-scale inputs.)
    bool progress = true;
    while (progress) {
      progress = false;
      for (SetId s = 0; s < m; ++s) {
        if (set_owner[s] != party) continue;
        uint32_t gain = 0;
        for (ElementId u : instance.Set(s)) {
          gain += covered.Test(u) ? 0 : 1;
        }
        if (gain >= tau) {
          solution.push_back(s);
          ++result.threshold_sets;
          for (ElementId u : instance.Set(s)) {
            if (!covered.Test(u)) {
              covered.Set(u);
              certificate[u] = s;
            }
          }
          progress = true;
        }
      }
    }
    // Record the earliest patch candidate for still-uncovered elements.
    for (SetId s = 0; s < m; ++s) {
      if (set_owner[s] != party) continue;
      for (ElementId u : instance.Set(s)) {
        if (patch[u] == kNoSet) patch[u] = s;
      }
    }
    result.max_message_words =
        std::max(result.max_message_words, message_words());
  }

  // Last party: patch the leftovers with R(u).
  DynamicBitset in_solution_probe(m);
  for (SetId s : solution) in_solution_probe.Set(s);
  for (ElementId u = 0; u < n; ++u) {
    if (!covered.Test(u) && patch[u] != kNoSet) {
      certificate[u] = patch[u];
      covered.Set(u);
      if (!in_solution_probe.Test(patch[u])) {
        in_solution_probe.Set(patch[u]);
        solution.push_back(patch[u]);
        ++result.patched_sets;
      }
    }
  }

  result.solution.cover = std::move(solution);
  result.solution.certificate = std::move(certificate);
  return result;
}

}  // namespace setcover
