#ifndef SETCOVER_COMM_REDUCTION_H_
#define SETCOVER_COMM_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "comm/disjointness.h"
#include "core/multi_run.h"
#include "instance/hard_instance.h"

namespace setcover {

/// Outcome of running the Theorem 2 reduction with a concrete streaming
/// algorithm standing in for A.
struct ReductionResult {
  /// Smallest cover-size estimate over the forked runs; SIZE_MAX if a
  /// run's instance could not be fully covered.
  size_t min_estimate = 0;
  /// Which forked run attained it (index into the fork list).
  uint32_t argmin_fork = 0;
  /// Algorithm state size at each of the t-1 party boundaries — the
  /// forwarded message sizes the Ω(m/t²) bound of Theorem 5 constrains.
  std::vector<size_t> boundary_state_words;
  size_t max_boundary_state_words = 0;
  /// s − s/t elements must be covered in the disjoint case; the paper's
  /// OPT₀ = Ω((s − s/t)/log n) with the family's actual worst cross
  /// intersection in the denominator.
  size_t disjoint_case_opt_lower_bound = 0;
  /// Message-passing mode only: false if some party's DecodeState
  /// failed (algorithm does not support state reconstruction), in which
  /// case the other fields are unset.
  bool message_passing_ok = true;
};

/// Runs the §3 reduction: party p feeds the partial sets T_b^p for
/// b ∈ S_p into the streaming algorithm (adversarial, party-major
/// order); the last party forks the execution and, in forked run j,
/// appends the complement set [n]\T_j before finalizing. The cover-size
/// estimate of run j certifies "uniquely intersecting" when it is below
/// the disjoint-case OPT bound.
///
/// The fork is realized by deterministic replay: every forked run
/// re-executes the algorithm from `factory(seed)` on the shared prefix
/// (same seed → bit-identical state) and then diverges. Boundary state
/// sizes are measured once on the shared prefix.
///
/// `fork_indices` selects which parallel runs to execute (empty = all m,
/// which is O(m · N) work — keep m small or pass a subset; any subset
/// containing ∩S_i behaves like the full fork for the intersecting
/// case).
///
/// Set ids in the streamed instance: every party streams its part of
/// T_b under the shared id b (so the common set assembles to full size
/// in the intersecting case); the complement set has id m.
ReductionResult RunTheorem2Reduction(
    const Lemma1Family& family, const DisjointnessInstance& disjointness,
    const AlgorithmFactory& factory, uint64_t seed,
    const std::vector<uint32_t>& fork_indices = {});

/// The reduction realized by *true message passing*: party p+1
/// reconstructs the streaming algorithm purely from party p's
/// serialized state (EncodeState → words → DecodeState) instead of
/// deterministic replay, and every forked run of the last party starts
/// from the decoded final message. Semantically identical to
/// RunTheorem2Reduction for algorithms with faithful state
/// (de)serialization — the tests assert equal outcomes — but does
/// O(N + m·(n−s)) work instead of O(m·N), and the reported message
/// sizes are the exact word counts that crossed each boundary.
/// Requires factory algorithms supporting DecodeState; otherwise the
/// result carries message_passing_ok = false.
ReductionResult RunTheorem2ReductionMessagePassing(
    const Lemma1Family& family, const DisjointnessInstance& disjointness,
    const AlgorithmFactory& factory, uint64_t seed,
    const std::vector<uint32_t>& fork_indices = {});

/// The decision rule of the last party: answer "uniquely intersecting"
/// iff some run's estimate is at most `opt0_bound - 1`.
inline bool DecideIntersecting(const ReductionResult& result,
                               size_t opt0_bound) {
  // min_estimate <= opt0_bound - 1, written overflow-safely
  // (min_estimate is SIZE_MAX when no forked run found a full cover).
  return result.min_estimate < opt0_bound;
}

}  // namespace setcover

#endif  // SETCOVER_COMM_REDUCTION_H_
