#include "comm/protocol.h"

#include <algorithm>

namespace setcover {

ProtocolTrace RunOneWayProtocol(const std::vector<PartyFn>& parties) {
  ProtocolTrace trace;
  Message current;
  for (uint32_t i = 0; i < parties.size(); ++i) {
    current = parties[i](i, current);
    trace.message_words.push_back(current.size());
    trace.max_message_words =
        std::max(trace.max_message_words, current.size());
  }
  trace.final_message = std::move(current);
  return trace;
}

size_t BitsToWords(size_t bits) { return (bits + 63) / 64; }

}  // namespace setcover
