#ifndef SETCOVER_COMM_DISJOINTNESS_H_
#define SETCOVER_COMM_DISJOINTNESS_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace setcover {

/// An instance of t-party Set-Disjointness with the promise of §3:
/// either the party sets are pairwise disjoint, or they uniquely
/// intersect (|∩ S_i| = 1 and |S_i ∩ S_j| = 1 for all i ≠ j).
///
/// In the Theorem 2 reduction the disjointness universe is [m] — its
/// elements index the sets T_1..T_m of the Lemma 1 family.
struct DisjointnessInstance {
  uint32_t num_parties = 0;  // t
  uint32_t universe = 0;     // the sets S_i are subsets of [universe]
  std::vector<std::vector<uint32_t>> party_sets;  // sorted ascending
  bool uniquely_intersecting = false;
  /// The common element when uniquely_intersecting (undefined otherwise).
  uint32_t common_element = 0;
};

/// Generates a pairwise-disjoint instance: each party receives
/// `per_party` elements of a random permutation of [universe].
/// Requires num_parties · per_party <= universe.
DisjointnessInstance GenerateDisjointInstance(uint32_t num_parties,
                                              uint32_t universe,
                                              uint32_t per_party, Rng& rng);

/// Generates a uniquely-intersecting instance: a random common element
/// plus per-party disjoint fillers (so |S_i ∩ S_j| = 1 exactly).
/// Requires num_parties · per_party <= universe (per_party counts the
/// common element).
DisjointnessInstance GenerateIntersectingInstance(uint32_t num_parties,
                                                  uint32_t universe,
                                                  uint32_t per_party,
                                                  Rng& rng);

/// Verifies the promise holds (used by tests).
bool VerifyPromise(const DisjointnessInstance& instance);

}  // namespace setcover

#endif  // SETCOVER_COMM_DISJOINTNESS_H_
