#ifndef SETCOVER_COMM_PROTOCOL_H_
#define SETCOVER_COMM_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace setcover {

/// A message in a one-way multi-party protocol, measured in 64-bit
/// words. The communication experiments care only about sizes, so a
/// message is its payload of words.
using Message = std::vector<uint64_t>;

/// Party `index` receives the previous party's message and produces the
/// next one. Party 0 receives the empty message.
using PartyFn = std::function<Message(uint32_t index, const Message& in)>;

/// What a one-way protocol run produces: the final message (the
/// protocol's output) plus per-hop sizes. `max_message_words` is the
/// quantity communication lower bounds such as Theorem 5 (Ω(m/t²) for
/// t-party Set-Disjointness) constrain.
struct ProtocolTrace {
  Message final_message;
  std::vector<size_t> message_words;  // one entry per sent message
  size_t max_message_words = 0;
};

/// Runs parties[0] → parties[1] → ... → parties.back() in order,
/// forwarding each message, and records message sizes.
ProtocolTrace RunOneWayProtocol(const std::vector<PartyFn>& parties);

/// Bit-packing helpers used by protocol implementations to serialize
/// n-bit element sets into messages.
size_t BitsToWords(size_t bits);

}  // namespace setcover

#endif  // SETCOVER_COMM_PROTOCOL_H_
