#include "core/trivial.h"

#include <algorithm>

#include "offline/greedy.h"

namespace setcover {

FirstSetPatching::FirstSetPatching() {
  first_set_words_ = meter_.Register("first_set");
}

void FirstSetPatching::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  first_set_.assign(meta.num_elements, kNoSet);
  meter_.Reset();
  meter_.Set(first_set_words_, meta.num_elements);
}

void FirstSetPatching::ProcessEdge(const Edge& edge) {
  if (first_set_[edge.element] == kNoSet)
    first_set_[edge.element] = edge.set;
}

void FirstSetPatching::ProcessEdgeBatch(std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    if (first_set_[e.element] == kNoSet) first_set_[e.element] = e.set;
  }
}

CoverSolution FirstSetPatching::Finalize() {
  CoverSolution solution;
  solution.certificate = first_set_;
  std::vector<SetId> cover = first_set_;
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  // Drop the sentinel (present iff some element never appeared, i.e. the
  // instance was infeasible).
  while (!cover.empty() && cover.back() == kNoSet) cover.pop_back();
  solution.cover = std::move(cover);
  return solution;
}

void FirstSetPatching::EncodeState(StateEncoder* encoder) const {
  encoder->PutU32Vector(first_set_);
}

bool FirstSetPatching::DecodeState(const StreamMetadata& meta,
                                   const std::vector<uint64_t>& words) {
  Begin(meta);
  StateDecoder decoder(words);
  std::vector<uint32_t> first_set = decoder.GetU32Vector();
  if (!decoder.Done() || first_set.size() != meta.num_elements) {
    Begin(meta);
    return false;
  }
  first_set_ = std::move(first_set);
  return true;
}

size_t FirstSetPatching::StateWords() const {
  return EncodedU32VectorWords(first_set_.size());
}

StoreEverythingGreedy::StoreEverythingGreedy() {
  buffer_words_ = meter_.Register("edge_buffer");
}

void StoreEverythingGreedy::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  buffer_.clear();
  meter_.Reset();
}

void StoreEverythingGreedy::ProcessEdge(const Edge& edge) {
  buffer_.push_back(edge);
  meter_.Add(buffer_words_, 1);  // one word per (set, element) pair
}

void StoreEverythingGreedy::ProcessEdgeBatch(std::span<const Edge> edges) {
  // Bulk append + one meter call; the meter's running value only moves
  // at batch rather than edge granularity, but every ProcessEdge-path
  // observation point (batch boundaries and Finalize) sees identical
  // values, so peaks and samples are unchanged.
  buffer_.insert(buffer_.end(), edges.begin(), edges.end());
  meter_.Add(buffer_words_, edges.size());
}

void StoreEverythingGreedy::EncodeState(StateEncoder* encoder) const {
  std::vector<uint32_t> flat;
  flat.reserve(2 * buffer_.size());
  for (const Edge& e : buffer_) {
    flat.push_back(e.set);
    flat.push_back(e.element);
  }
  encoder->PutU32Vector(flat);
}

bool StoreEverythingGreedy::DecodeState(const StreamMetadata& meta,
                                        const std::vector<uint64_t>& words) {
  Begin(meta);
  StateDecoder decoder(words);
  std::vector<uint32_t> flat = decoder.GetU32Vector();
  bool edges_ok = flat.size() % 2 == 0;
  for (size_t i = 0; edges_ok && i < flat.size(); i += 2) {
    // Range-check before Finalize() hands the ids to FromSets, which
    // treats out-of-range ids as a programming error and aborts.
    edges_ok = flat[i] < meta.num_sets && flat[i + 1] < meta.num_elements;
  }
  if (!decoder.Done() || !edges_ok) {
    Begin(meta);
    return false;
  }
  buffer_.clear();
  buffer_.reserve(flat.size() / 2);
  for (size_t i = 0; i < flat.size(); i += 2) {
    buffer_.push_back({flat[i], flat[i + 1]});
  }
  meter_.Set(buffer_words_, buffer_.size());
  return true;
}

size_t StoreEverythingGreedy::StateWords() const {
  return EncodedU32VectorWords(2 * buffer_.size());
}

CoverSolution StoreEverythingGreedy::Finalize() {
  // The edge buffer feeds the CSR builder directly — no intermediate
  // vector-of-vectors — and GreedyCover reuses its thread-local
  // workspace, so repeated runs (multi-run drivers, bench loops) do not
  // reallocate the greedy scratch.
  SetCoverInstance inst = SetCoverInstance::FromEdges(
      meta_.num_elements, meta_.num_sets, buffer_);
  return GreedyCover(inst);
}

}  // namespace setcover
