#include "core/kk_algorithm.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/math.h"
#include "util/simd.h"

namespace setcover {

KkAlgorithm::KkAlgorithm(uint64_t seed, KkParams params)
    : seed_(seed), params_(params), rng_(seed) {
  degrees_words_ = meter_.Register("degrees");
  element_state_words_ = meter_.Register("element_state");
  solution_words_ = meter_.Register("solution");
}

void KkAlgorithm::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  rng_ = Rng(seed_);
  sqrt_n_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(ISqrt(meta.num_elements)));
  uncovered_degree_.assign(meta.num_sets, 0);
  next_threshold_.assign(meta.num_sets, sqrt_n_);
  first_set_.assign(meta.num_elements, kNoSet);
  certificate_.assign(meta.num_elements, kNoSet);
  covered_ = DynamicBitset(meta.num_elements);
  in_solution_ = DynamicBitset(meta.num_sets);
  solution_order_.clear();
  meter_.Reset();
  // One word per degree counter; R(u) and C(u) are one word each plus a
  // bit for the covered flag, charged as 2 words per element.
  meter_.Set(degrees_words_, meta.num_sets);
  meter_.Set(element_state_words_, 2 * size_t{meta.num_elements});
}

void KkAlgorithm::MaybeInclude(SetId s, uint32_t level) {
  if (in_solution_.Test(s)) return;
  double p = params_.inclusion_constant *
             std::ldexp(static_cast<double>(sqrt_n_), static_cast<int>(
                            std::min<uint32_t>(level, 62))) /
             static_cast<double>(meta_.num_sets);
  if (rng_.Bernoulli(p)) {
    in_solution_.Set(s);
    solution_order_.push_back(s);
    meter_.Add(solution_words_, 2);  // membership mark + order entry
  }
}

inline void KkAlgorithm::ProcessEdgeImpl(const Edge& edge) {
  const SetId s = edge.set;
  const ElementId u = edge.element;
  if (first_set_[u] == kNoSet) first_set_[u] = s;

  if (in_solution_.Test(s)) {
    // An included set covers everything of it arriving from now on.
    if (!covered_.Test(u)) {
      covered_.Set(u);
      certificate_[u] = s;
    }
    return;
  }
  if (covered_.Test(u)) return;

  // u is uncovered and S is not in the solution: bump the
  // uncovered-degree and run the probabilistic inclusion rule at every
  // level boundary i·√n. next_threshold_[s] tracks the next unreached
  // boundary, so a boundary hit is one equality compare — no modulo.
  // d == next_threshold_[s] exactly when d is a multiple of √n at or
  // past √n, because d advances by 1 and the threshold by √n per hit.
  // The d >= sqrt_n_ register compare short-circuits the threshold
  // load: it is implied by equality (thresholds start at √n), and most
  // sets never reach degree √n, so the common case touches only the
  // degree counter.
  uint32_t d = ++uncovered_degree_[s];
  if (d >= sqrt_n_ && d == next_threshold_[s]) {
    next_threshold_[s] = d + sqrt_n_;
    MaybeInclude(s, d / sqrt_n_);
    if (in_solution_.Test(s)) {
      covered_.Set(u);
      certificate_[u] = s;
    }
  }
}

void KkAlgorithm::ProcessEdge(const Edge& edge) { ProcessEdgeImpl(edge); }

void KkAlgorithm::ProcessEdgeBatch(std::span<const Edge> edges) {
  // Phase 1 screens the batch with gathered bitset/array reads: an edge
  // whose element was covered *and* had its first set recorded at
  // screen time is a proven no-op for the per-edge rule (both the
  // in-solution and the not-in-solution branch return without touching
  // state or drawing coins). Coverage and first_set only ever advance,
  // so a positive screen can never go stale within the stream. Phase 2
  // replays the surviving edges through the unchanged scalar rule, so
  // the result — coins, certificates, meters, checkpoint bytes — is
  // bit-identical to the per-edge path. (The first_set gather is what
  // makes the screen safe even on hostile DecodeState states where
  // covered(u) holds but first_set[u] is unset.)
  constexpr size_t kChunk = 512;
  uint32_t ids[kChunk];
  uint64_t covered_mask[kChunk / 64];
  uint64_t unseen_mask[kChunk / 64];
  const simd::Kernels& kernels = simd::Active();
  while (!edges.empty()) {
    const size_t chunk = std::min(edges.size(), kChunk);
    // The screen only pays once a decent fraction of elements is
    // covered — early in the stream almost every edge survives it, and
    // the gathers become pure overhead on top of a full scalar replay.
    // Count() is O(1), so this gate costs nothing, and it only changes
    // which (equivalent) path runs, never the outcome.
    if (covered_.Count() * 4 < covered_.size()) {
      for (size_t i = 0; i < chunk; ++i) ProcessEdgeImpl(edges[i]);
      edges = edges.subspan(chunk);
      continue;
    }
    for (size_t i = 0; i < chunk; ++i) ids[i] = edges[i].element;
    kernels.gather_bits(covered_.WordsData(), ids, chunk, covered_mask);
    kernels.gather_equal_u32(first_set_.data(), ids, chunk, kNoSet,
                             unseen_mask);
    const size_t mask_words = (chunk + 63) / 64;
    for (size_t w = 0; w < mask_words; ++w) {
      uint64_t live = ~(covered_mask[w] & ~unseen_mask[w]);
      if (w == mask_words - 1 && (chunk & 63) != 0) {
        live &= ~uint64_t{0} >> (64 - (chunk & 63));
      }
      const size_t base = w << 6;
      while (live != 0) {
        ProcessEdgeImpl(edges[base + size_t(std::countr_zero(live))]);
        live &= live - 1;
      }
    }
    edges = edges.subspan(chunk);
  }
}

CoverSolution KkAlgorithm::Finalize() {
  CoverSolution solution;
  solution.cover = solution_order_;
  solution.certificate = certificate_;
  // Patching: cover the leftovers with their first incident set.
  for (ElementId u = 0; u < meta_.num_elements; ++u) {
    if (solution.certificate[u] == kNoSet && first_set_[u] != kNoSet) {
      solution.certificate[u] = first_set_[u];
      if (in_solution_.Set(first_set_[u])) {
        solution.cover.push_back(first_set_[u]);
      }
    }
  }
  return solution;
}

size_t KkAlgorithm::StateWords() const {
  return 4 + EncodedU32VectorWords(uncovered_degree_.size()) +
         EncodedBoolVectorWords(covered_.size()) +
         EncodedU32VectorWords(first_set_.size()) +
         EncodedU32VectorWords(certificate_.size()) +
         EncodedU32VectorWords(solution_order_.size());
}

void KkAlgorithm::EncodeState(StateEncoder* encoder) const {
  // Everything a successor party needs: the coin stream position, the
  // per-set uncovered-degrees, the element flags/stores, and the
  // solution so far.
  for (uint64_t w : rng_.GetState()) encoder->PutWord(w);
  encoder->PutU32Vector(uncovered_degree_);
  encoder->PutBitset(covered_);  // byte-identical to the PutBoolVector copy
  encoder->PutU32Vector(first_set_);
  encoder->PutU32Vector(certificate_);
  encoder->PutU32Vector(solution_order_);
}

bool KkAlgorithm::DecodeState(const StreamMetadata& meta,
                              const std::vector<uint64_t>& words) {
  Begin(meta);
  StateDecoder decoder(words);
  std::array<uint64_t, 4> rng_state;
  for (uint64_t& w : rng_state) w = decoder.GetWord();
  std::vector<uint32_t> degrees = decoder.GetU32Vector();
  DynamicBitset covered;
  decoder.GetBitset(&covered);
  std::vector<uint32_t> first_set = decoder.GetU32Vector();
  std::vector<uint32_t> certificate = decoder.GetU32Vector();
  std::vector<uint32_t> solution = decoder.GetU32Vector();
  // Dense state is indexed by id, so every id must be range-checked
  // before it is trusted (the hash containers used to tolerate junk).
  bool ids_ok = true;
  for (uint32_t s : solution) ids_ok = ids_ok && s < meta.num_sets;
  for (uint32_t s : first_set)
    ids_ok = ids_ok && (s == kNoSet || s < meta.num_sets);
  if (!decoder.Done() || !ids_ok || degrees.size() != meta.num_sets ||
      covered.size() != meta.num_elements ||
      first_set.size() != meta.num_elements ||
      certificate.size() != meta.num_elements) {
    Begin(meta);  // reset any partial assignment
    return false;
  }
  rng_.SetState(rng_state);
  uncovered_degree_ = std::move(degrees);
  // Rebuild the derived next-threshold accelerators: the next unreached
  // multiple of √n, exactly what the incremental rule would hold after
  // replaying d(S) edges (consistent mod 2³² with the incremental path
  // even if a counter wrapped).
  for (SetId s = 0; s < meta.num_sets; ++s) {
    next_threshold_[s] = (uncovered_degree_[s] / sqrt_n_ + 1) * sqrt_n_;
  }
  covered_ = std::move(covered);
  first_set_ = std::move(first_set);
  certificate_ = std::move(certificate);
  solution_order_ = std::move(solution);
  in_solution_ = DynamicBitset(meta.num_sets);
  for (SetId s : solution_order_) in_solution_.Set(s);
  meter_.Set(solution_words_, 2 * solution_order_.size());
  return true;
}

std::vector<size_t> KkAlgorithm::LevelHistogram() const {
  uint32_t max_level = 0;
  for (uint32_t d : uncovered_degree_)
    max_level = std::max(max_level, d / sqrt_n_);
  std::vector<size_t> histogram(max_level + 1, 0);
  for (uint32_t d : uncovered_degree_) ++histogram[d / sqrt_n_];
  return histogram;
}

}  // namespace setcover
