#ifndef SETCOVER_CORE_RANDOM_ORDER_H_
#define SETCOVER_CORE_RANDOM_ORDER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/streaming_algorithm.h"
#include "util/bitset.h"
#include "util/count_min.h"
#include "util/epoch_array.h"
#include "util/memory_meter.h"
#include "util/rng.h"
#include "util/types.h"

namespace setcover {

/// Tuning parameters of Algorithm 1 (the random-order algorithm).
///
/// The paper's constants (thresholds like j·log⁶m, schedule K =
/// ½log n − 3 log log m − 2) only activate at astronomically large n and
/// m; the paper itself notes "we have not attempted to minimize the
/// poly-log factors" (§4.2). This struct keeps every *structural* rule
/// of Algorithm 1 intact and exposes the constants:
///
///  * the subepoch schedule keeps the paper's shape — algorithm A(i)
///    consumes a stream share proportional to 2^i, divided evenly over
///    its epochs and √n subepochs — normalized so the main loop uses a
///    `main_budget_fraction` share of the stream instead of the paper's
///    1/log³m sliver;
///  * detection thresholds (heavy elements in epoch 0, forward-degree
///    marking at epoch ends) are derived from the *implemented* schedule
///    with the paper's literal margins 1.085 / 1.1, i.e. threshold =
///    1.085 · (expected count of a just-heavy element), exactly as in
///    Lemma 6's proof;
///  * `PaperFaithful()` switches to the literal constants of the paper
///    (useful to check the code against the listing; at laptop scale the
///    thresholds are then unreachable and the algorithm degenerates to
///    epoch-0 sampling + patching, which is still a valid cover).
///
/// Defaults are calibrated for n in [256, 4096] and m = Θ(n²) — the
/// regime Theorem 3 assumes (m = Ω̃(n²) ∩ poly(n)).
struct RandomOrderParams {
  /// C in the epoch-0 / level sampling probability p_j = min(1, C·2^j·√n·log₂(m)/m).
  double sampling_constant = 0.25;

  /// Extra multiplier on the level inclusion probabilities p_j for
  /// j >= 1 only (p_j = min(1, boost·C·2^j·√n·log₂(m)/m)). The paper
  /// folds this into its single constant C; keeping it separate lets the epoch-0
  /// sample stay small while special sets detected by the counting
  /// machinery are actually included at laptop scale. Paper value: 1.
  double level_inclusion_boost = 16.0;

  /// Share of the stream the main loop (epoch 0 + A(1..K)) may consume;
  /// the rest is the tail pass (lines 33-36). Paper: ≈ 1/log³m.
  double main_budget_fraction = 0.45;

  /// Upper bound on the epoch-0 detection prefix as a stream fraction
  /// (Lemma 2 part 1 needs the prefix to be a small constant fraction).
  double epoch0_fraction_cap = 0.02;

  /// c_q in the tracking rate q_j = min(1, c_q·2^j/n). Paper: c_q = 1;
  /// the default boosts the statistical signal at laptop scale while
  /// keeping the tracked sample at Õ(m/n) ≪ m/√n words.
  double tracking_rate_constant = 4.0;

  /// c_t in the special-set threshold τ_j = max(1, round(j·c_t)).
  /// Paper: c_t = log⁶m.
  double special_threshold_constant = 1.0;

  /// The paper's detection margin: mark when the observed count is at
  /// least `mark_margin` × the expectation of a borderline-heavy element
  /// (1.085 in Lemma 6, between the 1.07 "light" and 1.1 "heavy" rates).
  double mark_margin = 1.085;

  /// Heavy-degree coefficient: an element is heavy in epoch j if its
  /// forward-degree to special sets is ≥ heavy_margin·m/(2^j·√n).
  double heavy_margin = 1.1;

  /// Optimistic marking is skipped when the detection threshold falls
  /// below this count — at that point the statistic is pure noise.
  /// (Skipping only costs space/ratio, never correctness.)
  double min_mark_threshold = 3.0;

  /// K = number of algorithms A(i). 0 = auto: the paper's
  /// ½log₂n − 3·log₂log₂m − 2 when positive, else min(3, ½log₂n − 2)
  /// clamped to ≥ 1.
  uint32_t num_algorithms = 0;

  /// J = epochs per algorithm. 0 = auto: min(6, log₂m − ½log₂n)
  /// clamped to ≥ 1 (the paper uses the unclamped value).
  uint32_t num_epochs = 0;

  /// When true, epoch-0 heavy-element detection counts occurrences in a
  /// Count-Min sketch instead of an n-word exact array. The sketch only
  /// overcounts, so extra elements may be optimistically marked (and
  /// later patched) — correctness is unaffected; space trades n words
  /// for Õ(N·√n/m) cells, a win once n ≫ (N/m)·√n·polylog. The paper's
  /// listing uses exact counters; this is the library's engineering
  /// alternative, compared in the ablation bench.
  bool use_sketch_epoch0 = false;

  /// Width multiplier for the epoch-0 sketch (cells = factor·N·√n/m).
  double sketch_width_factor = 16.0;

  /// When true, Begin() derives every schedule quantity and threshold
  /// from the paper's literal formulas instead of the calibrated ones.
  bool paper_faithful = false;

  /// Literal paper constants (see above).
  static RandomOrderParams PaperFaithful();
};

/// Per-epoch instrumentation used by the invariants benchmark (I1-I3,
/// Lemma 8): how many sets turned special, how many were added to the
/// solution, tracking pressure, and optimistic marking activity.
struct RandomOrderEpochStats {
  uint32_t algorithm_index = 0;  // i, 1-based
  uint32_t epoch = 0;            // j, 1-based
  size_t special_sets = 0;       // sets whose counter hit τ_j
  size_t added_to_solution = 0;  // of those, sampled into Sol (p_j)
  size_t sampled_for_tracking = 0;  // of those, sampled into Q̃' (q_j)
  size_t tracked_sets = 0;       // |Q̃| during this epoch
  size_t tracked_edges = 0;      // edges recorded into T this epoch
  size_t optimistically_marked = 0;  // elements marked at epoch end
  double mark_threshold = 0.0;   // τ used at epoch end (0 = skipped)
};

/// Whole-run instrumentation.
struct RandomOrderStats {
  size_t epoch0_sampled = 0;  // |Sol| after line 6
  size_t epoch0_marked = 0;   // heavy elements marked in epoch 0
  std::vector<RandomOrderEpochStats> epochs;
  /// Every probabilistic Sol addition with its stream position — the raw
  /// material for the missed-edge measurements (I2).
  std::vector<std::pair<SetId, size_t>> additions;
  size_t tail_witnessed = 0;  // elements first witnessed in the tail
  size_t marked_without_witness = 0;  // at Finalize (missed-edge victims)
  size_t patched = 0;  // sets added by the patching phase (line 38)
  /// Elements whose certificate came from the patching phase — the
  /// elements whose covering edges the algorithm "missed" (I2).
  std::vector<ElementId> patched_elements;
};

/// Algorithm 1 (Theorem 3): the one-pass Õ(√n)-approximation for
/// *random-order* edge streams using space Õ(m/√n) — the paper's main
/// result, which together with the Theorem 2 lower bound separates the
/// random-order from the adversarial-order model.
///
/// Structure (paper §4.1, Algorithm 1):
///   * the set family is split into √n batches of m/√n sets; only one
///     batch has live counters at any time, which is where the space
///     saving over the KK algorithm comes from;
///   * epoch 0 samples each set into Sol w.p. p₀ and marks elements of
///     degree ≥ 1.1·m/√n by counting occurrences in a short prefix
///     (they are covered by the epoch-0 sample w.h.p., so marking them
///     is safe "optimism");
///   * algorithms A(1..K) run in sequence; A(i) is responsible for sets
///     that still cover ≈ n/2^i uncovered elements, and consumes a
///     stream share ∝ 2^i so that such sets produce a detectable count
///     signal before their elements are gone (§1.2 "Techniques");
///   * within A(i), epoch j counts, for each set of the current batch,
///     edges to unmarked elements; a set reaching τ_j is *special* and
///     enters Sol w.p. p_j = 2^j·p₀ and the tracking sample Q̃' w.p.
///     q_j; epoch j+1 tracks edges incident to Q̃ (the previous epoch's
///     sample) and marks elements whose tracked count certifies a heavy
///     forward-degree to special sets — the paper's replacement for the
///     coverage monotonicity that the KK algorithm gets for free;
///   * after A(K), the tail pass only records witnesses for Sol sets,
///     and the patching phase covers anything left with its first
///     incident set R(u).
///
/// Correctness (a valid cover + certificate) holds for any arrival
/// order and any parameters; the space/ratio guarantees are what the
/// random order buys.
class RandomOrderAlgorithm : public StreamingSetCoverAlgorithm {
 public:
  explicit RandomOrderAlgorithm(uint64_t seed, RandomOrderParams params = {});

  std::string Name() const override { return "random-order"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

  /// Instrumentation for the invariants bench. Valid after Finalize().
  const RandomOrderStats& Stats() const { return stats_; }

  /// Schedule actually in effect (valid after Begin()).
  uint32_t NumAlgorithms() const { return num_algorithms_; }
  uint32_t NumEpochs() const { return num_epochs_; }
  uint32_t NumBatches() const { return num_batches_; }
  size_t SubepochLength(uint32_t i) const;  // ℓ_i, i in [1, K]

 private:
  enum class Phase { kEpoch0, kMain, kTail };

  inline void ProcessEdgeImpl(const Edge& edge);
  void AddToSolution(SetId s);
  void StartAlgorithm(uint32_t i);  // sample fresh Q̃ (line 10)
  void StartEpoch();                // reset T, Q̃' (lines 13-14)
  void StartSubepoch();             // reset batch counters (line 17)
  void EndEpoch();                  // marking rule (line 31) + rotation
  void Advance();                   // position & phase bookkeeping
  double TrackingRate(uint32_t j) const;    // q_j
  double InclusionProbability(uint32_t j) const;  // p_j
  uint32_t SpecialThreshold(uint32_t j) const;    // τ_j
  double MarkThreshold() const;     // τ for line 31 at current (i, j)

  uint64_t seed_;
  RandomOrderParams params_;
  Rng rng_;
  StreamMetadata meta_;

  // Schedule.
  uint32_t num_algorithms_ = 1;  // K
  uint32_t num_epochs_ = 1;      // J
  uint32_t num_batches_ = 1;     // √n
  uint32_t batch_size_ = 1;      // ⌈m/√n⌉
  size_t epoch0_length_ = 0;
  std::vector<size_t> subepoch_length_;  // ℓ_i, index 1..K
  double p0_ = 0.0;

  // Cursor.
  Phase phase_ = Phase::kTail;
  size_t position_ = 0;          // stream position (edges seen)
  size_t phase_remaining_ = 0;   // edges left in the current subepoch
  uint32_t cur_algorithm_ = 0;   // i
  uint32_t cur_epoch_ = 0;       // j
  uint32_t cur_batch_ = 0;       // k
  size_t main_remaining_ = 0;    // hard budget for the main loop
  double cur_tracked_rate_ = 0.0;  // rate at which current Q̃ was drawn

  // Element state (Õ(n), lines 3-4).
  DynamicBitset marked_;
  std::vector<SetId> first_set_;  // R(u)
  std::vector<SetId> witness_;    // covering certificate
  std::vector<uint32_t> epoch0_degree_;
  std::unique_ptr<CountMinSketch> epoch0_sketch_;

  // Solution.
  DynamicBitset in_solution_;
  std::vector<SetId> solution_order_;

  // Tracking machinery — Õ(m/√n) *live entries* (what the meter and
  // EncodeState carry), held in epoch-stamped dense containers so the
  // per-edge membership probe is one indexed load and the per-epoch
  // reset is O(1) (see util/epoch_array.h on why the dense stamps are
  // unmetered container overhead).
  EpochSet tracked_;                        // Q̃
  EpochSet tracked_next_;                   // Q̃'
  EpochArray<uint32_t> tracking_counts_;    // T
  std::vector<uint32_t> batch_counters_;    // C[·] for the live batch

  RandomOrderStats stats_;
  RandomOrderEpochStats cur_epoch_stats_;

  MemoryMeter meter_;
  MemoryMeter::ComponentId element_state_words_;
  MemoryMeter::ComponentId epoch0_words_;
  MemoryMeter::ComponentId solution_words_;
  MemoryMeter::ComponentId tracked_words_;
  MemoryMeter::ComponentId tracking_counts_words_;
  MemoryMeter::ComponentId batch_counter_words_;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_RANDOM_ORDER_H_
