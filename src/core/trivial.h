#ifndef SETCOVER_CORE_TRIVIAL_H_
#define SETCOVER_CORE_TRIVIAL_H_

#include <vector>

#include "core/streaming_algorithm.h"
#include "util/memory_meter.h"
#include "util/types.h"

namespace setcover {

/// The trivial n-approximation: remember the first set R(u) seen for
/// every element and output {R(u) : u ∈ U}. Space Õ(n); approximation
/// ratio at most n (and exactly the patching fallback every paper
/// algorithm ends with). Serves as the quality floor in benchmarks.
class FirstSetPatching : public StreamingSetCoverAlgorithm {
 public:
  FirstSetPatching();

  std::string Name() const override { return "first-set-patching"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

 private:
  StreamMetadata meta_;
  std::vector<SetId> first_set_;
  MemoryMeter meter_;
  MemoryMeter::ComponentId first_set_words_;
};

/// The trivial space-Θ(N) comparator: buffer the entire stream, rebuild
/// the instance, and run offline greedy at the end. Gives ln n quality
/// at maximal space — the other end of the trade-off curve from
/// FirstSetPatching.
class StoreEverythingGreedy : public StreamingSetCoverAlgorithm {
 public:
  StoreEverythingGreedy();

  std::string Name() const override { return "store-everything-greedy"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

 private:
  StreamMetadata meta_;
  std::vector<Edge> buffer_;
  MemoryMeter meter_;
  MemoryMeter::ComponentId buffer_words_;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_TRIVIAL_H_
