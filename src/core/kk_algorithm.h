#ifndef SETCOVER_CORE_KK_ALGORITHM_H_
#define SETCOVER_CORE_KK_ALGORITHM_H_

#include <cstdint>
#include <vector>

#include "core/streaming_algorithm.h"
#include "util/bitset.h"
#include "util/memory_meter.h"
#include "util/rng.h"
#include "util/types.h"

namespace setcover {

/// Tuning knobs for the KK algorithm. The defaults implement the paper's
/// rule exactly; `inclusion_constant` scales the inclusion probability
/// (the paper's hidden constant) and is exposed for the ablation bench.
struct KkParams {
  /// Multiplies the inclusion probability 2^i √n / m.
  double inclusion_constant = 1.0;
};

/// The KK algorithm (Theorem 1; Khanna & Konrad, ITCS'22): the
/// adversarial-order Õ(√n)-approximation with Õ(m) space that this
/// paper's results are measured against.
///
/// For every set S the algorithm maintains its *uncovered-degree* d(S):
/// the number of stream edges (S, u) seen while u was still uncovered.
/// Whenever d(S) reaches i·√n for an integer i >= 1, S is included in
/// the solution with probability min(1, 2^i·√n/m); an included set
/// covers all of its elements that arrive from that point on. Elements
/// left uncovered at the end are patched with the first set R(u) that
/// contained them.
///
/// Space: m words of degree counters + Õ(n) element state = Õ(m) (the
/// paper's Theorem 2 shows this is optimal for Õ(√n)-approximation in
/// adversarial order). The per-level set counts that drive the paper's
/// analysis (E|S_i| <= ½ E|S_{i-1}|, §1.2) are exposed through
/// `LevelHistogram()` for the level-decay benchmark.
///
/// Hot-path layout: solution membership and element coverage are dense
/// bitsets (one indexed load per edge) rather than hash probes; the
/// meter still charges the same per-item word costs as before, since
/// the information carried is unchanged (see util/memory_meter.h on
/// container overhead).
class KkAlgorithm : public StreamingSetCoverAlgorithm {
 public:
  explicit KkAlgorithm(uint64_t seed, KkParams params = {});

  std::string Name() const override { return "kk"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

  /// Histogram of final levels: entry i counts the sets whose
  /// uncovered-degree ended in [i·√n, (i+1)·√n). Valid after Finalize().
  std::vector<size_t> LevelHistogram() const;

  /// Number of sets included by the probabilistic process (before
  /// patching). Valid after Finalize().
  size_t SampledCoverSize() const { return solution_order_.size(); }

 private:
  void MaybeInclude(SetId s, uint32_t level);
  inline void ProcessEdgeImpl(const Edge& edge);

  uint64_t seed_;
  KkParams params_;
  Rng rng_;
  StreamMetadata meta_;
  uint32_t sqrt_n_ = 1;

  std::vector<uint32_t> uncovered_degree_;  // d(S), m words
  // next_threshold_[s] is the next level boundary i·√n that d(S) has
  // not reached yet, so the hot path is a single equality compare
  // instead of a modulo. Derived accelerator state (a pure function of
  // uncovered_degree_ and √n, rebuilt in DecodeState), hence unmetered
  // — the same rationale as the epoch stamps in util/epoch_array.h.
  std::vector<uint32_t> next_threshold_;
  std::vector<SetId> first_set_;            // R(u), n words
  std::vector<SetId> certificate_;          // C(u), n words
  DynamicBitset covered_;                   // U, n bits
  DynamicBitset in_solution_;               // membership, m bits
  std::vector<SetId> solution_order_;

  MemoryMeter meter_;
  MemoryMeter::ComponentId degrees_words_;
  MemoryMeter::ComponentId element_state_words_;
  MemoryMeter::ComponentId solution_words_;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_KK_ALGORITHM_H_
