#include "core/adversarial_level.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/math.h"
#include "util/sampling.h"
#include "util/simd.h"

namespace setcover {

AdversarialLevelAlgorithm::AdversarialLevelAlgorithm(
    uint64_t seed, AdversarialLevelParams params)
    : seed_(seed), params_(params), rng_(seed) {
  levels_words_ = meter_.Register("levels");
  element_state_words_ = meter_.Register("element_state");
  solution_words_ = meter_.Register("solution");
}

void AdversarialLevelAlgorithm::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  rng_ = Rng(seed_);
  const double sqrt_n =
      std::max(1.0, std::sqrt(static_cast<double>(meta.num_elements)));
  // Theorem 4 requires α >= 2√n; clamp requests below that.
  alpha_ = std::max(params_.alpha, 2.0 * sqrt_n);

  levels_.Assign(meta.num_sets);
  first_set_.assign(meta.num_elements, kNoSet);
  certificate_.assign(meta.num_elements, kNoSet);
  covered_ = DynamicBitset(meta.num_elements);
  in_solution_ = DynamicBitset(meta.num_sets);
  solution_order_.clear();
  peak_promoted_ = 0;
  meter_.Reset();
  meter_.Set(element_state_words_, 2 * size_t{meta.num_elements});

  // Line 6: D_0 gets every set with probability p_0 = α/m. Block-drawn
  // coins + a vectorized threshold scan, same coin sequence as the
  // scalar loop (util/sampling.h).
  const double p0 = alpha_ / static_cast<double>(meta.num_sets);
  ForEachBernoulliHit(rng_, meta.num_sets, p0, [&](SetId s) {
    in_solution_.Set(s);
    solution_order_.push_back(s);
    meter_.Add(solution_words_, 2);
  });
}

void AdversarialLevelAlgorithm::MaybeInclude(SetId s, uint32_t level) {
  // p_ℓ = (α²/n)^ℓ · α/m, clamped to 1.
  const double ratio =
      alpha_ * alpha_ / static_cast<double>(meta_.num_elements);
  double p = alpha_ / static_cast<double>(meta_.num_sets);
  for (uint32_t i = 0; i < level && p < 1.0; ++i) p *= ratio;
  if (rng_.Bernoulli(p) && in_solution_.Set(s)) {
    solution_order_.push_back(s);
    meter_.Add(solution_words_, 2);
  }
}

inline void AdversarialLevelAlgorithm::ProcessEdgeImpl(const Edge& edge) {
  const SetId s = edge.set;
  const ElementId u = edge.element;
  // Lines 9-10: remember an arbitrary (first) covering set.
  if (first_set_[u] == kNoSet) first_set_[u] = s;
  // Lines 11-12: ignore edges to already covered elements.
  if (covered_.Test(u)) return;

  // Lines 14-21: look up the level, promote with probability 1/α, and
  // on promotion run the inclusion coin for the new level.
  if (rng_.Bernoulli(1.0 / alpha_)) {
    auto [level, inserted] = levels_.Slot(s);
    ++level;  // first promotion takes the fresh slot from 0 to 1
    if (inserted) {
      meter_.Add(levels_words_, 2);  // key + value
      peak_promoted_ = std::max(peak_promoted_, levels_.Size());
    }
    MaybeInclude(s, level);
  }

  // Lines 22-24: if S is (now) in the solution it dominates u.
  if (in_solution_.Test(s)) {
    covered_.Set(u);
    certificate_[u] = s;
  }
}

void AdversarialLevelAlgorithm::ProcessEdge(const Edge& edge) {
  ProcessEdgeImpl(edge);
}

void AdversarialLevelAlgorithm::ProcessEdgeBatch(std::span<const Edge> edges) {
  // Phase 1 screens with gathered reads: an edge whose element was
  // covered (and had first_set recorded) at screen time returns from
  // the per-edge rule before any coin is drawn, so skipping it is
  // exact. Coverage and first_set only ever advance within a stream, so
  // positive screens cannot go stale mid-chunk. Phase 2 replays the
  // survivors through the unchanged scalar rule — coin stream,
  // promotions, meters and checkpoint bytes are bit-identical to the
  // per-edge path (the differential suite pins this per tier).
  constexpr size_t kChunk = 512;
  uint32_t ids[kChunk];
  uint64_t covered_mask[kChunk / 64];
  uint64_t unseen_mask[kChunk / 64];
  const simd::Kernels& kernels = simd::Active();
  while (!edges.empty()) {
    const size_t chunk = std::min(edges.size(), kChunk);
    for (size_t i = 0; i < chunk; ++i) ids[i] = edges[i].element;
    kernels.gather_bits(covered_.WordsData(), ids, chunk, covered_mask);
    kernels.gather_equal_u32(first_set_.data(), ids, chunk, kNoSet,
                             unseen_mask);
    const size_t mask_words = (chunk + 63) / 64;
    for (size_t w = 0; w < mask_words; ++w) {
      uint64_t live = ~(covered_mask[w] & ~unseen_mask[w]);
      if (w == mask_words - 1 && (chunk & 63) != 0) {
        live &= ~uint64_t{0} >> (64 - (chunk & 63));
      }
      const size_t base = w << 6;
      while (live != 0) {
        ProcessEdgeImpl(edges[base + size_t(std::countr_zero(live))]);
        live &= live - 1;
      }
    }
    edges = edges.subspan(chunk);
  }
}

CoverSolution AdversarialLevelAlgorithm::Finalize() {
  CoverSolution solution;
  solution.cover = solution_order_;
  solution.certificate = certificate_;
  // Lines 25-26: patch every uncovered element with R(u).
  for (ElementId u = 0; u < meta_.num_elements; ++u) {
    if (solution.certificate[u] == kNoSet && first_set_[u] != kNoSet) {
      solution.certificate[u] = first_set_[u];
      if (in_solution_.Set(first_set_[u])) {
        solution.cover.push_back(first_set_[u]);
      }
    }
  }
  return solution;
}

size_t AdversarialLevelAlgorithm::StateWords() const {
  return 4 + EncodedMapWords(levels_.Size()) +
         EncodedBoolVectorWords(covered_.size()) +
         EncodedU32VectorWords(first_set_.size()) +
         EncodedU32VectorWords(certificate_.size()) +
         EncodedU32VectorWords(solution_order_.size());
}

void AdversarialLevelAlgorithm::EncodeState(StateEncoder* encoder) const {
  // The space story of Theorem 4 made literal: only the *promoted*
  // sets' levels travel (Õ(m·n/α²) of them), plus Õ(n) element state
  // and the solution.
  for (uint64_t w : rng_.GetState()) encoder->PutWord(w);
  encoder->PutSortedPairs(levels_.SortedEntries());
  encoder->PutBitset(covered_);  // byte-identical to the PutBoolVector copy
  encoder->PutU32Vector(first_set_);
  encoder->PutU32Vector(certificate_);
  encoder->PutU32Vector(solution_order_);
}

bool AdversarialLevelAlgorithm::DecodeState(
    const StreamMetadata& meta, const std::vector<uint64_t>& words) {
  Begin(meta);
  StateDecoder decoder(words);
  std::array<uint64_t, 4> rng_state;
  for (uint64_t& w : rng_state) w = decoder.GetWord();
  auto levels = decoder.GetMap();
  DynamicBitset covered;
  decoder.GetBitset(&covered);
  std::vector<uint32_t> first_set = decoder.GetU32Vector();
  std::vector<uint32_t> certificate = decoder.GetU32Vector();
  std::vector<uint32_t> solution = decoder.GetU32Vector();
  // Dense state is indexed by id, so every id must be range-checked
  // before it is trusted (the hash containers used to tolerate junk).
  bool ids_ok = true;
  for (const auto& [s, level] : levels) ids_ok = ids_ok && s < meta.num_sets;
  for (uint32_t s : solution) ids_ok = ids_ok && s < meta.num_sets;
  for (uint32_t s : first_set)
    ids_ok = ids_ok && (s == kNoSet || s < meta.num_sets);
  if (!decoder.Done() || !ids_ok || covered.size() != meta.num_elements ||
      first_set.size() != meta.num_elements ||
      certificate.size() != meta.num_elements) {
    Begin(meta);
    return false;
  }
  rng_.SetState(rng_state);
  levels_.Assign(meta.num_sets);
  for (const auto& [s, level] : levels) levels_.Slot(s).first = level;
  covered_ = std::move(covered);
  first_set_ = std::move(first_set);
  certificate_ = std::move(certificate);
  solution_order_ = std::move(solution);
  in_solution_ = DynamicBitset(meta.num_sets);
  for (SetId s : solution_order_) in_solution_.Set(s);
  peak_promoted_ = std::max(peak_promoted_, levels_.Size());
  meter_.Set(levels_words_, 2 * levels_.Size());
  meter_.Set(solution_words_, 2 * solution_order_.size());
  return true;
}

std::vector<size_t> AdversarialLevelAlgorithm::LevelHistogram() const {
  uint32_t max_level = 0;
  levels_.ForEach([&](uint32_t, const uint32_t& level) {
    max_level = std::max(max_level, level);
  });
  std::vector<size_t> histogram(max_level + 1, 0);
  histogram[0] = meta_.num_sets - levels_.Size();
  levels_.ForEach(
      [&](uint32_t, const uint32_t& level) { ++histogram[level]; });
  return histogram;
}

}  // namespace setcover
