#ifndef SETCOVER_CORE_MULTI_PASS_H_
#define SETCOVER_CORE_MULTI_PASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/streaming_algorithm.h"
#include "util/memory_meter.h"
#include "util/types.h"

namespace setcover {

/// Interface for multi-pass edge-arrival streaming algorithms (the
/// related-work regime of paper §1.3: Saha–Getoor's O(log n)-pass
/// O(log n)-approximation, Chakrabarti–Wirth's p-pass trade-off,
/// Bateni et al.'s p-pass edge-arrival algorithm [6]).
///
/// Lifecycle: Begin(meta) once, then for pass = 0, 1, ...:
/// BeginPass(pass), ProcessEdge for the whole stream, EndPass(pass) —
/// which returns true while another pass is wanted — and finally
/// Finalize().
class MultiPassSetCoverAlgorithm {
 public:
  virtual ~MultiPassSetCoverAlgorithm() = default;

  virtual std::string Name() const = 0;
  virtual void Begin(const StreamMetadata& meta) = 0;
  virtual void BeginPass(uint32_t pass) = 0;
  virtual void ProcessEdge(const Edge& edge) = 0;
  /// Returns true if the algorithm wants another pass.
  virtual bool EndPass(uint32_t pass) = 0;
  virtual CoverSolution Finalize() = 0;
  virtual const MemoryMeter& Meter() const = 0;
};

/// Replays `stream` through `algorithm` until it stops asking for
/// passes (or `max_passes` as a safety net) and finalizes. Returns the
/// solution; the number of passes actually used goes to *passes_used.
CoverSolution RunMultiPass(MultiPassSetCoverAlgorithm& algorithm,
                           const EdgeStream& stream,
                           uint32_t max_passes = 64,
                           uint32_t* passes_used = nullptr);

/// Parameters for ProgressiveThresholdMultiPass.
struct MultiPassParams {
  /// Number of passes p. 0 = ⌈log₂ n⌉ + 1 (the full progressive
  /// schedule, giving the O(log n)-approximation of [22]/[11]).
  uint32_t passes = 0;
};

/// Progressive threshold greedy over p passes — the multi-pass
/// edge-arrival workhorse of §1.3. Pass i uses a gain threshold
/// T_i, geometrically decreasing from ~n/r to 1 with r = n^(1/p):
/// whenever a set's count of uncovered incident elements (within the
/// current pass) reaches T_i, the set joins the solution immediately
/// and covers its subsequently arriving elements.
///
/// Invariant: after a pass at threshold T, every unchosen set covers
/// < T uncovered elements, so the final pass at T = 1 leaves nothing
/// uncovered. Each chosen set covered ≥ T new elements at selection,
/// which yields the classic O(p·n^(1/p)) approximation — O(log n) for
/// p = log n — in exactly the shape of Chakrabarti–Wirth's trade-off
/// (their lower bound says the n^(Ω(1/p)) factor is unavoidable with
/// Õ(n) space; we spend Θ(m + n) like the paper's one-pass baselines).
///
/// Space: m words of per-pass counters + Õ(n) element state.
class ProgressiveThresholdMultiPass : public MultiPassSetCoverAlgorithm {
 public:
  explicit ProgressiveThresholdMultiPass(MultiPassParams params = {});

  std::string Name() const override { return "progressive-threshold"; }
  void Begin(const StreamMetadata& meta) override;
  void BeginPass(uint32_t pass) override;
  void ProcessEdge(const Edge& edge) override;
  bool EndPass(uint32_t pass) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }

  /// The threshold schedule in effect (valid after Begin()).
  const std::vector<uint32_t>& Thresholds() const { return thresholds_; }

  /// Sets added in each completed pass (valid any time).
  const std::vector<size_t>& SetsAddedPerPass() const {
    return added_per_pass_;
  }

 private:
  MultiPassParams params_;
  StreamMetadata meta_;
  std::vector<uint32_t> thresholds_;
  uint32_t current_threshold_ = 1;

  std::vector<uint32_t> pass_count_;   // per-set uncovered count, m words
  std::vector<bool> covered_;
  std::vector<bool> in_solution_;
  std::vector<SetId> certificate_;
  std::vector<SetId> first_set_;
  std::vector<SetId> solution_order_;
  std::vector<size_t> added_per_pass_;
  size_t added_this_pass_ = 0;

  MemoryMeter meter_;
  MemoryMeter::ComponentId counters_words_;
  MemoryMeter::ComponentId element_state_words_;
  MemoryMeter::ComponentId solution_words_;
};

/// Adapts a MultiPassSetCoverAlgorithm to the one-pass streaming
/// interface by inferring pass boundaries from the edge count: every
/// meta.stream_length delivered edges complete one pass (EndPass, then
/// BeginPass for the next). Pair it with a `passes = k` ScheduleSpec —
/// the scheduled source delivers the identical record sequence k times
/// and the adapter turns that concatenation back into the algorithm's
/// pass lifecycle, so engine::Execute over the schedule is
/// bit-identical to RunMultiPass over the raw stream.
///
/// Once the inner algorithm declines another pass (EndPass false) any
/// remaining scheduled edges are absorbed without effect; a schedule
/// cut short of the algorithm's wanted passes is closed out at
/// Finalize() (the progressive-threshold safety patching keeps the
/// cover feasible). Deliberately NOT registry-registered: the caller
/// must supply a schedule that matches the algorithm's pass count,
/// which the CLI does for --algorithm=progressive-threshold.
class MultiPassStreamAdapter final : public StreamingSetCoverAlgorithm {
 public:
  /// Non-owning; `inner` must outlive the adapter.
  explicit MultiPassStreamAdapter(MultiPassSetCoverAlgorithm& inner)
      : inner_(&inner) {}

  std::string Name() const override { return inner_->Name(); }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return inner_->Meter(); }

  /// EndPass calls issued so far.
  uint32_t PassesCompleted() const { return passes_completed_; }

 private:
  MultiPassSetCoverAlgorithm* inner_;
  StreamMetadata meta_;
  uint64_t edges_in_pass_ = 0;
  uint32_t pass_ = 0;
  uint32_t passes_completed_ = 0;
  /// The inner algorithm declined another pass; absorb further edges.
  bool saturated_ = false;
  /// A BeginPass has fired without its matching EndPass yet.
  bool open_pass_ = false;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_MULTI_PASS_H_
