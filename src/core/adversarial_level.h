#ifndef SETCOVER_CORE_ADVERSARIAL_LEVEL_H_
#define SETCOVER_CORE_ADVERSARIAL_LEVEL_H_

#include <cstdint>
#include <vector>

#include "core/streaming_algorithm.h"
#include "util/bitset.h"
#include "util/epoch_array.h"
#include "util/memory_meter.h"
#include "util/rng.h"
#include "util/types.h"

namespace setcover {

/// Parameters of Algorithm 2. `alpha` is the target approximation factor
/// α; the paper's Theorem 4 requires α >= 2√n and the constructor clamps
/// smaller values up to that bound.
struct AdversarialLevelParams {
  /// Target approximation factor α. 0 means "use 2√n" (the smallest
  /// value Theorem 4 allows, where the algorithm's space matches the
  /// Theorem 2 lower bound up to poly-logs).
  double alpha = 0.0;
};

/// Algorithm 2 (Theorem 4): the one-pass adversarial-order algorithm
/// with expected approximation O(α log m) and space Õ(m·n/α²) for
/// α = Ω̃(√n) — the paper's improvement over the KK algorithm for large
/// approximation factors.
///
/// Every set carries a level ℓ, initially 0 and stored explicitly (map
/// L) only once it exceeds 0. When an edge (S, u) with u uncovered
/// arrives, S's level is incremented with probability 1/α (the paper's
/// Coin(1/α)); upon reaching level ℓ the set is included in the partial
/// cover D_ℓ with probability p_ℓ = (α²/n)^ℓ · α/m. D_0 is sampled up
/// front at rate α/m. Uncovered elements are patched with R(u) at the
/// end.
///
/// The space win over KK: no per-set degree array — only the levels of
/// promoted sets are stored, and (Theorem 4's analysis) only Õ(m·n/α²)
/// sets are ever promoted. The in-memory representation of L is an
/// epoch-stamped dense array (O(1) lookup per edge, O(1) clear), but
/// the *state* — what EncodeState forwards and the meter charges — is
/// still only the promoted entries, so the Theorem 4 space story is
/// unchanged (util/memory_meter.h documents why container overhead is
/// excluded from word accounting).
class AdversarialLevelAlgorithm : public StreamingSetCoverAlgorithm {
 public:
  explicit AdversarialLevelAlgorithm(uint64_t seed,
                                     AdversarialLevelParams params = {});

  std::string Name() const override { return "adversarial-level"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

  /// The α in effect for the current run (after clamping). Valid after
  /// Begin().
  double EffectiveAlpha() const { return alpha_; }

  /// Number of sets holding each level at the end of the stream
  /// (entry ℓ counts sets with level exactly ℓ; entry 0 is m minus the
  /// promoted sets). Valid after Finalize().
  std::vector<size_t> LevelHistogram() const;

  /// Sets included by sampling into some D_ℓ (before patching).
  size_t SampledCoverSize() const { return solution_order_.size(); }

  /// Peak number of promoted sets (the size of L) — the quantity the
  /// Õ(m·n/α²) space bound is about.
  size_t PeakPromotedSets() const { return peak_promoted_; }

 private:
  void MaybeInclude(SetId s, uint32_t level);
  inline void ProcessEdgeImpl(const Edge& edge);

  uint64_t seed_;
  AdversarialLevelParams params_;
  Rng rng_;
  StreamMetadata meta_;
  double alpha_ = 1.0;

  EpochArray<uint32_t> levels_;   // L: promoted sets only (dense rep)
  std::vector<SetId> first_set_;  // R(u)
  std::vector<SetId> certificate_;  // C(u)
  DynamicBitset covered_;         // U
  DynamicBitset in_solution_;     // ∪ D_ℓ
  std::vector<SetId> solution_order_;
  size_t peak_promoted_ = 0;

  MemoryMeter meter_;
  MemoryMeter::ComponentId levels_words_;
  MemoryMeter::ComponentId element_state_words_;
  MemoryMeter::ComponentId solution_words_;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_ADVERSARIAL_LEVEL_H_
