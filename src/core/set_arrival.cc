#include "core/set_arrival.h"

#include <algorithm>

#include "util/math.h"

namespace setcover {

SetArrivalThreshold::SetArrivalThreshold(uint32_t threshold)
    : requested_threshold_(threshold) {
  element_state_words_ = meter_.Register("element_state");
  run_buffer_words_ = meter_.Register("run_buffer");
  solution_words_ = meter_.Register("solution");
}

void SetArrivalThreshold::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  threshold_ = requested_threshold_ != 0
                   ? requested_threshold_
                   : std::max<uint32_t>(
                         1, static_cast<uint32_t>(ISqrt(meta.num_elements)));
  current_set_ = kNoSet;
  run_uncovered_.clear();
  covered_.assign(meta.num_elements, false);
  certificate_.assign(meta.num_elements, kNoSet);
  first_set_.assign(meta.num_elements, kNoSet);
  solution_order_.clear();
  in_solution_.assign(meta.num_sets, false);
  meter_.Reset();
  meter_.Set(element_state_words_, 2 * size_t{meta.num_elements});
}

void SetArrivalThreshold::FlushRun() {
  if (current_set_ == kNoSet) return;
  if (run_uncovered_.size() >= threshold_ &&
      !in_solution_[current_set_]) {
    in_solution_[current_set_] = true;
    solution_order_.push_back(current_set_);
    meter_.Add(solution_words_, 1);
    for (ElementId u : run_uncovered_) {
      covered_[u] = true;
      certificate_[u] = current_set_;
    }
  }
  run_uncovered_.clear();
  meter_.Set(run_buffer_words_, 0);
}

void SetArrivalThreshold::ProcessEdge(const Edge& edge) {
  if (edge.set != current_set_) {
    FlushRun();
    current_set_ = edge.set;
  }
  if (first_set_[edge.element] == kNoSet)
    first_set_[edge.element] = edge.set;
  if (!covered_[edge.element]) {
    run_uncovered_.push_back(edge.element);
    meter_.Add(run_buffer_words_, 1);
  }
}

void SetArrivalThreshold::ProcessEdgeBatch(std::span<const Edge> edges) {
  // Runs may straddle batch boundaries; ProcessEdge's run detection is
  // purely sequential state, so a plain loop is already exact.
  for (const Edge& e : edges) ProcessEdge(e);
}

void SetArrivalThreshold::EncodeState(StateEncoder* encoder) const {
  encoder->PutWord(current_set_);
  encoder->PutU32Vector(run_uncovered_);
  std::vector<bool> covered(covered_.begin(), covered_.end());
  encoder->PutBoolVector(covered);
  encoder->PutU32Vector(certificate_);
  encoder->PutU32Vector(first_set_);
  encoder->PutU32Vector(solution_order_);
}

bool SetArrivalThreshold::DecodeState(const StreamMetadata& meta,
                                      const std::vector<uint64_t>& words) {
  Begin(meta);
  StateDecoder decoder(words);
  uint64_t current_set = decoder.GetWord();
  std::vector<uint32_t> run_uncovered = decoder.GetU32Vector();
  std::vector<bool> covered = decoder.GetBoolVector();
  std::vector<uint32_t> certificate = decoder.GetU32Vector();
  std::vector<uint32_t> first_set = decoder.GetU32Vector();
  std::vector<uint32_t> solution = decoder.GetU32Vector();
  bool ids_ok = current_set == kNoSet || current_set < meta.num_sets;
  for (uint32_t u : run_uncovered) ids_ok = ids_ok && u < meta.num_elements;
  for (uint32_t s : solution) ids_ok = ids_ok && s < meta.num_sets;
  if (!decoder.Done() || !ids_ok ||
      covered.size() != meta.num_elements ||
      certificate.size() != meta.num_elements ||
      first_set.size() != meta.num_elements) {
    Begin(meta);
    return false;
  }
  current_set_ = static_cast<SetId>(current_set);
  run_uncovered_ = std::move(run_uncovered);
  covered_.assign(covered.begin(), covered.end());
  certificate_ = std::move(certificate);
  first_set_ = std::move(first_set);
  solution_order_ = std::move(solution);
  in_solution_.assign(meta.num_sets, false);
  for (SetId s : solution_order_) in_solution_[s] = true;
  meter_.Set(run_buffer_words_, run_uncovered_.size());
  meter_.Set(solution_words_, solution_order_.size());
  return true;
}

size_t SetArrivalThreshold::StateWords() const {
  return 1 + EncodedU32VectorWords(run_uncovered_.size()) +
         EncodedBoolVectorWords(covered_.size()) +
         2 * EncodedU32VectorWords(certificate_.size()) +
         EncodedU32VectorWords(solution_order_.size());
}

CoverSolution SetArrivalThreshold::Finalize() {
  FlushRun();
  CoverSolution solution;
  solution.cover = solution_order_;
  solution.certificate = certificate_;
  for (ElementId u = 0; u < meta_.num_elements; ++u) {
    if (solution.certificate[u] == kNoSet && first_set_[u] != kNoSet) {
      solution.certificate[u] = first_set_[u];
      if (!in_solution_[first_set_[u]]) {
        in_solution_[first_set_[u]] = true;
        solution.cover.push_back(first_set_[u]);
      }
    }
  }
  return solution;
}

}  // namespace setcover
