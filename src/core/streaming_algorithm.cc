#include "core/streaming_algorithm.h"

#include <cassert>

namespace setcover {

void ProcessBatchCheckedForEquivalence(StreamingSetCoverAlgorithm& algorithm,
                                       const StreamMetadata& meta,
                                       std::span<const Edge> edges) {
  StateEncoder before;
  algorithm.EncodeState(&before);
  if (before.SizeWords() == 0) {
    // No state serialization: the batch/per-edge comparison needs a
    // rewind, so just process normally.
    algorithm.ProcessEdgeBatch(edges);
    return;
  }
  algorithm.ProcessEdgeBatch(edges);
  StateEncoder batched;
  algorithm.EncodeState(&batched);

  const bool rewound = algorithm.DecodeState(meta, before.Words());
  assert(rewound &&
         "state written by EncodeState must round-trip through "
         "DecodeState");
  if (!rewound) return;  // unreachable under assert; keep state sane
  for (const Edge& e : edges) algorithm.ProcessEdge(e);
  StateEncoder per_edge;
  algorithm.EncodeState(&per_edge);
  assert(batched.Words() == per_edge.Words() &&
         "ProcessEdgeBatch must leave state bit-identical to the "
         "per-edge path");
  (void)batched;
  (void)per_edge;
}

}  // namespace setcover
