#include "core/max_coverage.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/bitset.h"

namespace setcover {

MaxCoverageResult GreedyMaxCoverage(const SetCoverInstance& instance,
                                    uint32_t budget) {
  MaxCoverageResult result;
  DynamicBitset covered(instance.NumElements());
  using Entry = std::pair<uint32_t, SetId>;
  std::priority_queue<Entry> heap;
  for (SetId s = 0; s < instance.NumSets(); ++s) {
    uint32_t size = static_cast<uint32_t>(instance.Set(s).size());
    if (size > 0) heap.push({size, s});
  }
  while (result.chosen.size() < budget && !heap.empty()) {
    auto [stale_gain, s] = heap.top();
    heap.pop();
    uint32_t gain = 0;
    for (ElementId u : instance.Set(s)) gain += covered.Test(u) ? 0 : 1;
    if (gain == 0) continue;
    if (!heap.empty() && gain < heap.top().first) {
      heap.push({gain, s});
      continue;
    }
    result.chosen.push_back(s);
    for (ElementId u : instance.Set(s)) covered.Set(u);
  }
  result.covered_elements = covered.Count();
  return result;
}

StreamingMaxCoverage::StreamingMaxCoverage(uint32_t budget,
                                           double threshold_fraction)
    : budget_(std::max(1u, budget)),
      threshold_fraction_(threshold_fraction) {
  counters_words_ = meter_.Register("counters");
  element_state_words_ = meter_.Register("element_state");
}

void StreamingMaxCoverage::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  threshold_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(
             threshold_fraction_ * double(meta.num_elements) /
             double(budget_))));
  uncovered_count_.assign(meta.num_sets, 0);
  covered_.assign(meta.num_elements, false);
  chosen_.assign(meta.num_sets, false);
  chosen_order_.clear();
  covered_total_ = 0;
  meter_.Reset();
  meter_.Set(counters_words_, meta.num_sets);
  meter_.Set(element_state_words_, meta.num_elements / 64 + 1);
}

void StreamingMaxCoverage::ProcessEdge(const Edge& edge) {
  const SetId s = edge.set;
  const ElementId u = edge.element;
  if (chosen_[s]) {
    if (!covered_[u]) {
      covered_[u] = true;
      ++covered_total_;
    }
    return;
  }
  if (covered_[u]) return;
  uint32_t c = ++uncovered_count_[s];
  if (c >= threshold_ && chosen_order_.size() < budget_) {
    chosen_[s] = true;
    chosen_order_.push_back(s);
    covered_[u] = true;
    ++covered_total_;
  }
}

MaxCoverageResult StreamingMaxCoverage::Finalize() {
  // Spend leftover budget on the largest residual counters — the sets
  // that nearly cleared the threshold.
  if (chosen_order_.size() < budget_) {
    std::vector<SetId> candidates;
    for (SetId s = 0; s < meta_.num_sets; ++s) {
      if (!chosen_[s] && uncovered_count_[s] > 0) candidates.push_back(s);
    }
    size_t want = budget_ - chosen_order_.size();
    if (candidates.size() > want) {
      std::nth_element(candidates.begin(), candidates.begin() + want,
                       candidates.end(), [&](SetId a, SetId b) {
                         return uncovered_count_[a] > uncovered_count_[b];
                       });
      candidates.resize(want);
    }
    for (SetId s : candidates) {
      chosen_[s] = true;
      chosen_order_.push_back(s);
    }
    // Counters over-estimate residual gains (earlier elements may have
    // been covered later by other sets), so the exact covered count of
    // the late picks is unknown in-stream; report the certain floor.
  }
  MaxCoverageResult result;
  result.chosen = chosen_order_;
  result.covered_elements = covered_total_;
  return result;
}

MaxCoverageResult RunStreamingMaxCoverage(const EdgeStream& stream,
                                          uint32_t budget,
                                          double threshold_fraction) {
  StreamingMaxCoverage algorithm(budget, threshold_fraction);
  algorithm.Begin(stream.meta);
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  return algorithm.Finalize();
}

size_t CoverageOf(const SetCoverInstance& instance,
                  const std::vector<SetId>& chosen) {
  DynamicBitset covered(instance.NumElements());
  for (SetId s : chosen) {
    for (ElementId u : instance.Set(s)) covered.Set(u);
  }
  return covered.Count();
}

}  // namespace setcover
