#ifndef SETCOVER_CORE_MAX_COVERAGE_H_
#define SETCOVER_CORE_MAX_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "instance/instance.h"
#include "stream/stream.h"
#include "util/memory_meter.h"
#include "util/types.h"

namespace setcover {

/// Budgeted maximum coverage — the sibling objective of the paper's
/// motivating applications (Saha & Getoor's blog-watch [22] is a
/// max-coverage problem; Bateni et al. [6], the first edge-arrival
/// paper, treats "coverage problems" generally): choose at most
/// `budget` sets maximizing the number of covered elements.
struct MaxCoverageResult {
  std::vector<SetId> chosen;   // ≤ budget distinct sets
  size_t covered_elements = 0;
};

/// Offline greedy max coverage (lazy evaluation): the classic
/// (1 − 1/e)-approximation, used as the quality yardstick.
MaxCoverageResult GreedyMaxCoverage(const SetCoverInstance& instance,
                                    uint32_t budget);

/// One-pass *edge-arrival* max coverage via the paper's
/// uncovered-degree counter technique: a set whose count of
/// yet-uncovered incident elements reaches the threshold
/// τ = threshold_fraction·n/budget is taken (covering its subsequent
/// elements) until the budget is exhausted; any leftover budget is
/// spent at the end on the sets with the largest residual counters.
///
/// Rationale (the standard threshold argument): if the budget fills,
/// coverage ≥ budget·τ; if not, every unchosen set's *observed*
/// residual gain stayed below τ, so the optimum's advantage is at most
/// budget·τ over the chosen sets plus the arrival-order loss. One pass,
/// Θ(m + n) space — the KK-style counters, repurposed.
class StreamingMaxCoverage {
 public:
  /// `threshold_fraction` scales τ (default 0.5 → τ = n/(2·budget)).
  StreamingMaxCoverage(uint32_t budget, double threshold_fraction = 0.5);

  void Begin(const StreamMetadata& meta);
  void ProcessEdge(const Edge& edge);
  MaxCoverageResult Finalize();

  const MemoryMeter& Meter() const { return meter_; }

 private:
  uint32_t budget_;
  double threshold_fraction_;
  uint32_t threshold_ = 1;
  StreamMetadata meta_;

  std::vector<uint32_t> uncovered_count_;
  std::vector<bool> covered_;
  std::vector<bool> chosen_;
  std::vector<SetId> chosen_order_;
  size_t covered_total_ = 0;

  MemoryMeter meter_;
  MemoryMeter::ComponentId counters_words_;
  MemoryMeter::ComponentId element_state_words_;
};

/// Streams the instance through StreamingMaxCoverage and returns the
/// result (convenience wrapper).
MaxCoverageResult RunStreamingMaxCoverage(const EdgeStream& stream,
                                          uint32_t budget,
                                          double threshold_fraction = 0.5);

/// Exact covered-element count of a chosen family (validation helper).
size_t CoverageOf(const SetCoverInstance& instance,
                  const std::vector<SetId>& chosen);

}  // namespace setcover

#endif  // SETCOVER_CORE_MAX_COVERAGE_H_
