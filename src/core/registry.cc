#include "core/registry.h"

#include "core/adversarial_level.h"
#include "core/element_sampling.h"
#include "core/kk_algorithm.h"
#include "core/multi_run.h"
#include "core/random_order.h"
#include "core/set_arrival.h"
#include "core/trivial.h"

namespace setcover {

std::vector<std::string> RegisteredAlgorithmNames() {
  return {
      "kk",
      "adversarial-level",
      "random-order",
      "random-order-sketch",
      "random-order-paper",
      "random-order-nguess",
      "element-sampling",
      "set-arrival-threshold",
      "first-set-patching",
      "store-everything-greedy",
  };
}

std::unique_ptr<StreamingSetCoverAlgorithm> MakeAlgorithmByName(
    const std::string& name, const AlgorithmOptions& options) {
  if (name == "kk") {
    return std::make_unique<KkAlgorithm>(options.seed);
  }
  if (name == "adversarial-level") {
    AdversarialLevelParams params;
    params.alpha = options.alpha;
    return std::make_unique<AdversarialLevelAlgorithm>(options.seed,
                                                       params);
  }
  if (name == "random-order") {
    return std::make_unique<RandomOrderAlgorithm>(options.seed);
  }
  if (name == "random-order-sketch") {
    RandomOrderParams params;
    params.use_sketch_epoch0 = true;
    return std::make_unique<RandomOrderAlgorithm>(options.seed, params);
  }
  if (name == "random-order-paper") {
    return std::make_unique<RandomOrderAlgorithm>(
        options.seed, RandomOrderParams::PaperFaithful());
  }
  if (name == "random-order-nguess") {
    return std::make_unique<NGuessRandomOrder>(
        options.seed, RandomOrderParams{}, options.threads);
  }
  if (name == "element-sampling") {
    ElementSamplingParams params;
    params.alpha = options.alpha;
    return std::make_unique<ElementSamplingAlgorithm>(options.seed,
                                                      params);
  }
  if (name == "set-arrival-threshold") {
    return std::make_unique<SetArrivalThreshold>();
  }
  if (name == "first-set-patching") {
    return std::make_unique<FirstSetPatching>();
  }
  if (name == "store-everything-greedy") {
    return std::make_unique<StoreEverythingGreedy>();
  }
  return nullptr;
}

}  // namespace setcover
