#include "core/registry.h"

#include <algorithm>
#include <cmath>

#include "core/adversarial_level.h"
#include "core/element_sampling.h"
#include "core/kk_algorithm.h"
#include "core/multi_run.h"
#include "core/random_order.h"
#include "core/set_arrival.h"
#include "core/trivial.h"

namespace setcover {

namespace {

std::vector<AlgorithmInfo> BuildRegistry() {
  std::vector<AlgorithmInfo> registry;
  registry.push_back(
      {"kk",
       "Theorem 1 baseline: uncovered-degree counters with probabilistic "
       "inclusion at sqrt(n) thresholds",
       "O~(m)",
       "O~(sqrt n)",
       {"adversarial", "random"},
       /*shardable=*/true,
       [](const AlgorithmOptions& options) {
         return std::make_unique<KkAlgorithm>(options.seed);
       }});
  registry.push_back(
      {"adversarial-level",
       "Algorithm 2 (Theorem 4): per-set levels promoted per uncovered "
       "edge, level-l inclusion probability p_l",
       "O~(m*n/alpha^2)",
       "O(alpha*log m), alpha >= 2*sqrt(n)",
       {"adversarial", "random"},
       /*shardable=*/true,
       [](const AlgorithmOptions& options) {
         AdversarialLevelParams params;
         params.alpha = options.alpha;
         return std::make_unique<AdversarialLevelAlgorithm>(options.seed,
                                                            params);
       }});
  registry.push_back(
      {"random-order",
       "Algorithm 1 (Theorem 3, main result): epoch sampling + heavy "
       "element detection + tracking sample + patching",
       "O~(m/sqrt n)",
       "O~(sqrt n)",
       {"random"},
       /*shardable=*/true,
       [](const AlgorithmOptions& options) {
         return std::make_unique<RandomOrderAlgorithm>(options.seed);
       }});
  registry.push_back(
      {"random-order-sketch",
       "Algorithm 1 with Count-Min replacing the exact epoch-0 degree "
       "counters",
       "O~(m/sqrt n)",
       "O~(sqrt n)",
       {"random"},
       /*shardable=*/true,
       [](const AlgorithmOptions& options) {
         RandomOrderParams params;
         params.use_sketch_epoch0 = true;
         return std::make_unique<RandomOrderAlgorithm>(options.seed, params);
       }});
  registry.push_back(
      {"random-order-paper",
       "Algorithm 1 with the paper's literal poly-log constants "
       "(uncalibrated)",
       "O~(m/sqrt n)",
       "O~(sqrt n)",
       {"random"},
       /*shardable=*/true,
       [](const AlgorithmOptions& options) {
         return std::make_unique<RandomOrderAlgorithm>(
             options.seed, RandomOrderParams::PaperFaithful());
       }});
  registry.push_back(
      {"random-order-nguess",
       "Algorithm 1 without the known-N assumption: parallel guesses "
       "2^i*m/sqrt(n) per paper 4.1",
       "O~(m/sqrt n) * log(n^1.5)",
       "O~(sqrt n)",
       {"random"},
       /*shardable=*/false,  // already a parallel multi-run wrapper
       [](const AlgorithmOptions& options) {
         return std::make_unique<NGuessRandomOrder>(
             options.seed, RandomOrderParams{}, options.threads);
       }});
  registry.push_back(
      {"element-sampling",
       "AKL-style element sampling (Table 1 row 1): solve greedily on a "
       "sampled sub-universe, patch the rest",
       "O~(m*n/alpha)",
       "O~(alpha), alpha = o(sqrt n)",
       {"adversarial", "random"},
       /*shardable=*/true,
       [](const AlgorithmOptions& options) {
         ElementSamplingParams params;
         params.alpha = options.alpha;
         return std::make_unique<ElementSamplingAlgorithm>(options.seed,
                                                           params);
       }});
  registry.push_back(
      {"set-arrival-threshold",
       "Emek-Rosen-style set-arrival baseline; needs each set's edges "
       "contiguous (set-major order)",
       "O~(n)",
       "Theta(sqrt n)",
       {"set-major"},
       /*shardable=*/true,
       [](const AlgorithmOptions&) {
         return std::make_unique<SetArrivalThreshold>();
       }});
  registry.push_back(
      {"first-set-patching",
       "Trivial bracket: first witnessing set per element, deduplicated",
       "O~(n)",
       "<= n",
       {"adversarial", "random"},
       /*shardable=*/true,
       [](const AlgorithmOptions&) {
         return std::make_unique<FirstSetPatching>();
       }});
  registry.push_back(
      {"store-everything-greedy",
       "Trivial bracket: buffer the whole stream, run offline greedy at "
       "finalize",
       "Theta(N)",
       "ln n",
       {"adversarial", "random"},
       /*shardable=*/false,  // Theta(N) buffering: the offline comparator
       [](const AlgorithmOptions&) {
         return std::make_unique<StoreEverythingGreedy>();
       }});
  return registry;
}

/// Classic Levenshtein distance, small strings only (registry names).
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t previous = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

}  // namespace

const std::vector<AlgorithmInfo>& AlgorithmRegistry() {
  static const std::vector<AlgorithmInfo> registry = BuildRegistry();
  return registry;
}

const AlgorithmInfo* FindAlgorithm(const std::string& name) {
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::vector<std::string> RegisteredAlgorithmNames() {
  std::vector<std::string> names;
  names.reserve(AlgorithmRegistry().size());
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    names.push_back(info.name);
  }
  return names;
}

std::unique_ptr<StreamingSetCoverAlgorithm> MakeAlgorithmByName(
    const std::string& name, const AlgorithmOptions& options) {
  const AlgorithmInfo* info = FindAlgorithm(name);
  return info == nullptr ? nullptr : info->factory(options);
}

std::string SuggestAlgorithmName(const std::string& name) {
  if (name.empty()) return "";
  std::string best;
  size_t best_distance = 0;
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    size_t distance = EditDistance(name, info.name);
    if (best.empty() || distance < best_distance) {
      best = info.name;
      best_distance = distance;
    }
  }
  // A suggestion that would rewrite more than half of the typed name is
  // noise, not help.
  if (best_distance * 2 > std::max(name.size(), size_t{1})) return "";
  return best;
}

std::string UnknownAlgorithmError(const std::string& name) {
  std::string message = "unknown algorithm '" + name + "'";
  std::string suggestion = SuggestAlgorithmName(name);
  if (!suggestion.empty()) {
    message += " (did you mean '" + suggestion + "'?)";
  }
  message += "; registered algorithms:";
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    message += " " + info.name;
  }
  return message;
}

std::vector<std::string> ShardableAlgorithmNames() {
  std::vector<std::string> names;
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    if (info.shardable) names.push_back(info.name);
  }
  return names;
}

std::string NotShardableError(const std::string& name) {
  std::string message = "algorithm '" + name + "' is not shardable";
  const AlgorithmInfo* info = FindAlgorithm(name);
  if (info != nullptr) {
    // Say *why* this row opted out, straight from its registry comment.
    message += name == "random-order-nguess"
                   ? " (it is already a parallel multi-run wrapper)"
                   : " (it buffers the whole stream; sharding cannot "
                     "reduce its space)";
  }
  message += "; run without --shards, or pick a shardable algorithm:";
  for (const std::string& shardable : ShardableAlgorithmNames()) {
    message += " " + shardable;
  }
  return message;
}

}  // namespace setcover
