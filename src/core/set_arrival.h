#ifndef SETCOVER_CORE_SET_ARRIVAL_H_
#define SETCOVER_CORE_SET_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "core/streaming_algorithm.h"
#include "util/memory_meter.h"
#include "util/types.h"

namespace setcover {

/// The classic one-pass *set-arrival* baseline (Emek–Rosén style
/// threshold greedy, §1 context): a Θ(√n)-approximation with Õ(n) space
/// — but only when each set arrives contiguously (the kSetMajor order).
///
/// Rule: buffer the uncovered elements of the currently arriving set;
/// when the set ends, add it to the solution if it would cover at least
/// √n still-uncovered elements. Leftover elements are patched with
/// their first incident set. Every optimal set leaves < √n elements
/// uncovered when it passes, so the patching adds at most OPT·√n sets
/// and the threshold adds at most n/√n = √n: ratio <= 2√n·OPT overall.
///
/// On non-contiguous (true edge-arrival) orders the algorithm treats
/// each maximal run of equal set ids as a "set"; it still emits a valid
/// cover via patching, but the quality guarantee evaporates — which is
/// precisely the set-arrival vs edge-arrival gap the paper's
/// introduction describes, and what the separation bench measures.
class SetArrivalThreshold : public StreamingSetCoverAlgorithm {
 public:
  /// `threshold` = 0 means use √n.
  explicit SetArrivalThreshold(uint32_t threshold = 0);

  std::string Name() const override { return "set-arrival-threshold"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

 private:
  void FlushRun();

  uint32_t requested_threshold_;
  uint32_t threshold_ = 1;
  StreamMetadata meta_;

  SetId current_set_ = kNoSet;
  std::vector<ElementId> run_uncovered_;  // uncovered elements of the run
  std::vector<bool> covered_;
  std::vector<SetId> certificate_;
  std::vector<SetId> first_set_;
  std::vector<SetId> solution_order_;
  std::vector<bool> in_solution_;

  MemoryMeter meter_;
  MemoryMeter::ComponentId element_state_words_;
  MemoryMeter::ComponentId run_buffer_words_;
  MemoryMeter::ComponentId solution_words_;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_SET_ARRIVAL_H_
