#ifndef SETCOVER_CORE_REGISTRY_H_
#define SETCOVER_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/streaming_algorithm.h"

namespace setcover {

/// Options understood by the registry factory; algorithms ignore the
/// fields that do not apply to them.
struct AlgorithmOptions {
  uint64_t seed = 1;
  /// Target approximation factor α for adversarial-level /
  /// element-sampling (0 = each algorithm's default).
  double alpha = 0.0;
  /// Parallelism for multi-run algorithms (random-order-nguess fans its
  /// guesses out across this many threads). Results are bit-identical
  /// at any value; 1 = sequential. Single-run algorithms ignore it.
  unsigned threads = 1;
};

/// Names accepted by MakeAlgorithmByName, in presentation order:
///   kk                      — Theorem 1 baseline
///   adversarial-level       — Algorithm 2 (Theorem 4)
///   random-order            — Algorithm 1 (Theorem 3)
///   random-order-sketch     — Algorithm 1 with Count-Min epoch 0
///   random-order-paper      — Algorithm 1 with the literal constants
///   random-order-nguess     — Algorithm 1 without the known-N assumption
///   element-sampling        — AKL-style α = o(√n) algorithm
///   set-arrival-threshold   — set-arrival baseline
///   first-set-patching      — trivial Õ(n)-space baseline
///   store-everything-greedy — trivial Θ(N)-space comparator
std::vector<std::string> RegisteredAlgorithmNames();

/// Creates the named algorithm, or nullptr for an unknown name.
std::unique_ptr<StreamingSetCoverAlgorithm> MakeAlgorithmByName(
    const std::string& name, const AlgorithmOptions& options = {});

}  // namespace setcover

#endif  // SETCOVER_CORE_REGISTRY_H_
