#ifndef SETCOVER_CORE_REGISTRY_H_
#define SETCOVER_CORE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/streaming_algorithm.h"

namespace setcover {

/// Options understood by the registry factory; algorithms ignore the
/// fields that do not apply to them.
struct AlgorithmOptions {
  uint64_t seed = 1;
  /// Target approximation factor α for adversarial-level /
  /// element-sampling (0 = each algorithm's default).
  double alpha = 0.0;
  /// Parallelism for multi-run algorithms (random-order-nguess fans its
  /// guesses out across this many threads). Results are bit-identical
  /// at any value; 1 = sequential. Single-run algorithms ignore it.
  unsigned threads = 1;
};

/// One self-describing registry row: everything the engine and the CLI
/// need to enumerate, document, and instantiate an algorithm without a
/// hard-coded name list. `supported_orders` names the arrival orders
/// under which the stated space/approximation guarantees hold
/// ("adversarial" means any order); correctness — a valid cover with a
/// valid certificate — is unconditional for every algorithm on every
/// order, exactly as in the paper.
struct AlgorithmInfo {
  std::string name;
  std::string description;  // one line, for `setcover_cli describe`
  std::string space_class;  // e.g. "O~(m)" — Table 1's space column
  std::string approx_class; // e.g. "O~(sqrt n)" — Table 1's ratio column
  std::vector<std::string> supported_orders;
  /// The algorithm can serve as the per-shard worker of the sharded
  /// execution mode (engine/sharded.h): W independent instances each
  /// consume the set-partitioned slice of the stream and their covers
  /// merge through the deterministic t-party protocol. Requires a
  /// single-run algorithm (no nested multi-run parallelism) whose
  /// per-shard space stays sublinear in the slice — the two trivial
  /// brackets that violate one of those stay unshardable.
  bool shardable = false;
  std::function<std::unique_ptr<StreamingSetCoverAlgorithm>(
      const AlgorithmOptions&)>
      factory;
};

/// The registry, in presentation order:
///   kk                      — Theorem 1 baseline
///   adversarial-level       — Algorithm 2 (Theorem 4)
///   random-order            — Algorithm 1 (Theorem 3)
///   random-order-sketch     — Algorithm 1 with Count-Min epoch 0
///   random-order-paper      — Algorithm 1 with the literal constants
///   random-order-nguess     — Algorithm 1 without the known-N assumption
///   element-sampling        — AKL-style α = o(√n) algorithm
///   set-arrival-threshold   — set-arrival baseline
///   first-set-patching      — trivial Õ(n)-space baseline
///   store-everything-greedy — trivial Θ(N)-space comparator
const std::vector<AlgorithmInfo>& AlgorithmRegistry();

/// Registry row for `name`, or nullptr for an unknown name.
const AlgorithmInfo* FindAlgorithm(const std::string& name);

/// Names accepted by MakeAlgorithmByName, in presentation order.
std::vector<std::string> RegisteredAlgorithmNames();

/// Creates the named algorithm, or nullptr for an unknown name.
std::unique_ptr<StreamingSetCoverAlgorithm> MakeAlgorithmByName(
    const std::string& name, const AlgorithmOptions& options = {});

/// Registered name closest to `name` by edit distance, or "" when
/// nothing is plausibly close (more than half the typed name would have
/// to change). Powers "did you mean" in CLI and engine errors.
std::string SuggestAlgorithmName(const std::string& name);

/// Ready-to-print diagnostic for an unknown algorithm name: the
/// registered names plus a nearest-name suggestion when one is close.
/// Shared by the CLI and engine::Execute so every entry point fails the
/// same helpful way.
std::string UnknownAlgorithmError(const std::string& name);

/// Names of the algorithms whose registry row marks them shardable, in
/// presentation order.
std::vector<std::string> ShardableAlgorithmNames();

/// Ready-to-print diagnostic for requesting shards with an algorithm
/// whose metadata is not shardable: says why it was refused and lists
/// the shardable names (plus a "did you mean" when the typed name is
/// close to a shardable one). Shared by the CLI and
/// engine::ExecuteSharded. Assumes `name` is registered — unknown names
/// get UnknownAlgorithmError instead.
std::string NotShardableError(const std::string& name);

}  // namespace setcover

#endif  // SETCOVER_CORE_REGISTRY_H_
