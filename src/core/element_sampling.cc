#include "core/element_sampling.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "offline/greedy.h"
#include "util/math.h"
#include "util/simd.h"

namespace setcover {

ElementSamplingAlgorithm::ElementSamplingAlgorithm(
    uint64_t seed, ElementSamplingParams params)
    : seed_(seed), params_(params), rng_(seed) {
  element_state_words_ = meter_.Register("element_state");
  projection_words_ = meter_.Register("projected_edges");
}

void ElementSamplingAlgorithm::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  rng_ = Rng(seed_);
  const double n = std::max(1.0, double(meta.num_elements));
  const double alpha =
      params_.alpha > 0 ? params_.alpha : std::max(1.0, std::sqrt(n));
  const double log2m = Log2AtLeast(meta.num_sets, 1.0);
  sample_size_ = static_cast<size_t>(std::min(
      n, std::max(1.0, params_.sample_constant * n / alpha * log2m)));

  std::vector<ElementId> sample = rng_.RandomSubset(
      meta.num_elements, static_cast<uint32_t>(sample_size_));
  in_sample_.Assign(meta.num_elements);
  sample_index_.assign(meta.num_elements, 0);
  for (size_t i = 0; i < sample.size(); ++i) {
    in_sample_.Set(sample[i]);
    sample_index_[sample[i]] = static_cast<ElementId>(i);
  }
  projected_edges_.clear();
  first_set_.assign(meta.num_elements, kNoSet);

  meter_.Reset();
  // R(u) = n words; the sample indicator is n bits = n/64 words.
  meter_.Set(element_state_words_,
             size_t{meta.num_elements} + meta.num_elements / 64 + 1);
}

inline void ElementSamplingAlgorithm::ProcessEdgeImpl(const Edge& edge) {
  if (first_set_[edge.element] == kNoSet)
    first_set_[edge.element] = edge.set;
  if (in_sample_.Test(edge.element)) {
    projected_edges_.push_back(edge);
    meter_.Add(projection_words_, 1);
  }
}

void ElementSamplingAlgorithm::ProcessEdge(const Edge& edge) {
  ProcessEdgeImpl(edge);
}

void ElementSamplingAlgorithm::ProcessEdgeBatch(std::span<const Edge> edges) {
  // An edge does work only if its element is sampled (projection) or
  // has no first_set yet (patch store). The sample indicator is fixed
  // for the whole stream and first_set only ever advances, so a batch
  // screen over both is exact; survivors replay the scalar rule, so the
  // projected-edge order, meter and wire bytes are unchanged.
  constexpr size_t kChunk = 512;
  uint32_t ids[kChunk];
  uint64_t sampled_mask[kChunk / 64];
  uint64_t unseen_mask[kChunk / 64];
  const simd::Kernels& kernels = simd::Active();
  while (!edges.empty()) {
    const size_t chunk = std::min(edges.size(), kChunk);
    for (size_t i = 0; i < chunk; ++i) ids[i] = edges[i].element;
    kernels.gather_bits(in_sample_.WordsData(), ids, chunk, sampled_mask);
    kernels.gather_equal_u32(first_set_.data(), ids, chunk, kNoSet,
                             unseen_mask);
    const size_t mask_words = (chunk + 63) / 64;
    for (size_t w = 0; w < mask_words; ++w) {
      uint64_t live = sampled_mask[w] | unseen_mask[w];
      if (w == mask_words - 1 && (chunk & 63) != 0) {
        live &= ~uint64_t{0} >> (64 - (chunk & 63));
      }
      const size_t base = w << 6;
      while (live != 0) {
        ProcessEdgeImpl(edges[base + size_t(std::countr_zero(live))]);
        live &= live - 1;
      }
    }
    edges = edges.subspan(chunk);
  }
}

void ElementSamplingAlgorithm::EncodeState(StateEncoder* encoder) const {
  // The Õ(m·n/α) of Table 1 row 1, literally: the projected edges
  // dominate the message. The indicator travels word-granular but the
  // wire format stays byte-identical to the PutBoolVector encoding.
  encoder->PutBitset(in_sample_);
  encoder->PutU32Vector(first_set_);
  std::vector<uint32_t> flat;
  flat.reserve(2 * projected_edges_.size());
  for (const Edge& e : projected_edges_) {
    flat.push_back(e.set);
    flat.push_back(e.element);
  }
  encoder->PutU32Vector(flat);
}

bool ElementSamplingAlgorithm::DecodeState(
    const StreamMetadata& meta, const std::vector<uint64_t>& words) {
  Begin(meta);
  StateDecoder decoder(words);
  DynamicBitset in_sample;
  decoder.GetBitset(&in_sample);
  std::vector<uint32_t> first_set = decoder.GetU32Vector();
  std::vector<uint32_t> flat = decoder.GetU32Vector();
  bool edges_ok = flat.size() % 2 == 0;
  for (size_t i = 0; edges_ok && i < flat.size(); i += 2) {
    edges_ok = flat[i] < meta.num_sets && flat[i + 1] < meta.num_elements;
  }
  if (!decoder.Done() || !edges_ok ||
      in_sample.size() != meta.num_elements ||
      first_set.size() != meta.num_elements) {
    Begin(meta);
    return false;
  }
  // The dense index of a sampled element is its rank within U' (the
  // sample is drawn sorted), so the whole mapping reconstructs from
  // the indicator alone.
  in_sample_ = std::move(in_sample);
  sample_index_.assign(meta.num_elements, 0);
  sample_size_ = 0;
  for (ElementId u = 0; u < meta.num_elements; ++u) {
    if (in_sample_.Test(u)) {
      sample_index_[u] = static_cast<ElementId>(sample_size_++);
    }
  }
  first_set_ = std::move(first_set);
  projected_edges_.clear();
  projected_edges_.reserve(flat.size() / 2);
  for (size_t i = 0; i < flat.size(); i += 2) {
    projected_edges_.push_back({flat[i], flat[i + 1]});
  }
  meter_.Set(projection_words_, projected_edges_.size());
  return true;
}

size_t ElementSamplingAlgorithm::StateWords() const {
  return EncodedBoolVectorWords(in_sample_.size()) +
         EncodedU32VectorWords(first_set_.size()) +
         EncodedU32VectorWords(2 * projected_edges_.size());
}

CoverSolution ElementSamplingAlgorithm::Finalize() {
  // Build the projected instance over the dense sample indices and
  // greedily cover it. FromEdges goes straight from the edge buffer to
  // the CSR arena — no per-set vectors are materialized.
  std::vector<Edge> mapped;
  mapped.reserve(projected_edges_.size());
  for (const Edge& e : projected_edges_) {
    mapped.push_back({e.set, sample_index_[e.element]});
  }
  SetCoverInstance projected = SetCoverInstance::FromEdges(
      static_cast<uint32_t>(std::max<size_t>(1, sample_size_)),
      meta_.num_sets, mapped);
  CoverSolution sample_cover = GreedyCover(projected);

  DynamicBitset in_solution(meta_.num_sets);
  for (SetId s : sample_cover.cover) in_solution.Set(s);
  CoverSolution solution;
  solution.cover = sample_cover.cover;
  solution.certificate.assign(meta_.num_elements, kNoSet);

  // Witness sampled elements through the sample cover; everything else
  // (and any uncovered sampled element on an infeasible input) gets the
  // patching treatment.
  for (ElementId u = 0; u < meta_.num_elements; ++u) {
    if (in_sample_.Test(u)) {
      SetId w = sample_cover.certificate[sample_index_[u]];
      if (w != kNoSet) {
        solution.certificate[u] = w;
        continue;
      }
    }
    if (first_set_[u] != kNoSet) {
      solution.certificate[u] = first_set_[u];
      if (in_solution.Set(first_set_[u])) {
        solution.cover.push_back(first_set_[u]);
      }
    }
  }
  return solution;
}

}  // namespace setcover
