#ifndef SETCOVER_CORE_ELEMENT_SAMPLING_H_
#define SETCOVER_CORE_ELEMENT_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "core/streaming_algorithm.h"
#include "util/bitset.h"
#include "util/memory_meter.h"
#include "util/rng.h"
#include "util/types.h"

namespace setcover {

/// Parameters for the element-sampling algorithm. `alpha` is the target
/// approximation factor (0 = use √n); the algorithm is designed for the
/// regime α = o(√n) where it uses space Õ(m·n/α) — Table 1 row 1.
struct ElementSamplingParams {
  double alpha = 0.0;

  /// Oversampling constant c in the sample size |U'| = c·(n/α)·log₂ m.
  double sample_constant = 1.0;
};

/// The element-sampling algorithm of Assadi, Khanna & Li [4] in its
/// edge-arrival form (paper §1: "the Õ(m·n/α)-space algorithm by Assadi
/// et al. can also be implemented in the edge-arrival setting, see the
/// Appendix of [19]") — the upper-bound half of Table 1 row 1 and the
/// optimal trade-off for approximation factors α = o(√n).
///
/// Rule: fix a uniform random element sample U' of size Õ(n/α) before
/// the stream. Store *every* edge incident to U' (expected Õ(m·n̄/α)
/// where n̄ is the average set size — Õ(m·n/α) in the worst case),
/// plus the usual first-set store R(u). After the pass, solve the
/// projected instance (S restricted to U') with offline greedy and
/// patch all elements without a witness using R(u).
///
/// Intuition for the guarantee (as in [4]): a greedy cover of the
/// sample mis-covers few unsampled elements per optimal set, so the
/// patching adds Õ(α)·OPT sets; the sample cover itself costs
/// Õ(log n)·OPT.
class ElementSamplingAlgorithm : public StreamingSetCoverAlgorithm {
 public:
  explicit ElementSamplingAlgorithm(uint64_t seed,
                                    ElementSamplingParams params = {});

  std::string Name() const override { return "element-sampling"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

  /// The sample size |U'| in effect. Valid after Begin().
  size_t SampleSize() const { return sample_size_; }

  /// Number of projected edges stored. Valid any time.
  size_t StoredEdges() const { return projected_edges_.size(); }

 private:
  inline void ProcessEdgeImpl(const Edge& edge);

  uint64_t seed_;
  ElementSamplingParams params_;
  Rng rng_;
  StreamMetadata meta_;
  size_t sample_size_ = 0;

  // Flat hot-path state (PR 2 convention): the U' indicator is a packed
  // bitset and the index map a dense vector — no hashed containers
  // anywhere. The encoded wire format (PutBoolVector) is unchanged.
  DynamicBitset in_sample_;                // U' indicator, n bits
  std::vector<ElementId> sample_index_;    // element -> dense index
  std::vector<Edge> projected_edges_;      // edges into U'
  std::vector<SetId> first_set_;           // R(u)

  MemoryMeter meter_;
  MemoryMeter::ComponentId element_state_words_;
  MemoryMeter::ComponentId projection_words_;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_ELEMENT_SAMPLING_H_
