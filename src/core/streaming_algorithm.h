#ifndef SETCOVER_CORE_STREAMING_ALGORITHM_H_
#define SETCOVER_CORE_STREAMING_ALGORITHM_H_

#include <string>

#include "instance/instance.h"
#include "stream/stream.h"
#include "util/memory_meter.h"
#include "util/serialize.h"

namespace setcover {

/// Interface shared by every one-pass edge-arrival Set Cover algorithm in
/// this library.
///
/// Lifecycle: `Begin(meta)` once (resets all state; m, n and the assumed
/// stream length N come from `meta`), then `ProcessEdge` for each stream
/// item in arrival order, then `Finalize()` exactly once to obtain the
/// cover and certificate. Implementations must produce a valid cover for
/// every feasible instance regardless of arrival order — the guarantees
/// that depend on the order (approximation ratio, space) degrade, never
/// correctness.
///
/// Space accounting: implementations keep a MemoryMeter current with the
/// number of machine words their streaming state occupies; `Meter()`
/// exposes it. `StateWords()` is the instantaneous state size, which the
/// communication experiments use as the forwarded-message size.
class StreamingSetCoverAlgorithm {
 public:
  virtual ~StreamingSetCoverAlgorithm() = default;

  /// Short identifier for reports, e.g. "kk" or "random-order".
  virtual std::string Name() const = 0;

  /// Starts a fresh run. May be called again after Finalize() to reuse
  /// the object (all state and meters reset).
  virtual void Begin(const StreamMetadata& meta) = 0;

  /// Consumes the next stream item.
  virtual void ProcessEdge(const Edge& edge) = 0;

  /// Ends the stream and returns the cover plus certificate.
  virtual CoverSolution Finalize() = 0;

  /// Space accounting for the current/last run.
  virtual const MemoryMeter& Meter() const = 0;

  /// Size of the algorithm's forwardable state right now, in words —
  /// exactly what EncodeState would produce. Called once per party
  /// boundary in the communication experiments, so implementations
  /// override it with O(1) arithmetic over their container sizes (the
  /// Encoded*Words helpers in util/serialize.h); serialize_test checks
  /// the override against a real encode. This default performs a full
  /// encode and is only acceptable for algorithms outside those
  /// experiments, falling back to the metered working set when
  /// EncodeState is unimplemented.
  virtual size_t StateWords() const {
    StateEncoder encoder;
    EncodeState(&encoder);
    return encoder.SizeWords() > 0 ? encoder.SizeWords()
                                   : Meter().CurrentWords();
  }

  /// Serializes the algorithm's complete mid-stream state into the
  /// encoder — the exact message a party forwards in the one-way
  /// communication setting of §3. Implementations must write every
  /// word another party would need to continue the execution (modulo
  /// the shared random seed). The default writes nothing, in which
  /// case StateWords() falls back to the memory meter.
  virtual void EncodeState(StateEncoder* encoder) const { (void)encoder; }

  /// Reconstructs a mid-stream execution from a message produced by
  /// EncodeState on another instance: after a successful decode,
  /// continuing this instance is bit-identical to continuing the
  /// encoder's. Returns false when unsupported or on a malformed
  /// message (the instance is then in the freshly-Begun state). This
  /// is what makes the one-way communication protocols of §3 literal:
  /// party p+1 resumes the algorithm purely from party p's words.
  virtual bool DecodeState(const StreamMetadata& meta,
                           const std::vector<uint64_t>& words) {
    (void)meta;
    (void)words;
    return false;
  }
};

/// Feeds a whole materialized stream through `algorithm` and finalizes.
inline CoverSolution RunStream(StreamingSetCoverAlgorithm& algorithm,
                               const EdgeStream& stream) {
  algorithm.Begin(stream.meta);
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  return algorithm.Finalize();
}

}  // namespace setcover

#endif  // SETCOVER_CORE_STREAMING_ALGORITHM_H_
