#ifndef SETCOVER_CORE_STREAMING_ALGORITHM_H_
#define SETCOVER_CORE_STREAMING_ALGORITHM_H_

#include <algorithm>
#include <span>
#include <string>

#include "instance/instance.h"
#include "stream/stream.h"
#include "util/memory_meter.h"
#include "util/serialize.h"

namespace setcover {

/// Interface shared by every one-pass edge-arrival Set Cover algorithm in
/// this library.
///
/// Lifecycle: `Begin(meta)` once (resets all state; m, n and the assumed
/// stream length N come from `meta`), then `ProcessEdge` for each stream
/// item in arrival order, then `Finalize()` exactly once to obtain the
/// cover and certificate. Implementations must produce a valid cover for
/// every feasible instance regardless of arrival order — the guarantees
/// that depend on the order (approximation ratio, space) degrade, never
/// correctness.
///
/// Space accounting: implementations keep a MemoryMeter current with the
/// number of machine words their streaming state occupies; `Meter()`
/// exposes it. `StateWords()` is the instantaneous state size, which the
/// communication experiments use as the forwarded-message size.
class StreamingSetCoverAlgorithm {
 public:
  virtual ~StreamingSetCoverAlgorithm() = default;

  /// Short identifier for reports, e.g. "kk" or "random-order".
  virtual std::string Name() const = 0;

  /// Starts a fresh run. May be called again after Finalize() to reuse
  /// the object (all state and meters reset).
  virtual void Begin(const StreamMetadata& meta) = 0;

  /// Consumes the next stream item.
  virtual void ProcessEdge(const Edge& edge) = 0;

  /// Consumes a contiguous batch of stream items — semantically exactly
  /// `for (e : edges) ProcessEdge(e)`, which is what this default does.
  /// Hot algorithms override it with a tight non-virtual loop: the
  /// per-edge virtual dispatch the default pays is the single largest
  /// fixed cost at streaming rates. Overrides may reorder *internal*
  /// work (prefetching, counter batching) but must leave the algorithm
  /// in a state bit-identical to the per-edge path — same coins drawn
  /// in the same order, same EncodeState words, same meter values.
  /// RunStream spot-checks this invariant in debug builds and
  /// batch_equivalence_test enforces it for every registered algorithm
  /// at several batch shapes.
  virtual void ProcessEdgeBatch(std::span<const Edge> edges) {
    for (const Edge& e : edges) ProcessEdge(e);
  }

  /// Ends the stream and returns the cover plus certificate.
  virtual CoverSolution Finalize() = 0;

  /// Space accounting for the current/last run.
  virtual const MemoryMeter& Meter() const = 0;

  /// Size of the algorithm's forwardable state right now, in words —
  /// exactly what EncodeState would produce. Called once per party
  /// boundary in the communication experiments, so implementations
  /// override it with O(1) arithmetic over their container sizes (the
  /// Encoded*Words helpers in util/serialize.h); serialize_test checks
  /// the override against a real encode. This default performs a full
  /// encode and is only acceptable for algorithms outside those
  /// experiments. An implemented EncodeState always writes at least one
  /// word (every field carries a length prefix), so a zero-word encode
  /// means the no-op default below — only then does this fall back to
  /// the metered working set, as an order-of-magnitude stand-in rather
  /// than an exact message size.
  virtual size_t StateWords() const {
    StateEncoder encoder;
    EncodeState(&encoder);
    return encoder.SizeWords() > 0 ? encoder.SizeWords()
                                   : Meter().CurrentWords();
  }

  /// Serializes the algorithm's complete mid-stream state into the
  /// encoder — the exact message a party forwards in the one-way
  /// communication setting of §3. Implementations must write every
  /// word another party would need to continue the execution (modulo
  /// the shared random seed). The default writes nothing, in which
  /// case StateWords() falls back to the memory meter.
  virtual void EncodeState(StateEncoder* encoder) const { (void)encoder; }

  /// Reconstructs a mid-stream execution from a message produced by
  /// EncodeState on another instance: after a successful decode,
  /// continuing this instance is bit-identical to continuing the
  /// encoder's. Returns false when unsupported or on a malformed
  /// message (the instance is then in the freshly-Begun state). This
  /// is what makes the one-way communication protocols of §3 literal:
  /// party p+1 resumes the algorithm purely from party p's words.
  virtual bool DecodeState(const StreamMetadata& meta,
                           const std::vector<uint64_t>& words) {
    (void)meta;
    (void)words;
    return false;
  }
};

/// Default edges per ProcessEdgeBatch call, used by the execution
/// engine (engine::Execute / engine::Drive, see engine/engine.h) and by
/// the header-inline RunStream reference primitive below. Equal to the
/// stream file v2 chunk capacity (stream/stream_file.h), so checkpoint
/// positions and on-disk chunk boundaries stay aligned with batch
/// boundaries — a checkpoint is only ever taken between batches.
inline constexpr size_t kIngestBatchEdges = 4096;

/// Debug-build invariant check (satellite of the batch API contract):
/// processes `edges` through the virtual ProcessEdgeBatch, then rewinds
/// via EncodeState/DecodeState and replays the same edges through the
/// per-edge path, asserting the two leave bit-identical encoded state.
/// Skipped for algorithms whose state does not round-trip (no
/// EncodeState). The rewind re-bases the memory meter's peak, so debug
/// builds may report a slightly different first-batch peak; release
/// builds (NDEBUG) never call this.
void ProcessBatchCheckedForEquivalence(StreamingSetCoverAlgorithm& algorithm,
                                       const StreamMetadata& meta,
                                       std::span<const Edge> edges);

/// Feeds a whole materialized stream through `algorithm` in
/// kIngestBatchEdges-sized batches and finalizes. This is the reference
/// drive primitive the engine's fast paths are pinned against
/// (tests/engine_equivalence_test.cc); production callers should go
/// through engine::Execute, which adds sources, fault tolerance,
/// checkpointing, and reporting around the same loop.
inline CoverSolution RunStream(StreamingSetCoverAlgorithm& algorithm,
                               const EdgeStream& stream) {
  algorithm.Begin(stream.meta);
  std::span<const Edge> edges(stream.edges);
  for (size_t offset = 0; offset < edges.size();
       offset += kIngestBatchEdges) {
    std::span<const Edge> batch =
        edges.subspan(offset, std::min(kIngestBatchEdges,
                                       edges.size() - offset));
#ifndef NDEBUG
    if (offset == 0) {
      // Spot-check the batch/per-edge equivalence contract on the first
      // batch of every debug-build run; cheap relative to the stream.
      ProcessBatchCheckedForEquivalence(algorithm, stream.meta, batch);
      continue;
    }
#endif
    algorithm.ProcessEdgeBatch(batch);
  }
  return algorithm.Finalize();
}

}  // namespace setcover

#endif  // SETCOVER_CORE_STREAMING_ALGORITHM_H_
