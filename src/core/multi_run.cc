#include "core/multi_run.h"

#include <algorithm>
#include <cmath>

#include "engine/engine.h"
#include "util/math.h"

namespace setcover {

namespace {

/// Per-lane scratch for BestOfRuns: each pool lane keeps only its
/// running best (plus the run index that produced it) and its summed
/// peaks, so memory is one candidate per *thread* instead of one per
/// *run*.
struct LaneScratch {
  CoverSolution best;
  size_t best_run = 0;
  bool have_best = false;
  size_t peak_sum = 0;
};

}  // namespace

CoverSolution BestOfRuns(const AlgorithmFactory& factory, uint32_t runs,
                         uint64_t seed, const EdgeStream& stream,
                         size_t* total_peak_words, unsigned threads) {
  const size_t lanes =
      std::max<size_t>(1, std::min<size_t>(threads, runs));
  std::vector<LaneScratch> scratch(lanes);
  ThreadPool pool(lanes);
  pool.RunIndexed(lanes, [&](size_t lane) {
    LaneScratch& local = scratch[lane];
    // Strided assignment; within a lane runs ascend, and the strict <
    // keeps the lowest run index among the lane's minima.
    for (size_t r = lane; r < runs; r += lanes) {
      auto algorithm = factory(seed + r);
      engine::RunConfig config;
      config.algorithm_instance = algorithm.get();
      config.source = engine::SourceSpec::InMemory(stream);
      engine::RunReport report = engine::Execute(config);
      CoverSolution candidate = std::move(report.solution);
      local.peak_sum += report.peak_words;
      if (!local.have_best ||
          candidate.cover.size() < local.best.cover.size()) {
        local.best = std::move(candidate);
        local.best_run = r;
        local.have_best = true;
      }
    }
  });
  // Merging lane bests by (size, run index) reproduces the sequential
  // ascending scan's winner — the lowest run index among the global
  // minima — at any thread count.
  size_t best_lane = lanes;
  size_t peak_sum = 0;
  for (size_t lane = 0; lane < lanes; ++lane) {
    peak_sum += scratch[lane].peak_sum;
    if (!scratch[lane].have_best) continue;
    if (best_lane == lanes ||
        scratch[lane].best.cover.size() <
            scratch[best_lane].best.cover.size() ||
        (scratch[lane].best.cover.size() ==
             scratch[best_lane].best.cover.size() &&
         scratch[lane].best_run < scratch[best_lane].best_run)) {
      best_lane = lane;
    }
  }
  if (total_peak_words != nullptr) *total_peak_words = peak_sum;
  return best_lane == lanes ? CoverSolution{}
                            : std::move(scratch[best_lane].best);
}

NGuessRandomOrder::NGuessRandomOrder(uint64_t seed, RandomOrderParams params,
                                     unsigned threads)
    : seed_(seed), params_(params) {
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  total_words_ = meter_.Register("all_guesses");
}

void NGuessRandomOrder::Begin(const StreamMetadata& meta) {
  guessed_metas_.clear();
  edges_seen_ = 0;
  meter_.Reset();
  // Guesses 2^i · m/√n for i = 0, 1, ...; the true N is at most m·n
  // (§4.1), so ~log(n^1.5) guesses suffice.
  const double sqrt_n =
      std::max(1.0, std::sqrt(double(std::max(1u, meta.num_elements))));
  double guess = std::max(1.0, double(meta.num_sets) / sqrt_n);
  const double max_n =
      std::max(guess, double(meta.num_sets) * double(meta.num_elements));
  for (; guess <= 2.0 * max_n; guess *= 2.0) {
    StreamMetadata guessed = meta;
    guessed.stream_length = static_cast<size_t>(guess);
    guessed_metas_.push_back(guessed);
    if (guess >= max_n) break;
  }
  // The i-th guess is always seeded seed_ + i, so the sub-run objects
  // are reusable scratch whenever the ladder length is unchanged —
  // Begin() is called on every run, resume, and (twice) on every
  // DecodeState, and re-Begin on an existing RandomOrderAlgorithm
  // reuses its flat element-state arrays instead of reallocating them.
  if (runs_.size() != guessed_metas_.size()) {
    runs_.clear();
    runs_.reserve(guessed_metas_.size());
    for (size_t i = 0; i < guessed_metas_.size(); ++i) {
      runs_.push_back(
          std::make_unique<RandomOrderAlgorithm>(seed_ + i, params_));
    }
  }
  for (size_t i = 0; i < runs_.size(); ++i) {
    runs_[i]->Begin(guessed_metas_[i]);
  }
  RefreshMeter();
}

void NGuessRandomOrder::EncodeState(StateEncoder* encoder) const {
  encoder->PutWord(runs_.size());
  encoder->PutWord(edges_seen_);
  for (const auto& run : runs_) {
    StateEncoder sub;
    run->EncodeState(&sub);
    encoder->PutWord(sub.SizeWords());
    for (uint64_t w : sub.Words()) encoder->PutWord(w);
  }
}

bool NGuessRandomOrder::DecodeState(const StreamMetadata& meta,
                                    const std::vector<uint64_t>& words) {
  // Begin() deterministically rebuilds the guess ladder (count, seeds
  // and per-guess metadata depend only on `meta` and the constructor
  // seed), so the message only needs to restore each sub-run's state.
  Begin(meta);
  StateDecoder decoder(words);
  uint64_t count = decoder.GetWord();
  uint64_t edges_seen = decoder.GetWord();
  bool ok = !decoder.failed() && count == runs_.size();
  for (size_t i = 0; ok && i < runs_.size(); ++i) {
    uint64_t sub_words = decoder.GetWord();
    if (decoder.failed() || sub_words > words.size()) {
      ok = false;
      break;
    }
    std::vector<uint64_t> sub;
    sub.reserve(sub_words);
    for (uint64_t w = 0; w < sub_words; ++w) sub.push_back(decoder.GetWord());
    ok = !decoder.failed() && runs_[i]->DecodeState(guessed_metas_[i], sub);
  }
  if (!ok || !decoder.Done()) {
    Begin(meta);
    return false;
  }
  edges_seen_ = edges_seen;
  RefreshMeter();
  return true;
}

size_t NGuessRandomOrder::StateWords() const {
  size_t words = 2;
  for (const auto& run : runs_) words += 1 + run->StateWords();
  return words;
}

void NGuessRandomOrder::ProcessEdge(const Edge& edge) {
  for (auto& run : runs_) run->ProcessEdge(edge);
  if ((++edges_seen_ & 0xFFF) == 0) RefreshMeter();
}

void NGuessRandomOrder::ProcessEdgeBatch(std::span<const Edge> edges) {
  // The per-edge path refreshes the composite meter whenever
  // edges_seen_ crosses a multiple of 4096, and the peak it records
  // depends on observing those exact states. Split the batch at the
  // same boundaries so every refresh happens at an identical
  // edges_seen_ — bit-identical meter peaks at any batch size. Within
  // a segment the guesses are independent (own Rng, own meter), so
  // they fan out across the pool when one is configured.
  while (!edges.empty()) {
    const size_t to_boundary = 0x1000 - (edges_seen_ & 0xFFF);
    std::span<const Edge> segment =
        edges.subspan(0, std::min(to_boundary, edges.size()));
    if (pool_ && runs_.size() > 1) {
      pool_->RunIndexed(runs_.size(), [&](size_t i) {
        runs_[i]->ProcessEdgeBatch(segment);
      });
    } else {
      for (auto& run : runs_) run->ProcessEdgeBatch(segment);
    }
    edges_seen_ += segment.size();
    if ((edges_seen_ & 0xFFF) == 0) RefreshMeter();
    edges = edges.subspan(segment.size());
  }
}

CoverSolution NGuessRandomOrder::Finalize() {
  RefreshMeter();
  std::vector<CoverSolution> candidates(runs_.size());
  if (pool_ && runs_.size() > 1) {
    pool_->RunIndexed(runs_.size(), [&](size_t i) {
      candidates[i] = runs_[i]->Finalize();
    });
  } else {
    for (size_t i = 0; i < runs_.size(); ++i) {
      candidates[i] = runs_[i]->Finalize();
    }
  }
  // Sequential ascending pick: ties break to the lowest guess index
  // regardless of scheduling.
  CoverSolution best;
  bool have_best = false;
  for (auto& candidate : candidates) {
    if (!have_best || candidate.cover.size() < best.cover.size()) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  RefreshMeter();
  return best;
}

void NGuessRandomOrder::RefreshMeter() {
  size_t total = 0;
  for (const auto& run : runs_) total += run->Meter().CurrentWords();
  meter_.Set(total_words_, total);
}

}  // namespace setcover
