#include "core/multi_run.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace setcover {

CoverSolution BestOfRuns(const AlgorithmFactory& factory, uint32_t runs,
                         uint64_t seed, const EdgeStream& stream,
                         size_t* total_peak_words, unsigned threads) {
  std::vector<CoverSolution> candidates(runs);
  std::vector<size_t> peaks(runs, 0);
  ThreadPool pool(std::min<size_t>(threads, runs));
  pool.RunIndexed(runs, [&](size_t r) {
    auto algorithm = factory(seed + r);
    candidates[r] = RunStream(*algorithm, stream);
    peaks[r] = algorithm->Meter().PeakWords();
  });
  // Sequential ascending pick: identical winner (ties break to the
  // lowest run index) no matter how the runs were scheduled.
  CoverSolution best;
  bool have_best = false;
  size_t peak_sum = 0;
  for (uint32_t r = 0; r < runs; ++r) {
    peak_sum += peaks[r];
    if (!have_best || candidates[r].cover.size() < best.cover.size()) {
      best = std::move(candidates[r]);
      have_best = true;
    }
  }
  if (total_peak_words != nullptr) *total_peak_words = peak_sum;
  return best;
}

NGuessRandomOrder::NGuessRandomOrder(uint64_t seed, RandomOrderParams params,
                                     unsigned threads)
    : seed_(seed), params_(params) {
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  total_words_ = meter_.Register("all_guesses");
}

void NGuessRandomOrder::Begin(const StreamMetadata& meta) {
  runs_.clear();
  guessed_metas_.clear();
  edges_seen_ = 0;
  meter_.Reset();
  // Guesses 2^i · m/√n for i = 0, 1, ...; the true N is at most m·n
  // (§4.1), so ~log(n^1.5) guesses suffice.
  const double sqrt_n =
      std::max(1.0, std::sqrt(double(std::max(1u, meta.num_elements))));
  double guess = std::max(1.0, double(meta.num_sets) / sqrt_n);
  const double max_n =
      std::max(guess, double(meta.num_sets) * double(meta.num_elements));
  uint64_t run_seed = seed_;
  for (; guess <= 2.0 * max_n; guess *= 2.0) {
    runs_.push_back(
        std::make_unique<RandomOrderAlgorithm>(run_seed++, params_));
    StreamMetadata guessed = meta;
    guessed.stream_length = static_cast<size_t>(guess);
    guessed_metas_.push_back(guessed);
    runs_.back()->Begin(guessed);
    if (guess >= max_n) break;
  }
  RefreshMeter();
}

void NGuessRandomOrder::EncodeState(StateEncoder* encoder) const {
  encoder->PutWord(runs_.size());
  encoder->PutWord(edges_seen_);
  for (const auto& run : runs_) {
    StateEncoder sub;
    run->EncodeState(&sub);
    encoder->PutWord(sub.SizeWords());
    for (uint64_t w : sub.Words()) encoder->PutWord(w);
  }
}

bool NGuessRandomOrder::DecodeState(const StreamMetadata& meta,
                                    const std::vector<uint64_t>& words) {
  // Begin() deterministically rebuilds the guess ladder (count, seeds
  // and per-guess metadata depend only on `meta` and the constructor
  // seed), so the message only needs to restore each sub-run's state.
  Begin(meta);
  StateDecoder decoder(words);
  uint64_t count = decoder.GetWord();
  uint64_t edges_seen = decoder.GetWord();
  bool ok = !decoder.failed() && count == runs_.size();
  for (size_t i = 0; ok && i < runs_.size(); ++i) {
    uint64_t sub_words = decoder.GetWord();
    if (decoder.failed() || sub_words > words.size()) {
      ok = false;
      break;
    }
    std::vector<uint64_t> sub;
    sub.reserve(sub_words);
    for (uint64_t w = 0; w < sub_words; ++w) sub.push_back(decoder.GetWord());
    ok = !decoder.failed() && runs_[i]->DecodeState(guessed_metas_[i], sub);
  }
  if (!ok || !decoder.Done()) {
    Begin(meta);
    return false;
  }
  edges_seen_ = edges_seen;
  RefreshMeter();
  return true;
}

size_t NGuessRandomOrder::StateWords() const {
  size_t words = 2;
  for (const auto& run : runs_) words += 1 + run->StateWords();
  return words;
}

void NGuessRandomOrder::ProcessEdge(const Edge& edge) {
  for (auto& run : runs_) run->ProcessEdge(edge);
  if ((++edges_seen_ & 0xFFF) == 0) RefreshMeter();
}

void NGuessRandomOrder::ProcessEdgeBatch(std::span<const Edge> edges) {
  // The per-edge path refreshes the composite meter whenever
  // edges_seen_ crosses a multiple of 4096, and the peak it records
  // depends on observing those exact states. Split the batch at the
  // same boundaries so every refresh happens at an identical
  // edges_seen_ — bit-identical meter peaks at any batch size. Within
  // a segment the guesses are independent (own Rng, own meter), so
  // they fan out across the pool when one is configured.
  while (!edges.empty()) {
    const size_t to_boundary = 0x1000 - (edges_seen_ & 0xFFF);
    std::span<const Edge> segment =
        edges.subspan(0, std::min(to_boundary, edges.size()));
    if (pool_ && runs_.size() > 1) {
      pool_->RunIndexed(runs_.size(), [&](size_t i) {
        runs_[i]->ProcessEdgeBatch(segment);
      });
    } else {
      for (auto& run : runs_) run->ProcessEdgeBatch(segment);
    }
    edges_seen_ += segment.size();
    if ((edges_seen_ & 0xFFF) == 0) RefreshMeter();
    edges = edges.subspan(segment.size());
  }
}

CoverSolution NGuessRandomOrder::Finalize() {
  RefreshMeter();
  std::vector<CoverSolution> candidates(runs_.size());
  if (pool_ && runs_.size() > 1) {
    pool_->RunIndexed(runs_.size(), [&](size_t i) {
      candidates[i] = runs_[i]->Finalize();
    });
  } else {
    for (size_t i = 0; i < runs_.size(); ++i) {
      candidates[i] = runs_[i]->Finalize();
    }
  }
  // Sequential ascending pick: ties break to the lowest guess index
  // regardless of scheduling.
  CoverSolution best;
  bool have_best = false;
  for (auto& candidate : candidates) {
    if (!have_best || candidate.cover.size() < best.cover.size()) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  RefreshMeter();
  return best;
}

void NGuessRandomOrder::RefreshMeter() {
  size_t total = 0;
  for (const auto& run : runs_) total += run->Meter().CurrentWords();
  meter_.Set(total_words_, total);
}

}  // namespace setcover
