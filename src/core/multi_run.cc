#include "core/multi_run.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace setcover {

CoverSolution BestOfRuns(const AlgorithmFactory& factory, uint32_t runs,
                         uint64_t seed, const EdgeStream& stream,
                         size_t* total_peak_words) {
  CoverSolution best;
  bool have_best = false;
  size_t peak_sum = 0;
  for (uint32_t r = 0; r < runs; ++r) {
    auto algorithm = factory(seed + r);
    CoverSolution candidate = RunStream(*algorithm, stream);
    peak_sum += algorithm->Meter().PeakWords();
    if (!have_best || candidate.cover.size() < best.cover.size()) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  if (total_peak_words != nullptr) *total_peak_words = peak_sum;
  return best;
}

NGuessRandomOrder::NGuessRandomOrder(uint64_t seed,
                                     RandomOrderParams params)
    : seed_(seed), params_(params) {
  total_words_ = meter_.Register("all_guesses");
}

void NGuessRandomOrder::Begin(const StreamMetadata& meta) {
  runs_.clear();
  guessed_metas_.clear();
  edges_seen_ = 0;
  meter_.Reset();
  // Guesses 2^i · m/√n for i = 0, 1, ...; the true N is at most m·n
  // (§4.1), so ~log(n^1.5) guesses suffice.
  const double sqrt_n =
      std::max(1.0, std::sqrt(double(std::max(1u, meta.num_elements))));
  double guess = std::max(1.0, double(meta.num_sets) / sqrt_n);
  const double max_n =
      std::max(guess, double(meta.num_sets) * double(meta.num_elements));
  uint64_t run_seed = seed_;
  for (; guess <= 2.0 * max_n; guess *= 2.0) {
    runs_.push_back(
        std::make_unique<RandomOrderAlgorithm>(run_seed++, params_));
    StreamMetadata guessed = meta;
    guessed.stream_length = static_cast<size_t>(guess);
    guessed_metas_.push_back(guessed);
    runs_.back()->Begin(guessed);
    if (guess >= max_n) break;
  }
  RefreshMeter();
}

void NGuessRandomOrder::EncodeState(StateEncoder* encoder) const {
  encoder->PutWord(runs_.size());
  encoder->PutWord(edges_seen_);
  for (const auto& run : runs_) {
    StateEncoder sub;
    run->EncodeState(&sub);
    encoder->PutWord(sub.SizeWords());
    for (uint64_t w : sub.Words()) encoder->PutWord(w);
  }
}

bool NGuessRandomOrder::DecodeState(const StreamMetadata& meta,
                                    const std::vector<uint64_t>& words) {
  // Begin() deterministically rebuilds the guess ladder (count, seeds
  // and per-guess metadata depend only on `meta` and the constructor
  // seed), so the message only needs to restore each sub-run's state.
  Begin(meta);
  StateDecoder decoder(words);
  uint64_t count = decoder.GetWord();
  uint64_t edges_seen = decoder.GetWord();
  bool ok = !decoder.failed() && count == runs_.size();
  for (size_t i = 0; ok && i < runs_.size(); ++i) {
    uint64_t sub_words = decoder.GetWord();
    if (decoder.failed() || sub_words > words.size()) {
      ok = false;
      break;
    }
    std::vector<uint64_t> sub;
    sub.reserve(sub_words);
    for (uint64_t w = 0; w < sub_words; ++w) sub.push_back(decoder.GetWord());
    ok = !decoder.failed() && runs_[i]->DecodeState(guessed_metas_[i], sub);
  }
  if (!ok || !decoder.Done()) {
    Begin(meta);
    return false;
  }
  edges_seen_ = edges_seen;
  RefreshMeter();
  return true;
}

size_t NGuessRandomOrder::StateWords() const {
  size_t words = 2;
  for (const auto& run : runs_) words += 1 + run->StateWords();
  return words;
}

void NGuessRandomOrder::ProcessEdge(const Edge& edge) {
  for (auto& run : runs_) run->ProcessEdge(edge);
  if ((++edges_seen_ & 0xFFF) == 0) RefreshMeter();
}

CoverSolution NGuessRandomOrder::Finalize() {
  RefreshMeter();
  CoverSolution best;
  bool have_best = false;
  for (auto& run : runs_) {
    CoverSolution candidate = run->Finalize();
    if (!have_best || candidate.cover.size() < best.cover.size()) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  RefreshMeter();
  return best;
}

void NGuessRandomOrder::RefreshMeter() {
  size_t total = 0;
  for (const auto& run : runs_) total += run->Meter().CurrentWords();
  meter_.Set(total_words_, total);
}

}  // namespace setcover
