#ifndef SETCOVER_CORE_MULTI_RUN_H_
#define SETCOVER_CORE_MULTI_RUN_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/random_order.h"
#include "core/streaming_algorithm.h"
#include "util/thread_pool.h"

namespace setcover {

/// Creates a fresh algorithm instance seeded with `seed`. Used by the
/// amplification helpers and the communication reduction, which need to
/// instantiate (or deterministically replay) algorithms on demand.
/// When a multi-run driver is given `threads > 1` the factory is called
/// concurrently and must be thread-safe (plain constructor calls are).
using AlgorithmFactory =
    std::function<std::unique_ptr<StreamingSetCoverAlgorithm>(uint64_t seed)>;

/// Runs `runs` independent copies of the algorithm over the same stream
/// and returns the smallest cover. This implements the error-probability
/// amplification in the remark after Theorem 2: success probability 3/4
/// becomes 1 - 1/(4m) with O(log m) parallel copies, at the cost of a
/// log m space factor. If `total_peak_words` is non-null it receives the
/// summed peak space across copies (the honest cost of amplification).
///
/// `threads > 1` executes the copies on a ThreadPool, strided over one
/// lane per thread. Every copy owns its seeded Rng (seed + r); each lane
/// keeps only its running best (a per-thread scratch arena, not one
/// stored candidate per run) and the lane bests merge by
/// (cover size, run index) — the same winner as a sequential ascending
/// scan, so the result — cover, certificate, and peak sum — is
/// bit-identical at any thread count.
CoverSolution BestOfRuns(const AlgorithmFactory& factory, uint32_t runs,
                         uint64_t seed, const EdgeStream& stream,
                         size_t* total_peak_words = nullptr,
                         unsigned threads = 1);

/// Algorithm 1 without the known-N assumption: the parallel-guess
/// wrapper of paper §4.1. The stream length satisfies m/√n <= N <= m·n,
/// so O(log(n^1.5)) guesses 2^i·m/√n cover it; one run per guess
/// executes Algorithm 1 with that assumed N, and Finalize returns the
/// smallest cover. Space is the sum over runs — the log-factor the
/// paper absorbs into Õ(m/√n).
///
/// With `threads > 1`, ProcessEdgeBatch and Finalize distribute the
/// guesses over a ThreadPool. The guesses never share mutable state
/// (each owns its Rng and meter), and the composite meter is refreshed
/// at the same edges_seen_ boundaries as the per-edge path, so outputs
/// and meter peaks are bit-identical at any thread count.
class NGuessRandomOrder : public StreamingSetCoverAlgorithm {
 public:
  explicit NGuessRandomOrder(uint64_t seed, RandomOrderParams params = {},
                             unsigned threads = 1);

  std::string Name() const override { return "random-order-nguess"; }
  void Begin(const StreamMetadata& meta) override;
  void ProcessEdge(const Edge& edge) override;
  void ProcessEdgeBatch(std::span<const Edge> edges) override;
  CoverSolution Finalize() override;
  const MemoryMeter& Meter() const override { return meter_; }

  /// Composite state: each guess's sub-run encodes as a length-prefixed
  /// block, so the wrapper is exactly as forwardable (and resumable) as
  /// its parts.
  void EncodeState(StateEncoder* encoder) const override;
  bool DecodeState(const StreamMetadata& meta,
                   const std::vector<uint64_t>& words) override;
  size_t StateWords() const override;

  /// Number of parallel guesses in the current run.
  size_t NumGuesses() const { return runs_.size(); }

  /// Parallelism applied across guesses (1 = sequential).
  unsigned Threads() const {
    return pool_ ? static_cast<unsigned>(pool_->ThreadCount()) + 1 : 1;
  }

 private:
  void RefreshMeter();

  uint64_t seed_;
  RandomOrderParams params_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads <= 1
  std::vector<std::unique_ptr<RandomOrderAlgorithm>> runs_;
  std::vector<StreamMetadata> guessed_metas_;
  size_t edges_seen_ = 0;
  MemoryMeter meter_;
  MemoryMeter::ComponentId total_words_;
};

}  // namespace setcover

#endif  // SETCOVER_CORE_MULTI_RUN_H_
