#include "core/random_order.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>

#include "util/math.h"
#include "util/sampling.h"
#include "util/simd.h"

namespace setcover {
namespace {

// Caps that keep 2^j / 2^i arithmetic finite on degenerate parameters.
constexpr uint32_t kMaxAlgorithms = 24;
constexpr uint32_t kMaxEpochs = 40;

double Pow2(uint32_t e) { return std::ldexp(1.0, static_cast<int>(e)); }

}  // namespace

RandomOrderParams RandomOrderParams::PaperFaithful() {
  RandomOrderParams p;
  p.paper_faithful = true;
  p.sampling_constant = 1.0;
  p.tracking_rate_constant = 1.0;
  // special_threshold_constant / main_budget_fraction are ignored in
  // paper-faithful mode (literal formulas are used instead).
  return p;
}

RandomOrderAlgorithm::RandomOrderAlgorithm(uint64_t seed,
                                           RandomOrderParams params)
    : seed_(seed), params_(params), rng_(seed) {
  element_state_words_ = meter_.Register("element_state");
  epoch0_words_ = meter_.Register("epoch0_degrees");
  solution_words_ = meter_.Register("solution");
  tracked_words_ = meter_.Register("tracked_sets");
  tracking_counts_words_ = meter_.Register("tracking_counts");
  batch_counter_words_ = meter_.Register("batch_counters");
}

double RandomOrderAlgorithm::TrackingRate(uint32_t j) const {
  // q_j = min(1, c_q·2^j/n); the paper's c_q is 1.
  return std::min(1.0, params_.tracking_rate_constant * Pow2(j) /
                           std::max(1.0, double(meta_.num_elements)));
}

double RandomOrderAlgorithm::InclusionProbability(uint32_t j) const {
  // p_j = min(1, boost·2^j·p0); the paper has boost = 1.
  double boost =
      params_.paper_faithful ? 1.0 : params_.level_inclusion_boost;
  return std::min(1.0, boost * Pow2(j) * p0_);
}

uint32_t RandomOrderAlgorithm::SpecialThreshold(uint32_t j) const {
  if (params_.paper_faithful) {
    double log2m = Log2AtLeast(meta_.num_sets, 1.0);
    double t = double(j) * std::pow(log2m, 6.0);
    return t > 4e9 ? 4000000000u : std::max<uint32_t>(1, uint32_t(t));
  }
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::lround(double(j) * params_.special_threshold_constant)));
}

double RandomOrderAlgorithm::MarkThreshold() const {
  const double n = std::max(1.0, double(meta_.num_elements));
  const double m = double(meta_.num_sets);
  const double big_n = std::max<double>(1.0, double(meta_.stream_length));
  if (params_.paper_faithful) {
    // Line 31 literally: 1.085 · m·2^{i-1} / (n²·log m).
    return params_.mark_margin * m * Pow2(cur_algorithm_ - 1) /
           (n * n * Log2AtLeast(meta_.num_sets, 1.0));
  }
  // Derived from the implemented schedule exactly as in Lemma 6's proof:
  // expected tracked count of an element with forward-degree
  // m/(2^j·√n) to special sets, when Q̃ was subsampled at rate
  // q_{j-1} and this epoch spans B·ℓ_i stream positions.
  const double sqrt_n = std::max(1.0, std::sqrt(n));
  const double heavy_degree = m / (Pow2(cur_epoch_) * sqrt_n);
  const double epoch_fraction =
      double(num_batches_) *
      double(subepoch_length_[cur_algorithm_]) / big_n;
  return params_.mark_margin * heavy_degree * cur_tracked_rate_ *
         epoch_fraction;
}

void RandomOrderAlgorithm::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  rng_ = Rng(seed_);
  const double n = std::max(1.0, double(meta.num_elements));
  const double m = std::max(1.0, double(meta.num_sets));
  const double big_n = double(meta.stream_length);
  const double log2m = Log2AtLeast(meta.num_sets, 1.0);
  const double log2n = Log2AtLeast(meta.num_elements, 1.0);
  const double sqrt_n = std::max(1.0, std::sqrt(n));

  num_batches_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(ISqrt(meta.num_elements)));
  batch_size_ = static_cast<uint32_t>(
      CeilDiv(std::max<uint32_t>(1, meta.num_sets), num_batches_));

  // K: number of algorithms A(i).
  if (params_.num_algorithms > 0) {
    num_algorithms_ = std::min(params_.num_algorithms, kMaxAlgorithms);
  } else {
    double paper_k =
        0.5 * log2n - 3.0 * Log2AtLeast(uint64_t(log2m), 0.0) - 2.0;
    if (paper_k >= 1.0) {
      num_algorithms_ =
          std::min<uint32_t>(kMaxAlgorithms, uint32_t(paper_k));
    } else {
      num_algorithms_ = std::max<uint32_t>(
          1, std::min<uint32_t>(3, uint32_t(std::max(0.0, 0.5 * log2n)) >= 2
                                       ? uint32_t(0.5 * log2n) - 2
                                       : 1));
    }
  }

  // J: epochs per algorithm.
  double paper_j = std::max(1.0, log2m - 0.5 * log2n);
  if (params_.num_epochs > 0) {
    num_epochs_ = std::min(params_.num_epochs, kMaxEpochs);
  } else if (params_.paper_faithful) {
    num_epochs_ = std::min<uint32_t>(kMaxEpochs, uint32_t(paper_j));
  } else {
    num_epochs_ = std::max<uint32_t>(
        1, std::min<uint32_t>(6, uint32_t(paper_j)));
  }

  p0_ = std::min(1.0, params_.sampling_constant * sqrt_n * log2m / m);

  // Epoch-0 detection prefix: Θ(√n·N·log m / m), capped at a small
  // constant stream fraction (Lemma 2 part 1 needs |I| <= 0.001·N; we
  // use the parameterized cap).
  double e0 = params_.sampling_constant * sqrt_n * big_n * log2m / m;
  epoch0_length_ = static_cast<size_t>(
      std::min(e0, params_.epoch0_fraction_cap * big_n));

  // Subepoch lengths ℓ_i.
  subepoch_length_.assign(num_algorithms_ + 1, 0);
  if (params_.paper_faithful) {
    for (uint32_t i = 1; i <= num_algorithms_; ++i) {
      subepoch_length_[i] = static_cast<size_t>(
          std::max(1.0, Pow2(i) * big_n / (n * log2m)));
    }
    main_remaining_ = meta.stream_length;  // schedule self-limits
  } else {
    main_remaining_ = static_cast<size_t>(params_.main_budget_fraction *
                                          big_n);
    double norm = Pow2(num_algorithms_ + 1) - 2.0;  // Σ 2^i
    for (uint32_t i = 1; i <= num_algorithms_; ++i) {
      subepoch_length_[i] = static_cast<size_t>(std::max(
          1.0, double(main_remaining_) * Pow2(i) /
                   (norm * double(num_epochs_) * double(num_batches_))));
    }
  }

  // Element state (lines 3-5).
  marked_ = DynamicBitset(meta.num_elements);
  first_set_.assign(meta.num_elements, kNoSet);
  witness_.assign(meta.num_elements, kNoSet);
  if (params_.use_sketch_epoch0) {
    epoch0_degree_.clear();
    size_t width = static_cast<size_t>(std::max(
        64.0, params_.sketch_width_factor * big_n * sqrt_n / m));
    epoch0_sketch_ =
        std::make_unique<CountMinSketch>(width, /*depth=*/4, seed_ ^ 0x5c);
  } else {
    epoch0_degree_.assign(meta.num_elements, 0);
    epoch0_sketch_.reset();
  }
  in_solution_ = DynamicBitset(meta.num_sets);
  solution_order_.clear();
  tracked_.Assign(meta.num_sets);
  tracked_next_.Assign(meta.num_sets);
  tracking_counts_.Assign(meta.num_elements);
  batch_counters_.assign(batch_size_, 0);
  stats_ = RandomOrderStats{};
  cur_epoch_stats_ = RandomOrderEpochStats{};

  meter_.Reset();
  meter_.Set(element_state_words_,
             2 * size_t{meta.num_elements} + marked_.WordsUsed());
  meter_.Set(epoch0_words_, epoch0_sketch_ != nullptr
                                ? epoch0_sketch_->WordsUsed()
                                : size_t{meta.num_elements});
  meter_.Set(batch_counter_words_, batch_size_);

  // Epoch 0 sampling (line 6): block coins + vectorized threshold scan,
  // same coin sequence as the scalar loop (util/sampling.h).
  ForEachBernoulliHit(rng_, meta.num_sets, p0_,
                      [&](SetId s) { AddToSolution(s); });
  stats_.epoch0_sampled = solution_order_.size();

  position_ = 0;
  cur_algorithm_ = 0;
  cur_epoch_ = 0;
  cur_batch_ = 0;
  cur_tracked_rate_ = 0.0;
  if (epoch0_length_ > 0) {
    phase_ = Phase::kEpoch0;
    phase_remaining_ = epoch0_length_;
  } else {
    epoch0_degree_.clear();
    meter_.Set(epoch0_words_, 0);
    StartAlgorithm(1);
  }
}

void RandomOrderAlgorithm::AddToSolution(SetId s) {
  // §4.2 space analysis: |Sol| never exceeds n — past that point the
  // trivial one-set-per-element cover (the patching fallback over
  // R(u)) is at least as good, so further additions are pointless and
  // would only grow the state.
  if (solution_order_.size() >= meta_.num_elements) return;
  if (in_solution_.Set(s)) {
    solution_order_.push_back(s);
    meter_.Add(solution_words_, 2);
  }
}

void RandomOrderAlgorithm::StartAlgorithm(uint32_t i) {
  if (i > num_algorithms_ || main_remaining_ == 0) {
    phase_ = Phase::kTail;
    // Release the main-loop structures.
    tracked_.ClearAll();
    tracked_next_.ClearAll();
    tracking_counts_.ClearAll();
    batch_counters_.clear();
    meter_.Set(tracked_words_, 0);
    meter_.Set(tracking_counts_words_, 0);
    meter_.Set(batch_counter_words_, 0);
    return;
  }
  phase_ = Phase::kMain;
  cur_algorithm_ = i;
  cur_epoch_ = 1;
  // Line 10: fresh tracking sample Q̃ at rate q_0.
  tracked_.ClearAll();
  cur_tracked_rate_ = TrackingRate(0);
  ForEachBernoulliHit(rng_, meta_.num_sets, cur_tracked_rate_,
                      [&](SetId s) { tracked_.Insert(s); });
  meter_.Set(tracked_words_, 2 * tracked_.Size());
  StartEpoch();
}

void RandomOrderAlgorithm::StartEpoch() {
  tracked_next_.ClearAll();
  tracking_counts_.ClearAll();
  meter_.Set(tracking_counts_words_, 0);
  meter_.Set(tracked_words_, 2 * tracked_.Size());
  cur_epoch_stats_ = RandomOrderEpochStats{};
  cur_epoch_stats_.algorithm_index = cur_algorithm_;
  cur_epoch_stats_.epoch = cur_epoch_;
  cur_epoch_stats_.tracked_sets = tracked_.Size();
  cur_batch_ = 0;
  StartSubepoch();
}

void RandomOrderAlgorithm::StartSubepoch() {
  std::fill(batch_counters_.begin(), batch_counters_.end(), 0);
  phase_remaining_ = subepoch_length_[cur_algorithm_];
}

void RandomOrderAlgorithm::EndEpoch() {
  // Line 31: mark unmarked elements whose tracked count certifies a
  // heavy forward-degree to special sets.
  double tau = MarkThreshold();
  if (tau >= params_.min_mark_threshold) {
    cur_epoch_stats_.mark_threshold = tau;
    tracking_counts_.ForEach([&](uint32_t u, const uint32_t& count) {
      if (double(count) >= tau && !marked_.Test(u)) {
        marked_.Set(u);
        ++cur_epoch_stats_.optimistically_marked;
      }
    });
  }
  stats_.epochs.push_back(cur_epoch_stats_);
  // Line 32: rotate the tracking sample.
  swap(tracked_, tracked_next_);
  tracked_next_.ClearAll();
  cur_tracked_rate_ = TrackingRate(cur_epoch_);
}

void RandomOrderAlgorithm::Advance() {
  ++position_;
  if (phase_ == Phase::kTail) return;

  if (phase_ == Phase::kEpoch0) {
    if (--phase_remaining_ == 0) {
      epoch0_degree_.clear();
      epoch0_degree_.shrink_to_fit();
      epoch0_sketch_.reset();
      meter_.Set(epoch0_words_, 0);
      StartAlgorithm(1);
    }
    return;
  }

  // Main phase.
  if (main_remaining_ > 0) --main_remaining_;
  if (--phase_remaining_ == 0 || main_remaining_ == 0) {
    if (main_remaining_ == 0) {
      // Budget exhausted: flush stats and fall through to the tail.
      stats_.epochs.push_back(cur_epoch_stats_);
      StartAlgorithm(num_algorithms_ + 1);
      return;
    }
    ++cur_batch_;
    if (cur_batch_ < num_batches_) {
      StartSubepoch();
      return;
    }
    EndEpoch();
    ++cur_epoch_;
    if (cur_epoch_ <= num_epochs_) {
      StartEpoch();
    } else {
      StartAlgorithm(cur_algorithm_ + 1);
    }
  }
}

inline void RandomOrderAlgorithm::ProcessEdgeImpl(const Edge& edge) {
  const SetId s = edge.set;
  const ElementId u = edge.element;
  // Line 4: remember the first covering set for patching.
  if (first_set_[u] == kNoSet) first_set_[u] = s;

  // Lines 20-21 / 34-36: sets already in the solution witness their
  // elements in every phase.
  if (in_solution_.Test(s)) {
    marked_.Set(u);
    if (witness_[u] == kNoSet) {
      witness_[u] = s;
      if (phase_ == Phase::kTail) ++stats_.tail_witnessed;
    }
    Advance();
    return;
  }
  // Line 22: marked elements contribute nothing further.
  if (marked_.Test(u)) {
    Advance();
    return;
  }

  if (phase_ == Phase::kEpoch0) {
    // Line 7: detect elements of degree ≥ 1.1·m/√n from their count in
    // the prefix (exact counters, or the Count-Min alternative).
    uint64_t d;
    if (epoch0_sketch_ != nullptr) {
      epoch0_sketch_->Add(u);
      d = epoch0_sketch_->Estimate(u);
    } else {
      d = ++epoch0_degree_[u];
    }
    const double n = std::max(1.0, double(meta_.num_elements));
    const double tau0 = params_.mark_margin *
                        (double(meta_.num_sets) / std::sqrt(n)) *
                        (double(epoch0_length_) /
                         std::max<double>(1.0, double(meta_.stream_length)));
    if (tau0 >= params_.min_mark_threshold && double(d) >= tau0) {
      marked_.Set(u);
      ++stats_.epoch0_marked;
    }
  } else if (phase_ == Phase::kMain) {
    // Lines 24-25: track edges incident to the sampled special sets.
    if (tracked_.Contains(s)) {
      auto [count, inserted] = tracking_counts_.Slot(u);
      ++count;
      if (inserted) meter_.Add(tracking_counts_words_, 2);
      ++cur_epoch_stats_.tracked_edges;
    }
    // Lines 26-30: per-batch counters and the special-set rule.
    if (s / batch_size_ == cur_batch_) {
      uint32_t idx = s - cur_batch_ * batch_size_;
      uint32_t c = ++batch_counters_[idx];
      if (c == SpecialThreshold(cur_epoch_)) {
        ++cur_epoch_stats_.special_sets;
        if (rng_.Bernoulli(InclusionProbability(cur_epoch_))) {
          AddToSolution(s);
          ++cur_epoch_stats_.added_to_solution;
          stats_.additions.push_back({s, position_});
        }
        if (rng_.Bernoulli(TrackingRate(cur_epoch_))) {
          if (tracked_next_.Insert(s)) {
            meter_.Add(tracked_words_, 2);
            ++cur_epoch_stats_.sampled_for_tracking;
          }
        }
      }
    }
  }
  Advance();
}

void RandomOrderAlgorithm::ProcessEdge(const Edge& edge) {
  ProcessEdgeImpl(edge);
}

void RandomOrderAlgorithm::ProcessEdgeBatch(std::span<const Edge> edges) {
  // Phase 1 screens the chunk: an edge with u marked, S not in the
  // solution, and first_set recorded only advances the position cursor
  // in the per-edge rule. Marked/first_set advance monotonically, so
  // those two screens cannot go stale; in_solution also only grows, but
  // in the *unsafe* direction (a set added mid-chunk would turn a
  // screened skip into the witnessing branch). AddToSolution calls are
  // rare — at most n per run — so the walk re-validates cheaply: while
  // |Sol| still equals its screen-time size every skip is exact, and
  // after any growth the remaining screened edges fall back to the full
  // scalar rule. Mid-chunk phase transitions are handled by the impl
  // itself, exactly as in the per-edge path.
  constexpr size_t kChunk = 512;
  uint32_t element_ids[kChunk];
  uint32_t set_ids[kChunk];
  uint64_t marked_mask[kChunk / 64];
  uint64_t insol_mask[kChunk / 64];
  uint64_t unseen_mask[kChunk / 64];
  const simd::Kernels& kernels = simd::Active();
  while (!edges.empty()) {
    const size_t chunk = std::min(edges.size(), kChunk);
    for (size_t i = 0; i < chunk; ++i) {
      element_ids[i] = edges[i].element;
      set_ids[i] = edges[i].set;
    }
    kernels.gather_bits(marked_.WordsData(), element_ids, chunk, marked_mask);
    kernels.gather_bits(in_solution_.WordsData(), set_ids, chunk, insol_mask);
    kernels.gather_equal_u32(first_set_.data(), element_ids, chunk, kNoSet,
                             unseen_mask);
    const size_t solution_at_screen = solution_order_.size();
    const size_t mask_words = (chunk + 63) / 64;
    for (size_t w = 0; w < mask_words; ++w) {
      uint64_t skip = marked_mask[w] & ~insol_mask[w] & ~unseen_mask[w];
      size_t limit = 64;
      if (w == mask_words - 1 && (chunk & 63) != 0) {
        limit = chunk & 63;
        skip &= ~uint64_t{0} >> (64 - limit);
      }
      const size_t base = w << 6;
      if (phase_ == Phase::kTail &&
          solution_order_.size() == solution_at_screen) {
        // Tail fast path: a skipped edge's Advance() is a bare
        // position_++ (kTail is terminal and reads nothing else), so a
        // word's worth of skips collapses to one add. Live edges still
        // run in order; their own Advance() calls interleave with pure
        // increments, which commute.
        position_ += size_t(std::popcount(skip));
        uint64_t live = ~skip & (limit == 64
                                     ? ~uint64_t{0}
                                     : (~uint64_t{0} >> (64 - limit)));
        while (live != 0) {
          ProcessEdgeImpl(edges[base + size_t(std::countr_zero(live))]);
          live &= live - 1;
        }
        continue;
      }
      for (size_t b = 0; b < limit; ++b) {
        if (((skip >> b) & 1) != 0 &&
            solution_order_.size() == solution_at_screen) {
          Advance();
        } else {
          ProcessEdgeImpl(edges[base + b]);
        }
      }
    }
    edges = edges.subspan(chunk);
  }
}

CoverSolution RandomOrderAlgorithm::Finalize() {
  if (phase_ == Phase::kMain) {
    stats_.epochs.push_back(cur_epoch_stats_);
  }
  for (ElementId u = 0; u < meta_.num_elements; ++u) {
    if (marked_.Test(u) && witness_[u] == kNoSet) {
      ++stats_.marked_without_witness;
    }
  }
  CoverSolution solution;
  solution.cover = solution_order_;
  solution.certificate = witness_;
  // Lines 37-38: patching phase.
  for (ElementId u = 0; u < meta_.num_elements; ++u) {
    if (solution.certificate[u] == kNoSet && first_set_[u] != kNoSet) {
      solution.certificate[u] = first_set_[u];
      stats_.patched_elements.push_back(u);
      if (in_solution_.Set(first_set_[u])) {
        solution.cover.push_back(first_set_[u]);
        ++stats_.patched;
      }
    }
  }
  return solution;
}

size_t RandomOrderAlgorithm::StateWords() const {
  // 4 RNG words + the tracked-rate word + 7 cursor scalars, then the
  // variable-size fields in EncodeState order.
  size_t words = 12;
  words += EncodedBoolVectorWords(meta_.num_elements);
  words += EncodedU32VectorWords(first_set_.size());
  words += EncodedU32VectorWords(witness_.size());
  words += EncodedU32VectorWords(epoch0_degree_.size());
  words += 1;  // sketch presence flag
  if (epoch0_sketch_ != nullptr) words += epoch0_sketch_->EncodedWords();
  words += EncodedU32VectorWords(solution_order_.size());
  words += EncodedSetWords(tracked_.Size());
  words += EncodedSetWords(tracked_next_.Size());
  words += EncodedMapWords(tracking_counts_.Size());
  words += EncodedU32VectorWords(batch_counters_.size());
  return words;
}

void RandomOrderAlgorithm::EncodeState(StateEncoder* encoder) const {
  // Cursor scalars first (phase, schedule position), then the element
  // state, solution, and the live tracking machinery.
  for (uint64_t w : rng_.GetState()) encoder->PutWord(w);
  uint64_t rate_bits;
  static_assert(sizeof(rate_bits) == sizeof(cur_tracked_rate_));
  std::memcpy(&rate_bits, &cur_tracked_rate_, sizeof(rate_bits));
  encoder->PutWord(rate_bits);
  encoder->PutWord(static_cast<uint64_t>(phase_));
  encoder->PutWord(position_);
  encoder->PutWord(phase_remaining_);
  encoder->PutWord(cur_algorithm_);
  encoder->PutWord(cur_epoch_);
  encoder->PutWord(cur_batch_);
  encoder->PutWord(main_remaining_);
  encoder->PutBitset(marked_);  // byte-identical to the PutBoolVector copy
  encoder->PutU32Vector(first_set_);
  encoder->PutU32Vector(witness_);
  encoder->PutU32Vector(epoch0_degree_);
  encoder->PutWord(epoch0_sketch_ != nullptr ? 1 : 0);
  if (epoch0_sketch_ != nullptr) epoch0_sketch_->EncodeTo(encoder);
  encoder->PutU32Vector(solution_order_);
  encoder->PutSortedIds(tracked_.SortedIds());
  encoder->PutSortedIds(tracked_next_.SortedIds());
  encoder->PutSortedPairs(tracking_counts_.SortedEntries());
  encoder->PutU32Vector(batch_counters_);
}

bool RandomOrderAlgorithm::DecodeState(
    const StreamMetadata& meta, const std::vector<uint64_t>& words) {
  Begin(meta);
  StateDecoder decoder(words);
  std::array<uint64_t, 4> rng_state;
  for (uint64_t& w : rng_state) w = decoder.GetWord();
  uint64_t rate_bits = decoder.GetWord();
  uint64_t phase = decoder.GetWord();
  uint64_t position = decoder.GetWord();
  uint64_t phase_remaining = decoder.GetWord();
  uint64_t cur_algorithm = decoder.GetWord();
  uint64_t cur_epoch = decoder.GetWord();
  uint64_t cur_batch = decoder.GetWord();
  uint64_t main_remaining = decoder.GetWord();
  DynamicBitset marked;
  decoder.GetBitset(&marked);
  std::vector<uint32_t> first_set = decoder.GetU32Vector();
  std::vector<uint32_t> witness = decoder.GetU32Vector();
  std::vector<uint32_t> epoch0_degree = decoder.GetU32Vector();
  uint64_t has_sketch = decoder.GetWord();
  // Begin() already rebuilt a sketch of the right geometry (it is a
  // deterministic function of seed, params and meta); restore its
  // counters in place. A mismatch marks the message malformed.
  bool sketch_ok =
      has_sketch == 0
          ? true
          : (epoch0_sketch_ != nullptr &&
             epoch0_sketch_->DecodeFrom(&decoder));
  std::vector<uint32_t> solution = decoder.GetU32Vector();
  auto tracked = decoder.GetSet();
  auto tracked_next = decoder.GetSet();
  auto tracking_counts = decoder.GetMap();
  std::vector<uint32_t> batch_counters = decoder.GetU32Vector();
  // Dense state is indexed by id, so every id must be range-checked
  // before it is trusted (the hash containers used to tolerate junk);
  // the batch-counter size check also closes a latent out-of-bounds
  // write in ProcessEdge on forged messages.
  bool ids_ok = true;
  for (uint32_t s : solution) ids_ok = ids_ok && s < meta.num_sets;
  for (uint32_t s : tracked) ids_ok = ids_ok && s < meta.num_sets;
  for (uint32_t s : tracked_next) ids_ok = ids_ok && s < meta.num_sets;
  for (const auto& [u, c] : tracking_counts)
    ids_ok = ids_ok && u < meta.num_elements;
  for (uint32_t s : first_set)
    ids_ok = ids_ok && (s == kNoSet || s < meta.num_sets);
  ids_ok = ids_ok &&
           (batch_counters.empty() || batch_counters.size() == batch_size_);
  if (!decoder.Done() || !sketch_ok || has_sketch > 1 || !ids_ok ||
      marked.size() != meta.num_elements ||
      first_set.size() != meta.num_elements ||
      witness.size() != meta.num_elements || phase > 2) {
    Begin(meta);  // also discards any partially-decoded sketch counters
    return false;
  }
  rng_.SetState(rng_state);
  std::memcpy(&cur_tracked_rate_, &rate_bits, sizeof(cur_tracked_rate_));
  phase_ = static_cast<Phase>(phase);
  position_ = position;
  phase_remaining_ = phase_remaining;
  cur_algorithm_ = static_cast<uint32_t>(cur_algorithm);
  cur_epoch_ = static_cast<uint32_t>(cur_epoch);
  cur_batch_ = static_cast<uint32_t>(cur_batch);
  main_remaining_ = main_remaining;
  marked_ = std::move(marked);
  first_set_ = std::move(first_set);
  witness_ = std::move(witness);
  epoch0_degree_ = std::move(epoch0_degree);
  solution_order_ = std::move(solution);
  in_solution_ = DynamicBitset(meta.num_sets);
  for (SetId s : solution_order_) in_solution_.Set(s);
  tracked_.ClearAll();
  for (SetId s : tracked) tracked_.Insert(s);
  tracked_next_.ClearAll();
  for (SetId s : tracked_next) tracked_next_.Insert(s);
  tracking_counts_.ClearAll();
  for (const auto& [u, c] : tracking_counts) tracking_counts_.Slot(u).first = c;
  batch_counters_ = std::move(batch_counters);
  // Restore meter components to the decoded sizes; instrumentation
  // stats are not part of the forwarded message and restart empty.
  if (has_sketch == 0 && params_.use_sketch_epoch0) {
    epoch0_sketch_.reset();
  }
  meter_.Set(epoch0_words_,
             phase_ != Phase::kEpoch0 ? 0
             : epoch0_sketch_ != nullptr
                 ? epoch0_sketch_->WordsUsed()
                 : size_t{meta.num_elements});
  meter_.Set(solution_words_, 2 * solution_order_.size());
  meter_.Set(tracked_words_, 2 * (tracked_.Size() + tracked_next_.Size()));
  meter_.Set(tracking_counts_words_, 2 * tracking_counts_.Size());
  meter_.Set(batch_counter_words_, batch_counters_.size());
  stats_ = RandomOrderStats{};
  cur_epoch_stats_ = RandomOrderEpochStats{};
  cur_epoch_stats_.algorithm_index = cur_algorithm_;
  cur_epoch_stats_.epoch = cur_epoch_;
  return true;
}

size_t RandomOrderAlgorithm::SubepochLength(uint32_t i) const {
  return (i >= 1 && i < subepoch_length_.size()) ? subepoch_length_[i] : 0;
}

}  // namespace setcover
