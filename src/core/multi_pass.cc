#include "core/multi_pass.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace setcover {

CoverSolution RunMultiPass(MultiPassSetCoverAlgorithm& algorithm,
                           const EdgeStream& stream, uint32_t max_passes,
                           uint32_t* passes_used) {
  algorithm.Begin(stream.meta);
  uint32_t pass = 0;
  for (; pass < max_passes; ++pass) {
    algorithm.BeginPass(pass);
    for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
    if (!algorithm.EndPass(pass)) {
      ++pass;
      break;
    }
  }
  if (passes_used != nullptr) *passes_used = pass;
  return algorithm.Finalize();
}

ProgressiveThresholdMultiPass::ProgressiveThresholdMultiPass(
    MultiPassParams params)
    : params_(params) {
  counters_words_ = meter_.Register("pass_counters");
  element_state_words_ = meter_.Register("element_state");
  solution_words_ = meter_.Register("solution");
}

void ProgressiveThresholdMultiPass::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  const uint32_t n = std::max(1u, meta.num_elements);
  uint32_t passes = params_.passes != 0
                        ? params_.passes
                        : static_cast<uint32_t>(CeilLog2(n)) + 1;
  passes = std::max(1u, passes);

  // Geometric schedule T_i = n / r^(i+1) with r = n^(1/p), clamped so
  // the final pass runs at threshold 1 (full coverage guarantee).
  thresholds_.assign(passes, 1);
  const double r = std::pow(double(n), 1.0 / double(passes));
  double t = double(n);
  for (uint32_t i = 0; i < passes; ++i) {
    t /= r;
    thresholds_[i] = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::floor(t + 1e-9)));
  }
  thresholds_.back() = 1;

  pass_count_.assign(meta.num_sets, 0);
  covered_.assign(meta.num_elements, false);
  in_solution_.assign(meta.num_sets, false);
  certificate_.assign(meta.num_elements, kNoSet);
  first_set_.assign(meta.num_elements, kNoSet);
  solution_order_.clear();
  added_per_pass_.clear();
  added_this_pass_ = 0;

  meter_.Reset();
  meter_.Set(counters_words_, meta.num_sets);
  meter_.Set(element_state_words_, 2 * size_t{meta.num_elements});
}

void ProgressiveThresholdMultiPass::BeginPass(uint32_t pass) {
  std::fill(pass_count_.begin(), pass_count_.end(), 0);
  current_threshold_ =
      pass < thresholds_.size() ? thresholds_[pass] : 1;
  added_this_pass_ = 0;
}

void ProgressiveThresholdMultiPass::ProcessEdge(const Edge& edge) {
  const SetId s = edge.set;
  const ElementId u = edge.element;
  if (first_set_[u] == kNoSet) first_set_[u] = s;
  if (in_solution_[s]) {
    if (!covered_[u]) {
      covered_[u] = true;
      certificate_[u] = s;
    }
    return;
  }
  if (covered_[u]) return;
  if (++pass_count_[s] >= current_threshold_) {
    // The set has certified ≥ T uncovered elements this pass: take it.
    in_solution_[s] = true;
    solution_order_.push_back(s);
    ++added_this_pass_;
    meter_.Add(solution_words_, 1);
    covered_[u] = true;
    certificate_[u] = s;
  }
}

bool ProgressiveThresholdMultiPass::EndPass(uint32_t pass) {
  added_per_pass_.push_back(added_this_pass_);
  // Done when the T = 1 pass has run (everything coverable is covered)
  // or the schedule is exhausted.
  return pass + 1 < thresholds_.size();
}

CoverSolution ProgressiveThresholdMultiPass::Finalize() {
  CoverSolution solution;
  solution.cover = solution_order_;
  solution.certificate = certificate_;
  // Safety patching: only reachable if the caller cut passes short.
  for (ElementId u = 0; u < meta_.num_elements; ++u) {
    if (solution.certificate[u] == kNoSet && first_set_[u] != kNoSet) {
      solution.certificate[u] = first_set_[u];
      if (!in_solution_[first_set_[u]]) {
        in_solution_[first_set_[u]] = true;
        solution.cover.push_back(first_set_[u]);
      }
    }
  }
  return solution;
}

void MultiPassStreamAdapter::Begin(const StreamMetadata& meta) {
  meta_ = meta;
  edges_in_pass_ = 0;
  pass_ = 0;
  passes_completed_ = 0;
  saturated_ = false;
  inner_->Begin(meta);
  inner_->BeginPass(0);
  open_pass_ = true;
}

void MultiPassStreamAdapter::ProcessEdge(const Edge& edge) {
  if (saturated_) return;
  inner_->ProcessEdge(edge);
  if (meta_.stream_length == 0 ||
      ++edges_in_pass_ < meta_.stream_length) {
    return;
  }
  edges_in_pass_ = 0;
  open_pass_ = false;
  ++passes_completed_;
  if (!inner_->EndPass(pass_)) {
    saturated_ = true;
    return;
  }
  inner_->BeginPass(++pass_);
  open_pass_ = true;
}

CoverSolution MultiPassStreamAdapter::Finalize() {
  // Close out a short final pass (stream shorter than declared, or a
  // schedule with fewer passes than the algorithm wanted) so per-pass
  // accounting stays balanced; an open pass that saw no edges is
  // dropped silently.
  if (!saturated_ && open_pass_ && edges_in_pass_ > 0) {
    inner_->EndPass(pass_);
    ++passes_completed_;
  }
  return inner_->Finalize();
}

}  // namespace setcover
