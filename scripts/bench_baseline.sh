#!/usr/bin/env bash
# Records the performance baseline: builds the benchmark binaries in a
# Release configuration and runs bench_throughput, bench_scaling, and
# bench_server_ingest with --benchmark_format=json, writing
# BENCH_throughput.json, BENCH_scaling.json, and BENCH_server_ingest.json
# at the repo root. Each file's context block is
# stamped with the CMake build type and the git SHA it was recorded at,
# so a baseline from an unoptimized build (or an unknown tree) can
# never silently become the perf gate — check.sh --bench-smoke verifies
# the stamp before comparing. Parallel rows (sharded ingest, n-guess
# threads) additionally stamp the recording host's num_cpus; the gate
# annotates-and-skips those rows when the gating host's core count
# differs, since a speedup curve only transfers between like hosts.
#
# The committed BENCH_*.json files are the perf trajectory of the repo:
# re-run this script after an optimization PR and commit the refreshed
# numbers next to the previous ones (docs/performance.md describes how
# to read them). BENCH_throughput.pre.json preserves the last
# pre-optimization snapshot for the current PR's before/after claim.
#
# Usage: scripts/bench_baseline.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" \
  --target bench_throughput bench_scaling bench_server_ingest

BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' \
  build-release/CMakeCache.txt)
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "bench_baseline: build-release/ is configured as '$BUILD_TYPE';"
  echo "delete it and re-run so the baseline comes from a Release build"
  exit 1
fi
GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

echo "== bench_throughput -> BENCH_throughput.json =="
build-release/bench/bench_throughput \
  --benchmark_format=json \
  --benchmark_out=BENCH_throughput.json \
  --benchmark_out_format=json

echo "== bench_scaling -> BENCH_scaling.json =="
build-release/bench/bench_scaling \
  --benchmark_format=json \
  --benchmark_out=BENCH_scaling.json \
  --benchmark_out_format=json

echo "== bench_server_ingest -> BENCH_server_ingest.json =="
build-release/bench/bench_server_ingest \
  --benchmark_format=json \
  --benchmark_out=BENCH_server_ingest.json \
  --benchmark_out_format=json

echo "== stamping build type ($BUILD_TYPE) + git sha ($GIT_SHA) =="
python3 - "$BUILD_TYPE" "$GIT_SHA" <<'EOF'
import json, sys

build_type, git_sha = sys.argv[1], sys.argv[2]
for path in ("BENCH_throughput.json", "BENCH_scaling.json",
             "BENCH_server_ingest.json"):
    with open(path) as f:
        doc = json.load(f)
    # The harness stamps its own build type (minibench compiles with the
    # project's flags); a debug harness distorts per-iteration overhead,
    # so such a recording can never become the committed baseline.
    library = doc.get("context", {}).get("library_build_type", "<unstamped>")
    if library != "release":
        sys.exit(f"bench_baseline: {path} was recorded through a "
                 f"'{library}' benchmark library; build the bench "
                 "binaries Release against minibench and re-run")
    doc.setdefault("context", {})["cmake_build_type"] = build_type
    doc["context"]["git_sha"] = git_sha
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
EOF

echo "== baseline written: BENCH_throughput.json BENCH_scaling.json BENCH_server_ingest.json =="
