#!/usr/bin/env bash
# Records the performance baseline: builds the benchmark binaries and
# runs bench_throughput (and bench_scaling) with --benchmark_format=json,
# writing BENCH_throughput.json and BENCH_scaling.json at the repo root.
#
# The committed BENCH_*.json files are the perf trajectory of the repo:
# re-run this script after an optimization PR and commit the refreshed
# numbers next to the previous ones (docs/performance.md describes how
# to read them). BENCH_throughput.pre.json preserves the last
# pre-optimization snapshot for the current PR's before/after claim.
#
# Usage: scripts/bench_baseline.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_throughput bench_scaling

echo "== bench_throughput -> BENCH_throughput.json =="
build/bench/bench_throughput \
  --benchmark_format=json \
  --benchmark_out=BENCH_throughput.json \
  --benchmark_out_format=json

echo "== bench_scaling -> BENCH_scaling.json =="
build/bench/bench_scaling \
  --benchmark_format=json \
  --benchmark_out=BENCH_scaling.json \
  --benchmark_out_format=json

echo "== baseline written: BENCH_throughput.json BENCH_scaling.json =="
