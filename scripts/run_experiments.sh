#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: builds the project,
# runs the full test suite, then executes each bench binary (one per
# table/figure of DESIGN.md's experiment index) and collects the output
# under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build -j"$(nproc)" 2>&1 | tee results/tests.txt

for bench in build/bench/bench_*; do
  name=$(basename "$bench")
  echo "=== $name ==="
  "$bench" --benchmark_counters_tabular=false 2>&1 | tee "results/$name.txt"
done

echo "All experiment outputs are under results/."
