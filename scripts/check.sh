#!/usr/bin/env bash
# Full verification: build + test the plain configuration, then again
# with AddressSanitizer + UBSan (-DSETCOVER_SANITIZE=ON). Any sanitizer
# finding aborts the offending test (-fno-sanitize-recover=all), so a
# green run means both configurations are clean.
#
# With --bench-smoke, instead run the perf-path smoke checks:
#   1. Release build + a short bench_throughput run (catches benchmarks
#      that crash or regress to zero without paying for a full baseline),
#      then a perf gate: every file-replay row, the bucket-queue greedy
#      kernel row, and every transport-ingest row (bench_server_ingest's
#      {local,unix,shm} x batch x window matrix) must sustain at least
#      0.7x the edges/s recorded in the committed BENCH_throughput.json
#      / BENCH_server_ingest.json, so a read-pipeline, offline-kernel,
#      or server-transport regression fails CI instead of silently
#      shipping. The gate re-measures up to 3 times before failing:
#      shared-host steal time depresses whole runs at once, and only a
#      code-caused regression survives re-measurement.
#      Both sides of that comparison must be Release: the gate prints
#      the build type of build-release/ and of the committed baseline
#      and refuses to compare anything else,
#   2. the engine-equivalence + batch-equivalence + stream-format tests
#      plus the greedy kernel differential + CSR instance tests, and the
#      session wire protocol's hostile-byte surface, under ASan+UBSan,
#   3. the thread pool + parallel multi-run (which fans out over
#      engine::Execute sessions) + prefetch decoder tests, plus the
#      concurrent session server and its kill-and-resume soak and the
#      sharded multi-worker runner's equivalence/resume suite, under
#      TSan (-DSETCOVER_TSAN=ON), so the engine-backed parallel drivers
#      and the server's scheduler/drain paths are race-checked.
#
# Both modes start with layering guards: outside src/engine/ (and the
# contract's own definition sites), production code must not drive
# ProcessEdgeBatch directly — every run path goes through the engine —
# src/server/ must stay a pure engine client (no includes of the
# core/instance/algorithm layers), raw shared-memory plumbing
# (memfd_create / SCM_RIGHTS fd passing) stays confined to
# src/util/shm_ring.* and src/server/transport.*, and process control
# (fork / waitpid / execve) stays confined to the forked execution
# backend (src/engine/backends/forked.*).
#
# Usage: scripts/check.sh [--bench-smoke] [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== layering guard: ProcessEdgeBatch callers outside src/engine/ =="
# Allowlist: the engine itself, the interface + batch/per-edge contract
# definition sites, and the composite algorithm that fans a batch out to
# its sub-runs. bench/ and tests/ are exempt by not being scanned.
GUARD_ALLOW=(
  src/engine/engine.cc
  src/engine/session.cc
  src/engine/backends/inprocess.cc
  src/engine/backends/sharded.cc
  src/engine/backends/forked.cc
  src/core/streaming_algorithm.h
  src/core/streaming_algorithm.cc
  src/core/multi_run.cc
)
GUARD_HITS=$(grep -rnE '(\.|->)ProcessEdgeBatch\(' src/ tools/ examples/ \
  $(printf -- "--exclude=%s " "${GUARD_ALLOW[@]##*/}") || true)
if [[ -n "$GUARD_HITS" ]]; then
  echo "$GUARD_HITS"
  echo "layering guard: ProcessEdgeBatch called outside src/engine/;"
  echo "route new run paths through engine::Execute (see docs/architecture.md)"
  exit 1
fi

# The session server is a client of the engine, nothing more: it may
# speak to engine/ (sessions), stream/ (plain edge/fault types), and
# util/, but never reach under the engine to the algorithm or instance
# layers directly.
SERVER_HITS=$(grep -rnE '#include "(core|instance|algorithms|run)/' \
  src/server/ || true)
if [[ -n "$SERVER_HITS" ]]; then
  echo "$SERVER_HITS"
  echo "layering guard: src/server/ must stay an engine client;"
  echo "algorithm/instance/checkpoint access belongs behind engine::Session"
  exit 1
fi

# SIMD intrinsics live behind the util/simd dispatch seam and nowhere
# else: everything outside it uses the simd::Kernels table (or portable
# builtins like __builtin_prefetch), so the scalar/SSE/AVX2 differential
# tests cover every vectorized code path in the tree.
INTRIN_HITS=$(grep -rnE '#include <[a-z0-9_]*(intrin|mmintrin)\.h>' \
  src/ tools/ examples/ bench/ --include='*.h' --include='*.cc' \
  | grep -v '^src/util/simd' || true)
if [[ -n "$INTRIN_HITS" ]]; then
  echo "$INTRIN_HITS"
  echo "layering guard: SIMD intrinsics outside src/util/simd*;"
  echo "add a kernel to util/simd.h instead (see docs/performance.md)"
  exit 1
fi
# The deterministic t-party protocol is the sharded engine's merge
# primitive and nothing else's: outside its own definition site, only
# src/engine/ may call it, so every production merge inherits the
# 2√(n·t) guarantee and the Õ(n) message accounting in one place.
# bench/ and tests/ are exempt by not being scanned.
PROTO_ALLOW=(
  src/engine/backends/shard_common.cc
  src/comm/deterministic_protocol.h
  src/comm/deterministic_protocol.cc
)
PROTO_HITS=$(grep -rnE 'RunDeterministicProtocol\(' src/ tools/ examples/ \
  $(printf -- "--exclude=%s " "${PROTO_ALLOW[@]##*/}") || true)
if [[ -n "$PROTO_HITS" ]]; then
  echo "$PROTO_HITS"
  echo "layering guard: RunDeterministicProtocol called outside src/engine/;"
  echo "merge per-shard covers via engine::ExecuteSharded (see docs/architecture.md)"
  exit 1
fi
# Raw shared-memory plumbing (memfd creation, fd passing over sockets)
# stays inside the ring primitive and the transport that negotiates it.
# Everything else — client, server, loadgen, benches — speaks
# Connection/ShmRing and never sees an fd, so the cross-process safety
# argument lives in exactly two reviewed files. (mmap is NOT guarded:
# stream/mmap_file.cc uses it legitimately for read-only replay.)
SHM_HITS=$(grep -rnE 'memfd_create|shm_open|SCM_RIGHTS' \
  src/ tools/ examples/ \
  --exclude=shm_ring.h --exclude=shm_ring.cc \
  --exclude=transport.h --exclude=transport.cc || true)
if [[ -n "$SHM_HITS" ]]; then
  echo "$SHM_HITS"
  echo "layering guard: raw shm/fd-passing calls outside src/util/shm_ring.*"
  echo "and src/server/transport.*; use ShmRing / ConnectShm instead"
  exit 1
fi
# Process control is the forked execution backend's business and nobody
# else's: one reviewed file owns the fork/exec/reap lifecycle (child
# hygiene, worker reaping, partial-failure reporting), so every
# multi-process run inherits its crash semantics instead of growing a
# second, subtly different fork site.
FORK_HITS=$(grep -rnE '\b(fork|waitpid|execve)\s*\(' src/ tools/ examples/ \
  --exclude=forked.h --exclude=forked.cc || true)
if [[ -n "$FORK_HITS" ]]; then
  echo "$FORK_HITS"
  echo "layering guard: fork/waitpid/execve outside src/engine/backends/forked.*;"
  echo "run multi-process work through the forked backend (--backend=forked)"
  exit 1
fi
echo "layering guard: clean"

BENCH_SMOKE=0
if [[ "${1:-}" == "--bench-smoke" ]]; then
  BENCH_SMOKE=1
  shift
fi
JOBS="${1:-$(nproc)}"

if [[ "$BENCH_SMOKE" == "1" ]]; then
  echo "== bench smoke: Release build (build-release/) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

  # Perf numbers from unoptimized builds are noise: refuse to gate on
  # them. The build dir must be Release, and so must the committed
  # baseline we compare against (bench_baseline.sh stamps it).
  BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' \
    build-release/CMakeCache.txt)
  echo "bench smoke: build-release/ build type: ${BUILD_TYPE:-<unset>}"
  if [[ "$BUILD_TYPE" != "Release" ]]; then
    echo "bench smoke: refusing perf comparison from a '$BUILD_TYPE' build;"
    echo "delete build-release/ and re-run (it must be -DCMAKE_BUILD_TYPE=Release)"
    exit 1
  fi
  for BASELINE_FILE in BENCH_throughput.json BENCH_server_ingest.json; do
    BASELINE_TYPE=$(python3 -c 'import json, sys; print(json.load(open(
      sys.argv[1])).get("context", {}).get(
      "cmake_build_type", "<unstamped>"))' "$BASELINE_FILE")
    echo "bench smoke: $BASELINE_FILE build type: $BASELINE_TYPE"
    if [[ "$BASELINE_TYPE" != "Release" ]]; then
      echo "bench smoke: $BASELINE_FILE was not recorded from a Release"
      echo "build; refresh it with scripts/bench_baseline.sh before gating"
      exit 1
    fi
    # The benchmark *library* must be a release build too — a debug
    # harness (the distro's prebuilt libbenchmark) distorts per-iteration
    # overhead. The harness stamps library_build_type itself, so both the
    # committed baseline and the fresh smoke run carry the proof.
    BASELINE_LIB=$(python3 -c 'import json, sys; print(json.load(open(
      sys.argv[1])).get("context", {}).get(
      "library_build_type", "<unstamped>"))' "$BASELINE_FILE")
    echo "bench smoke: $BASELINE_FILE library build type: $BASELINE_LIB"
    if [[ "$BASELINE_LIB" != "release" ]]; then
      echo "bench smoke: $BASELINE_FILE was recorded through a"
      echo "non-release benchmark library; refresh it with scripts/bench_baseline.sh"
      exit 1
    fi
  done

  cmake --build build-release -j "$JOBS" \
    --target bench_throughput bench_server_ingest
  build-release/bench/bench_throughput --benchmark_min_time=0.01

  echo "== bench smoke: file-replay + greedy + ingest-ceiling + transport-ingest perf gate =="
  # On a shared single-vCPU host, steal time can depress *every* row of
  # a run by 30%+ at once — a one-shot measurement would flake. A true
  # (code-caused) regression survives re-measurement, transient host
  # noise does not: the gate re-runs the benches up to 3 times and only
  # fails if every attempt has a row below the floor.
  GATE_OK=0
  for GATE_ATTEMPT in 1 2 3; do
    build-release/bench/bench_throughput \
      '--benchmark_filter=FileReplay|BM_GreedyCover/|IngestCeiling|ShardedIngest|BackendIngest' \
      --benchmark_format=json >/tmp/setcover_replay_smoke.json
    # The server ingest matrix runs as its own binary: a full session
    # per iteration (open/ingest/finalize/close) against a live server,
    # so a transport or windowing regression fails the same 0.7x gate
    # as the read-pipeline rows.
    build-release/bench/bench_server_ingest \
      '--benchmark_filter=BM_TransportIngest' \
      --benchmark_format=json >/tmp/setcover_ingest_smoke.json
    for SMOKE_FILE in /tmp/setcover_replay_smoke.json \
                      /tmp/setcover_ingest_smoke.json; do
      SMOKE_LIB=$(python3 -c 'import json, sys; print(json.load(open(
        sys.argv[1])).get("context", {}).get(
        "library_build_type", "<unstamped>"))' "$SMOKE_FILE")
      if [[ "$SMOKE_LIB" != "release" ]]; then
        echo "bench smoke: the fresh smoke run $SMOKE_FILE used a non-release"
        echo "benchmark library ($SMOKE_LIB); rebuild build-release/ against minibench"
        exit 1
      fi
    done
    if python3 - <<'EOF'
import json, sys

FLOOR = 0.7  # fail if a row drops below this fraction of the baseline
GATED = ("backend-ingest/", "file-replay/", "greedy/bucket-queue",
         "ingest-ceiling/", "sharded-ingest/", "transport-ingest/")

def replay_rows(*paths):
    # Merge the gated rows from several benchmark JSON files (the
    # read-pipeline matrix and the server ingest matrix are separate
    # binaries but share one gate). Labels are disjoint by prefix.
    rows, cpus = {}, None
    for path in paths:
        doc = json.load(open(path))
        for bench in doc["benchmarks"]:
            label = bench.get("label", "")
            if label.startswith(GATED):
                rows[label] = bench
        cpus = doc.get("context", {}).get("num_cpus", cpus)
    return rows, cpus

baseline, base_cpus = replay_rows("BENCH_throughput.json",
                                  "BENCH_server_ingest.json")
current, cur_cpus = replay_rows("/tmp/setcover_replay_smoke.json",
                                "/tmp/setcover_ingest_smoke.json")
if not baseline:
    sys.exit("perf gate: no gated rows in the committed baselines; "
             "refresh them with scripts/bench_baseline.sh")
if not any(label.startswith("transport-ingest/") for label in baseline):
    sys.exit("perf gate: no transport-ingest/ rows in "
             "BENCH_server_ingest.json; refresh it with "
             "scripts/bench_baseline.sh")
failed = False
for label, base_row in sorted(baseline.items()):
    base_eps = base_row["items_per_second"]
    row = current.get(label)
    if row is None:
        print(f"perf gate: MISSING {label} (baseline {base_eps/1e6:.1f} M edges/s)")
        failed = True
        continue
    # Parallel-speedup rows (shard or thread fan-out wider than one) are
    # only comparable between hosts with the same core count: a W=4 row
    # recorded on a 1-core baseline host says nothing about a 16-core CI
    # runner. Each row stamps the recording host's num_cpus; on mismatch
    # the gate annotates and skips that row rather than mis-gating.
    workers = max(base_row.get("shards", 1), base_row.get("threads", 1),
                  base_row.get("workers", 1))
    row_cpus = base_row.get("num_cpus", base_cpus)
    if workers > 1 and row_cpus is not None and row_cpus != cur_cpus:
        print(f"perf gate: SKIPPED {label}: parallel row recorded on a "
              f"{int(row_cpus)}-cpu host, this host has "
              f"{int(cur_cpus) if cur_cpus else '?'}")
        continue
    eps = row["items_per_second"]
    ratio = eps / base_eps
    status = "ok" if ratio >= FLOOR else "REGRESSION"
    print(f"perf gate: {status} {label}: {eps/1e6:.1f} M edges/s "
          f"({ratio:.2f}x baseline)")
    failed = failed or ratio < FLOOR
if failed:
    sys.exit(f"perf gate: a gated row fell below {FLOOR}x the committed baseline")
EOF
    then
      GATE_OK=1
      break
    fi
    echo "perf gate: attempt $GATE_ATTEMPT/3 had a row below the floor;"
    echo "re-measuring (transient host noise passes a retry, a real"
    echo "regression keeps failing)"
  done
  if [[ "$GATE_OK" != "1" ]]; then
    echo "perf gate: rows stayed below the floor across all 3 attempts"
    exit 1
  fi

  echo "== bench smoke: engine equivalence + stream formats + offline kernels + wire protocol + SIMD kernels under ASan+UBSan (build-asan/) =="
  cmake -B build-asan -S . -DSETCOVER_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS" \
    --target engine_equivalence_test batch_equivalence_test \
             stream_format_test greedy_kernel_test instance_test \
             bitset_test wire_protocol_test engine_session_test \
             simd_kernel_test simd_dispatch_test sharded_engine_test \
             backend_matrix_test \
             shm_ring_test transport_framing_test windowed_ingest_test
  build-asan/tests/engine_equivalence_test
  # The sharded runner's W=1 bit-identity, protocol bounds, and
  # aggregate-checkpoint resume, with ASan watching the merge's
  # candidate remapping.
  build-asan/tests/sharded_engine_test
  # The execution-substrate matrix — cross-backend bit-identity, the
  # forked backend's fork/ring/reap lifecycle, and kill-one-worker
  # resume — with ASan watching both sides of every shm ring and the
  # post-fork child paths.
  build-asan/tests/backend_matrix_test
  build-asan/tests/batch_equivalence_test
  build-asan/tests/stream_format_test
  build-asan/tests/greedy_kernel_test
  build-asan/tests/instance_test
  build-asan/tests/bitset_test
  # The wire protocol's hostile-byte surface (every-byte corruption,
  # truncation, oversize) and the ingest-session engine driver.
  build-asan/tests/wire_protocol_test
  build-asan/tests/engine_session_test
  # The shm ring's wrap-around framing and poisoned-header refusal, the
  # byte-at-a-time transport fragmentation sweep, and the windowed
  # ingest's bit-identity + mid-window crash resync — ASan watches the
  # shared mapping's bounds and every scatter-gather copy.
  build-asan/tests/shm_ring_test
  build-asan/tests/transport_framing_test
  build-asan/tests/windowed_ingest_test
  # The SIMD kernel layer: every tier's kernels against the scalar
  # reference (gathers read out-of-order, so ASan watches the lanes),
  # the cross-tier full-run differentials, and one forced-scalar pass of
  # the batch-equivalence suite so the dispatch override path itself is
  # exercised under the sanitizers.
  build-asan/tests/simd_kernel_test
  build-asan/tests/simd_dispatch_test
  SETCOVER_SIMD_LEVEL=scalar build-asan/tests/batch_equivalence_test

  echo "== bench smoke: thread pool + multi-run-over-engine + prefetch decoder + session server under TSan (build-tsan/) =="
  cmake -B build-tsan -S . -DSETCOVER_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test multi_run_test batch_equivalence_test \
             prefetch_decoder_test session_server_test session_soak_test \
             sharded_engine_test shm_ring_test windowed_ingest_test
  build-tsan/tests/thread_pool_test
  build-tsan/tests/multi_run_test
  build-tsan/tests/batch_equivalence_test
  build-tsan/tests/prefetch_decoder_test
  # The concurrent session server: worker fan-out, shedding, drain, and
  # the 1024-session kill-and-resume soak, all race-checked.
  build-tsan/tests/session_server_test
  build-tsan/tests/session_soak_test
  # W worker pipelines over the shared thread pool, all racing into the
  # mutex-guarded aggregate-checkpoint sink — the sharded runner's
  # equivalence + kill-and-resume suite doubles as its race soak.
  build-tsan/tests/sharded_engine_test
  # The shm ring's acquire/release cursor protocol under a real
  # producer/consumer pair, and the windowed client racing its in-flight
  # frames against a multi-worker server's per-connection tickets.
  build-tsan/tests/shm_ring_test
  build-tsan/tests/windowed_ingest_test

  echo "== bench smoke passed =="
  exit 0
fi

echo "== plain build (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

echo "== sanitized build (build-asan/) =="
cmake -B build-asan -S . -DSETCOVER_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan -j "$JOBS" --output-on-failure

echo "== all checks passed =="
