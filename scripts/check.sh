#!/usr/bin/env bash
# Full verification: build + test the plain configuration, then again
# with AddressSanitizer + UBSan (-DSETCOVER_SANITIZE=ON). Any sanitizer
# finding aborts the offending test (-fno-sanitize-recover=all), so a
# green run means both configurations are clean.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== plain build (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

echo "== sanitized build (build-asan/) =="
cmake -B build-asan -S . -DSETCOVER_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan -j "$JOBS" --output-on-failure

echo "== all checks passed =="
