#!/usr/bin/env bash
# Full verification: build + test the plain configuration, then again
# with AddressSanitizer + UBSan (-DSETCOVER_SANITIZE=ON). Any sanitizer
# finding aborts the offending test (-fno-sanitize-recover=all), so a
# green run means both configurations are clean.
#
# With --bench-smoke, instead run the perf-path smoke checks:
#   1. Release build + a short bench_throughput run (catches benchmarks
#      that crash or regress to zero without paying for a full baseline),
#      then a perf gate: every file-replay row and the bucket-queue
#      greedy kernel row must sustain at least 0.7x the edges/s recorded
#      in the committed BENCH_throughput.json, so a read-pipeline or
#      offline-kernel regression fails CI instead of silently shipping,
#   2. the engine-equivalence + batch-equivalence + stream-format tests
#      plus the greedy kernel differential + CSR instance tests under
#      ASan+UBSan,
#   3. the thread pool + parallel multi-run (which fans out over
#      engine::Execute sessions) + prefetch decoder tests under TSan
#      (-DSETCOVER_TSAN=ON), so the engine-backed parallel drivers and
#      the pipelined decoder's slot handoff are race-checked.
#
# Both modes start with a layering guard: outside src/engine/ (and the
# contract's own definition sites), production code must not drive
# ProcessEdgeBatch directly — every run path goes through the engine.
#
# Usage: scripts/check.sh [--bench-smoke] [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== layering guard: ProcessEdgeBatch callers outside src/engine/ =="
# Allowlist: the engine itself, the interface + batch/per-edge contract
# definition sites, and the composite algorithm that fans a batch out to
# its sub-runs. bench/ and tests/ are exempt by not being scanned.
GUARD_ALLOW=(
  src/engine/engine.cc
  src/core/streaming_algorithm.h
  src/core/streaming_algorithm.cc
  src/core/multi_run.cc
)
GUARD_HITS=$(grep -rnE '(\.|->)ProcessEdgeBatch\(' src/ tools/ examples/ \
  $(printf -- "--exclude=%s " "${GUARD_ALLOW[@]##*/}") || true)
if [[ -n "$GUARD_HITS" ]]; then
  echo "$GUARD_HITS"
  echo "layering guard: ProcessEdgeBatch called outside src/engine/;"
  echo "route new run paths through engine::Execute (see docs/architecture.md)"
  exit 1
fi
echo "layering guard: clean"

BENCH_SMOKE=0
if [[ "${1:-}" == "--bench-smoke" ]]; then
  BENCH_SMOKE=1
  shift
fi
JOBS="${1:-$(nproc)}"

if [[ "$BENCH_SMOKE" == "1" ]]; then
  echo "== bench smoke: Release build (build-release/) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j "$JOBS" --target bench_throughput
  build-release/bench/bench_throughput --benchmark_min_time=0.01

  echo "== bench smoke: file-replay + greedy perf gate vs BENCH_throughput.json =="
  build-release/bench/bench_throughput \
    '--benchmark_filter=FileReplay|BM_GreedyCover/' \
    --benchmark_format=json >/tmp/setcover_replay_smoke.json
  python3 - <<'EOF'
import json, sys

FLOOR = 0.7  # fail if a row drops below this fraction of the baseline
GATED = ("file-replay/", "greedy/bucket-queue")

def replay_rows(path):
    rows = {}
    for bench in json.load(open(path))["benchmarks"]:
        label = bench.get("label", "")
        if label.startswith(GATED):
            rows[label] = bench["items_per_second"]
    return rows

baseline = replay_rows("BENCH_throughput.json")
current = replay_rows("/tmp/setcover_replay_smoke.json")
if not baseline:
    sys.exit("perf gate: no gated rows in BENCH_throughput.json; "
             "refresh the baseline with scripts/bench_baseline.sh")
failed = False
for label, base_eps in sorted(baseline.items()):
    eps = current.get(label)
    if eps is None:
        print(f"perf gate: MISSING {label} (baseline {base_eps/1e6:.1f} M edges/s)")
        failed = True
        continue
    ratio = eps / base_eps
    status = "ok" if ratio >= FLOOR else "REGRESSION"
    print(f"perf gate: {status} {label}: {eps/1e6:.1f} M edges/s "
          f"({ratio:.2f}x baseline)")
    failed = failed or ratio < FLOOR
if failed:
    sys.exit(f"perf gate: file replay below {FLOOR}x the committed baseline")
EOF

  echo "== bench smoke: engine equivalence + batch equivalence + stream formats + offline kernels under ASan+UBSan (build-asan/) =="
  cmake -B build-asan -S . -DSETCOVER_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS" \
    --target engine_equivalence_test batch_equivalence_test \
             stream_format_test greedy_kernel_test instance_test bitset_test
  build-asan/tests/engine_equivalence_test
  build-asan/tests/batch_equivalence_test
  build-asan/tests/stream_format_test
  build-asan/tests/greedy_kernel_test
  build-asan/tests/instance_test
  build-asan/tests/bitset_test

  echo "== bench smoke: thread pool + multi-run-over-engine + prefetch decoder under TSan (build-tsan/) =="
  cmake -B build-tsan -S . -DSETCOVER_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test multi_run_test batch_equivalence_test \
             prefetch_decoder_test
  build-tsan/tests/thread_pool_test
  build-tsan/tests/multi_run_test
  build-tsan/tests/batch_equivalence_test
  build-tsan/tests/prefetch_decoder_test

  echo "== bench smoke passed =="
  exit 0
fi

echo "== plain build (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

echo "== sanitized build (build-asan/) =="
cmake -B build-asan -S . -DSETCOVER_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan -j "$JOBS" --output-on-failure

echo "== all checks passed =="
