#!/usr/bin/env bash
# Full verification: build + test the plain configuration, then again
# with AddressSanitizer + UBSan (-DSETCOVER_SANITIZE=ON). Any sanitizer
# finding aborts the offending test (-fno-sanitize-recover=all), so a
# green run means both configurations are clean.
#
# With --bench-smoke, instead run the perf-path smoke checks:
#   1. Release build + a short bench_throughput run (catches benchmarks
#      that crash or regress to zero without paying for a full baseline),
#   2. the batch-equivalence test under ASan+UBSan,
#   3. the thread pool + parallel multi-run tests under TSan
#      (-DSETCOVER_TSAN=ON), so the parallel drivers are race-checked.
#
# Usage: scripts/check.sh [--bench-smoke] [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
if [[ "${1:-}" == "--bench-smoke" ]]; then
  BENCH_SMOKE=1
  shift
fi
JOBS="${1:-$(nproc)}"

if [[ "$BENCH_SMOKE" == "1" ]]; then
  echo "== bench smoke: Release build (build-release/) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j "$JOBS" --target bench_throughput
  build-release/bench/bench_throughput --benchmark_min_time=0.01

  echo "== bench smoke: batch equivalence under ASan+UBSan (build-asan/) =="
  cmake -B build-asan -S . -DSETCOVER_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS" --target batch_equivalence_test
  build-asan/tests/batch_equivalence_test

  echo "== bench smoke: thread pool under TSan (build-tsan/) =="
  cmake -B build-tsan -S . -DSETCOVER_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test multi_run_test batch_equivalence_test
  build-tsan/tests/thread_pool_test
  build-tsan/tests/multi_run_test
  build-tsan/tests/batch_equivalence_test

  echo "== bench smoke passed =="
  exit 0
fi

echo "== plain build (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

echo "== sanitized build (build-asan/) =="
cmake -B build-asan -S . -DSETCOVER_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan -j "$JOBS" --output-on-failure

echo "== all checks passed =="
