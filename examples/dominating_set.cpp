// Dominating Set in graph streams — the m = n special case of
// edge-arrival Set Cover through which the KK algorithm (Theorem 1) was
// originally obtained [Khanna & Konrad, ITCS'22].
//
// We generate an Erdős–Rényi graph, view each closed neighborhood N[v]
// as a set, stream the incidences in adversarial (element-major) order,
// and compare the KK algorithm against offline greedy and the trivial
// patching baseline.
//
//   $ ./build/examples/dominating_set [num_vertices] [edge_prob]

#include <cstdio>
#include <cstdlib>

#include "core/kk_algorithm.h"
#include "core/trivial.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "offline/greedy.h"
#include "stream/orderings.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace setcover;
  uint32_t num_vertices = argc > 1 ? std::atoi(argv[1]) : 2048;
  double edge_prob = argc > 2 ? std::atof(argv[2]) : 0.005;

  Rng rng(99);
  SetCoverInstance graph = GenerateDominatingSet(num_vertices, edge_prob, rng);
  std::printf("G(n=%u, p=%.4f): %zu incidences (avg closed degree %.1f)\n",
              num_vertices, edge_prob, graph.NumEdges(),
              double(graph.NumEdges()) / num_vertices);

  // Adversarial order: vertex-major, so every neighborhood is spread
  // maximally across the stream — the hard case for edge arrival.
  EdgeStream stream = OrderedStream(graph, StreamOrder::kElementMajor, rng);

  KkAlgorithm kk(/*seed=*/5);
  CoverSolution kk_sol = RunStream(kk, stream);
  FirstSetPatching trivial;
  CoverSolution trivial_sol = RunStream(trivial, stream);
  CoverSolution greedy_sol = GreedyCover(graph);

  auto check = ValidateSolution(graph, kk_sol);
  if (!check.ok) {
    std::printf("KK produced an invalid dominating set: %s\n",
                check.error.c_str());
    return 1;
  }

  std::printf("\n%-28s %12s %14s\n", "algorithm", "|dom. set|",
              "peak words");
  std::printf("%-28s %12zu %14s\n", "offline greedy (yardstick)",
              greedy_sol.cover.size(), "-");
  std::printf("%-28s %12zu %14zu\n", "KK streaming (Thm 1)",
              kk_sol.cover.size(), kk.Meter().PeakWords());
  std::printf("%-28s %12zu %14zu\n", "first-set patching",
              trivial_sol.cover.size(), trivial.Meter().PeakWords());
  std::printf(
      "\nKK keeps one counter per vertex (Θ(m)=Θ(n) words) and is\n"
      "Õ(√n)-approximate even though neighborhoods never arrive whole.\n");
  return 0;
}
