// Quickstart: build a small Set Cover instance, stream it edge-by-edge
// in random order through the paper's main algorithm (Algorithm 1,
// Theorem 3), and print the cover it returns.
//
//   $ ./build/examples/quickstart
//
// This is the 60-second tour of the public API: instance construction,
// stream ordering, the StreamingSetCoverAlgorithm lifecycle, validation,
// and space introspection.

#include <cstdio>

#include "core/random_order.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "offline/greedy.h"
#include "stream/orderings.h"
#include "util/rng.h"

int main() {
  using namespace setcover;

  // 1. An instance with a planted optimum: 4 hidden sets partition a
  //    1024-element universe; 16k small decoy sets hide them.
  Rng rng(2023);
  PlantedCoverParams params;
  params.num_elements = 1024;
  params.num_sets = 16384;
  params.planted_cover_size = 4;
  params.decoy_min_size = 1;
  params.decoy_max_size = 4;
  SetCoverInstance instance = GeneratePlantedCover(params, rng);
  std::printf("instance: n=%u elements, m=%u sets, N=%zu edges\n",
              instance.NumElements(), instance.NumSets(),
              instance.NumEdges());

  // 2. A random-order edge stream (the model of Theorem 3): tuples
  //    (S, u) arrive one at a time in uniformly random order.
  EdgeStream stream = RandomOrderStream(instance, rng);

  // 3. Run Algorithm 1. Begin/ProcessEdge/Finalize is the lifecycle of
  //    every streaming algorithm in the library.
  RandomOrderAlgorithm algorithm(/*seed=*/7);
  algorithm.Begin(stream.meta);
  for (const Edge& edge : stream.edges) algorithm.ProcessEdge(edge);
  CoverSolution solution = algorithm.Finalize();

  // 4. Validate and report.
  ValidationResult check = ValidateSolution(instance, solution);
  std::printf("valid cover: %s\n", check.ok ? "yes" : check.error.c_str());
  std::printf("cover size: %zu sets (planted optimum: %zu, greedy: %zu)\n",
              solution.cover.size(), instance.PlantedCover().size(),
              GreedyCover(instance).cover.size());
  std::printf("approx ratio vs planted: %.1f (theory: Õ(√n) = ~%d·polylog)\n",
              ApproxRatio(solution, instance.PlantedCover().size()), 32);

  // 5. Space introspection: the whole point of the paper is the peak
  //    working set. Õ(m/√n) words ≈ 512 + element state here, far below
  //    the m = 16384 words the KK algorithm's degree counters need.
  std::printf("peak space: %zu words (m = %u)\n",
              algorithm.Meter().PeakWords(), instance.NumSets());
  std::printf("breakdown: %s\n",
              algorithm.Meter().BreakdownString().c_str());
  return check.ok ? 0 : 1;
}
