// File-based streaming pipeline: generate an instance, persist an
// ordered edge stream to disk in the compressed v3 stream-file format,
// and replay it through two algorithms without ever materializing it in
// memory again — the deployment shape of a real one-pass system, where
// the stream source is a log or a message queue rather than a vector.
// Replay goes through the default read pipeline (mmap + background
// prefetch decoder); pass StreamReadOptions to RunStreamFromFile to
// turn either off.
//
//   $ ./build/examples/file_stream [work_dir]

#include <cstdio>
#include <string>

#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "stream/stream_file.h"
#include "util/rng.h"

static long FileSizeForDisplay(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

int main(int argc, char** argv) {
  using namespace setcover;
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  std::string path = dir + "/setcover_example_stream.bin";

  // Produce the stream once...
  Rng rng(123);
  PlantedCoverParams params;
  params.num_elements = 512;
  params.num_sets = 32768;
  params.planted_cover_size = 4;
  SetCoverInstance instance = GeneratePlantedCover(params, rng);
  EdgeStream stream = RandomOrderStream(instance, rng);
  std::string error;
  if (!WriteStreamFile(stream, path, StreamFormat::kV3, &error)) {
    std::printf("cannot write %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu edges, %.1f MB as v3 vs %.1f MB raw)\n",
              path.c_str(), stream.size(),
              double(FileSizeForDisplay(path)) / 1e6,
              double(stream.size()) * 8 / 1e6);

  // ...and replay it through algorithms that never see the whole thing.
  struct Row {
    const char* label;
    StreamingSetCoverAlgorithm* algorithm;
  };
  KkAlgorithm kk(7);
  RandomOrderAlgorithm alg1(7);
  for (Row row : {Row{"kk", &kk}, Row{"random-order", &alg1}}) {
    auto solution = RunStreamFromFile(*row.algorithm, path, &error);
    if (!solution.has_value()) {
      std::printf("replay failed: %s\n", error.c_str());
      return 1;
    }
    ValidationResult check = ValidateSolution(instance, *solution);
    std::printf("%-14s cover=%4zu valid=%s peak_words=%zu\n", row.label,
                solution->cover.size(), check.ok ? "yes" : "NO",
                row.algorithm->Meter().PeakWords());
  }
  std::remove(path.c_str());
  return 0;
}
