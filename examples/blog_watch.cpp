// Multi-topic blog-watch — the coverage application that started the
// streaming Set Cover line of work (Saha & Getoor, SDM'09 [22], cited
// in §1.3): pick a small number of blogs (sets) that together cover all
// topics (elements), when (blog, topic) observations arrive online as a
// click/post stream, i.e. exactly the edge-arrival model.
//
// Topic popularity is Zipf-distributed, as in real feeds. We compare
// the one-pass algorithms against offline greedy on the same stream and
// report coverage quality and memory.
//
//   $ ./build/examples/blog_watch [num_topics] [num_blogs]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "core/streaming_algorithm.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "offline/greedy.h"
#include "stream/orderings.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace setcover;
  uint32_t num_topics = argc > 1 ? std::atoi(argv[1]) : 512;
  uint32_t num_blogs = argc > 2 ? std::atoi(argv[2]) : 20000;

  Rng rng(7);
  ZipfParams params;
  params.num_elements = num_topics;
  params.num_sets = num_blogs;
  params.min_set_size = 1;
  params.max_set_size = 12;
  params.exponent = 1.05;
  SetCoverInstance instance = GenerateZipf(params, rng);
  std::printf("blog-watch: %u topics, %u blogs, %zu (blog, topic) pairs\n",
              num_topics, num_blogs, instance.NumEdges());

  // Observations arrive in random order — the setting where Theorem 3's
  // algorithm reads the stream with only Õ(m/√n) memory.
  EdgeStream stream = RandomOrderStream(instance, rng);

  CoverSolution greedy = GreedyCover(instance);
  std::printf("\noffline greedy needs %zu blogs (memory: whole input)\n\n",
              greedy.cover.size());

  struct Row {
    const char* label;
    std::unique_ptr<StreamingSetCoverAlgorithm> algorithm;
  };
  std::vector<Row> rows;
  rows.push_back({"KK (Thm 1, adv. order, Õ(m))",
                  std::make_unique<KkAlgorithm>(1)});
  rows.push_back({"Alg.2 (Thm 4, α=2√n, Õ(mn/α²))",
                  std::make_unique<AdversarialLevelAlgorithm>(2)});
  rows.push_back({"Alg.1 (Thm 3, rand. order, Õ(m/√n))",
                  std::make_unique<RandomOrderAlgorithm>(3)});

  std::printf("%-38s %8s %8s %12s\n", "one-pass algorithm", "blogs",
              "ratio", "peak words");
  for (Row& row : rows) {
    CoverSolution solution = RunStream(*row.algorithm, stream);
    ValidationResult check = ValidateSolution(instance, solution);
    if (!check.ok) {
      std::printf("%s: INVALID (%s)\n", row.label, check.error.c_str());
      return 1;
    }
    std::printf("%-38s %8zu %8.1f %12zu\n", row.label,
                solution.cover.size(),
                ApproxRatio(solution, greedy.cover.size()),
                row.algorithm->Meter().PeakWords());
  }
  std::printf(
      "\nAll three watch the full topic mix in one pass; the random-order\n"
      "algorithm does it with a fraction of the per-blog state.\n");
  return 0;
}
