// Memory-budget explorer: the space/approximation trade-off of
// Algorithm 2 (Theorem 4) made concrete. Given a memory budget, pick α
// so that Õ(m·n/α²) fits, run the algorithm, and see what cover quality
// that budget buys — the dial the paper's Table 1 row 3 describes.
//
//   $ ./build/examples/memory_budget [n] [m]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/adversarial_level.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace setcover;
  uint32_t n = argc > 1 ? std::atoi(argv[1]) : 1024;
  uint32_t m = argc > 2 ? std::atoi(argv[2]) : 65536;

  Rng rng(11);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = 8;
  params.decoy_max_size = 4;
  SetCoverInstance instance = GeneratePlantedCover(params, rng);

  // Adversarial stream: the regime Theorem 4 is stated for.
  EdgeStream stream =
      OrderedStream(instance, StreamOrder::kElementMajor, rng);

  const double sqrt_n = std::sqrt(double(n));
  std::printf("n=%u m=%u N=%zu planted OPT=%zu\n", n, m, stream.size(),
              instance.PlantedCover().size());
  std::printf("\n%10s %14s %10s %10s %16s\n", "α/√n", "α", "cover",
              "ratio", "peak words");

  for (double mult : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    AdversarialLevelParams alg_params;
    alg_params.alpha = mult * sqrt_n;
    AdversarialLevelAlgorithm algorithm(/*seed=*/3, alg_params);
    CoverSolution solution = RunStream(algorithm, stream);
    if (!ValidateSolution(instance, solution).ok) {
      std::printf("invalid cover at α=%.0f\n", alg_params.alpha);
      return 1;
    }
    std::printf("%10.0f %14.0f %10zu %10.1f %16zu\n", mult,
                algorithm.EffectiveAlpha(), solution.cover.size(),
                ApproxRatio(solution, instance.PlantedCover().size()),
                algorithm.Meter().PeakWords());
  }
  std::printf(
      "\nDoubling α multiplies the approximation target by 2 and divides\n"
      "the Õ(m·n/α²) working set by 4 — the Theorem 4 trade-off.\n");
  return 0;
}
