// Experiments F5 + F6 — the communication side of the paper.
//
// F5 (Theorem 2 mechanism): the t-party Set-Disjointness reduction is
// executed end-to-end with two stand-ins for the streaming algorithm A:
//   * store-everything greedy (state = the whole stream) — the reduction
//     then *distinguishes* the promise cases, and its forwarded message
//     is huge (∝ m), illustrating why any distinguishing algorithm pays
//     Ω(m/t²) communication (Theorem 5) = Ω̃(m·n²/α⁴) space;
//   * the KK algorithm at its honest Õ(m) state size for comparison.
// Also verifies Lemma 1's O(log n) pairwise-intersection property on the
// generated family (counter `family_max_cross_intersection`).
//
// F6 (§3 remark): the deterministic t-party protocol with approximation
// 2√(n·t) and message Õ(n). Expected shape: message words grow linearly
// in n and are independent of m; measured ratio ≤ 2√(n·t).

#include <benchmark/benchmark.h>

#include <cmath>

#include <memory>

#include "bench/bench_util.h"
#include "comm/deterministic_protocol.h"
#include "comm/reduction.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "core/trivial.h"
#include "instance/validator.h"

namespace setcover {
namespace {

void BM_Theorem2Reduction(benchmark::State& state) {
  const int algo = static_cast<int>(state.range(0));
  const bool intersecting = state.range(1) == 1;
  const uint32_t t = static_cast<uint32_t>(state.range(2));
  const uint32_t n = 1024;
  const uint32_t m = 24;
  const uint32_t per_party = 6;

  AlgorithmFactory factory;
  const char* algo_name = "";
  switch (algo) {
    case 0:
      factory = [](uint64_t seed) {
        return std::make_unique<KkAlgorithm>(seed);
      };
      algo_name = "kk";
      break;
    case 1:
      factory = [](uint64_t) {
        return std::make_unique<StoreEverythingGreedy>();
      };
      algo_name = "exact";
      break;
    default:
      factory = [](uint64_t seed) {
        return std::make_unique<RandomOrderAlgorithm>(seed);
      };
      algo_name = "random-order";
      break;
  }

  double correct = 0, trials = 0, max_state = 0, cross = 0;
  for (auto _ : state) {
    Rng rng(7000 + size_t(trials));
    auto family = Lemma1Family::Build(n, t, m, rng);
    auto disjointness =
        intersecting
            ? GenerateIntersectingInstance(t, m, per_party, rng)
            : GenerateDisjointInstance(t, m, per_party, rng);
    auto result = RunTheorem2Reduction(family, disjointness, factory,
                                       /*seed=*/11 + size_t(trials));
    bool answer =
        DecideIntersecting(result, result.disjoint_case_opt_lower_bound);
    correct += (answer == intersecting) ? 1 : 0;
    max_state = std::max(max_state, double(result.max_boundary_state_words));
    cross = double(family.MaxCrossIntersection());
    trials += 1;
  }
  state.SetLabel(std::string(algo_name) +
                 (intersecting ? "/intersecting" : "/disjoint"));
  state.counters["t"] = t;
  state.counters["m"] = m;
  state.counters["decision_accuracy"] = correct / trials;
  state.counters["max_message_words"] = max_state;
  state.counters["family_max_cross_intersection"] = cross;
  state.counters["log2_n"] = std::log2(double(n));
}

void ReductionArgs(benchmark::internal::Benchmark* b) {
  for (int algo : {1, 0, 2}) {  // exact, kk, random-order
    for (int inter : {0, 1}) {
      for (int t : {2, 4}) b->Args({algo, inter, t});
    }
  }
}

BENCHMARK(BM_Theorem2Reduction)
    ->Apply(ReductionArgs)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_DeterministicProtocol(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t t = static_cast<uint32_t>(state.range(1));
  const uint32_t m = 16 * n;  // message must not scale with this
  auto instance = bench::PlantedWorkload(n, m, /*opt=*/4, /*seed=*/n);
  std::vector<uint32_t> owners(m);
  for (uint32_t s = 0; s < m; ++s) owners[s] = s % t;

  DeterministicProtocolResult result;
  for (auto _ : state) {
    result = RunDeterministicProtocol(instance, owners, t);
    auto check = ValidateSolution(instance, result.solution);
    if (!check.ok) {
      std::fprintf(stderr, "invalid protocol cover: %s\n",
                   check.error.c_str());
      std::abort();
    }
  }
  double opt = double(instance.PlantedCover().size());
  state.counters["n"] = n;
  state.counters["t"] = t;
  state.counters["m"] = m;
  state.counters["cover"] = double(result.solution.cover.size());
  state.counters["ratio_vs_opt"] =
      double(result.solution.cover.size()) / opt;
  state.counters["ratio_bound_2sqrt_nt"] = 2.0 * std::sqrt(double(n) * t);
  state.counters["max_message_words"] = double(result.max_message_words);
  state.counters["message_words_per_n"] =
      double(result.max_message_words) / double(n);
}

void ProtocolArgs(benchmark::internal::Benchmark* b) {
  for (int n : {256, 512, 1024, 2048}) {
    for (int t : {2, 4, 8}) b->Args({n, t});
  }
}

BENCHMARK(BM_DeterministicProtocol)
    ->Apply(ProtocolArgs)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
