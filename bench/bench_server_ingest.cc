// Server ingest-path throughput: edges/second a whole client→server
// session sustains across the transport × batch-size × window matrix —
// {in-process local, unix socket, same-host shm ring} × {512, 4096}
// × K ∈ {1, 8, 64}. Strict unix K=1 is the pre-pipelining wire path;
// shm+window is the zero-copy fast path this matrix exists to prove
// out (the check.sh --bench-smoke gate holds the `transport-ingest/*`
// rows to the committed baseline, and the acceptance bar is
// shm+window ≥ 2× strict unix).
//
// Every iteration runs a full session — open, sequenced ingest,
// finalize, close — against a live SessionServer with 2 worker
// threads, and the first iteration's cover is checked against the
// engine::Execute oracle: a transport that corrupts or reorders
// batches fails loudly, it does not post a number.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "stream/orderings.h"

namespace setcover {
namespace {

using server::ClientOptions;
using server::ConnectShm;
using server::ConnectUnix;
using server::kDefaultShmRingBytes;
using server::Listener;
using server::ListenUnix;
using server::LocalEndpoint;
using server::Message;
using server::OpenBody;
using server::RunSessionOptions;
using server::RunSessionToCompletion;
using server::ServerOptions;
using server::SessionClient;
using server::SessionServer;

enum Transport { kLocal = 0, kUnix = 1, kShm = 2 };

const char* TransportName(int transport) {
  switch (transport) {
    case kLocal:
      return "local";
    case kUnix:
      return "unix";
    case kShm:
      return "shm";
  }
  return "?";
}

// Small enough that a measured iteration is milliseconds, big enough
// that the wire path dominates setup: ~160k edges per session.
const SetCoverInstance& SharedInstance() {
  static const SetCoverInstance instance =
      bench::PlantedWorkload(1024, 65536, 8, /*seed=*/4242);
  return instance;
}

const EdgeStream& SharedStream() {
  static const EdgeStream stream = [] {
    Rng rng(17);
    return OrderedStream(SharedInstance(), StreamOrder::kRandom, rng);
  }();
  return stream;
}

constexpr char kAlgorithm[] = "kk";
constexpr uint64_t kSeed = 3;

const engine::RunReport& Oracle() {
  static const engine::RunReport report = [] {
    engine::RunConfig config;
    config.algorithm = kAlgorithm;
    config.options.seed = kSeed;
    config.source = engine::SourceSpec::InMemory(SharedStream());
    return engine::Execute(config);
  }();
  return report;
}

std::string SocketPath() {
  return "/tmp/setcover_bench_ingest_" + std::to_string(::getpid()) +
         ".sock";
}

void BM_TransportIngest(benchmark::State& state) {
  const int transport = int(state.range(0));
  const size_t batch_edges = size_t(state.range(1));
  const size_t window = size_t(state.range(2));
  const EdgeStream& stream = SharedStream();

  LocalEndpoint endpoint;
  std::unique_ptr<Listener> listener;
  std::string error;
  if (transport == kLocal) {
    listener = endpoint.Listen();
  } else {
    listener = ListenUnix(SocketPath(), &error);
    if (listener == nullptr) {
      state.SkipWithError(("listen: " + error).c_str());
      return;
    }
  }
  ServerOptions server_options;
  // One worker: per-connection tickets serialize a session's requests
  // anyway, so a second worker only adds wakeups to a one-client bench.
  server_options.worker_threads = 1;
  server_options.max_queue = 256;
  SessionServer server(server_options, std::move(listener));
  server.Start();

  ClientOptions client_options;
  client_options.backoff.max_retries = 64;
  client_options.backoff.initial_delay_us = 100;
  client_options.backoff.max_delay_us = 10000;
  SessionClient client(
      [transport, &endpoint](std::string* dial_error) {
        switch (transport) {
          case kUnix:
            return ConnectUnix(SocketPath(), dial_error);
          case kShm:
            return ConnectShm(SocketPath(), kDefaultShmRingBytes,
                              dial_error);
          default:
            return endpoint.Connect(dial_error);
        }
      },
      client_options);

  OpenBody open;
  open.algorithm = kAlgorithm;
  open.seed = kSeed;
  open.meta = stream.meta;

  RunSessionOptions run;
  run.batch_edges = batch_edges;
  run.window = window;

  const engine::RunReport& oracle = Oracle();
  if (!oracle.completed) {
    state.SkipWithError(("oracle: " + oracle.error).c_str());
    return;
  }
  const std::vector<uint32_t> expected(oracle.solution.cover.begin(),
                                       oracle.solution.cover.end());

  uint64_t session_id = 1;
  bool checked = false;
  for (auto _ : state) {
    Message reply;
    if (!RunSessionToCompletion(&client, session_id, open, stream.edges,
                                run, &reply, &error)) {
      state.SkipWithError(("session: " + error).c_str());
      break;
    }
    if (!checked) {
      checked = true;
      if (reply.cover != expected) {
        state.SkipWithError("cover mismatch vs engine oracle");
        break;
      }
    }
    Message closed;
    if (!client.Close(session_id, &closed, &error)) {
      state.SkipWithError(("close: " + error).c_str());
      break;
    }
    ++session_id;
  }
  server.DrainAndStop();

  state.SetLabel(std::string("transport-ingest/") +
                 TransportName(transport) + "/b" +
                 std::to_string(batch_edges) + "/k" +
                 std::to_string(window));
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.edges.size()));
  state.counters["window"] = double(window);
  // The session pipeline spans client + 2 server workers; real host
  // parallelism decides how they overlap, so rows are only comparable
  // on the committed-core-count host (the gate skips otherwise).
  state.counters["threads"] = 2.0;
  state.counters["num_cpus"] = double(std::thread::hardware_concurrency());
}

BENCHMARK(BM_TransportIngest)
    ->Args({kLocal, 4096, 1})
    ->Args({kLocal, 4096, 8})
    ->Args({kUnix, 128, 1})
    ->Args({kShm, 128, 8})
    ->Args({kUnix, 512, 1})
    ->Args({kUnix, 512, 8})
    ->Args({kUnix, 4096, 1})
    ->Args({kUnix, 4096, 8})
    ->Args({kShm, 512, 8})
    ->Args({kShm, 4096, 1})
    ->Args({kShm, 4096, 8})
    ->Args({kShm, 4096, 64})
    ->UseRealTime()  // wall-clock of the pipeline, not client CPU
    ->MinTime(0.5);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
