#ifndef SETCOVER_BENCH_BENCH_UTIL_H_
#define SETCOVER_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harness. Every bench binary
// regenerates one table/figure of DESIGN.md's experiment index; these
// helpers build the standard workloads and run algorithms with
// validation, so each binary only describes its sweep.

#include <cstdio>
#include <cstdlib>

#include "core/streaming_algorithm.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace bench {

/// The standard Table-1 workload: planted cover of size `opt` hidden
/// among small decoys, m = density·n (callers pass density = n for the
/// paper's m = Θ(n²) regime).
inline SetCoverInstance PlantedWorkload(uint32_t n, uint32_t m,
                                        uint32_t opt, uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = opt;
  params.decoy_min_size = 1;
  params.decoy_max_size = 4;
  return GeneratePlantedCover(params, rng);
}

/// Result of one validated run.
struct RunResult {
  size_t cover_size = 0;
  double ratio = 0.0;  // vs planted cover (OPT upper bound)
  size_t peak_words = 0;
};

/// Streams `instance` through `algorithm` via the engine (with its
/// validation stage enabled) and returns quality/space. Aborts if the
/// run fails or the cover is invalid — a bench must never report
/// numbers for a broken run.
inline RunResult RunValidated(StreamingSetCoverAlgorithm& algorithm,
                              const SetCoverInstance& instance,
                              const EdgeStream& stream) {
  engine::RunConfig config;
  config.algorithm_instance = &algorithm;
  config.source = engine::SourceSpec::InMemory(stream);
  config.validate = &instance;
  engine::RunReport report = engine::Execute(config);
  if (!report.completed) {
    std::fprintf(stderr, "bench: %s run failed: %s\n",
                 algorithm.Name().c_str(), report.error.c_str());
    std::abort();
  }
  if (!report.validation.ok) {
    std::fprintf(stderr, "bench: %s produced invalid cover: %s\n",
                 algorithm.Name().c_str(), report.validation.error.c_str());
    std::abort();
  }
  RunResult result;
  result.cover_size = report.solution.cover.size();
  size_t reference = instance.PlantedCover().empty()
                         ? 1
                         : instance.PlantedCover().size();
  result.ratio = double(result.cover_size) / double(reference);
  result.peak_words = report.peak_words;
  return result;
}

}  // namespace bench
}  // namespace setcover

#endif  // SETCOVER_BENCH_BENCH_UTIL_H_
