// Experiment F1 — the random-vs-adversarial separation (Theorem 2 vs
// Theorem 3): Algorithm 1 is run with its Õ(m/√n)-space budget under a
// uniformly random order and under four concrete adversarial orders.
//
// Expected shape: on random order the ratio stays in the Õ(√n) band; on
// adversarial orders (especially large-sets-last, which starves the
// counting signal until the useful sets are gone) quality degrades while
// space stays small — consistent with Theorem 2's claim that *no*
// small-space algorithm can be good on adversarial streams. The KK
// algorithm at Õ(m) space is order-insensitive, shown for contrast.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"

namespace setcover {
namespace {

using bench::PlantedWorkload;
using bench::RunValidated;

constexpr StreamOrder kOrders[] = {
    StreamOrder::kRandom, StreamOrder::kSetMajor,
    StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets,
    StreamOrder::kLargeSetsLast};

void BM_SeparationRandomOrderAlg(benchmark::State& state) {
  const StreamOrder order = kOrders[state.range(0)];
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/500 + n);
  Rng rng(600 + n);
  auto stream = OrderedStream(instance, order, rng);

  bench::RunResult result;
  double trials = 0, ratio_sum = 0;
  for (auto _ : state) {
    RandomOrderAlgorithm algorithm(41 + size_t(trials));
    result = RunValidated(*&algorithm, instance, stream);
    ratio_sum += result.ratio;
    trials += 1;
  }
  state.SetLabel(StreamOrderName(order));
  state.counters["n"] = n;
  state.counters["ratio_vs_opt"] = ratio_sum / trials;
  state.counters["peak_words"] = double(result.peak_words);
  state.counters["m"] = m;
}

void BM_SeparationKk(benchmark::State& state) {
  const StreamOrder order = kOrders[state.range(0)];
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/500 + n);
  Rng rng(600 + n);
  auto stream = OrderedStream(instance, order, rng);

  bench::RunResult result;
  double trials = 0, ratio_sum = 0;
  for (auto _ : state) {
    KkAlgorithm algorithm(41 + size_t(trials));
    result = RunValidated(*&algorithm, instance, stream);
    ratio_sum += result.ratio;
    trials += 1;
  }
  state.SetLabel(StreamOrderName(order));
  state.counters["n"] = n;
  state.counters["ratio_vs_opt"] = ratio_sum / trials;
  state.counters["peak_words"] = double(result.peak_words);
  state.counters["m"] = m;
}

void SeparationArgs(benchmark::internal::Benchmark* b) {
  for (int n : {256, 1024}) {
    for (int o = 0; o < 5; ++o) b->Args({o, n});
  }
}

BENCHMARK(BM_SeparationRandomOrderAlg)
    ->Apply(SeparationArgs)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeparationKk)
    ->Apply(SeparationArgs)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
