#include "benchmark/benchmark.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <regex>
#include <thread>

namespace benchmark {
namespace {

// ---- clocks -------------------------------------------------------

double RealNow() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

double CpuNow() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

// ---- flags --------------------------------------------------------

struct Flags {
  double min_time = 0.5;
  std::string filter;
  std::string format = "console";
  std::string out;
  std::string out_format = "json";
  std::string executable;
};

Flags& GlobalFlags() {
  static Flags flags;
  return flags;
}

/// Consumes "--name=value"; true if argv[i] matched `name`.
bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

// ---- registry -----------------------------------------------------

std::vector<internal::Benchmark*>& Registry() {
  static std::vector<internal::Benchmark*> registry;
  return registry;
}

const char* UnitString(TimeUnit unit) {
  switch (unit) {
    case kNanosecond:
      return "ns";
    case kMicrosecond:
      return "us";
    case kMillisecond:
      return "ms";
    case kSecond:
      return "s";
  }
  return "ns";
}

double UnitMultiplier(TimeUnit unit) {
  switch (unit) {
    case kNanosecond:
      return 1e9;
    case kMicrosecond:
      return 1e6;
    case kMillisecond:
      return 1e3;
    case kSecond:
      return 1.0;
  }
  return 1e9;
}

/// One finished run: everything a reporter needs.
struct RunResult {
  std::string name;
  std::size_t family_index = 0;
  std::size_t instance_index = 0;
  int64_t iterations = 0;
  double real_time = 0.0;  // per iteration, in `unit`
  double cpu_time = 0.0;   // per iteration, in `unit`
  TimeUnit unit = kNanosecond;
  bool has_items = false;
  double items_per_second = 0.0;
  UserCounters counters;
  std::string label;
  bool error_occurred = false;
  std::string error_message;
};

// ---- JSON ---------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string Iso8601Now() {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[40];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S+00:00", &tm_utc);
  return buf;
}

int CpuMhz() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return 0;
  char line[256];
  int mhz = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    double value = 0.0;
    if (std::sscanf(line, "cpu MHz : %lf", &value) == 1) {
      mhz = int(value);
      break;
    }
  }
  std::fclose(f);
  return mhz;
}

const char* LibraryBuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

void WriteJsonContext(std::FILE* out) {
  double loads[3] = {0, 0, 0};
  getloadavg(loads, 3);
  std::fprintf(out, "  \"context\": {\n");
  std::fprintf(out, "    \"date\": \"%s\",\n", Iso8601Now().c_str());
  char host[256] = "unknown";
  gethostname(host, sizeof host - 1);
  std::fprintf(out, "    \"host_name\": \"%s\",\n", JsonEscape(host).c_str());
  std::fprintf(out, "    \"executable\": \"%s\",\n",
               JsonEscape(GlobalFlags().executable).c_str());
  std::fprintf(out, "    \"num_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "    \"mhz_per_cpu\": %d,\n", CpuMhz());
  std::fprintf(out, "    \"cpu_scaling_enabled\": false,\n");
  std::fprintf(out, "    \"caches\": [\n    ],\n");
  std::fprintf(out, "    \"load_avg\": [%s,%s,%s],\n",
               JsonDouble(loads[0]).c_str(), JsonDouble(loads[1]).c_str(),
               JsonDouble(loads[2]).c_str());
  std::fprintf(out, "    \"library_build_type\": \"%s\"\n",
               LibraryBuildType());
  std::fprintf(out, "  },\n");
}

void WriteJsonRun(std::FILE* out, const RunResult& run, bool last) {
  std::fprintf(out, "    {\n");
  std::fprintf(out, "      \"name\": \"%s\",\n", JsonEscape(run.name).c_str());
  std::fprintf(out, "      \"family_index\": %zu,\n", run.family_index);
  std::fprintf(out, "      \"per_family_instance_index\": %zu,\n",
               run.instance_index);
  std::fprintf(out, "      \"run_name\": \"%s\",\n",
               JsonEscape(run.name).c_str());
  std::fprintf(out, "      \"run_type\": \"iteration\",\n");
  std::fprintf(out, "      \"repetitions\": 1,\n");
  std::fprintf(out, "      \"repetition_index\": 0,\n");
  std::fprintf(out, "      \"threads\": 1,\n");
  if (run.error_occurred) {
    std::fprintf(out, "      \"error_occurred\": true,\n");
    std::fprintf(out, "      \"error_message\": \"%s\",\n",
                 JsonEscape(run.error_message).c_str());
  }
  std::fprintf(out, "      \"iterations\": %" PRId64 ",\n", run.iterations);
  std::fprintf(out, "      \"real_time\": %s,\n",
               JsonDouble(run.real_time).c_str());
  std::fprintf(out, "      \"cpu_time\": %s,\n",
               JsonDouble(run.cpu_time).c_str());
  std::fprintf(out, "      \"time_unit\": \"%s\"", UnitString(run.unit));
  if (run.has_items) {
    std::fprintf(out, ",\n      \"items_per_second\": %s",
                 JsonDouble(run.items_per_second).c_str());
  }
  for (const auto& [key, counter] : run.counters) {
    std::fprintf(out, ",\n      \"%s\": %s", JsonEscape(key).c_str(),
                 JsonDouble(counter.value).c_str());
  }
  if (!run.label.empty()) {
    std::fprintf(out, ",\n      \"label\": \"%s\"",
                 JsonEscape(run.label).c_str());
  }
  std::fprintf(out, "\n    }%s\n", last ? "" : ",");
}

void WriteJsonReport(std::FILE* out, const std::vector<RunResult>& runs) {
  std::fprintf(out, "{\n");
  WriteJsonContext(out);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    WriteJsonRun(out, runs[i], i + 1 == runs.size());
  }
  std::fprintf(out, "  ]\n}\n");
}

// ---- console ------------------------------------------------------

std::string HumanValue(double v) {
  char buf[64];
  if (v >= 1e15 || (v < 1e-3 && v != 0.0)) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else if (v >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.4gT", v / 1e12);
  } else if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.4gG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.4gM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.4gk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

void WriteConsoleReport(const std::vector<RunResult>& runs) {
  std::size_t width = 10;
  for (const RunResult& run : runs) width = std::max(width, run.name.size());
  std::printf("%s\n", Iso8601Now().c_str());
  std::printf("Running %s\n", GlobalFlags().executable.c_str());
  std::printf("Run on (%u X %d MHz CPU)\n",
              std::thread::hardware_concurrency(), CpuMhz());
#ifndef NDEBUG
  std::printf("***WARNING*** Library was built as DEBUG. "
              "Timings may be affected.\n");
#endif
  const std::string rule(width + 44, '-');
  std::printf("%s\n", rule.c_str());
  std::printf("%-*s %15s %15s %10s\n", int(width), "Benchmark", "Time",
              "CPU", "Iterations");
  std::printf("%s\n", rule.c_str());
  for (const RunResult& run : runs) {
    if (run.error_occurred) {
      std::printf("%-*s ERROR: %s\n", int(width), run.name.c_str(),
                  run.error_message.c_str());
      continue;
    }
    std::printf("%-*s %12.3g %s %12.3g %s %10" PRId64, int(width),
                run.name.c_str(), run.real_time, UnitString(run.unit),
                run.cpu_time, UnitString(run.unit), run.iterations);
    if (run.has_items) {
      std::printf(" items_per_second=%s",
                  HumanValue(run.items_per_second).c_str());
    }
    for (const auto& [key, counter] : run.counters) {
      std::printf(" %s=%s", key.c_str(), HumanValue(counter.value).c_str());
    }
    if (!run.label.empty()) std::printf(" %s", run.label.c_str());
    std::printf("\n");
  }
}

}  // namespace

// ---- State --------------------------------------------------------

State::State(int64_t max_iterations, std::vector<int64_t> ranges)
    : max_iterations_(max_iterations), ranges_(std::move(ranges)) {}

void State::StartKeepRunning() {
  timing_ = true;
  real_start_ = RealNow();
  cpu_start_ = CpuNow();
}

void State::FinishKeepRunning() {
  if (!timing_) return;
  timing_ = false;
  real_time_used_ += RealNow() - real_start_;
  cpu_time_used_ += CpuNow() - cpu_start_;
}

void State::PauseTiming() { FinishKeepRunning(); }

void State::ResumeTiming() { StartKeepRunning(); }

void State::SkipWithError(const char* msg) {
  skipped_ = true;
  error_message_ = msg != nullptr ? msg : "";
}

// ---- runner -------------------------------------------------------

namespace internal {

Benchmark* RegisterBenchmarkInternal(Benchmark* benchmark) {
  Registry().push_back(benchmark);
  return benchmark;
}

class BenchmarkRunner {
 public:
  static std::size_t RunAll() {
    const Flags& flags = GlobalFlags();
    std::regex filter;
    const bool has_filter = !flags.filter.empty();
    if (has_filter) filter = std::regex(flags.filter);

    std::vector<RunResult> runs;
    for (std::size_t family = 0; family < Registry().size(); ++family) {
      const Benchmark& bench = *Registry()[family];
      std::vector<std::vector<int64_t>> args = bench.args_;
      if (args.empty()) args.push_back({});
      for (std::size_t instance = 0; instance < args.size(); ++instance) {
        const std::string name = MangleName(bench, args[instance]);
        if (has_filter && !std::regex_search(name, filter)) continue;
        RunResult run = RunOne(bench, args[instance]);
        run.name = name;
        run.family_index = family;
        run.instance_index = instance;
        runs.push_back(std::move(run));
      }
    }

    if (flags.format == "json") {
      WriteJsonReport(stdout, runs);
    } else {
      WriteConsoleReport(runs);
    }
    if (!flags.out.empty()) {
      std::FILE* f = std::fopen(flags.out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "minibench: cannot open %s\n",
                     flags.out.c_str());
        std::exit(1);
      }
      WriteJsonReport(f, runs);
      std::fclose(f);
    }
    return runs.size();
  }

 private:
  static std::string MangleName(const Benchmark& bench,
                                const std::vector<int64_t>& args) {
    std::string name = bench.name_;
    char buf[64];
    for (int64_t arg : args) {
      std::snprintf(buf, sizeof buf, "/%" PRId64, arg);
      name += buf;
    }
    if (bench.min_time_ != 0.0) {
      std::snprintf(buf, sizeof buf, "/min_time:%.3f", bench.min_time_);
      name += buf;
    }
    if (bench.iterations_ != 0) {
      std::snprintf(buf, sizeof buf, "/iterations:%" PRId64,
                    bench.iterations_);
      name += buf;
    }
    if (bench.use_manual_time_) {
      name += "/manual_time";
    } else if (bench.use_real_time_) {
      name += "/real_time";
    }
    return name;
  }

  struct Measurement {
    int64_t iterations = 0;
    double real = 0.0;
    double cpu = 0.0;
    double manual = 0.0;
    bool skipped = false;
    std::string error_message;
    std::string label;
    int64_t items = -1;
    UserCounters counters;
  };

  static Measurement Measure(const Benchmark& bench,
                             const std::vector<int64_t>& args,
                             int64_t iterations) {
    State state(iterations, args);
    bench.function_(state);
    state.FinishKeepRunning();
    Measurement m;
    m.iterations = state.completed_;
    m.real = state.real_time_used_;
    m.cpu = state.cpu_time_used_;
    m.manual = state.manual_time_used_;
    m.skipped = state.skipped_;
    m.error_message = state.error_message_;
    m.label = state.label_;
    m.items = state.items_processed_;
    m.counters = state.counters;
    return m;
  }

  /// The time basis the Use*Time flags select — it drives both the
  /// min_time convergence loop and the items/s denominator.
  static double BasisSeconds(const Benchmark& bench, const Measurement& m) {
    if (bench.use_manual_time_) return m.manual;
    if (bench.use_real_time_) return m.real;
    return m.cpu;
  }

  static RunResult RunOne(const Benchmark& bench,
                          const std::vector<int64_t>& args) {
    constexpr int64_t kMaxIterations = 1000000000;
    const double min_time = bench.min_time_ != 0.0 ? bench.min_time_
                                                   : GlobalFlags().min_time;
    Measurement m;
    if (bench.iterations_ != 0) {
      m = Measure(bench, args, bench.iterations_);
    } else {
      // Google Benchmark's convergence loop: grow the iteration count
      // until one run's basis time reaches min_time (or real time hits
      // the 5x overshoot guard).
      int64_t iters = 1;
      for (;;) {
        m = Measure(bench, args, iters);
        const double seconds = BasisSeconds(bench, m);
        if (m.skipped || iters >= kMaxIterations || seconds >= min_time ||
            m.real >= 5 * min_time) {
          break;
        }
        double multiplier = min_time * 1.4 / std::max(seconds, 1e-9);
        const bool significant = seconds / min_time > 0.1;
        if (!significant) multiplier = 10.0;
        if (multiplier <= 1.0) multiplier = 2.0;
        iters = std::min<int64_t>(
            kMaxIterations,
            std::max<int64_t>(int64_t(multiplier * double(iters)),
                              iters + 1));
      }
    }

    RunResult run;
    run.unit = bench.unit_;
    run.iterations = m.iterations;
    run.label = m.label;
    run.counters = m.counters;
    if (m.skipped) {
      run.error_occurred = true;
      run.error_message = m.error_message;
      return run;
    }
    const double mult = UnitMultiplier(bench.unit_);
    const double iters = double(std::max<int64_t>(m.iterations, 1));
    const double reported_real = bench.use_manual_time_ ? m.manual : m.real;
    run.real_time = reported_real / iters * mult;
    run.cpu_time = m.cpu / iters * mult;
    if (m.items >= 0) {
      const double basis = BasisSeconds(bench, m);
      run.has_items = true;
      run.items_per_second = basis > 0.0 ? double(m.items) / basis : 0.0;
    }
    return run;
  }
};

}  // namespace internal

// ---- public entry points ------------------------------------------

void Initialize(int* argc, char** argv) {
  Flags& flags = GlobalFlags();
  if (*argc > 0) flags.executable = argv[0];
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string value;
    if (ParseStringFlag(argv[i], "--benchmark_min_time", &value)) {
      flags.min_time = std::atof(value.c_str());
    } else if (ParseStringFlag(argv[i], "--benchmark_filter", &value)) {
      flags.filter = value;
    } else if (ParseStringFlag(argv[i], "--benchmark_format", &value)) {
      flags.format = value;
    } else if (ParseStringFlag(argv[i], "--benchmark_out", &value)) {
      flags.out = value;
    } else if (ParseStringFlag(argv[i], "--benchmark_out_format", &value)) {
      flags.out_format = value;
    } else if (ParseStringFlag(argv[i], "--benchmark_counters_tabular",
                               &value)) {
      // Accepted for compatibility; the console reporter always prints
      // counters inline.
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: error: unrecognized command-line flag: %s\n",
                 argc > 0 ? argv[0] : "minibench", argv[i]);
  }
  return argc > 1;
}

std::size_t RunSpecifiedBenchmarks() {
  return internal::BenchmarkRunner::RunAll();
}

void Shutdown() {}

}  // namespace benchmark
