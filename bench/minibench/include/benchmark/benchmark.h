// Minibench: a minimal, API-compatible stand-in for the subset of
// Google Benchmark (1.7-era) that this repo's bench/ binaries use. It
// exists for one reason: the perf gate in scripts/check.sh must compare
// Release numbers against Release numbers, and the distro's
// libbenchmark ships with library_build_type == "debug" baked into its
// JSON context — every baseline recorded through it is flagged as
// untrustworthy. Building the harness from source with the project's
// own flags makes the stamp truthful.
//
// Compatibility contract (pinned by tests/minibench_test.cc):
//   * BENCHMARK(fn) registration with the Arg/Args/DenseRange/Unit/
//     MinTime/Iterations/UseRealTime/UseManualTime/Apply/Name builder
//     chain, and BENCHMARK_MAIN() / the Initialize +
//     ReportUnrecognizedArguments + RunSpecifiedBenchmarks + Shutdown
//     custom-main sequence.
//   * Google Benchmark's name mangling: "name/arg1/arg2", then
//     "/min_time:%.3f" when MinTime was set, "/iterations:%d" when
//     Iterations was set, then "/real_time" or "/manual_time".
//   * JSON output (--benchmark_format=json, --benchmark_out=...) with
//     the same per-run fields ("run_type": "iteration", real_time and
//     cpu_time per iteration in time_unit, items_per_second on the
//     manual/real/cpu time basis matching the Use*Time flags, user
//     counters flattened into the run object, trailing "label") and a
//     context block whose "library_build_type" reflects NDEBUG.
//   * Rate semantics: SetItemsProcessed(total) divided by manual time
//     if UseManualTime, else real time if UseRealTime, else CPU time.
//
// Deliberately out of scope: threads, repetitions, aggregates,
// complexity fitting, counter flags, memory reporting.
#ifndef SETCOVER_MINIBENCH_BENCHMARK_H_
#define SETCOVER_MINIBENCH_BENCHMARK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

/// User counter: a plain double. (Google Benchmark's rate/average
/// flags are unused by this repo's benches, so they are not modeled.)
class Counter {
 public:
  Counter(double v = 0.0) : value(v) {}  // NOLINT: implicit by design
  operator double() const { return value; }
  double value;
};

using UserCounters = std::map<std::string, Counter>;

namespace internal {
class BenchmarkRunner;
}  // namespace internal

/// Per-run benchmark state: the `for (auto _ : state)` protocol plus
/// the result setters. One State is constructed per timed run.
class State {
 public:
  class Iterator {
   public:
    // The unused attribute on the type propagates to every `auto _ :
    // state` binding, keeping -Wunused-but-set-variable quiet exactly
    // as the real library does.
    struct __attribute__((unused)) Value {};
    Value operator*() const { return Value{}; }
    Iterator& operator++() {
      --remaining_;
      ++state_->completed_;
      return *this;
    }
    bool operator!=(const Iterator&) {
      if (remaining_ > 0 && !state_->skipped_) return true;
      state_->FinishKeepRunning();
      return false;
    }

   private:
    friend class State;
    Iterator(State* state, int64_t remaining)
        : state_(state), remaining_(remaining) {}
    State* state_;
    int64_t remaining_;
  };

  Iterator begin() {
    StartKeepRunning();
    return Iterator(this, max_iterations_);
  }
  Iterator end() { return Iterator(this, 0); }

  int64_t range(std::size_t i = 0) const { return ranges_[i]; }
  int64_t iterations() const { return completed_; }

  void SetItemsProcessed(int64_t items) { items_processed_ = items; }
  void SetLabel(const std::string& label) { label_ = label; }
  /// Manual-time mode: credit `seconds` of measured time to this
  /// iteration (UseManualTime() must be set on the benchmark).
  void SetIterationTime(double seconds) { manual_time_used_ += seconds; }
  void SkipWithError(const char* msg);
  void PauseTiming();
  void ResumeTiming();

  UserCounters counters;

 private:
  friend class internal::BenchmarkRunner;
  explicit State(int64_t max_iterations, std::vector<int64_t> ranges);

  void StartKeepRunning();
  void FinishKeepRunning();

  int64_t max_iterations_;
  std::vector<int64_t> ranges_;
  int64_t completed_ = 0;
  bool skipped_ = false;
  bool timing_ = false;
  std::string error_message_;
  std::string label_;
  int64_t items_processed_ = -1;
  double manual_time_used_ = 0.0;
  double real_time_used_ = 0.0;
  double cpu_time_used_ = 0.0;
  double real_start_ = 0.0;
  double cpu_start_ = 0.0;
};

namespace internal {

/// A registered benchmark family and its builder chain. Every method
/// returns `this` so `BENCHMARK(f)->Arg(1)->Unit(...)` composes.
class Benchmark {
 public:
  using Function = void (*)(State&);

  Benchmark(const char* name, Function function)
      : name_(name), function_(function) {}

  Benchmark* Arg(int64_t x) {
    args_.push_back({x});
    return this;
  }
  Benchmark* Args(const std::vector<int64_t>& args) {
    args_.push_back(args);
    return this;
  }
  /// Inclusive dense range, one instance per value (step defaults 1).
  Benchmark* DenseRange(int64_t start, int64_t limit, int step = 1) {
    for (int64_t x = start; x <= limit; x += step) args_.push_back({x});
    return this;
  }
  Benchmark* Unit(TimeUnit unit) {
    unit_ = unit;
    return this;
  }
  Benchmark* MinTime(double t) {
    min_time_ = t;
    return this;
  }
  Benchmark* Iterations(int64_t n) {
    iterations_ = n;
    return this;
  }
  Benchmark* UseRealTime() {
    use_real_time_ = true;
    return this;
  }
  Benchmark* UseManualTime() {
    use_manual_time_ = true;
    return this;
  }
  Benchmark* Name(const std::string& name) {
    name_ = name;
    return this;
  }
  Benchmark* Apply(void (*custom_arguments)(Benchmark* benchmark)) {
    custom_arguments(this);
    return this;
  }

 private:
  friend class BenchmarkRunner;
  std::string name_;
  Function function_;
  std::vector<std::vector<int64_t>> args_;
  TimeUnit unit_ = kNanosecond;
  double min_time_ = 0.0;    // 0 = use --benchmark_min_time
  int64_t iterations_ = 0;   // 0 = time-driven
  bool use_real_time_ = false;
  bool use_manual_time_ = false;
};

Benchmark* RegisterBenchmarkInternal(Benchmark* benchmark);

}  // namespace internal

/// Consumes recognized --benchmark_* flags from argv (compacting it);
/// unrecognized arguments are left for ReportUnrecognizedArguments.
void Initialize(int* argc, char** argv);

/// True (after printing a diagnostic) if any argument survived
/// Initialize — the caller should exit non-zero.
bool ReportUnrecognizedArguments(int argc, char** argv);

/// Runs every registered benchmark whose mangled name matches
/// --benchmark_filter, reporting per --benchmark_format/--benchmark_out.
/// Returns the number of runs executed.
std::size_t RunSpecifiedBenchmarks();

void Shutdown();

/// Compiler barrier: the value is considered read (and clobbered
/// through memory), so the computation producing it cannot be elided.
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

}  // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(func)                                                \
  static ::benchmark::internal::Benchmark* MINIBENCH_CONCAT(           \
      minibench_registration_, __COUNTER__) __attribute__((unused)) =  \
      ::benchmark::internal::RegisterBenchmarkInternal(                \
          new ::benchmark::internal::Benchmark(#func, &func))

#define BENCHMARK_MAIN()                                               \
  int main(int argc, char** argv) {                                    \
    ::benchmark::Initialize(&argc, argv);                              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {        \
      return 1;                                                        \
    }                                                                  \
    ::benchmark::RunSpecifiedBenchmarks();                             \
    ::benchmark::Shutdown();                                           \
    return 0;                                                          \
  }                                                                    \
  int main(int, char**)

#endif  // SETCOVER_MINIBENCH_BENCHMARK_H_
