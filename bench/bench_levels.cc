// Experiment F3 — the KK level-decay law (§1.2): the number of sets
// whose uncovered-degree ends in level i (= [i√n, (i+1)√n)) must fall
// geometrically — E|S_i| ≤ ½·E|S_{i-1}| — which is the fact that
// bounds the KK solution at Õ(√n) sets per level.
//
// Workload: sets with log-uniform sizes (2^U(0..log₂ n)), so the level
// spectrum is populated; the coverage dynamics then thin out the upper
// levels. Counters level0..level5 report the averaged end-of-stream
// histogram; decay_i = level_i / level_{i-1} should sit well below 1.
//
// Also includes the inclusion-constant ablation: scaling the paper's
// inclusion probability 2^i·√n/m up/down trades sampled-cover size
// against patching volume.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/kk_algorithm.h"

namespace setcover {
namespace {

// m sets of log-uniform size: every degree scale is represented, which
// is exactly what the level histogram measures.
SetCoverInstance LogUniformWorkload(uint32_t n, uint32_t m,
                                    uint64_t seed) {
  Rng rng(seed);
  LogUniformParams params;
  params.num_elements = n;
  params.num_sets = m;
  return GenerateLogUniform(params, rng);
}

void BM_KkLevelDecay(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t m = 64 * n;
  auto instance = LogUniformWorkload(n, m, /*seed=*/700 + n);
  Rng rng(800 + n);
  auto stream = RandomOrderStream(instance, rng);

  std::vector<double> levels(8, 0.0);
  double trials = 0;
  for (auto _ : state) {
    KkAlgorithm algorithm(29 + size_t(trials));
    CoverSolution solution = RunStream(algorithm, stream);
    benchmark::DoNotOptimize(solution);
    auto hist = algorithm.LevelHistogram();
    for (size_t i = 0; i < levels.size() && i < hist.size(); ++i) {
      levels[i] += double(hist[i]);
    }
    trials += 1;
  }
  for (double& level : levels) level /= trials;
  state.counters["n"] = n;
  state.counters["m"] = m;
  for (int i = 0; i < 6; ++i) {
    state.counters["level" + std::to_string(i)] = levels[i];
  }
  for (int i = 1; i < 5; ++i) {
    state.counters["decay" + std::to_string(i)] =
        levels[i - 1] > 0 ? levels[i] / levels[i - 1] : 0.0;
  }
}

BENCHMARK(BM_KkLevelDecay)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_KkInclusionConstantAblation(benchmark::State& state) {
  // inclusion_constant = range(0)/4: 0.25x, 1x (the paper's rule), 4x.
  const double c = double(state.range(0)) / 4.0;
  const uint32_t n = 512;
  const uint32_t m = 64 * n;
  auto instance = LogUniformWorkload(n, m, /*seed=*/901);
  Rng rng(902);
  auto stream = RandomOrderStream(instance, rng);

  KkParams params;
  params.inclusion_constant = c;
  double trials = 0, cover_sum = 0, sampled_sum = 0;
  for (auto _ : state) {
    KkAlgorithm algorithm(31 + size_t(trials), params);
    auto result = bench::RunValidated(*&algorithm, instance, stream);
    cover_sum += double(result.cover_size);
    sampled_sum += double(algorithm.SampledCoverSize());
    trials += 1;
  }
  state.counters["inclusion_constant"] = c;
  state.counters["cover"] = cover_sum / trials;
  state.counters["sampled_sets"] = sampled_sum / trials;
  state.counters["patched_sets"] = (cover_sum - sampled_sum) / trials;
}

BENCHMARK(BM_KkInclusionConstantAblation)
    ->Arg(1)    // 0.25x
    ->Arg(4)    // 1x — the paper's rule
    ->Arg(16)   // 4x
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
