// Experiment F2 — the Theorem 4 trade-off curve: Algorithm 2's space
// scales as Õ(m·n/α²) and its cover size as O(α log m) while α sweeps
// over multiples of √n.
//
// Expected shape: doubling α roughly quarters `promoted_sets` (the
// explicitly stored levels, the algorithm's variable space) and lets the
// cover grow; at α = Θ̃(√n) the space matches the Theorem 2 lower bound
// Ω̃(m·n²/α⁴) = Ω̃(m) up to poly-logs, which is why row 3 of Table 1
// touches row 2 there.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "core/adversarial_level.h"

namespace setcover {
namespace {

using bench::PlantedWorkload;
using bench::RunValidated;

void BM_AdversarialTradeoff(benchmark::State& state) {
  const double alpha_mult = double(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/300 + n);
  Rng rng(400 + n);
  auto stream = OrderedStream(instance, StreamOrder::kElementMajor, rng);

  AdversarialLevelParams params;
  params.alpha = alpha_mult * std::sqrt(double(n));

  double trials = 0, ratio_sum = 0, promoted_sum = 0, peak_sum = 0;
  for (auto _ : state) {
    AdversarialLevelAlgorithm algorithm(17 + size_t(trials), params);
    auto result = RunValidated(*&algorithm, instance, stream);
    ratio_sum += result.ratio;
    promoted_sum += double(algorithm.PeakPromotedSets());
    peak_sum += double(result.peak_words);
    trials += 1;
  }
  state.counters["n"] = n;
  state.counters["alpha"] = params.alpha;
  state.counters["alpha_over_sqrt_n"] = alpha_mult;
  state.counters["ratio_vs_opt"] = ratio_sum / trials;
  state.counters["promoted_sets"] = promoted_sum / trials;
  state.counters["peak_words"] = peak_sum / trials;
  // The theory predicts promoted_sets ∝ m·n/α² = m/alpha_mult²; expose
  // the normalized value so the flatness of this row certifies the law.
  state.counters["promoted_x_mult2_over_m"] =
      (promoted_sum / trials) * alpha_mult * alpha_mult / double(m);
}

void TradeoffArgs(benchmark::internal::Benchmark* b) {
  for (int n : {256, 1024}) {
    for (int mult : {2, 4, 8, 16, 32}) b->Args({mult, n});
  }
}

BENCHMARK(BM_AdversarialTradeoff)
    ->Apply(TradeoffArgs)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
