// Experiment F7 — systems throughput: edges/second sustained by each
// one-pass algorithm on a large random-order stream. The paper is about
// space, but a streaming system also lives or dies by per-edge cost;
// this bench pins it down (items/s = edges/s).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "core/set_arrival.h"
#include "core/trivial.h"

namespace setcover {
namespace {

enum AlgKind { kKkAlg, kAdvLevel, kRandOrder, kPatch, kSetArr };

std::unique_ptr<StreamingSetCoverAlgorithm> Make(AlgKind kind,
                                                 uint64_t seed) {
  switch (kind) {
    case kKkAlg:
      return std::make_unique<KkAlgorithm>(seed);
    case kAdvLevel:
      return std::make_unique<AdversarialLevelAlgorithm>(seed);
    case kRandOrder:
      return std::make_unique<RandomOrderAlgorithm>(seed);
    case kPatch:
      return std::make_unique<FirstSetPatching>();
    case kSetArr:
      return std::make_unique<SetArrivalThreshold>();
  }
  return nullptr;
}

const char* KindName(AlgKind kind) {
  switch (kind) {
    case kKkAlg:
      return "kk";
    case kAdvLevel:
      return "adversarial-level";
    case kRandOrder:
      return "random-order";
    case kPatch:
      return "first-set-patching";
    case kSetArr:
      return "set-arrival-threshold";
  }
  return "?";
}

void BM_Throughput(benchmark::State& state) {
  const AlgKind kind = static_cast<AlgKind>(state.range(0));
  const uint32_t n = 1024;
  const uint32_t m = 262144;  // 256·n: ~0.7M edges
  auto instance = bench::PlantedWorkload(n, m, 8, /*seed=*/4242);
  Rng rng(17);
  auto stream = RandomOrderStream(instance, rng);

  for (auto _ : state) {
    auto algorithm = Make(kind, 3);
    algorithm->Begin(stream.meta);
    for (const Edge& e : stream.edges) algorithm->ProcessEdge(e);
    benchmark::DoNotOptimize(algorithm->Finalize());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel(KindName(kind));
  state.counters["stream_edges"] = double(stream.size());
}

BENCHMARK(BM_Throughput)
    ->DenseRange(kKkAlg, kSetArr)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
