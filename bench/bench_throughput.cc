// Experiment F7 — systems throughput: edges/second sustained by each
// one-pass algorithm on a large random-order stream. The paper is about
// space, but a streaming system also lives or dies by per-edge cost;
// this bench pins it down (items/s = edges/s).
//
// Ingestion goes through ProcessEdgeBatch in kIngestBatchEdges chunks —
// the same path RunStream, RunStreamFromFile, and the run supervisor
// use — so these numbers measure the deployed pipeline, not a
// per-edge-virtual-call strawman. BM_NGuessThreads measures the
// parallel multi-run driver across thread counts on the same stream.
//
// BM_FileReplay measures the on-disk replay path end to end (open →
// decode → CRC → ProcessEdgeBatch) across the stream-file format and
// decoder matrix. Row 0 (v2, stdio, synchronous) is the pre-v3
// pipeline — the baseline the perf gate in scripts/check.sh compares
// against; v3-mmap-prefetch is the shipping default.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/multi_run.h"
#include "core/random_order.h"
#include "core/set_arrival.h"
#include "core/trivial.h"
#include "engine/engine.h"
#include "engine/sharded.h"
#include "offline/greedy.h"
#include "stream/orderings.h"
#include "stream/stream_file.h"

namespace setcover {
namespace {

enum AlgKind { kKkAlg, kAdvLevel, kRandOrder, kPatch, kSetArr };

std::unique_ptr<StreamingSetCoverAlgorithm> Make(AlgKind kind,
                                                 uint64_t seed) {
  switch (kind) {
    case kKkAlg:
      return std::make_unique<KkAlgorithm>(seed);
    case kAdvLevel:
      return std::make_unique<AdversarialLevelAlgorithm>(seed);
    case kRandOrder:
      return std::make_unique<RandomOrderAlgorithm>(seed);
    case kPatch:
      return std::make_unique<FirstSetPatching>();
    case kSetArr:
      return std::make_unique<SetArrivalThreshold>();
  }
  return nullptr;
}

const char* KindName(AlgKind kind) {
  switch (kind) {
    case kKkAlg:
      return "kk";
    case kAdvLevel:
      return "adversarial-level";
    case kRandOrder:
      return "random-order";
    case kPatch:
      return "first-set-patching";
    case kSetArr:
      return "set-arrival-threshold";
  }
  return "?";
}

// Workload and stream are generated once and shared by every benchmark
// in this binary: generation costs more than a measured iteration, and
// a shared fixture guarantees all BM_Throughput rows (and the threads
// sweep) rank algorithms on the identical edge sequence.
const SetCoverInstance& SharedInstance() {
  static const SetCoverInstance instance = [] {
    const uint32_t n = 1024;
    const uint32_t m = 262144;  // 256·n: ~0.7M edges
    return bench::PlantedWorkload(n, m, 8, /*seed=*/4242);
  }();
  return instance;
}

const EdgeStream& SharedStream() {
  static const EdgeStream stream = [] {
    Rng rng(17);
    return RandomOrderStream(SharedInstance(), rng);
  }();
  return stream;
}

void IngestBatched(StreamingSetCoverAlgorithm& algorithm,
                   const EdgeStream& stream) {
  algorithm.Begin(stream.meta);
  std::span<const Edge> edges(stream.edges);
  for (size_t offset = 0; offset < edges.size();
       offset += kIngestBatchEdges) {
    algorithm.ProcessEdgeBatch(edges.subspan(
        offset, std::min(kIngestBatchEdges, edges.size() - offset)));
  }
}

void BM_Throughput(benchmark::State& state) {
  const AlgKind kind = static_cast<AlgKind>(state.range(0));
  const EdgeStream& stream = SharedStream();

  for (auto _ : state) {
    auto algorithm = Make(kind, 3);
    IngestBatched(*algorithm, stream);
    benchmark::DoNotOptimize(algorithm->Finalize());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel(KindName(kind));
  state.counters["stream_edges"] = double(stream.size());
}

BENCHMARK(BM_Throughput)
    ->DenseRange(kKkAlg, kSetArr)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

// The ingest-ceiling rows: Begin + batched ProcessEdgeBatch only — no
// Finalize — so the number is the pure per-edge cost of the streaming
// rule, the ceiling any deployment of that algorithm can sustain. These
// are the rows the SIMD batch kernels (util/simd.h) exist to lift, and
// scripts/check.sh --bench-smoke gates each one at 0.7x the committed
// baseline so a kernel regression fails CI. docs/performance.md keeps
// the human-readable table.
void BM_IngestCeiling(benchmark::State& state) {
  const AlgKind kind = static_cast<AlgKind>(state.range(0));
  const EdgeStream& stream = SharedStream();

  for (auto _ : state) {
    auto algorithm = Make(kind, 3);
    IngestBatched(*algorithm, stream);
    benchmark::DoNotOptimize(algorithm->Meter().PeakWords());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel(std::string("ingest-ceiling/") + KindName(kind));
  state.counters["stream_edges"] = double(stream.size());
}

BENCHMARK(BM_IngestCeiling)
    ->Arg(kKkAlg)
    ->Arg(kAdvLevel)
    ->Arg(kRandOrder)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

// The parallel-guess wrapper across thread counts. Results are
// bit-identical at every point of this sweep (thread_pool_test proves
// it); only the wall-clock should move, and only on multi-core hosts.
void BM_NGuessThreads(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const EdgeStream& stream = SharedStream();

  for (auto _ : state) {
    NGuessRandomOrder algorithm(/*seed=*/3, RandomOrderParams{}, threads);
    IngestBatched(algorithm, stream);
    benchmark::DoNotOptimize(algorithm.Finalize());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel("random-order-nguess");
  state.counters["threads"] = double(threads);
  state.counters["stream_edges"] = double(stream.size());
  // Parallel-speedup rows are only comparable between hosts with the
  // same core count; the gate in scripts/check.sh reads this to
  // annotate-and-skip cross-host comparisons instead of gating flat
  // single-core numbers against a multi-core baseline (or vice versa).
  state.counters["num_cpus"] = double(std::thread::hardware_concurrency());
}

BENCHMARK(BM_NGuessThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // worker threads carry the load; CPU time of the
                     // calling thread alone would fake a speedup
    ->MinTime(0.5);

// The sharded execution mode across shard counts W: the full fan-out +
// deterministic-protocol merge (engine/sharded.h) over the shared
// in-memory stream. items/s is the *aggregate* ingest rate — on
// multi-core hosts it should scale near-linearly to W=4; on a
// single-core host the rows stay flat and the num_cpus counter lets the
// perf gate skip the cross-host comparison. Two acceptance checks run
// in-bench: the W=1 row must be bit-identical to the unsharded engine,
// and every row's merge message must stay within the protocol's Õ(n)
// bound.
void BM_ShardedIngest(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const EdgeStream& stream = SharedStream();

  engine::ShardedRunConfig config;
  config.base.algorithm = "kk";
  config.base.options.seed = 3;
  config.base.source = engine::SourceSpec::InMemory(stream);
  config.shards = shards;

  engine::RunReport report;
  for (auto _ : state) {
    report = engine::ExecuteSharded(config);
    if (!report.error.empty()) {
      state.SkipWithError(report.error.c_str());
      break;
    }
    benchmark::DoNotOptimize(report.solution.cover.size());
  }
  if (report.completed) {
    if (shards == 1) {
      const engine::RunReport reference = engine::Execute(config.base);
      if (report.solution.cover != reference.solution.cover ||
          report.solution.certificate != reference.solution.certificate) {
        state.SkipWithError("W=1 sharded run diverged from engine::Execute");
      }
    } else if (report.sharded.max_message_words >
               report.sharded.message_words_bound) {
      state.SkipWithError("merge message exceeded the O~(n) bound");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel("sharded-ingest/kk/w" + std::to_string(shards));
  state.counters["shards"] = double(shards);
  state.counters["stream_edges"] = double(stream.size());
  state.counters["merged_cover"] = double(report.solution.cover.size());
  state.counters["merge_message_words"] =
      double(report.sharded.max_message_words);
  state.counters["message_bound"] =
      double(report.sharded.message_words_bound);
  state.counters["num_cpus"] = double(std::thread::hardware_concurrency());
}

BENCHMARK(BM_ShardedIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // the shard workers carry the load
    ->MinTime(0.5);

// The execution-substrate seam: the same RunConfig through each
// registered backend (engine/backend.h) at representative worker
// counts. The interesting deltas are the substrate overheads — thread
// fan-out + merge for sharded, fork + shm-ring feeding + per-worker
// reports for forked — over the identical pipeline work, since covers
// are bit-identical across rows at equal W (backend_matrix_test pins
// that; the in-bench check here re-asserts it against the inprocess
// run at W = 1). Multi-worker rows only scale on multi-core hosts;
// num_cpus lets the perf gate annotate-and-skip cross-host
// comparisons.
void BM_BackendIngest(benchmark::State& state) {
  static const char* const kBackends[] = {"inprocess", "sharded", "forked"};
  const std::string backend = kBackends[state.range(0)];
  const uint32_t workers = static_cast<uint32_t>(state.range(1));
  const EdgeStream& stream = SharedStream();

  engine::RunConfig config;
  config.algorithm = "kk";
  config.options.seed = 3;
  config.source = engine::SourceSpec::InMemory(stream);
  config.backend.name = backend;
  config.backend.workers = workers;

  engine::RunReport report;
  for (auto _ : state) {
    report = engine::Execute(config);
    if (!report.error.empty()) {
      state.SkipWithError(report.error.c_str());
      break;
    }
    benchmark::DoNotOptimize(report.solution.cover.size());
  }
  if (report.completed && workers == 1 && backend != "inprocess") {
    engine::RunConfig reference = config;
    reference.backend = engine::BackendSpec{};
    reference.backend.name = "inprocess";
    const engine::RunReport expected = engine::Execute(reference);
    if (report.solution.cover != expected.solution.cover ||
        report.solution.certificate != expected.solution.certificate) {
      state.SkipWithError("W=1 backend run diverged from inprocess");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel("backend-ingest/" + backend + "/w" +
                 std::to_string(workers));
  state.counters["workers"] = double(workers);
  state.counters["stream_edges"] = double(stream.size());
  state.counters["num_cpus"] = double(std::thread::hardware_concurrency());
}

BENCHMARK(BM_BackendIngest)
    ->Args({0, 1})  // inprocess
    ->Args({1, 1})  // sharded W=1 (substrate overhead at parity)
    ->Args({1, 4})
    ->Args({2, 1})  // forked W=1 (fork + ring feeding overhead)
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // workers (threads or processes) carry the load
    ->MinTime(0.5);

// ---- Offline-kernel rows: the bucket-queue greedy vs the lazy-heap
// reference it replaced (identical outputs, greedy_kernel_test), the
// counting-sort orderings, and the CSR instance build. items/s = edges/s
// throughout, so these rows compare directly with the ingest rows.

void BM_GreedyCover(benchmark::State& state) {
  const SetCoverInstance& instance = SharedInstance();
  GreedyWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyCover(instance, &workspace));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(instance.NumEdges()));
  state.SetLabel("greedy/bucket-queue");
  state.counters["cover_size"] =
      double(GreedyCover(instance, &workspace).cover.size());
}

BENCHMARK(BM_GreedyCover)->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_GreedyCoverReference(benchmark::State& state) {
  const SetCoverInstance& instance = SharedInstance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyCoverReference(instance));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(instance.NumEdges()));
  state.SetLabel("greedy/reference-heap");
}

BENCHMARK(BM_GreedyCoverReference)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

void BM_OrderedStream(benchmark::State& state) {
  const StreamOrder order = static_cast<StreamOrder>(state.range(0));
  const SetCoverInstance& instance = SharedInstance();
  for (auto _ : state) {
    Rng rng(17);
    benchmark::DoNotOptimize(OrderedStream(instance, order, rng));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(instance.NumEdges()));
  state.SetLabel("ordered-stream/" + StreamOrderName(order));
}

BENCHMARK(BM_OrderedStream)
    ->Arg(int(StreamOrder::kElementMajor))
    ->Arg(int(StreamOrder::kRoundRobinSets))
    ->Arg(int(StreamOrder::kLargeSetsLast))
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

void BM_InstanceBuild(benchmark::State& state) {
  // FromEdges over the shuffled shared stream: the radix build every
  // Finalize() of the buffering algorithms runs.
  const EdgeStream& stream = SharedStream();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetCoverInstance::FromEdges(
        stream.meta.num_elements, stream.meta.num_sets, stream.edges));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel("instance-build/from-edges");
}

BENCHMARK(BM_InstanceBuild)->Unit(benchmark::kMillisecond)->MinTime(0.5);

struct ReplayConfig {
  const char* label;
  StreamFormat format;
  bool use_mmap;
  bool prefetch;
};

constexpr ReplayConfig kReplayConfigs[] = {
    // Row 0: the pre-v3 read pipeline (buffered stdio, synchronous
    // decode) over the v2 format — the file-replay baseline.
    {"file-replay/v2-stdio-sync", StreamFormat::kV2, false, false},
    {"file-replay/v2-mmap-sync", StreamFormat::kV2, true, false},
    {"file-replay/v2-mmap-prefetch", StreamFormat::kV2, true, true},
    {"file-replay/v3-mmap-sync", StreamFormat::kV3, true, false},
    {"file-replay/v3-mmap-prefetch", StreamFormat::kV3, true, true},
};

/// The shared stream written once per format, replayed by every
/// BM_FileReplay row.
const std::string& ReplayPath(StreamFormat format) {
  static const std::string v2 = [] {
    std::string path = "/tmp/setcover_bench_replay_v2.bin";
    std::string error;
    if (!WriteStreamFile(SharedStream(), path, StreamFormat::kV2, &error)) {
      std::fprintf(stderr, "bench: cannot write %s: %s\n", path.c_str(),
                   error.c_str());
      std::abort();
    }
    return path;
  }();
  static const std::string v3 = [] {
    std::string path = "/tmp/setcover_bench_replay_v3.bin";
    std::string error;
    if (!WriteStreamFile(SharedStream(), path, StreamFormat::kV3, &error)) {
      std::fprintf(stderr, "bench: cannot write %s: %s\n", path.c_str(),
                   error.c_str());
      std::abort();
    }
    return path;
  }();
  return format == StreamFormat::kV3 ? v3 : v2;
}

uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return uint64_t(size);
}

// End-to-end file replay through the cheapest consumer
// (first-set-patching), so decode/CRC/IO cost dominates and the rows
// rank the read pipelines rather than the algorithms.
void BM_FileReplay(benchmark::State& state) {
  const ReplayConfig& config = kReplayConfigs[state.range(0)];
  const EdgeStream& stream = SharedStream();
  const std::string& path = ReplayPath(config.format);
  StreamReadOptions options;
  options.use_mmap = config.use_mmap;
  options.prefetch = config.prefetch;

  for (auto _ : state) {
    FirstSetPatching algorithm;
    std::string error;
    auto solution = RunStreamFromFile(algorithm, path, options, &error);
    if (!solution.has_value()) {
      state.SkipWithError(error.c_str());
      break;
    }
    benchmark::DoNotOptimize(solution);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(stream.size()));
  state.SetLabel(config.label);
  state.counters["stream_edges"] = double(stream.size());
  state.counters["file_bytes"] = double(FileBytes(path));
  state.counters["bytes_per_edge"] =
      double(FileBytes(path)) / double(stream.size());
}

BENCHMARK(BM_FileReplay)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // the prefetch worker carries part of the load
    ->MinTime(0.5);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
