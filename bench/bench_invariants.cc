// Experiment F4 — the three invariants behind Theorem 3's analysis
// (§4.2), measured on instrumented runs of Algorithm 1:
//
//   Lemma 8 / (I3): the number of special sets in epoch j stays under
//     ~1.1·m/2^j, so only Õ(√n) sets join Sol per algorithm A(i) —
//     counter `max_special_over_bound` should stay near/below 1.
//   (I2): sets added during A(i) miss only Õ(√n) of their edges —
//     counter `max_missed_edges` per added set.
//   (I1)-adjacent: the patching phase (which pays for everything the
//     main loop failed to detect) stays bounded — `patched_sets`.
//
// The per-epoch table is printed once per configuration.

#include <benchmark/benchmark.h>

#include <cmath>

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "core/random_order.h"

namespace setcover {
namespace {

using bench::PlantedWorkload;

void BM_Invariants(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/1100 + n);
  Rng rng(1200 + n);
  auto stream = RandomOrderStream(instance, rng);

  double max_special_over_bound = 0, additions = 0, patched = 0;
  double max_missed = 0, marked_no_witness = 0;
  bool printed = false;
  for (auto _ : state) {
    RandomOrderAlgorithm algorithm(47);
    CoverSolution solution = RunStream(algorithm, stream);
    ValidationResult check = ValidateSolution(instance, solution);
    if (!check.ok) {
      std::fprintf(stderr, "invalid cover: %s\n", check.error.c_str());
      std::abort();
    }
    const RandomOrderStats& stats = algorithm.Stats();

    if (!printed) {
      std::printf("\n# per-epoch invariants, n=%u m=%u (Lemma 8 bound = "
                  "1.1*m/2^j)\n", n, m);
      std::printf("# %3s %3s %10s %12s %8s %8s %10s %8s\n", "i", "j",
                  "special", "lemma8_bound", "added", "tracked",
                  "trk_edges", "marked");
      for (const auto& e : stats.epochs) {
        double bound = 1.1 * double(m) / double(1u << e.epoch);
        std::printf("  %3u %3u %10zu %12.0f %8zu %8zu %10zu %8zu\n",
                    e.algorithm_index, e.epoch, e.special_sets, bound,
                    e.added_to_solution, e.tracked_sets, e.tracked_edges,
                    e.optimistically_marked);
      }
      printed = true;
    }

    for (const auto& e : stats.epochs) {
      double bound = 1.1 * double(m) / double(1u << e.epoch);
      if (bound > 0) {
        max_special_over_bound = std::max(
            max_special_over_bound, double(e.special_sets) / bound);
      }
    }
    additions += double(stats.additions.size());
    patched += double(stats.patched);
    marked_no_witness += double(stats.marked_without_witness);

    // (I2) proxy: per set added during the main loop, the number of its
    // elements whose certificate had to come from patching = edges the
    // algorithm observed too late (missed edges).
    std::unordered_set<ElementId> patched_elements(
        stats.patched_elements.begin(), stats.patched_elements.end());
    for (const auto& [set_id, position] : stats.additions) {
      size_t missed = 0;
      for (ElementId u : instance.Set(set_id)) {
        missed += patched_elements.count(u);
      }
      max_missed = std::max(max_missed, double(missed));
    }
  }
  double iters = double(state.iterations());
  state.counters["n"] = n;
  state.counters["sqrt_n"] = std::sqrt(double(n));
  state.counters["max_special_over_bound"] = max_special_over_bound;
  state.counters["sol_additions"] = additions / iters;
  state.counters["patched_sets"] = patched / iters;
  state.counters["marked_without_witness"] = marked_no_witness / iters;
  state.counters["max_missed_edges_per_set"] = max_missed;
}

BENCHMARK(BM_Invariants)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
