// Experiment F10 — space-scaling exponents. Table 1's rows are
// asymptotic laws; this bench fits them. With m = n², the predicted
// peak-space growth per n-doubling is:
//
//   KK:            Θ(m)      = Θ(n²)    → 4.0× per doubling
//   Algorithm 2:   Θ(m·n/α²) = Θ(n)·polylog at α = Θ(√n) → ~2×
//   Algorithm 1:   Θ(m/√n)   = Θ(n^1.5) → ~2.83×
//   patching:      Θ(n)      → 2×
//
// Counters report measured peak words at each n and the ratio to the
// previous n (the per-doubling growth factor). The *ordering* of the
// measured exponents — patch < alg2 < alg1 < kk — is the quantitative
// content of Table 1's space column.

#include <benchmark/benchmark.h>

#include <cmath>
#include <thread>

#include "bench/bench_util.h"
#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "core/trivial.h"

namespace setcover {
namespace {

using bench::PlantedWorkload;
using bench::RunValidated;

enum Kind { kKkKind, kAlg2Kind, kAlg1Kind, kPatchKind };

const char* KindName(Kind kind) {
  switch (kind) {
    case kKkKind:
      return "kk_theta_m";
    case kAlg2Kind:
      return "alg2_theta_mn_over_a2";
    case kAlg1Kind:
      return "alg1_theta_m_over_sqrtn";
    case kPatchKind:
      return "patch_theta_n";
  }
  return "?";
}

size_t PeakFor(Kind kind, uint32_t n, uint64_t seed) {
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/1700 + n);
  Rng rng(1800 + n);
  auto stream = RandomOrderStream(instance, rng);
  switch (kind) {
    case kKkKind: {
      KkAlgorithm algorithm(seed);
      return RunValidated(*&algorithm, instance, stream).peak_words;
    }
    case kAlg2Kind: {
      AdversarialLevelParams params;
      params.alpha = 2.0 * std::sqrt(double(n));
      AdversarialLevelAlgorithm algorithm(seed, params);
      return RunValidated(*&algorithm, instance, stream).peak_words;
    }
    case kAlg1Kind: {
      RandomOrderAlgorithm algorithm(seed);
      return RunValidated(*&algorithm, instance, stream).peak_words;
    }
    case kPatchKind: {
      FirstSetPatching algorithm;
      return RunValidated(*&algorithm, instance, stream).peak_words;
    }
  }
  return 0;
}

void BM_SpaceScaling(benchmark::State& state) {
  const Kind kind = static_cast<Kind>(state.range(0));
  const uint32_t sizes[] = {128, 256, 512, 1024};
  size_t peaks[4] = {0, 0, 0, 0};
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) peaks[i] = PeakFor(kind, sizes[i], 7);
  }
  state.SetLabel(KindName(kind));
  for (int i = 0; i < 4; ++i) {
    state.counters["peak_n" + std::to_string(sizes[i])] =
        double(peaks[i]);
  }
  // Per-doubling growth factors and the fitted log₂-slope over the
  // whole range (the scaling exponent in n).
  for (int i = 1; i < 4; ++i) {
    state.counters["growth_" + std::to_string(sizes[i])] =
        double(peaks[i]) / double(peaks[i - 1]);
  }
  state.counters["fitted_exponent"] =
      std::log2(double(peaks[3]) / double(peaks[0])) / 3.0;
  // Space exponents don't depend on the host, but stamping the core
  // count into every scaling row keeps the committed baselines
  // self-describing: the check.sh gate compares host-sensitive rows
  // only between hosts with matching num_cpus.
  state.counters["num_cpus"] = double(std::thread::hardware_concurrency());
}

BENCHMARK(BM_SpaceScaling)
    ->DenseRange(kKkKind, kPatchKind)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
