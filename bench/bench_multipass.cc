// Experiment F8 — the pass/approximation trade-off of the multi-pass
// related work (§1.3): progressive threshold greedy at p passes has
// approximation O(p·n^(1/p)) (Chakrabarti–Wirth's shape; their lower
// bound makes the n^(Ω(1/p)) factor necessary at Õ(n) space).
//
// Expected shape: cover size drops steeply from p = 1 to p ≈ log n and
// then flattens at greedy-like quality; the one-pass paper algorithms
// are shown alongside so the "what does a second pass buy you" question
// the one-pass lower bounds raise is answered quantitatively.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "instance/validator.h"
#include "core/kk_algorithm.h"
#include "core/multi_pass.h"

namespace setcover {
namespace {

using bench::PlantedWorkload;

void BM_MultiPassTradeoff(benchmark::State& state) {
  const uint32_t passes = static_cast<uint32_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/1300 + n);
  Rng rng(1400 + n);
  auto stream = RandomOrderStream(instance, rng);

  double cover_sum = 0, trials = 0;
  uint32_t passes_used = 0;
  size_t peak = 0;
  for (auto _ : state) {
    MultiPassParams params;
    params.passes = passes;
    ProgressiveThresholdMultiPass algorithm(params);
    auto solution = RunMultiPass(algorithm, stream, 64, &passes_used);
    auto check = ValidateSolution(instance, solution);
    if (!check.ok) {
      std::fprintf(stderr, "invalid: %s\n", check.error.c_str());
      std::abort();
    }
    cover_sum += double(solution.cover.size());
    peak = algorithm.Meter().PeakWords();
    trials += 1;
  }
  double opt = double(instance.PlantedCover().size());
  state.counters["n"] = n;
  state.counters["passes"] = passes_used;
  state.counters["cover"] = cover_sum / trials;
  state.counters["ratio_vs_opt"] = cover_sum / trials / opt;
  state.counters["theory_p_nroot"] =
      double(passes) * std::pow(double(n), 1.0 / double(passes));
  state.counters["peak_words"] = double(peak);
}

void MultiPassArgs(benchmark::internal::Benchmark* b) {
  for (int n : {256, 1024}) {
    for (int p : {1, 2, 3, 4, 6, 9, 12}) b->Args({p, n});
  }
}

BENCHMARK(BM_MultiPassTradeoff)
    ->Apply(MultiPassArgs)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Reference point: the one-pass KK algorithm on the same workload —
// what the p = 1 edge-arrival world achieves at Õ(√n) guarantees.
void BM_OnePassReference(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/1300 + n);
  Rng rng(1400 + n);
  auto stream = RandomOrderStream(instance, rng);
  bench::RunResult result;
  for (auto _ : state) {
    KkAlgorithm algorithm(5);
    result = bench::RunValidated(*&algorithm, instance, stream);
  }
  state.counters["n"] = n;
  state.counters["cover"] = double(result.cover_size);
  state.counters["ratio_vs_opt"] = result.ratio;
}

BENCHMARK(BM_OnePassReference)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
