// Experiment F9 — ablations over the design choices DESIGN.md calls
// out for Algorithm 1's implementation:
//
//   (a) exact vs Count-Min epoch-0 heavy-element detection: space of
//       the epoch-0 detector and end-to-end quality;
//   (b) level_inclusion_boost: how strongly the special-set sampling
//       contributes next to epoch-0 sampling + patching;
//   (c) tracking_rate_constant c_q: the Q̃ sample's size/quality trade
//       (paper value 1 gives a sample too thin to mark anything at
//       laptop scale).
//
// Each counter row is an averaged end-to-end run on the standard
// planted workload in random order.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "core/random_order.h"

namespace setcover {
namespace {

using bench::PlantedWorkload;
using bench::RunValidated;

void RunConfig(benchmark::State& state, const RandomOrderParams& params,
               uint32_t n) {
  const uint32_t m = n * n;
  auto instance = PlantedWorkload(n, m, /*opt=*/4, /*seed=*/1500 + n);
  Rng rng(1600 + n);
  auto stream = RandomOrderStream(instance, rng);

  double trials = 0, ratio_sum = 0, peak_sum = 0;
  double additions = 0, patched = 0, marked = 0;
  for (auto _ : state) {
    RandomOrderAlgorithm algorithm(61 + size_t(trials), params);
    auto result = RunValidated(*&algorithm, instance, stream);
    ratio_sum += result.ratio;
    peak_sum += double(result.peak_words);
    additions += double(algorithm.Stats().additions.size());
    patched += double(algorithm.Stats().patched);
    marked += double(algorithm.Stats().epoch0_marked);
    for (const auto& e : algorithm.Stats().epochs) {
      marked += double(e.optimistically_marked);
    }
    trials += 1;
  }
  state.counters["n"] = n;
  state.counters["ratio_vs_opt"] = ratio_sum / trials;
  state.counters["peak_words"] = peak_sum / trials;
  state.counters["level_additions"] = additions / trials;
  state.counters["patched_sets"] = patched / trials;
  state.counters["marked_elements"] = marked / trials;
}

void BM_AblationEpoch0Detector(benchmark::State& state) {
  RandomOrderParams params;
  params.use_sketch_epoch0 = state.range(0) == 1;
  state.SetLabel(params.use_sketch_epoch0 ? "count-min" : "exact-counters");
  RunConfig(state, params, static_cast<uint32_t>(state.range(1)));
}

BENCHMARK(BM_AblationEpoch0Detector)
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_AblationInclusionBoost(benchmark::State& state) {
  RandomOrderParams params;
  params.level_inclusion_boost = double(state.range(0));
  RunConfig(state, params, 256);
  state.counters["boost"] = double(state.range(0));
}

BENCHMARK(BM_AblationInclusionBoost)
    ->Arg(1)   // the paper's rule
    ->Arg(4)
    ->Arg(16)  // library default
    ->Arg(64)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_AblationTrackingRate(benchmark::State& state) {
  RandomOrderParams params;
  params.tracking_rate_constant = double(state.range(0));
  RunConfig(state, params, 256);
  state.counters["c_q"] = double(state.range(0));
}

BENCHMARK(BM_AblationTrackingRate)
    ->Arg(1)   // the paper's rule
    ->Arg(4)   // library default
    ->Arg(16)
    ->Arg(64)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setcover

BENCHMARK_MAIN();
