// Experiment T1 — regenerates Table 1 of the paper: the
// space/approximation landscape of one-pass edge-arrival Set Cover.
//
//   row 1 (context):  set-arrival threshold baseline, Õ(n) space
//   row 2 ([19]):     KK algorithm, adversarial order, Õ(m) space
//   row 3 (here UB):  Algorithm 2 with α = 2√n and 4√n, Õ(m·n/α²)
//   row 4 (here):     Algorithm 1, random order, Õ(m/√n)
//   brackets:         first-set patching (Õ(n), ratio ≤ n) and
//                     store-everything greedy (Θ(N), ln n quality)
//
// Workload: planted-OPT instances with m = n² (Theorem 3's regime).
// Expected shape: peak_words(Alg.1) ≪ peak_words(KK) ≈ m, with all
// ratios Õ(√n)-bounded; Algorithm 2's space sits below KK's and shrinks
// with α. Absolute constants differ from the paper's asymptotics — the
// ordering and scaling are what this table checks.
//
// The grid (8 rows × 3 sizes) is embarrassingly parallel: every cell
// regenerates its own instance and stream from cell-local seeds and
// shares no state. Pass --threads=T to compute the whole grid on a
// thread pool; counters are bit-identical at every thread count, and
// each cell's reported time is its own compute time (manual timing), so
// only the grid's wall clock changes.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/adversarial_level.h"
#include "core/element_sampling.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "core/set_arrival.h"
#include "core/trivial.h"
#include "util/thread_pool.h"

namespace setcover {
namespace {

using bench::PlantedWorkload;
using bench::RunValidated;

enum Table1Row {
  kSetArrivalBaseline,
  kKk,
  kAdvLevelAlpha2,
  kAdvLevelAlpha4,
  kRandomOrderAlg,
  kFirstSetPatch,
  kStoreEverything,
  kElementSampling,  // row 1 proper: AKL-style, α = √n/2 = o(√n) regime
};

std::unique_ptr<StreamingSetCoverAlgorithm> MakeRow(Table1Row row,
                                                    uint32_t n,
                                                    uint64_t seed) {
  switch (row) {
    case kSetArrivalBaseline:
      return std::make_unique<SetArrivalThreshold>();
    case kKk:
      return std::make_unique<KkAlgorithm>(seed);
    case kAdvLevelAlpha2: {
      AdversarialLevelParams p;
      p.alpha = 2.0 * std::sqrt(double(n));
      return std::make_unique<AdversarialLevelAlgorithm>(seed, p);
    }
    case kAdvLevelAlpha4: {
      AdversarialLevelParams p;
      p.alpha = 4.0 * std::sqrt(double(n));
      return std::make_unique<AdversarialLevelAlgorithm>(seed, p);
    }
    case kRandomOrderAlg:
      return std::make_unique<RandomOrderAlgorithm>(seed);
    case kFirstSetPatch:
      return std::make_unique<FirstSetPatching>();
    case kStoreEverything:
      return std::make_unique<StoreEverythingGreedy>();
    case kElementSampling: {
      ElementSamplingParams p;
      p.alpha = 0.5 * std::sqrt(double(n));
      // Keep the sample a strict subsample at laptop n (the paper's
      // log-factor would clamp it to the whole universe here).
      p.sample_constant = 0.25;
      return std::make_unique<ElementSamplingAlgorithm>(seed, p);
    }
  }
  return nullptr;
}

unsigned g_threads = 1;

constexpr int kGridSizes[] = {256, 512, 1024};
constexpr int kGridRows = kElementSampling + 1;

struct Cell {
  bench::RunResult result;
  double seconds = 0.0;  // this cell's own generate+run wall time
  uint32_t n = 0;
  uint32_t m = 0;
};

size_t CellIndex(Table1Row row, uint32_t n) {
  size_t size_index = 0;
  while (kGridSizes[size_index] != int(n)) ++size_index;
  return size_index * kGridRows + size_t(row);
}

/// One grid cell, entirely from cell-local seeds — the unit of
/// parallelism, and the reason --threads cannot change any number.
Cell ComputeCell(Table1Row row, uint32_t n) {
  const auto start = std::chrono::steady_clock::now();
  Cell cell;
  cell.n = n;
  cell.m = n * n;  // Theorem 3 regime m = Θ(n²)
  auto instance = PlantedWorkload(n, cell.m, /*opt=*/4, /*seed=*/1000 + n);
  Rng rng(2000 + n);
  // Set-arrival baseline gets its required contiguous order; everything
  // else is judged in its own model: random order for Algorithm 1,
  // adversarial (element-major) for the adversarial-order algorithms.
  StreamOrder order = StreamOrder::kElementMajor;
  if (row == kSetArrivalBaseline) order = StreamOrder::kSetMajor;
  if (row == kRandomOrderAlg) order = StreamOrder::kRandom;
  if (row == kFirstSetPatch || row == kStoreEverything)
    order = StreamOrder::kRandom;
  auto stream = OrderedStream(instance, order, rng);

  auto algorithm = MakeRow(row, n, /*seed=*/7);
  cell.result = RunValidated(*algorithm, instance, stream);
  cell.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return cell;
}

/// The whole grid, computed once across g_threads workers on first use.
const std::vector<Cell>& Grid() {
  static const std::vector<Cell> grid = [] {
    std::vector<std::pair<Table1Row, uint32_t>> keys;
    for (int n : kGridSizes) {
      for (int row = kSetArrivalBaseline; row <= kElementSampling; ++row) {
        keys.emplace_back(Table1Row(row), uint32_t(n));
      }
    }
    std::vector<Cell> cells(keys.size());
    ThreadPool pool(g_threads);
    pool.RunIndexed(keys.size(), [&](size_t i) {
      cells[CellIndex(keys[i].first, keys[i].second)] =
          ComputeCell(keys[i].first, keys[i].second);
    });
    return cells;
  }();
  return grid;
}

void BM_Table1(benchmark::State& state) {
  const Table1Row row = static_cast<Table1Row>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const Cell& cell = Grid()[CellIndex(row, n)];

  for (auto _ : state) {
    state.SetIterationTime(cell.seconds);
  }
  state.counters["n"] = cell.n;
  state.counters["m"] = cell.m;
  state.counters["cover"] = double(cell.result.cover_size);
  state.counters["ratio_vs_opt"] = cell.result.ratio;
  state.counters["peak_words"] = double(cell.result.peak_words);
  state.counters["words_per_set"] =
      double(cell.result.peak_words) / double(cell.m);
  state.counters["sqrt_n"] = std::sqrt(double(n));
}

void Table1Args(benchmark::internal::Benchmark* b) {
  for (int n : kGridSizes) {
    for (int row = kSetArrivalBaseline; row <= kElementSampling; ++row) {
      b->Args({row, n});
    }
  }
}

BENCHMARK(BM_Table1)
    ->Apply(Table1Args)
    ->Iterations(1)
    ->UseManualTime()  // each cell reports its own compute time, even
                       // when another pool worker actually ran it
    ->Unit(benchmark::kMillisecond)
    ->Name("Table1/row0=setarr_row1=kk_row2=alg2a2_row3=alg2a4_"
           "row4=alg1rand_row5=patch_row6=greedy_row7=elemsamp");

}  // namespace
}  // namespace setcover

// Custom main: peel off --threads=T (grid parallelism) before Google
// Benchmark sees the command line, then run as usual.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int threads = std::atoi(argv[i] + 10);
      setcover::g_threads = threads > 1 ? unsigned(threads) : 1u;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
