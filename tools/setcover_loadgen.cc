// setcover_loadgen — concurrent-session load generator and correctness
// harness for the session server. Generates a deterministic instance,
// runs N sessions across C client threads (cycling the registered
// algorithms, optionally with fault injection), and verifies every
// returned cover bit-identically against an in-process engine::Execute
// oracle.
//
// Two modes:
//   self-hosted (default): spins up an in-process server over the
//     LocalTransport — with optional mid-traffic --kill-after-us
//     crash-and-restart to exercise resume under real concurrency.
//   --socket=/path: drives an external setcover_server daemon.
//
// With --shards=W each logical session fans out into W shard sessions,
// mirroring the sharded engine's ingest side: the stream is partitioned
// by set % W, shard w opens its own server session (seed + w, metadata
// sized to its sub-stream) and ingests only its slice. Covers verify
// against per-shard engine::Execute oracles, and the summary reports
// per-shard ingest rates next to the aggregate. Algorithms cycle over
// the shardable registry rows only (the server has no merge step; this
// exercises the W-pipeline ingest path under real concurrency).
//
// --transport selects the wire: `local` is the in-process endpoint;
// `unix` and `shm` put a real unix-domain socket — plain framed or
// upgraded to the shared-memory rings — under every client,
// self-hosting the server on a temporary socket path unless --socket
// points at an external daemon. The default is `local` when
// self-hosted and `unix` when --socket is given (its pre---transport
// meaning). --window=K keeps K un-acked ingest
// batches in flight per session (K=1 is strict request–response). The
// summary always reports aggregate ingest edges/s plus a per-op
// ingest-latency histogram (p50/p95/p99 of send-to-ack).
//
// --passes=P replays the stream P times through every session — the
// push-side spelling of a P-pass schedule (stream/schedule.h): the
// client ingests the identical record sequence P times and the oracle
// is engine::Execute under schedule.passes = P, which the engine pins
// as bit-identical to the concatenated feed.
//
// Usage:
//   setcover_loadgen [--sessions=256] [--clients=8] [--batch=64]
//                    [--elements=60] [--sets=80] [--seed=1]
//                    [--faults] [--workers=3] [--max-queue=128]
//                    [--state-dir=DIR] [--kill-after-us=N]
//                    [--socket=/path/to.sock] [--shards=W]
//                    [--transport=local|unix|shm] [--window=K]
//                    [--passes=P]
//
// Exit code 0 iff every session completed with an oracle-identical
// cover.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "stream/orderings.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace setcover;

std::vector<uint32_t> ToU32(const std::vector<SetId>& ids) {
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

struct Plan {
  std::string algorithm;
  uint64_t seed = 0;
  std::optional<FaultSchedule> faults;
};

uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = size_t(p * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  const uint64_t sessions = uint64_t(flags.GetInt("sessions", 256));
  const int clients = int(flags.GetInt("clients", 8));
  const size_t batch = size_t(flags.GetInt("batch", 64));
  const uint64_t seed = uint64_t(flags.GetInt("seed", 1));
  const bool with_faults = flags.GetBool("faults", false);
  const std::string socket_path = flags.GetString("socket", "");
  const std::string state_dir = flags.GetString("state-dir", "");
  const uint64_t kill_after_us =
      uint64_t(flags.GetInt("kill-after-us", 0));
  const int64_t shards_flag = flags.GetInt("shards", 1);
  // --socket has meant "dial the daemon over its unix socket" since
  // before --transport existed, so it keeps that default; --transport
  // only needs saying to upgrade the dial to shm.
  const std::string transport = flags.GetString(
      "transport", socket_path.empty() ? "local" : "unix");
  const size_t window = size_t(flags.GetInt("window", 1));
  const int64_t passes_flag = flags.GetInt("passes", 1);

  UniformRandomParams params;
  params.num_elements = uint32_t(flags.GetInt("elements", 60));
  params.num_sets = uint32_t(flags.GetInt("sets", 80));

  server::ServerOptions server_options;
  server_options.worker_threads = size_t(flags.GetInt("workers", 3));
  server_options.max_queue = size_t(flags.GetInt("max-queue", 128));
  server_options.state_dir = state_dir;

  for (const std::string& key : flags.UnusedKeys())
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  if (transport != "local" && transport != "unix" && transport != "shm") {
    std::fprintf(stderr, "error: --transport must be local, unix, or shm\n");
    return 2;
  }
  if (!socket_path.empty() && transport == "local") {
    std::fprintf(stderr,
                 "error: --socket needs --transport=unix or shm\n");
    return 2;
  }
  if (!socket_path.empty() && kill_after_us > 0) {
    std::fprintf(stderr,
                 "error: --kill-after-us needs the self-hosted server\n");
    return 2;
  }
  if (transport != "local" && kill_after_us > 0) {
    std::fprintf(stderr,
                 "error: --kill-after-us needs --transport=local (the "
                 "socket listener does not restart)\n");
    return 2;
  }
  if (kill_after_us > 0 && state_dir.empty()) {
    std::fprintf(stderr, "error: --kill-after-us needs --state-dir\n");
    return 2;
  }
  if (shards_flag < 1) {
    std::fprintf(stderr, "error: --shards must be >= 1\n");
    return 2;
  }
  if (passes_flag < 1) {
    std::fprintf(stderr, "error: --passes must be >= 1\n");
    return 2;
  }
  const uint32_t shards = uint32_t(shards_flag);
  const uint32_t passes = uint32_t(passes_flag);

  Rng rng(seed);
  SetCoverInstance instance = GenerateUniformRandom(params, rng);
  EdgeStream stream = OrderedStream(instance, StreamOrder::kRandom, rng);
  const std::vector<std::string> names =
      shards > 1 ? ShardableAlgorithmNames() : RegisteredAlgorithmNames();

  // Sharded mode: shard w's sub-stream is the edges with set % W == w,
  // in arrival order, with metadata sized to the slice — exactly what
  // the sharded engine's filter source would deliver it.
  std::vector<EdgeStream> shard_streams(shards);
  for (uint32_t w = 0; w < shards; ++w) {
    shard_streams[w].meta = stream.meta;
  }
  for (const Edge& edge : stream.edges) {
    shard_streams[edge.set % shards].edges.push_back(edge);
  }
  for (uint32_t w = 0; w < shards; ++w) {
    shard_streams[w].meta.stream_length = shard_streams[w].edges.size();
  }

  // What each session actually pushes: the slice, repeated once per
  // pass (the concatenated form of the P-pass schedule the oracle
  // runs).
  std::vector<std::vector<Edge>> fed_edges(shards);
  for (uint32_t w = 0; w < shards; ++w) {
    fed_edges[w].reserve(shard_streams[w].edges.size() * passes);
    for (uint32_t p = 0; p < passes; ++p) {
      fed_edges[w].insert(fed_edges[w].end(),
                          shard_streams[w].edges.begin(),
                          shard_streams[w].edges.end());
    }
  }

  auto plan_for = [&](uint64_t id) {
    Plan plan;
    plan.algorithm = names[id % names.size()];
    plan.seed = seed + id % 7;
    if (with_faults && id % 4 == 0)
      plan.faults = FaultSchedule::AllKinds(seed + 100 + id % 5);
    return plan;
  };

  // Oracles, one per distinct (plan, shard): each shard session must
  // reproduce engine::Execute over its own sub-stream with its own
  // derived seed.
  std::map<std::string, engine::RunReport> oracles;
  auto oracle_key = [](const Plan& plan, uint32_t shard) {
    std::string key = plan.algorithm + "/" + std::to_string(plan.seed) +
                      "/w" + std::to_string(shard);
    if (plan.faults) key += "/f" + std::to_string(plan.faults->seed);
    return key;
  };
  for (uint64_t id = 1; id <= sessions; ++id) {
    const Plan plan = plan_for(id);
    for (uint32_t w = 0; w < shards; ++w) {
      if (oracles.count(oracle_key(plan, w))) continue;
      engine::RunConfig config;
      config.algorithm = plan.algorithm;
      config.options.seed = plan.seed + w;
      config.source = engine::SourceSpec::InMemory(shard_streams[w]);
      config.source.schedule.passes = passes;
      config.faults = plan.faults;
      engine::RunReport report = engine::Execute(config);
      if (!report.completed) {
        std::fprintf(stderr, "oracle failed: %s\n", report.error.c_str());
        return 1;
      }
      oracles.emplace(oracle_key(plan, w), std::move(report));
    }
  }

  // Transport: external socket, or a self-hosted server — in-process
  // for --transport=local, over a temporary unix socket (plain framed
  // or shm-upgraded, the listener serves both) otherwise.
  server::LocalEndpoint endpoint;
  std::string dial_path = socket_path;
  std::unique_ptr<server::SessionServer> self_hosted;
  if (socket_path.empty()) {
    std::unique_ptr<server::Listener> listener;
    if (transport == "local") {
      listener = endpoint.Listen();
    } else {
      dial_path = "/tmp/setcover_loadgen_" + std::to_string(::getpid()) +
                  ".sock";
      std::string listen_error;
      listener = server::ListenUnix(dial_path, &listen_error);
      if (listener == nullptr) {
        std::fprintf(stderr, "listen %s: %s\n", dial_path.c_str(),
                     listen_error.c_str());
        return 1;
      }
    }
    self_hosted = std::make_unique<server::SessionServer>(
        server_options, std::move(listener));
    self_hosted->Start();
  }
  auto dialer = [&](std::string* error)
      -> std::unique_ptr<server::Connection> {
    if (transport == "unix") return server::ConnectUnix(dial_path, error);
    if (transport == "shm")
      return server::ConnectShm(dial_path, server::kDefaultShmRingBytes,
                                error);
    return endpoint.Connect(error);
  };

  const auto start = std::chrono::steady_clock::now();
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> total_sheds{0};
  std::atomic<uint64_t> total_redials{0};
  std::vector<std::atomic<uint64_t>> shard_edges(shards);
  std::vector<std::vector<uint64_t>> thread_latencies(clients);

  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      server::ClientOptions options;
      options.backoff.max_retries = 10000;
      options.backoff.initial_delay_us = 1;
      options.backoff.max_delay_us = 200;
      options.backoff.jitter = 0.5;
      options.backoff.jitter_seed = uint64_t(t) + 1;
      server::SessionClient client(dialer, options);

      for (uint64_t id = uint64_t(t) + 1; id <= sessions; id += clients) {
        const Plan plan = plan_for(id);
        // Each logical session fans out into one server session per
        // shard, exactly like the sharded engine's worker pipelines.
        for (uint32_t w = 0; w < shards; ++w) {
          const uint64_t session_id = (id - 1) * shards + w + 1;
          server::OpenBody open;
          open.algorithm = plan.algorithm;
          open.seed = plan.seed + w;
          open.meta = shard_streams[w].meta;
          open.checkpoint_every = state_dir.empty() ? 0 : 64;
          open.faults = plan.faults;

          server::RunSessionOptions run;
          run.batch_edges = batch;
          run.window = window;
          run.ingest_latency = [&, t](uint64_t micros) {
            thread_latencies[t].push_back(micros);
          };

          server::Message reply;
          std::string error;
          bool done = false;
          for (int attempt = 0; attempt < 100 && !done; ++attempt) {
            done = server::RunSessionToCompletion(&client, session_id, open,
                                                  fed_edges[w], run,
                                                  &reply, &error);
          }
          if (!done) {
            std::fprintf(stderr, "session %llu failed: %s\n",
                         (unsigned long long)session_id, error.c_str());
            failures.fetch_add(1);
            continue;
          }
          const engine::RunReport& expected =
              oracles.at(oracle_key(plan, w));
          if (reply.cover != ToU32(expected.solution.cover) ||
              reply.certificate != ToU32(expected.solution.certificate)) {
            std::fprintf(stderr, "session %llu: cover mismatch vs oracle\n",
                         (unsigned long long)session_id);
            mismatches.fetch_add(1);
          }
          shard_edges[w].fetch_add(fed_edges[w].size());
          completed.fetch_add(1);
        }
      }
      total_sheds.fetch_add(client.RetriesAfterShed());
      total_redials.fetch_add(client.Reconnects());
    });
  }

  // The optional mid-traffic crash: hard-kill the self-hosted server,
  // restart it on the same state dir, let the clients ride it out.
  if (kill_after_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(kill_after_us));
    std::fprintf(stderr, "loadgen: killing the server mid-traffic\n");
    self_hosted->Abort();
    self_hosted = std::make_unique<server::SessionServer>(server_options,
                                                          endpoint.Listen());
    self_hosted->Start();
  }

  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (self_hosted != nullptr) self_hosted->DrainAndStop();

  std::printf(
      "sessions=%llu completed=%llu failures=%llu mismatches=%llu "
      "sheds_survived=%llu redials=%llu seconds=%.3f transport=%s "
      "window=%llu passes=%u\n",
      (unsigned long long)sessions, (unsigned long long)completed.load(),
      (unsigned long long)failures.load(),
      (unsigned long long)mismatches.load(),
      (unsigned long long)total_sheds.load(),
      (unsigned long long)total_redials.load(), seconds, transport.c_str(),
      (unsigned long long)window, passes);

  uint64_t total_edges = 0;
  for (uint32_t w = 0; w < shards; ++w) {
    const uint64_t edges = shard_edges[w].load();
    total_edges += edges;
    if (shards > 1)
      std::printf("shard %u: %llu edges ingested, %.2f M edges/s\n", w,
                  (unsigned long long)edges, edges / seconds / 1e6);
  }
  std::printf("aggregate: %llu edges ingested, %.2f M edges/s\n",
              (unsigned long long)total_edges, total_edges / seconds / 1e6);

  // The per-op latency histogram: send-to-ack per ingest batch, merged
  // across client threads (retried batches count each attempt's ack).
  std::vector<uint64_t> latencies;
  for (const std::vector<uint64_t>& partial : thread_latencies)
    latencies.insert(latencies.end(), partial.begin(), partial.end());
  std::sort(latencies.begin(), latencies.end());
  std::printf(
      "ingest latency: ops=%llu p50=%lluus p95=%lluus p99=%lluus "
      "max=%lluus\n",
      (unsigned long long)latencies.size(),
      (unsigned long long)Percentile(latencies, 0.50),
      (unsigned long long)Percentile(latencies, 0.95),
      (unsigned long long)Percentile(latencies, 0.99),
      (unsigned long long)(latencies.empty() ? 0 : latencies.back()));
  const bool ok =
      completed.load() == sessions * shards && mismatches.load() == 0 &&
      failures.load() == 0;
  std::printf("%s\n", ok ? "OK: all covers bit-identical to the oracle"
                         : "FAILED");
  return ok ? 0 : 1;
}
