// setcover_server — the long-lived session daemon: binds a unix-domain
// socket and serves the session protocol (open / ingest / checkpoint /
// finalize / stats / close) over the engine until SIGTERM or SIGINT,
// which triggers a graceful drain (every open session checkpointed, so
// a restart on the same --state-dir resumes with zero replay).
//
// Usage:
//   setcover_server --socket=/tmp/setcover.sock --state-dir=/var/lib/sc
//                   [--workers=2] [--max-queue=64] [--retry-after-us=500]

#include <csignal>
#include <cstdio>
#include <string>

#include <semaphore.h>

#include "server/server.h"
#include "util/flags.h"

namespace {

// Async-signal-safe shutdown latch: the handler posts, main waits.
sem_t g_shutdown;

void HandleSignal(int) { sem_post(&g_shutdown); }

}  // namespace

int main(int argc, char** argv) {
  using namespace setcover;
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);
  const std::string socket_path =
      flags.GetString("socket", "/tmp/setcover.sock");

  server::ServerOptions options;
  options.state_dir = flags.GetString("state-dir", "");
  options.worker_threads = size_t(flags.GetInt("workers", 2));
  options.max_queue = size_t(flags.GetInt("max-queue", 64));
  options.retry_after_us = uint64_t(flags.GetInt("retry-after-us", 500));

  for (const std::string& key : flags.UnusedKeys())
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());

  std::string error;
  auto listener = server::ListenUnix(socket_path, &error);
  if (listener == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  server::SessionServer server(options, std::move(listener));
  server.Start();
  std::fprintf(stderr, "setcover_server: listening on %s (state dir: %s)\n",
               socket_path.c_str(),
               options.state_dir.empty() ? "<volatile>"
                                         : options.state_dir.c_str());

  while (sem_wait(&g_shutdown) != 0) {
  }

  std::fprintf(stderr, "setcover_server: draining...\n");
  server.DrainAndStop();
  const server::ServerStats stats = server.Stats();
  std::fprintf(stderr,
               "setcover_server: drained. sessions=%llu frames=%llu "
               "sheds=%llu edges=%llu\n",
               (unsigned long long)stats.open_sessions,
               (unsigned long long)stats.frames_received,
               (unsigned long long)stats.sheds,
               (unsigned long long)stats.total_edges_delivered);
  return 0;
}
