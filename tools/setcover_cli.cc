// setcover_cli — the command-line face of the library.
//
// Subcommands:
//   generate  --family=planted|uniform|zipf|dominating --n --m [...]
//             --out instance.txt
//             Creates an instance file (text format, instance/io.h).
//
//   stream    --instance instance.txt --order random|set-major|...
//             --seed S --out stream.bin [--stream-format v1|v2|v3]
//             Materializes an ordered edge stream into the binary
//             stream-file format (stream/stream_file.h). The default
//             format v3 is delta-varint compressed; v2 writes raw CRC'd
//             chunks, v1 the unchecksummed legacy layout.
//
//   solve     --instance instance.txt [--algorithm kk] [--order random]
//             [--seed S] [--alpha A] [--runs R] [--threads T]
//             [--shards W]
//             Streams the instance through the chosen algorithm and
//             reports cover size, ratio vs greedy/planted, peak words.
//             --threads parallelizes the --runs copies (and the guesses
//             of random-order-nguess); results are bit-identical to
//             --threads=1. --shards W partitions the stream by set id
//             across W workers merged through the deterministic t-party
//             protocol (engine/sharded.h; requires a shardable
//             algorithm, incompatible with --runs > 1).
//
//   solve-stream --stream stream.bin [--algorithm kk] [--seed S]
//             [--threads T] [--shards W] [--backend B]
//             [--passes P] [--window K --replay-every R]
//             [--no-prefetch] [--no-mmap]
//             [--timings] [--checkpoint ckpt.sckp]
//             [--checkpoint-every K] [--resume] [--stop-after K]
//             Replays a binary stream file through the engine (no
//             instance needed; validation is skipped since set contents
//             are not known without the instance). With --checkpoint the
//             run writes a CRC-guarded checkpoint every K edges;
//             --resume restarts from the last valid checkpoint and
//             replays only the tail, bit-identical to an uninterrupted
//             run. --stop-after kills the run after K edges (for
//             demonstrating/testing recovery; docs/robustness.md).
//             --no-prefetch disables the background pipeline decoder
//             and --no-mmap the zero-copy file mapping; both exist for
//             benchmarking and debugging — results are bit-identical
//             with any combination. --timings prints the engine's
//             per-stage wall/CPU breakdown. --shards W runs the sharded
//             mode: W workers each stream their set-partitioned slice
//             of the same (mmap-shared) file and the covers merge via
//             the deterministic protocol; with --checkpoint the W
//             cursors aggregate into one sidecar file and --resume
//             restores all of them. --backend picks the execution
//             substrate by name (inprocess | sharded | forked; see
//             `describe`): the same run, bit-identical, on the calling
//             thread, the thread pool, or W forked worker processes.
//             --passes P layers a P-pass schedule over the file
//             (each pass replays the identical record sequence);
//             --algorithm=progressive-threshold runs the multi-pass
//             progressive threshold greedy through the pass schedule.
//             --window K --replay-every R layers a sliding-window
//             replay feed (duplicate-heavy arrivals; incompatible with
//             checkpointing and the forked backend).
//
//   compare   --instance instance.txt [--order random] [--seed S]
//             Runs *every* registered algorithm on the same stream and
//             prints the Table-1-style comparison (cover, ratio vs
//             greedy/planted, peak words).
//
//   list      Prints the registered algorithm names.
//
//   describe  (also: --describe, list --describe)
//             Prints the self-describing registry: one row per
//             algorithm with space class, approximation class,
//             supported arrival orders, the shardable capability
//             (whether --shards may fan the algorithm out across the
//             sharded execution mode), and a one-line description —
//             followed by the execution-backend registry (one row per
//             substrate --backend accepts).
//
// All subcommands that run an algorithm are thin clients of
// engine::Execute (src/engine/engine.h): they describe the run as a
// RunConfig and print fields of the returned RunReport.
//
// Examples:
//   setcover_cli generate --family=planted --n=1024 --m=65536 \
//       --opt=4 --out=/tmp/inst.txt
//   setcover_cli solve --instance=/tmp/inst.txt --algorithm=random-order
//   setcover_cli stream --instance=/tmp/inst.txt --order=random \
//       --out=/tmp/stream.bin
//   setcover_cli solve-stream --stream=/tmp/stream.bin --algorithm=kk

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "core/multi_pass.h"
#include "core/multi_run.h"
#include "core/registry.h"
#include "engine/backend.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "instance/io.h"
#include "instance/validator.h"
#include "offline/greedy.h"
#include "stream/orderings.h"
#include "stream/stream_file.h"
#include "util/flags.h"

namespace setcover {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: setcover_cli "
      "<generate|stream|solve|solve-stream|compare|list|describe> "
      "[--flags]\n(see the header of tools/setcover_cli.cc for details)\n");
  return 2;
}

int UnknownAlgorithm(const std::string& name) {
  std::fprintf(stderr, "%s\n", UnknownAlgorithmError(name).c_str());
  return 2;
}

std::optional<StreamOrder> ParseOrder(const std::string& name) {
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kSetMajor,
        StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets,
        StreamOrder::kLargeSetsLast}) {
    if (StreamOrderName(order) == name) return order;
  }
  return std::nullopt;
}

/// Parses --shards and vets it against the registry's shardable
/// capability. Returns the shard count, or -1 after printing the
/// actionable rejection (NotShardableError lists the shardable names).
int64_t ShardsFlag(const FlagSet& flags, const std::string& algorithm_name) {
  const int64_t shards = flags.GetInt("shards", 1);
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return -1;
  }
  if (shards > 1) {
    const AlgorithmInfo* info = FindAlgorithm(algorithm_name);
    if (info != nullptr && !info->shardable) {
      std::fprintf(stderr, "%s\n", NotShardableError(algorithm_name).c_str());
      return -1;
    }
  }
  return shards;
}

/// Prints the sharded-run summary lines shared by solve/solve-stream.
void PrintShardStats(const engine::RunReport& report) {
  if (report.sharded.shards <= 1) return;
  std::printf("shards:      %u (merge tau %u: %llu threshold + %llu "
              "patched sets, %.3fs)\n",
              report.sharded.shards, report.sharded.merge_threshold,
              static_cast<unsigned long long>(report.sharded.threshold_sets),
              static_cast<unsigned long long>(report.sharded.patched_sets),
              report.sharded.merge_seconds);
  std::printf("merge msg:   %llu words (bound %llu)\n",
              static_cast<unsigned long long>(
                  report.sharded.max_message_words),
              static_cast<unsigned long long>(
                  report.sharded.message_words_bound));
  std::string edges;
  for (uint64_t e : report.sharded.shard_edges) {
    if (!edges.empty()) edges += " ";
    edges += std::to_string(e);
  }
  std::printf("shard edges: %s\n", edges.c_str());
}

int CmdList() {
  for (const std::string& name : RegisteredAlgorithmNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdDescribe() {
  std::printf("%-24s %-22s %-28s %-10s %s\n", "algorithm", "space", "approx",
              "shardable", "orders");
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    std::string orders;
    for (const std::string& order : info.supported_orders) {
      if (!orders.empty()) orders += ",";
      orders += order;
    }
    std::printf("%-24s %-22s %-28s %-10s %s\n", info.name.c_str(),
                info.space_class.c_str(), info.approx_class.c_str(),
                info.shardable ? "yes" : "no", orders.c_str());
    std::printf("    %s\n", info.description.c_str());
  }
  std::printf("\n%-12s %-12s %s\n", "backend", "multiprocess", "summary");
  for (const engine::BackendInfo& backend : engine::BackendRegistry()) {
    std::printf("%-12s %-12s %s\n", backend.name.c_str(),
                backend.multiprocess ? "yes" : "no",
                backend.summary.c_str());
  }
  return 0;
}

int CmdGenerate(const FlagSet& flags) {
  std::string family = flags.GetString("family", "planted");
  uint32_t n = static_cast<uint32_t>(flags.GetInt("n", 1024));
  uint32_t m = static_cast<uint32_t>(flags.GetInt("m", 16384));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  std::string out = flags.GetString("out", "instance.txt");
  Rng rng(seed);

  SetCoverInstance instance = GeneratePartition(1, 1);
  if (family == "planted") {
    PlantedCoverParams p;
    p.num_elements = n;
    p.num_sets = m;
    p.planted_cover_size = static_cast<uint32_t>(flags.GetInt("opt", 4));
    p.decoy_min_size =
        static_cast<uint32_t>(flags.GetInt("decoy-min", 1));
    p.decoy_max_size =
        static_cast<uint32_t>(flags.GetInt("decoy-max", 4));
    instance = GeneratePlantedCover(p, rng);
  } else if (family == "uniform") {
    UniformRandomParams p;
    p.num_elements = n;
    p.num_sets = m;
    p.min_set_size = static_cast<uint32_t>(flags.GetInt("set-min", 1));
    p.max_set_size = static_cast<uint32_t>(flags.GetInt("set-max", 8));
    instance = GenerateUniformRandom(p, rng);
  } else if (family == "zipf") {
    ZipfParams p;
    p.num_elements = n;
    p.num_sets = m;
    p.min_set_size = static_cast<uint32_t>(flags.GetInt("set-min", 1));
    p.max_set_size = static_cast<uint32_t>(flags.GetInt("set-max", 16));
    p.exponent = flags.GetDouble("exponent", 1.0);
    instance = GenerateZipf(p, rng);
  } else if (family == "dominating") {
    instance = GenerateDominatingSet(n, flags.GetDouble("p", 0.01), rng);
  } else {
    std::fprintf(stderr, "unknown --family=%s\n", family.c_str());
    return 2;
  }

  if (!WriteInstanceFile(instance, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s: n=%u m=%u N=%zu%s\n", out.c_str(),
              instance.NumElements(), instance.NumSets(),
              instance.NumEdges(),
              instance.PlantedCover().empty() ? "" : " (planted cover)");
  return 0;
}

int CmdStream(const FlagSet& flags) {
  std::string path = flags.GetString("instance", "");
  std::string out = flags.GetString("out", "stream.bin");
  std::string order_name = flags.GetString("order", "random");
  std::string format_name = flags.GetString("stream-format", "v3");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  StreamFormat format;
  if (format_name == "v1") {
    format = StreamFormat::kV1;
  } else if (format_name == "v2") {
    format = StreamFormat::kV2;
  } else if (format_name == "v3") {
    format = StreamFormat::kV3;
  } else {
    std::fprintf(stderr, "unknown --stream-format=%s (v1|v2|v3)\n",
                 format_name.c_str());
    return 2;
  }

  std::string error;
  auto instance = ReadInstanceFile(path, &error);
  if (!instance.has_value()) {
    std::fprintf(stderr, "cannot read instance: %s\n", error.c_str());
    return 1;
  }
  auto order = ParseOrder(order_name);
  if (!order.has_value()) {
    std::fprintf(stderr, "unknown --order=%s\n", order_name.c_str());
    return 2;
  }
  Rng rng(seed);
  EdgeStream stream = OrderedStream(*instance, *order, rng);
  if (!WriteStreamFile(stream, out, format, &error)) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu edges in %s order (format %s)\n", out.c_str(),
              stream.size(), order_name.c_str(), format_name.c_str());
  return 0;
}

int CmdSolve(const FlagSet& flags) {
  std::string path = flags.GetString("instance", "");
  std::string algorithm_name = flags.GetString("algorithm", "kk");
  std::string order_name = flags.GetString("order", "random");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  uint32_t runs = static_cast<uint32_t>(flags.GetInt("runs", 1));
  unsigned threads =
      static_cast<unsigned>(std::max<int64_t>(1, flags.GetInt("threads", 1)));

  std::string error;
  auto instance = ReadInstanceFile(path, &error);
  if (!instance.has_value()) {
    std::fprintf(stderr, "cannot read instance: %s\n", error.c_str());
    return 1;
  }
  auto order = ParseOrder(order_name);
  if (!order.has_value()) {
    std::fprintf(stderr, "unknown --order=%s\n", order_name.c_str());
    return 2;
  }
  AlgorithmOptions options;
  options.seed = seed;
  options.alpha = flags.GetDouble("alpha", 0.0);
  options.threads = threads;
  if (FindAlgorithm(algorithm_name) == nullptr) {
    return UnknownAlgorithm(algorithm_name);
  }
  const int64_t shards = ShardsFlag(flags, algorithm_name);
  if (shards < 0) return 2;
  if (shards > 1 && runs > 1) {
    std::fprintf(stderr,
                 "--shards is incompatible with --runs > 1 (a sharded run "
                 "is one logical run)\n");
    return 2;
  }

  Rng rng(seed ^ 0x9e3779b9);
  EdgeStream stream = OrderedStream(*instance, *order, rng);

  size_t total_peak = 0;
  CoverSolution solution;
  engine::RunReport sharded_report;
  if (shards > 1) {
    engine::RunConfig config;
    config.algorithm = algorithm_name;
    config.options = options;
    config.source = engine::SourceSpec::InMemory(stream);
    config.shards = static_cast<uint32_t>(shards);
    sharded_report = engine::Execute(config);
    if (!sharded_report.error.empty()) {
      std::fprintf(stderr, "run failed: %s\n", sharded_report.error.c_str());
      return 1;
    }
    solution = sharded_report.solution;
    total_peak = sharded_report.peak_words;
  } else {
    AlgorithmFactory factory = [&](uint64_t run_seed) {
      AlgorithmOptions run_options = options;
      run_options.seed = run_seed;
      return MakeAlgorithmByName(algorithm_name, run_options);
    };
    solution = BestOfRuns(factory, std::max(1u, runs), seed, stream,
                          &total_peak, threads);
  }

  ValidationResult check = ValidateSolution(*instance, solution);
  CoverSolution greedy = GreedyCover(*instance);
  std::printf("algorithm:   %s (%u run%s)\n", algorithm_name.c_str(), runs,
              runs == 1 ? "" : "s");
  std::printf("order:       %s\n", order_name.c_str());
  std::printf("valid:       %s\n", check.ok ? "yes" : check.error.c_str());
  std::printf("cover size:  %zu\n", solution.cover.size());
  std::printf("greedy size: %zu (ratio %.2f)\n", greedy.cover.size(),
              ApproxRatio(solution, greedy.cover.size()));
  if (!instance->PlantedCover().empty()) {
    std::printf("planted OPT: %zu (ratio %.2f)\n",
                instance->PlantedCover().size(),
                ApproxRatio(solution, instance->PlantedCover().size()));
  }
  std::printf("peak words:  %zu%s\n", total_peak,
              runs > 1   ? " (summed over runs)"
              : shards > 1 ? " (summed over shards)"
                           : "");
  PrintShardStats(sharded_report);
  return check.ok ? 0 : 1;
}

int CmdCompare(const FlagSet& flags) {
  std::string path = flags.GetString("instance", "");
  std::string order_name = flags.GetString("order", "random");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::string error;
  auto instance = ReadInstanceFile(path, &error);
  if (!instance.has_value()) {
    std::fprintf(stderr, "cannot read instance: %s\n", error.c_str());
    return 1;
  }
  auto order = ParseOrder(order_name);
  if (!order.has_value()) {
    std::fprintf(stderr, "unknown --order=%s\n", order_name.c_str());
    return 2;
  }
  Rng rng(seed ^ 0x9e3779b9);
  EdgeStream stream = OrderedStream(*instance, *order, rng);
  CoverSolution greedy = GreedyCover(*instance);
  size_t reference = instance->PlantedCover().empty()
                         ? greedy.cover.size()
                         : instance->PlantedCover().size();

  std::printf("n=%u m=%u N=%zu order=%s reference=%zu (%s)\n\n",
              instance->NumElements(), instance->NumSets(),
              instance->NumEdges(), order_name.c_str(), reference,
              instance->PlantedCover().empty() ? "greedy" : "planted");
  std::printf("%-26s %8s %8s %14s %6s\n", "algorithm", "cover", "ratio",
              "peak_words", "valid");
  for (const std::string& name : RegisteredAlgorithmNames()) {
    engine::RunConfig config;
    config.algorithm = name;
    config.options.seed = seed;
    config.source = engine::SourceSpec::InMemory(stream);
    config.validate = &*instance;
    engine::RunReport report = engine::Execute(config);
    std::printf("%-26s %8zu %8.2f %14zu %6s\n", name.c_str(),
                report.solution.cover.size(),
                ApproxRatio(report.solution, reference), report.peak_words,
                report.validation.ok ? "yes" : "NO");
  }
  return 0;
}

int CmdSolveStream(const FlagSet& flags) {
  std::string path = flags.GetString("stream", "");
  std::string algorithm_name = flags.GetString("algorithm", "kk");
  // progressive-threshold is the multi-pass workhorse (core/multi_pass.h),
  // driven through a --passes schedule via the stream adapter; everything
  // else resolves through the one-pass registry.
  const bool multipass = algorithm_name == "progressive-threshold";
  if (!multipass && FindAlgorithm(algorithm_name) == nullptr) {
    return UnknownAlgorithm(algorithm_name);
  }

  const int64_t passes = flags.GetInt("passes", 1);
  const int64_t window = flags.GetInt("window", 0);
  const int64_t replay_every = flags.GetInt("replay-every", 0);
  if (passes < 1) {
    std::fprintf(stderr, "--passes must be >= 1\n");
    return 2;
  }
  const int64_t shards = multipass ? 1 : ShardsFlag(flags, algorithm_name);
  if (shards < 0) return 2;
  if (multipass && (flags.GetInt("shards", 1) > 1 ||
                    !flags.GetString("backend", "").empty())) {
    std::fprintf(stderr,
                 "--algorithm=progressive-threshold runs the in-process "
                 "pipeline only (no --shards / --backend): pass state "
                 "spans the whole stream\n");
    return 2;
  }

  engine::RunConfig config;
  config.algorithm = algorithm_name;
  config.backend.name = flags.GetString("backend", "");
  config.options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.options.alpha = flags.GetDouble("alpha", 0.0);
  config.options.threads =
      static_cast<unsigned>(std::max<int64_t>(1, flags.GetInt("threads", 1)));
  config.shards = static_cast<uint32_t>(shards);

  StreamReadOptions read_options;
  read_options.prefetch = !flags.GetBool("no-prefetch", false);
  read_options.use_mmap = !flags.GetBool("no-mmap", false);
  config.source = engine::SourceSpec::File(path, read_options);
  config.source.schedule.passes = static_cast<uint32_t>(passes);
  config.source.schedule.window = static_cast<uint32_t>(window);
  config.source.schedule.replay_every =
      static_cast<uint32_t>(replay_every);

  // The multi-pass adapter: feed P identical passes through the
  // one-pass pipeline and let the adapter re-derive the pass lifecycle
  // at stream-length boundaries (core/multi_pass.h).
  std::optional<ProgressiveThresholdMultiPass> progressive;
  std::optional<MultiPassStreamAdapter> adapter;
  if (multipass) {
    MultiPassParams params;
    params.passes = static_cast<uint32_t>(passes);
    progressive.emplace(params);
    adapter.emplace(*progressive);
    config.algorithm.clear();
    config.algorithm_instance = &*adapter;
  }

  config.checkpoint.path = flags.GetString("checkpoint", "");
  config.checkpoint.every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every", 1 << 16));
  config.checkpoint.resume = flags.GetBool("resume", false);
  config.stop_after = static_cast<uint64_t>(flags.GetInt("stop-after", 0));
  config.sleeper = [](uint64_t us) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  };
  if (config.checkpoint.resume && config.checkpoint.path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint\n");
    return 2;
  }
  const bool timings = flags.GetBool("timings", false);

  engine::RunReport report = engine::Execute(config);
  if (!report.error.empty()) {
    std::fprintf(stderr, "run failed: %s\n", report.error.c_str());
    return 1;
  }
  if (report.resumed) {
    std::printf("resumed:     from edge %llu (%s)\n",
                static_cast<unsigned long long>(report.resumed_at),
                config.checkpoint.path.c_str());
  }
  if (!report.completed) {
    std::printf("stopped:     after %llu edges (checkpoints written: %llu)\n",
                static_cast<unsigned long long>(report.edges_delivered),
                static_cast<unsigned long long>(report.checkpoints_written));
    return 0;
  }

  size_t witnessed = 0;
  for (SetId w : report.solution.certificate)
    witnessed += (w != kNoSet) ? 1 : 0;
  std::printf("algorithm:   %s\n", report.algorithm_name.c_str());
  if (!config.backend.name.empty()) {
    std::printf("backend:     %s\n", config.backend.name.c_str());
  }
  if (passes > 1) {
    if (multipass && adapter.has_value()) {
      std::printf("passes:      %lld (%u completed)\n",
                  static_cast<long long>(passes),
                  adapter->PassesCompleted());
    } else {
      std::printf("passes:      %lld\n", static_cast<long long>(passes));
    }
  }
  if (window > 0) {
    std::printf("window:      %lld (replay every %lld)\n",
                static_cast<long long>(window),
                static_cast<long long>(replay_every));
  }
  std::printf("cover size:  %zu\n", report.solution.cover.size());
  std::printf("witnessed:   %zu/%zu elements\n", witnessed,
              report.solution.certificate.size());
  if (report.checkpoints_written > 0) {
    std::printf("checkpoints: %llu\n", static_cast<unsigned long long>(
                                           report.checkpoints_written));
  }
  if (report.degraded || report.transient_retries > 0 ||
      report.corrupt_records_skipped > 0) {
    std::printf("degraded:    %s (retries %llu, corrupt skipped %llu)\n",
                report.degraded ? "yes" : "no",
                static_cast<unsigned long long>(report.transient_retries),
                static_cast<unsigned long long>(
                    report.corrupt_records_skipped));
  }
  std::printf("peak words:  %zu\n", report.peak_words);
  std::printf("breakdown:   %s\n", report.meter_breakdown.c_str());
  PrintShardStats(report);
  if (timings) {
    std::printf(
        "timings:     setup %.3fs, stream %.3fs (%llu batches), "
        "finalize %.3fs; total %.3fs wall, %.3fs cpu\n",
        report.stages.setup_seconds, report.stages.stream_seconds,
        static_cast<unsigned long long>(report.stages.batches),
        report.stages.finalize_seconds, report.stages.total_seconds,
        report.stages.cpu_seconds);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  FlagSet flags = FlagSet::Parse(argc - 2, argv + 2);
  int result;
  if (command == "list") {
    result = flags.GetBool("describe", false) ? CmdDescribe() : CmdList();
  } else if (command == "describe" || command == "--describe") {
    result = CmdDescribe();
  } else if (command == "generate") {
    result = CmdGenerate(flags);
  } else if (command == "stream") {
    result = CmdStream(flags);
  } else if (command == "solve") {
    result = CmdSolve(flags);
  } else if (command == "compare") {
    result = CmdCompare(flags);
  } else if (command == "solve-stream") {
    result = CmdSolveStream(flags);
  } else {
    return Usage();
  }
  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }
  return result;
}

}  // namespace
}  // namespace setcover

int main(int argc, char** argv) { return setcover::Main(argc, argv); }
