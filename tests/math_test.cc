#include "util/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(MathTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 63), 63);
}

TEST(MathTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 5), 0u);
  EXPECT_EQ(CeilDiv(1, 5), 1u);
  EXPECT_EQ(CeilDiv(5, 5), 1u);
  EXPECT_EQ(CeilDiv(6, 5), 2u);
  EXPECT_EQ(CeilDiv(10, 1), 10u);
}

TEST(MathTest, ISqrtExactSquares) {
  for (uint64_t r = 0; r < 2000; ++r) {
    EXPECT_EQ(ISqrt(r * r), r);
    if (r > 0) EXPECT_EQ(ISqrt(r * r - 1), r - 1);
    // (r² + 1) only rounds down to r for r >= 1 (ISqrt(1) = 1).
    if (r > 0) EXPECT_EQ(ISqrt(r * r + 1), r);
  }
}

TEST(MathTest, ISqrtLargeValues) {
  EXPECT_EQ(ISqrt(uint64_t{1} << 62), uint64_t{1} << 31);
  uint64_t big = (uint64_t{1} << 32) - 1;
  EXPECT_EQ(ISqrt(big * big), big);
}

TEST(MathTest, LnAtLeastClamps) {
  EXPECT_DOUBLE_EQ(LnAtLeast(std::exp(3.0), 1.0), 3.0);
  EXPECT_DOUBLE_EQ(LnAtLeast(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(LnAtLeast(0.5, 2.0), 2.0);
}

TEST(MathTest, Log2AtLeastClamps) {
  EXPECT_DOUBLE_EQ(Log2AtLeast(8.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Log2AtLeast(1.0, 1.5), 1.5);
}

}  // namespace
}  // namespace setcover
