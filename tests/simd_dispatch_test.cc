// End-to-end tier differentials for the SIMD dispatch layer: every
// registry algorithm, run to completion under each forced tier
// (simd::ForceLevelForTest), must produce bit-identical covers,
// certificates, EncodeState words, and meter peaks. The kernels are
// pure and the batch paths only use them as screens, so the tier must
// be unobservable — this suite is what makes "vectorization is a pure
// performance change" a tested property rather than a comment.
//
// The cross-tier resume matrix additionally checkpoints mid-stream
// under one tier and resumes under another, pinning that the wire
// format never depends on the tier that produced it.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/streaming_algorithm.h"
#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"
#include "util/simd.h"

namespace setcover {
namespace {

const EdgeStream& TestStream() {
  static const EdgeStream stream = [] {
    PlantedCoverParams params;
    params.num_elements = 256;
    params.num_sets = 4096;
    params.planted_cover_size = 8;
    params.decoy_min_size = 1;
    params.decoy_max_size = 4;
    Rng rng(7);
    SetCoverInstance instance = GeneratePlantedCover(params, rng);
    Rng order_rng(11);
    return OrderedStream(instance, StreamOrder::kRandom, order_rng);
  }();
  return stream;
}

std::vector<simd::Level> TestableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::MaxSupportedLevel() >= simd::Level::kSse42) {
    levels.push_back(simd::Level::kSse42);
  }
  if (simd::MaxSupportedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

/// RAII tier override so a failing assertion cannot leak a forced tier
/// into later tests.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level)
      : previous_(simd::ForceLevelForTest(level)) {}
  ~ScopedLevel() { simd::ForceLevelForTest(previous_); }

 private:
  simd::Level previous_;
};

struct Observed {
  CoverSolution solution;
  std::vector<uint64_t> state;
  size_t peak_words = 0;
};

Observed RunBatched(const std::string& name, size_t batch_edges) {
  const EdgeStream& stream = TestStream();
  auto algorithm = MakeAlgorithmByName(name, {});
  algorithm->Begin(stream.meta);
  std::span<const Edge> edges(stream.edges);
  for (size_t offset = 0; offset < edges.size(); offset += batch_edges) {
    algorithm->ProcessEdgeBatch(
        edges.subspan(offset, std::min(batch_edges, edges.size() - offset)));
  }
  Observed observed;
  StateEncoder encoder;
  algorithm->EncodeState(&encoder);
  observed.state = encoder.Words();
  observed.solution = algorithm->Finalize();
  observed.peak_words = algorithm->Meter().PeakWords();
  return observed;
}

void ExpectIdentical(const Observed& expected, const Observed& actual,
                     const std::string& label) {
  EXPECT_EQ(expected.solution.cover, actual.solution.cover) << label;
  EXPECT_EQ(expected.solution.certificate, actual.solution.certificate)
      << label;
  EXPECT_EQ(expected.state, actual.state) << label;
  EXPECT_EQ(expected.peak_words, actual.peak_words) << label;
}

class SimdDispatch : public testing::TestWithParam<std::string> {};

TEST_P(SimdDispatch, FullRunIsBitIdenticalUnderEveryTier) {
  Observed reference;
  {
    ScopedLevel scalar(simd::Level::kScalar);
    reference = RunBatched(GetParam(), 64);
  }
  for (simd::Level level : TestableLevels()) {
    ScopedLevel forced(level);
    ExpectIdentical(reference, RunBatched(GetParam(), 64),
                    GetParam() + " tier=" + simd::LevelName(level));
    // A second partition under the same tier: tier and batch boundary
    // must be independently unobservable.
    ExpectIdentical(reference, RunBatched(GetParam(), 509),
                    GetParam() + " tier=" + simd::LevelName(level) +
                        " batch=509");
  }
}

// Kill-and-resume across tiers: ingest a prefix and checkpoint under
// tier A, decode the checkpoint and finish the stream under tier B.
// Every (A, B) pair must reproduce the scalar reference bit for bit —
// the checkpoint bytes are tier-invariant in both directions.
TEST_P(SimdDispatch, CheckpointResumesAcrossTiers) {
  const EdgeStream& stream = TestStream();
  const size_t cut = stream.edges.size() / 2;
  std::span<const Edge> edges(stream.edges);

  Observed reference;
  {
    ScopedLevel scalar(simd::Level::kScalar);
    reference = RunBatched(GetParam(), 64);
  }

  for (simd::Level encode_level : TestableLevels()) {
    std::vector<uint64_t> checkpoint;
    {
      ScopedLevel forced(encode_level);
      auto algorithm = MakeAlgorithmByName(GetParam(), {});
      algorithm->Begin(stream.meta);
      for (size_t offset = 0; offset < cut; offset += 64) {
        algorithm->ProcessEdgeBatch(
            edges.subspan(offset, std::min<size_t>(64, cut - offset)));
      }
      StateEncoder encoder;
      algorithm->EncodeState(&encoder);
      checkpoint = encoder.Words();
    }
    for (simd::Level resume_level : TestableLevels()) {
      ScopedLevel forced(resume_level);
      auto algorithm = MakeAlgorithmByName(GetParam(), {});
      ASSERT_TRUE(algorithm->DecodeState(stream.meta, checkpoint))
          << GetParam() << " encode=" << simd::LevelName(encode_level)
          << " resume=" << simd::LevelName(resume_level);
      for (size_t offset = cut; offset < edges.size(); offset += 64) {
        algorithm->ProcessEdgeBatch(edges.subspan(
            offset, std::min<size_t>(64, edges.size() - offset)));
      }
      Observed resumed;
      StateEncoder encoder;
      algorithm->EncodeState(&encoder);
      resumed.state = encoder.Words();
      resumed.solution = algorithm->Finalize();
      resumed.peak_words = reference.peak_words;  // resume forgets peaks
      ExpectIdentical(reference, resumed,
                      GetParam() + " encode=" +
                          simd::LevelName(encode_level) + " resume=" +
                          simd::LevelName(resume_level));
    }
  }
}

std::string SafeName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SimdDispatch,
                         testing::ValuesIn(RegisteredAlgorithmNames()),
                         SafeName);

}  // namespace
}  // namespace setcover
