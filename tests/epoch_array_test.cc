#include "util/epoch_array.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/serialize.h"

namespace setcover {
namespace {

TEST(EpochArray, SlotInsertsAndFinds) {
  EpochArray<uint32_t> array;
  array.Assign(16);
  EXPECT_EQ(array.Size(), 0u);
  EXPECT_EQ(array.UniverseSize(), 16u);
  EXPECT_FALSE(array.Contains(5));
  EXPECT_EQ(array.Find(5), nullptr);

  auto [value, inserted] = array.Slot(5);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(value, 0u);  // fresh slots start default-constructed
  value = 7;
  EXPECT_EQ(array.Size(), 1u);
  ASSERT_NE(array.Find(5), nullptr);
  EXPECT_EQ(*array.Find(5), 7u);

  auto [again, inserted_again] = array.Slot(5);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(again, 7u);  // re-taking a live slot must not reset it
  EXPECT_EQ(array.Size(), 1u);
}

TEST(EpochArray, ClearAllEmptiesAndSlotsResetAfterClear) {
  EpochArray<uint32_t> array;
  array.Assign(8);
  array.Slot(3).first = 42;
  array.Slot(6).first = 43;
  EXPECT_EQ(array.Size(), 2u);

  array.ClearAll();
  EXPECT_EQ(array.Size(), 0u);
  EXPECT_FALSE(array.Contains(3));
  EXPECT_EQ(array.Find(6), nullptr);

  // A stale value from the previous epoch must not leak through.
  auto [value, inserted] = array.Slot(3);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(value, 0u);
}

TEST(EpochArray, SortedEntriesMatchesPutMapWireFormat) {
  EpochArray<uint32_t> array;
  array.Assign(100);
  std::unordered_map<uint32_t, uint32_t> mirror;
  for (uint32_t id : {97u, 4u, 31u, 0u, 55u}) {
    uint32_t v = id * 3 + 1;
    array.Slot(id).first = v;
    mirror[id] = v;
  }
  StateEncoder dense, hashed;
  dense.PutSortedPairs(array.SortedEntries());
  hashed.PutMap(mirror);
  EXPECT_EQ(dense.Words(), hashed.Words());
  EXPECT_EQ(dense.SizeWords(), EncodedMapWords(array.Size()));
}

TEST(EpochArray, ForEachVisitsAscending) {
  EpochArray<uint32_t> array;
  array.Assign(50);
  for (uint32_t id : {40u, 2u, 17u}) array.Slot(id).first = id + 100;
  std::vector<std::pair<uint32_t, uint32_t>> seen;
  array.ForEach([&](uint32_t id, uint32_t value) {
    seen.emplace_back(id, value);
  });
  std::vector<std::pair<uint32_t, uint32_t>> expected = {
      {2, 102}, {17, 117}, {40, 140}};
  EXPECT_EQ(seen, expected);
}

TEST(EpochArray, SwapExchangesContents) {
  EpochArray<uint32_t> a, b;
  a.Assign(10);
  b.Assign(10);
  a.Slot(1).first = 11;
  b.Slot(2).first = 22;
  b.ClearAll();  // desynchronize the epochs before swapping
  b.Slot(3).first = 33;
  swap(a, b);
  EXPECT_FALSE(a.Contains(1));
  ASSERT_TRUE(a.Contains(3));
  EXPECT_EQ(*a.Find(3), 33u);
  ASSERT_TRUE(b.Contains(1));
  EXPECT_EQ(*b.Find(1), 11u);
  EXPECT_FALSE(b.Contains(2));
}

TEST(EpochSet, InsertContainsClear) {
  EpochSet set;
  set.Assign(20);
  EXPECT_TRUE(set.Insert(7));
  EXPECT_FALSE(set.Insert(7));  // duplicate insert reports present
  EXPECT_TRUE(set.Insert(19));
  EXPECT_EQ(set.Size(), 2u);
  EXPECT_TRUE(set.Contains(7));
  EXPECT_FALSE(set.Contains(8));

  set.ClearAll();
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_FALSE(set.Contains(7));
  EXPECT_TRUE(set.Insert(7));
}

TEST(EpochSet, SortedIdsMatchesPutSetWireFormat) {
  EpochSet set;
  set.Assign(64);
  std::unordered_set<uint32_t> mirror;
  for (uint32_t id : {63u, 0u, 12u, 5u}) {
    set.Insert(id);
    mirror.insert(id);
  }
  StateEncoder dense, hashed;
  dense.PutSortedIds(set.SortedIds());
  hashed.PutSet(mirror);
  EXPECT_EQ(dense.Words(), hashed.Words());
  EXPECT_EQ(dense.SizeWords(), EncodedSetWords(set.Size()));
}

TEST(EpochSet, AssignResetsEverything) {
  EpochSet set;
  set.Assign(4);
  set.Insert(3);
  set.Assign(8);  // re-Assign after use, as Begin() does on reruns
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.UniverseSize(), 8u);
}

// Many epochs in sequence: entries from any prior epoch must stay
// invisible. (Full 2^32 wraparound is exercised implicitly by the
// re-zeroing branch; here we check a long run of clears stays sound.)
TEST(EpochSet, ManyClearCyclesStaySound) {
  EpochSet set;
  set.Assign(3);
  for (int cycle = 0; cycle < 10000; ++cycle) {
    EXPECT_TRUE(set.Insert(cycle % 3));
    EXPECT_EQ(set.Size(), 1u);
    set.ClearAll();
    EXPECT_FALSE(set.Contains(cycle % 3));
  }
}

}  // namespace
}  // namespace setcover
