// Shard-count invariance — the acceptance bar for the sharded
// execution mode (engine/sharded.h). For every shardable algorithm:
// (a) a W=1 sharded run is bit-identical to engine::Execute on the
// same config; (b) at W in {2, 4, 7} the merged cover validates, stays
// within the deterministic protocol's 2*sqrt(n*W) factor of greedy on
// a Table-1 planted instance, and the merge's largest message stays
// within the recorded O~(n) bound; (c) kill-and-resume mid-ingest
// through the ONE aggregate checkpoint file reproduces the unkilled
// run byte-for-byte. Plus: thread-count invisibility, the
// engine::Execute shards dispatch, file/in-memory agreement, the
// partitioner seam, and the sharded checkpoint format itself.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "engine/sharded.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "offline/greedy.h"
#include "run/checkpoint.h"
#include "stream/orderings.h"
#include "stream/stream_file.h"
#include "util/rng.h"

namespace setcover {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

/// A Table-1-style planted instance: known OPT, decoy sets, enough
/// edges that every shard of a W=7 split still sees a few hundred.
Fixture MakePlantedFixture(uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams p;
  p.num_elements = 120;
  p.num_sets = 600;
  p.planted_cover_size = 6;
  Fixture fixture{GeneratePlantedCover(p, rng), {}};
  fixture.stream = RandomOrderStream(fixture.instance, rng);
  return fixture;
}

std::string TempPath(const std::string& tag) {
  std::string name = "sharded_" + tag;
  for (char& c : name)
    if (c == '-') c = '_';
  return testing::TempDir() + name;
}

engine::ShardedRunConfig BaseConfig(const std::string& algorithm,
                                    const EdgeStream& stream,
                                    uint32_t shards) {
  engine::ShardedRunConfig config;
  config.base.algorithm = algorithm;
  config.base.options.seed = 21;
  config.base.source = engine::SourceSpec::InMemory(stream);
  config.shards = shards;
  return config;
}

void ExpectSameSolution(const engine::RunReport& actual,
                        const engine::RunReport& expected,
                        const std::string& context) {
  EXPECT_EQ(actual.solution.cover, expected.solution.cover) << context;
  EXPECT_EQ(actual.solution.certificate, expected.solution.certificate)
      << context;
  EXPECT_EQ(actual.edges_delivered, expected.edges_delivered) << context;
  EXPECT_EQ(actual.current_words, expected.current_words) << context;
  EXPECT_EQ(actual.uncovered_elements, expected.uncovered_elements)
      << context;
}

class ShardedSweep : public testing::TestWithParam<std::string> {};

// (a) W=1: the shard filter passes everything, the merge is skipped,
// and the run must be bit-identical to the unsharded engine — covers,
// certificates, counters, meter readings. (Peak words only in NDEBUG:
// the unsharded in-memory fast path runs the debug-build first-batch
// equivalence spot-check, which re-bases the meter peak; the sharded
// fast path, like the file path, never does.)
TEST_P(ShardedSweep, SingleShardIsBitIdenticalToExecute) {
  Fixture fixture = MakePlantedFixture(301);
  engine::ShardedRunConfig config = BaseConfig(GetParam(), fixture.stream, 1);

  engine::RunReport expected = engine::Execute(config.base);
  ASSERT_TRUE(expected.completed) << expected.error;
  engine::RunReport report = engine::ExecuteSharded(config);
  ASSERT_TRUE(report.completed) << report.error;

  ExpectSameSolution(report, expected, GetParam());
  EXPECT_EQ(report.algorithm_name, expected.algorithm_name);
  EXPECT_EQ(report.meter_breakdown, expected.meter_breakdown);
  EXPECT_EQ(report.stages.batches, expected.stages.batches);
#ifdef NDEBUG
  EXPECT_EQ(report.peak_words, expected.peak_words);
#endif
  EXPECT_EQ(report.sharded.shards, 1u);
  ASSERT_EQ(report.sharded.shard_edges.size(), 1u);
  EXPECT_EQ(report.sharded.shard_edges[0], fixture.stream.size());
}

// (b) W in {2, 4, 7}: the merged cover is a valid cover of the full
// instance, within the protocol's 2*sqrt(n*W) factor of greedy (greedy
// >= OPT, so this is implied by the paper's 2*sqrt(n*t)*OPT bound), and
// the merge's largest message stays within the recorded O~(n) bound.
TEST_P(ShardedSweep, MergedCoverAndMessageWithinProtocolBounds) {
  Fixture fixture = MakePlantedFixture(311);
  const size_t greedy_size = GreedyCover(fixture.instance).cover.size();
  const uint32_t n = fixture.instance.NumElements();

  for (uint32_t shards : {2u, 4u, 7u}) {
    const std::string context =
        GetParam() + " W=" + std::to_string(shards);
    engine::ShardedRunConfig config =
        BaseConfig(GetParam(), fixture.stream, shards);
    config.base.validate = &fixture.instance;
    engine::RunReport report = engine::ExecuteSharded(config);

    ASSERT_TRUE(report.completed) << context << ": " << report.error;
    ASSERT_TRUE(report.validated) << context;
    EXPECT_TRUE(report.validation.ok)
        << context << ": " << report.validation.error;
    EXPECT_EQ(report.uncovered_elements, 0u) << context;
    EXPECT_EQ(report.edges_delivered, fixture.stream.size()) << context;

    const double factor = 2.0 * std::sqrt(double(n) * double(shards));
    EXPECT_LE(double(report.solution.cover.size()),
              factor * double(greedy_size))
        << context;

    const auto& stats = report.sharded;
    EXPECT_EQ(stats.shards, shards) << context;
    EXPECT_GT(stats.message_words_bound, 0u) << context;
    EXPECT_LE(stats.max_message_words, stats.message_words_bound) << context;
    EXPECT_EQ(stats.threshold_sets + stats.patched_sets,
              report.solution.cover.size())
        << context;
    ASSERT_EQ(stats.shard_edges.size(), shards) << context;
    EXPECT_EQ(std::accumulate(stats.shard_edges.begin(),
                              stats.shard_edges.end(), uint64_t{0}),
              fixture.stream.size())
        << context;
  }
}

// (c) Kill-and-resume mid-ingest: a sharded run killed after k edges
// per shard, then resumed from the ONE aggregate checkpoint file, must
// finish byte-for-byte identical to the unkilled sharded run — at
// every W, including W=7 where the slices are lopsided.
TEST_P(ShardedSweep, KillAndResumeReproducesUnkilledRun) {
  Fixture fixture = MakePlantedFixture(301);
  const std::string path = TempPath("resume_" + GetParam() + ".scsh");

  for (uint32_t shards : {2u, 4u, 7u}) {
    const std::string context =
        GetParam() + " W=" + std::to_string(shards);
    engine::ShardedRunConfig base =
        BaseConfig(GetParam(), fixture.stream, shards);
    engine::RunReport expected = engine::ExecuteSharded(base);
    ASSERT_TRUE(expected.completed) << context << ": " << expected.error;

    engine::ShardedRunConfig kill = base;
    kill.base.checkpoint.path = path;
    kill.base.checkpoint.every = 10;
    kill.base.stop_after = 25;  // every shard holds hundreds of edges
    engine::RunReport killed = engine::ExecuteSharded(kill);
    ASSERT_TRUE(killed.error.empty()) << context << ": " << killed.error;
    ASSERT_FALSE(killed.completed) << context;
    ASSERT_GE(killed.checkpoints_written, uint64_t{shards}) << context;

    engine::ShardedRunConfig resume = base;
    resume.base.options.seed = 999;  // must be ignored: state is on disk
    resume.base.checkpoint.path = path;
    resume.base.checkpoint.every = 10;
    resume.base.checkpoint.resume = true;
    engine::RunReport resumed = engine::ExecuteSharded(resume);
    ASSERT_TRUE(resumed.completed) << context << ": " << resumed.error;
    EXPECT_TRUE(resumed.resumed) << context;
    ExpectSameSolution(resumed, expected, context);
    EXPECT_EQ(resumed.sharded.shard_cover_sizes,
              expected.sharded.shard_cover_sizes)
        << context;
  }
  std::remove(path.c_str());
}

// The thread-pool width is an execution detail: W=4 shards on 1 thread
// and on 4 threads must produce identical reports.
TEST_P(ShardedSweep, ThreadCountIsObservationallyInvisible) {
  Fixture fixture = MakePlantedFixture(301);
  engine::ShardedRunConfig wide = BaseConfig(GetParam(), fixture.stream, 4);
  wide.threads = 4;
  engine::ShardedRunConfig narrow = wide;
  narrow.threads = 1;

  engine::RunReport a = engine::ExecuteSharded(wide);
  engine::RunReport b = engine::ExecuteSharded(narrow);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  ExpectSameSolution(a, b, GetParam());
  EXPECT_EQ(a.peak_words, b.peak_words) << GetParam();
  EXPECT_EQ(a.sharded.max_message_words, b.sharded.max_message_words)
      << GetParam();
}

std::string TestName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(ShardableAlgorithms, ShardedSweep,
                         testing::ValuesIn(ShardableAlgorithmNames()),
                         TestName);

// RunConfig::shards > 1 dispatches Execute into the sharded mode — the
// two entry points must agree exactly.
TEST(ShardedEngineTest, ExecuteDispatchesShardsToExecuteSharded) {
  Fixture fixture = MakePlantedFixture(301);
  engine::ShardedRunConfig sharded = BaseConfig("kk", fixture.stream, 4);
  engine::RunReport direct = engine::ExecuteSharded(sharded);
  ASSERT_TRUE(direct.completed) << direct.error;

  engine::RunConfig via_execute = sharded.base;
  via_execute.shards = 4;
  engine::RunReport dispatched = engine::Execute(via_execute);
  ASSERT_TRUE(dispatched.completed) << dispatched.error;
  ExpectSameSolution(dispatched, direct, "dispatch");
  EXPECT_EQ(dispatched.sharded.shards, 4u);
  EXPECT_EQ(dispatched.sharded.max_message_words,
            direct.sharded.max_message_words);
}

// File-backed sharded runs (each shard cursoring the same mmap'd v3
// file) must agree with the in-memory sharded run over the same edges.
TEST(ShardedEngineTest, FileShardsMatchInMemoryShards) {
  Fixture fixture = MakePlantedFixture(301);
  const std::string path = TempPath("file_v3.bin");
  std::string error;
  ASSERT_TRUE(
      WriteStreamFile(fixture.stream, path, StreamFormat::kV3, &error))
      << error;

  engine::ShardedRunConfig in_memory = BaseConfig("kk", fixture.stream, 4);
  engine::RunReport expected = engine::ExecuteSharded(in_memory);
  ASSERT_TRUE(expected.completed) << expected.error;

  engine::ShardedRunConfig from_file = in_memory;
  from_file.base.source = engine::SourceSpec::File(path);
  engine::RunReport report = engine::ExecuteSharded(from_file);
  ASSERT_TRUE(report.completed) << report.error;
  ExpectSameSolution(report, expected, "file");
  EXPECT_EQ(report.sharded.max_message_words,
            expected.sharded.max_message_words);
  std::remove(path.c_str());
}

// The partitioner seam: a custom pure function routes sets differently
// but the merged result must still be a valid cover, and its name is
// enforced on resume.
TEST(ShardedEngineTest, CustomPartitionerRunsAndGuardsResume) {
  Fixture fixture = MakePlantedFixture(301);
  engine::ShardedRunConfig config = BaseConfig("kk", fixture.stream, 3);
  config.partitioner.name = "set-div";
  config.partitioner.index = [](SetId s, uint32_t shards) {
    return (s / 7) % shards;
  };
  config.base.validate = &fixture.instance;
  engine::RunReport report = engine::ExecuteSharded(config);
  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_TRUE(report.validation.ok) << report.validation.error;

  // Write a checkpoint under the custom partitioner, then try to resume
  // under the default one: refused, the cursors would replay the wrong
  // slices.
  const std::string path = TempPath("partitioner.scsh");
  engine::ShardedRunConfig kill = config;
  kill.base.validate = nullptr;
  kill.base.checkpoint.path = path;
  kill.base.checkpoint.every = 10;
  kill.base.stop_after = 25;
  ASSERT_TRUE(engine::ExecuteSharded(kill).error.empty());

  engine::ShardedRunConfig wrong = kill;
  wrong.base.stop_after = 0;
  wrong.base.checkpoint.resume = true;
  wrong.partitioner = engine::SetModuloPartitioner();
  engine::RunReport refused = engine::ExecuteSharded(wrong);
  EXPECT_FALSE(refused.completed);
  EXPECT_NE(refused.error.find("partitioned by 'set-div'"),
            std::string::npos)
      << refused.error;
  std::remove(path.c_str());
}

// Resuming a W=4 checkpoint at W=2 is refused — the slot cursors only
// mean anything at the W they were written at.
TEST(ShardedEngineTest, ResumeAtDifferentShardCountIsRefused) {
  Fixture fixture = MakePlantedFixture(301);
  const std::string path = TempPath("wrong_w.scsh");
  engine::ShardedRunConfig kill = BaseConfig("kk", fixture.stream, 4);
  kill.base.checkpoint.path = path;
  kill.base.checkpoint.every = 10;
  kill.base.stop_after = 25;
  ASSERT_TRUE(engine::ExecuteSharded(kill).error.empty());

  engine::ShardedRunConfig wrong = BaseConfig("kk", fixture.stream, 2);
  wrong.base.checkpoint.path = path;
  wrong.base.checkpoint.resume = true;
  engine::RunReport refused = engine::ExecuteSharded(wrong);
  EXPECT_FALSE(refused.completed);
  EXPECT_NE(refused.error.find("4-shard run"), std::string::npos)
      << refused.error;
  std::remove(path.c_str());
}

// Non-shardable algorithms are rejected with the registry's actionable
// diagnostic; a pre-built instance is rejected too (each shard must own
// its algorithm object).
TEST(ShardedEngineTest, RejectsNonShardableAndInstanceConfigs) {
  Fixture fixture = MakePlantedFixture(301);
  engine::ShardedRunConfig config =
      BaseConfig("store-everything-greedy", fixture.stream, 2);
  engine::RunReport report = engine::ExecuteSharded(config);
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.error.find("not shardable"), std::string::npos)
      << report.error;
  EXPECT_NE(report.error.find("kk"), std::string::npos) << report.error;

  auto algorithm = MakeAlgorithmByName("kk", {.seed = 1});
  engine::ShardedRunConfig with_instance = BaseConfig("", fixture.stream, 2);
  with_instance.base.algorithm_instance = algorithm.get();
  engine::RunReport rejected = engine::ExecuteSharded(with_instance);
  EXPECT_FALSE(rejected.completed);
  EXPECT_NE(rejected.error.find("registry algorithm name"),
            std::string::npos)
      << rejected.error;
}

// The "SCSH" aggregate format round-trips any combination of present
// and missing slots, and rejects damaged bytes instead of resuming
// from garbage.
TEST(ShardedCheckpointTest, RoundTripAndDamageRejection) {
  ShardedCheckpoint aggregate;
  aggregate.shards = 3;
  aggregate.partitioner = "set-mod";
  aggregate.shard_states.resize(3);
  Checkpoint slot;
  slot.algorithm_name = "kk";
  slot.meta = StreamMetadata{60, 80, 240};
  slot.stream_position = 120;
  slot.edges_delivered = 40;
  slot.session_sequence = 7;
  slot.state_words = {1, 2, 3, 0xdeadbeefULL};
  aggregate.shard_states[0] = slot;
  slot.stream_position = 121;
  aggregate.shard_states[2] = slot;  // slot 1 stays missing

  const std::string path = TempPath("roundtrip.scsh");
  std::string error;
  ASSERT_TRUE(SaveShardedCheckpoint(aggregate, path, &error)) << error;
  std::optional<ShardedCheckpoint> loaded =
      LoadShardedCheckpoint(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->shards, 3u);
  EXPECT_EQ(loaded->partitioner, "set-mod");
  ASSERT_EQ(loaded->shard_states.size(), 3u);
  ASSERT_TRUE(loaded->shard_states[0].has_value());
  EXPECT_FALSE(loaded->shard_states[1].has_value());
  ASSERT_TRUE(loaded->shard_states[2].has_value());
  EXPECT_EQ(loaded->shard_states[0]->stream_position, 120u);
  EXPECT_EQ(loaded->shard_states[2]->stream_position, 121u);
  EXPECT_EQ(loaded->shard_states[0]->state_words, slot.state_words);
  EXPECT_EQ(loaded->shard_states[0]->session_sequence, 7u);

  // Slot count must match the shard count on save.
  ShardedCheckpoint lopsided = aggregate;
  lopsided.shard_states.resize(2);
  EXPECT_FALSE(SaveShardedCheckpoint(lopsided, path + ".bad", &error));

  // Flip one byte in the middle: the CRC must reject the file.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  in.close();
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() / 2] ^= 0x40;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
  out.close();
  EXPECT_FALSE(LoadShardedCheckpoint(path, &error).has_value());
  EXPECT_FALSE(error.empty());

  // A single-run "SCKP" file is not a sharded checkpoint.
  const std::string single_path = TempPath("single.sckp");
  ASSERT_TRUE(SaveCheckpoint(slot, single_path, &error)) << error;
  EXPECT_FALSE(LoadShardedCheckpoint(single_path, &error).has_value());

  std::remove(path.c_str());
  std::remove((path + ".bad").c_str());
  std::remove(single_path.c_str());
}

}  // namespace
}  // namespace setcover
