#include "instance/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "util/rng.h"

namespace setcover {
namespace {

bool SameInstance(const SetCoverInstance& a, const SetCoverInstance& b) {
  if (a.NumElements() != b.NumElements() || a.NumSets() != b.NumSets())
    return false;
  for (SetId s = 0; s < a.NumSets(); ++s) {
    auto sa = a.Set(s), sb = b.Set(s);
    if (sa.size() != sb.size()) return false;
    for (size_t i = 0; i < sa.size(); ++i) {
      if (sa[i] != sb[i]) return false;
    }
  }
  return a.PlantedCover() == b.PlantedCover();
}

TEST(IoTest, RoundTripSimple) {
  auto inst = SetCoverInstance::FromSets(4, {{0, 1}, {2, 3}, {}});
  std::stringstream ss;
  WriteInstanceText(inst, ss);
  std::string error;
  auto parsed = ReadInstanceText(ss, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(SameInstance(inst, *parsed));
}

TEST(IoTest, RoundTripWithPlantedCover) {
  Rng rng(1);
  PlantedCoverParams params;
  params.num_elements = 30;
  params.num_sets = 12;
  params.planted_cover_size = 3;
  auto inst = GeneratePlantedCover(params, rng);
  std::stringstream ss;
  WriteInstanceText(inst, ss);
  std::string error;
  auto parsed = ReadInstanceText(ss, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(SameInstance(inst, *parsed));
  EXPECT_EQ(parsed->PlantedCover().size(), 3u);
}

TEST(IoTest, RejectsBadHeader) {
  std::stringstream ss("wrongmagic 3 2\n1 0\n1 1\n");
  std::string error;
  EXPECT_FALSE(ReadInstanceText(ss, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(IoTest, RejectsTruncatedSets) {
  std::stringstream ss("setcover 3 2\n2 0 1\n");
  std::string error;
  EXPECT_FALSE(ReadInstanceText(ss, &error).has_value());
}

TEST(IoTest, RejectsOutOfRangeElement) {
  std::stringstream ss("setcover 3 1\n1 7\n");
  std::string error;
  EXPECT_FALSE(ReadInstanceText(ss, &error).has_value());
}

TEST(IoTest, RejectsBadPlantedEntry) {
  std::stringstream ss("setcover 2 1\n2 0 1\nplanted 1 5\n");
  std::string error;
  EXPECT_FALSE(ReadInstanceText(ss, &error).has_value());
}

TEST(IoTest, RejectsUnknownTrailer) {
  std::stringstream ss("setcover 2 1\n2 0 1\ngarbage\n");
  std::string error;
  EXPECT_FALSE(ReadInstanceText(ss, &error).has_value());
}

TEST(IoTest, FileRoundTrip) {
  auto inst = SetCoverInstance::FromSets(3, {{0}, {1, 2}});
  std::string path = testing::TempDir() + "/setcover_io_test.txt";
  ASSERT_TRUE(WriteInstanceFile(inst, path));
  std::string error;
  auto parsed = ReadInstanceFile(path, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(SameInstance(inst, *parsed));
}

TEST(IoTest, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(
      ReadInstanceFile("/nonexistent/path/foo.txt", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace setcover
