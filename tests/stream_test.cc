#include "stream/stream.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(StreamTest, MaterializeEdgesSetMajor) {
  auto inst = SetCoverInstance::FromSets(4, {{2, 0}, {}, {1, 3}});
  auto edges = MaterializeEdges(inst);
  ASSERT_EQ(edges.size(), 4u);
  // Set-major, elements ascending within a set.
  EXPECT_EQ(edges[0], (Edge{0, 0}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 1}));
  EXPECT_EQ(edges[3], (Edge{2, 3}));
}

TEST(StreamTest, MakeStreamMetadata) {
  auto inst = SetCoverInstance::FromSets(3, {{0, 1}, {2}});
  auto stream = MakeStream(inst, MaterializeEdges(inst));
  EXPECT_EQ(stream.meta.num_sets, 2u);
  EXPECT_EQ(stream.meta.num_elements, 3u);
  EXPECT_EQ(stream.meta.stream_length, 3u);
  EXPECT_EQ(stream.size(), 3u);
}

TEST(StreamTest, EdgeCountMatchesInstance) {
  auto inst = SetCoverInstance::FromSets(10, {{0, 1, 2}, {3, 4}, {5}});
  EXPECT_EQ(MaterializeEdges(inst).size(), inst.NumEdges());
}

}  // namespace
}  // namespace setcover
