#include "offline/greedy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "instance/validator.h"
#include "offline/exact.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(GreedyTest, CoversSimpleInstance) {
  auto inst = SetCoverInstance::FromSets(5, {{0, 1, 2}, {2, 3}, {3, 4}});
  auto sol = GreedyCover(inst);
  auto check = ValidateSolution(inst, sol);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(GreedyTest, PicksTheBigSetFirst) {
  // One set covers everything; greedy must take exactly it.
  auto inst = SetCoverInstance::FromSets(
      6, {{0}, {1}, {0, 1, 2, 3, 4, 5}, {4, 5}});
  auto sol = GreedyCover(inst);
  ASSERT_EQ(sol.cover.size(), 1u);
  EXPECT_EQ(sol.cover[0], 2u);
}

TEST(GreedyTest, PartitionNeedsAllBlocks) {
  auto inst = GeneratePartition(60, 6);
  auto sol = GreedyCover(inst);
  EXPECT_EQ(sol.cover.size(), 6u);
}

TEST(GreedyTest, HandlesSingletonUniverse) {
  auto inst = SetCoverInstance::FromSets(1, {{0}});
  auto sol = GreedyCover(inst);
  EXPECT_EQ(sol.cover.size(), 1u);
  auto check = ValidateSolution(inst, sol);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(GreedyTest, IgnoresEmptySets) {
  auto inst = SetCoverInstance::FromSets(2, {{}, {0, 1}, {}});
  auto sol = GreedyCover(inst);
  ASSERT_EQ(sol.cover.size(), 1u);
  EXPECT_EQ(sol.cover[0], 1u);
}

TEST(GreedyTest, WithinLnNOfExactOnRandomInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    UniformRandomParams params;
    params.num_elements = 14;
    params.num_sets = 12;
    params.min_set_size = 1;
    params.max_set_size = 6;
    auto inst = GenerateUniformRandom(params, rng);
    auto greedy = GreedyCover(inst);
    auto exact = ExactCover(inst);
    ASSERT_TRUE(exact.has_value());
    double bound = std::log(14.0) + 1.0;
    EXPECT_LE(greedy.cover.size(),
              std::ceil(bound * double(exact->cover.size())));
    EXPECT_GE(greedy.cover.size(), exact->cover.size());
  }
}

TEST(GreedyTest, CertificateSetsAreInCover) {
  Rng rng(12);
  UniformRandomParams params;
  params.num_elements = 100;
  params.num_sets = 50;
  params.max_set_size = 10;
  auto inst = GenerateUniformRandom(params, rng);
  auto sol = GreedyCover(inst);
  auto check = ValidateSolution(inst, sol);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(GreedyTest, InfeasibleInstanceLeavesKNoSet) {
  auto inst = SetCoverInstance::FromSets(3, {{0, 1}});
  auto sol = GreedyCover(inst);
  EXPECT_EQ(sol.cover.size(), 1u);
  EXPECT_EQ(sol.certificate[0], 0u);
  EXPECT_EQ(sol.certificate[1], 0u);
  EXPECT_EQ(sol.certificate[2], kNoSet);
}

}  // namespace
}  // namespace setcover
