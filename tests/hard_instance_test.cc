#include "instance/hard_instance.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace setcover {
namespace {

TEST(Lemma1FamilyTest, SizesMatchLemma) {
  Rng rng(1);
  auto fam = Lemma1Family::Build(/*n=*/400, /*t=*/4, /*m=*/20, rng);
  EXPECT_EQ(fam.n(), 400u);
  EXPECT_EQ(fam.t(), 4u);
  EXPECT_EQ(fam.m(), 20u);
  // part size = floor(sqrt(n/t)) = 10, s = t·part = 40 ≈ sqrt(n·t).
  EXPECT_EQ(fam.PartSize(), 10u);
  EXPECT_EQ(fam.SetSize(), 40u);
  for (uint32_t i = 0; i < fam.m(); ++i) {
    EXPECT_EQ(fam.FullSet(i).size(), 40u);
  }
}

TEST(Lemma1FamilyTest, PartsPartitionTheSet) {
  Rng rng(2);
  auto fam = Lemma1Family::Build(900, 9, 10, rng);
  for (uint32_t i = 0; i < fam.m(); ++i) {
    std::set<ElementId> all;
    for (uint32_t r = 0; r < fam.t(); ++r) {
      for (ElementId u : fam.Part(i, r)) {
        EXPECT_TRUE(all.insert(u).second) << "parts overlap";
      }
    }
    EXPECT_EQ(all.size(), fam.SetSize());
  }
}

TEST(Lemma1FamilyTest, SetsAreSubsetsOfUniverse) {
  Rng rng(3);
  auto fam = Lemma1Family::Build(256, 4, 12, rng);
  for (uint32_t i = 0; i < fam.m(); ++i) {
    for (ElementId u : fam.FullSet(i)) EXPECT_LT(u, 256u);
  }
}

TEST(Lemma1FamilyTest, CrossIntersectionIsLogarithmic) {
  // Lemma 1: |T_i^r ∩ T_j| = O(log n) w.h.p. — expected value is 1, so a
  // generous constant bound certifies the property at this scale.
  Rng rng(4);
  auto fam = Lemma1Family::Build(1024, 4, 24, rng);
  EXPECT_LE(fam.MaxCrossIntersection(), 8u);
}

TEST(Lemma1FamilyTest, ComplementIsExact) {
  Rng rng(5);
  auto fam = Lemma1Family::Build(100, 2, 5, rng);
  for (uint32_t i = 0; i < fam.m(); ++i) {
    auto comp = fam.Complement(i);
    EXPECT_EQ(comp.size(), 100u - fam.SetSize());
    std::set<ElementId> in_set(fam.FullSet(i).begin(),
                               fam.FullSet(i).end());
    for (ElementId u : comp) {
      EXPECT_EQ(in_set.count(u), 0u);
      EXPECT_LT(u, 100u);
    }
  }
}

TEST(Lemma1FamilyTest, TEqualsOneDegenerate) {
  Rng rng(6);
  auto fam = Lemma1Family::Build(64, 1, 4, rng);
  EXPECT_EQ(fam.SetSize(), fam.PartSize());
  EXPECT_EQ(fam.SetSize(), 8u);  // sqrt(64)
}

TEST(Lemma1FamilyTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  auto f1 = Lemma1Family::Build(144, 4, 6, a);
  auto f2 = Lemma1Family::Build(144, 4, 6, b);
  for (uint32_t i = 0; i < 6; ++i) {
    auto s1 = f1.FullSet(i), s2 = f2.FullSet(i);
    ASSERT_EQ(s1.size(), s2.size());
    EXPECT_TRUE(std::equal(s1.begin(), s1.end(), s2.begin()));
  }
}

TEST(Lemma1FamilyDeathTest, RejectsBadParameters) {
  Rng rng(8);
  EXPECT_DEATH(Lemma1Family::Build(10, 0, 5, rng), "");
  EXPECT_DEATH(Lemma1Family::Build(10, 11, 5, rng), "");
  EXPECT_DEATH(Lemma1Family::Build(10, 2, 0, rng), "");
}

}  // namespace
}  // namespace setcover
